"""An SVG event display: the graphical client for display records.

Renders the transverse (r-phi) view of an :class:`EventDisplayRecord` —
detector shells from the geometry export, curved tracks from the helix
polylines, calorimeter towers as radial bars, and the MET arrow — as a
standalone SVG document. Pure string assembly, no graphics libraries:
the display "runs on essentially any platform", which is the portability
property the workshop kept returning to.
"""

from __future__ import annotations

import math

from repro.errors import OutreachError

_KIND_COLOURS = {
    "ecal": "#2e8b57",
    "hcal": "#b8860b",
    "muon": "#8b0000",
    "tracker": "#4682b4",
}
_TRACK_COLOURS = {1: "#c0392b", -1: "#2980b9", 0: "#7f8c8d"}


def _scale(value_mm: float, max_radius_mm: float, half_size: float) -> float:
    return value_mm / max_radius_mm * half_size


def render_event_svg(display_record: dict, size: int = 600) -> str:
    """Render a display record (``EventDisplayRecord.to_dict()``) to SVG.

    Returns the SVG document as a string. Raises
    :class:`OutreachError` for records that are not display records.
    """
    if display_record.get("format") != "repro-event-display":
        raise OutreachError(
            f"not an event-display record: "
            f"format={display_record.get('format')!r}"
        )
    geometry = display_record["geometry"]
    payload = display_record["payload"]
    half = size / 2.0
    max_radius = max(
        (sub["outer_radius_mm"] for sub in geometry["subdetectors"]),
        default=1000.0,
    ) * 1.05

    parts = [
        f'<svg xmlns="http://www.w3.org/2000/svg" width="{size}" '
        f'height="{size}" viewBox="0 0 {size} {size}">',
        f'<rect width="{size}" height="{size}" fill="#101418"/>',
        f'<g transform="translate({half},{half})">',
    ]

    # Detector shells, outermost first so inner systems draw on top.
    shells = sorted(geometry["subdetectors"],
                    key=lambda sub: sub["outer_radius_mm"],
                    reverse=True)
    for sub in shells:
        colour = _KIND_COLOURS.get(sub["kind"], "#555555")
        outer = _scale(sub["outer_radius_mm"], max_radius, half)
        inner = _scale(sub["inner_radius_mm"], max_radius, half)
        parts.append(
            f'<circle r="{outer:.1f}" fill="none" stroke="{colour}" '
            f'stroke-opacity="0.55" stroke-width="1.2"/>'
        )
        parts.append(
            f'<circle r="{inner:.1f}" fill="none" stroke="{colour}" '
            f'stroke-opacity="0.3" stroke-width="0.8"/>'
        )

    # Calorimeter towers: radial bars at the tower's phi, length by
    # energy (log-compressed so soft activity stays visible).
    towers = payload.get("towers", [])
    peak = max((tower["energy"] for tower in towers), default=1.0)
    calo_inner = _scale(
        min((sub["inner_radius_mm"]
             for sub in geometry["subdetectors"]
             if sub["kind"] in ("ecal", "hcal")), default=1200.0),
        max_radius, half,
    )
    for tower in towers:
        fraction = math.log1p(tower["energy"]) / math.log1p(peak)
        length = 0.25 * half * fraction
        colour = _KIND_COLOURS.get(tower["kind"], "#aaaaaa")
        x0 = calo_inner * math.cos(tower["phi"])
        y0 = -calo_inner * math.sin(tower["phi"])
        x1 = (calo_inner + length) * math.cos(tower["phi"])
        y1 = -(calo_inner + length) * math.sin(tower["phi"])
        parts.append(
            f'<line x1="{x0:.1f}" y1="{y0:.1f}" x2="{x1:.1f}" '
            f'y2="{y1:.1f}" stroke="{colour}" stroke-width="4" '
            f'stroke-opacity="0.85"/>'
        )

    # Tracks: the helix polylines from the payload.
    for track in payload.get("tracks", []):
        colour = _TRACK_COLOURS.get(int(track.get("charge", 0)),
                                    "#7f8c8d")
        points = " ".join(
            f"{_scale(x, max_radius, half):.1f},"
            f"{-_scale(y, max_radius, half):.1f}"
            for x, y in track.get("points", [])
        )
        if points:
            parts.append(
                f'<polyline points="0,0 {points}" fill="none" '
                f'stroke="{colour}" stroke-width="1.6"/>'
            )

    # The MET arrow.
    met = payload.get("met", {})
    met_value = float(met.get("value", 0.0))
    if met_value > 1.0:
        met_phi = float(met.get("phi", 0.0))
        length = 0.5 * half * min(1.0, met_value / 100.0)
        x1 = length * math.cos(met_phi)
        y1 = -length * math.sin(met_phi)
        parts.append(
            f'<line x1="0" y1="0" x2="{x1:.1f}" y2="{y1:.1f}" '
            f'stroke="#f1c40f" stroke-width="2.5" '
            f'stroke-dasharray="6,4"/>'
        )

    run = display_record.get("run", "?")
    event = display_record.get("event", "?")
    parts.append(
        f'<text x="{-half + 10:.0f}" y="{-half + 20:.0f}" '
        f'fill="#dddddd" font-family="monospace" font-size="13">'
        f"run {run} event {event}   MET {met_value:.1f} GeV</text>"
    )
    parts.append("</g></svg>")
    return "\n".join(parts)
