"""Trigger and data acquisition: the step before "Raw files from the
detector".

The workflow chains in the paper begin at RAW, but RAW itself exists
only because a trigger selected the collision. This package models that
first, irreversible selection: a :class:`TriggerMenu` of level-1 style
paths with prescales evaluated on simulated detector quantities, a
:class:`DataAcquisition` that streams accepted events, and preservable
menu descriptions — the trigger menu being one more configuration
artifact a preservation system must capture (an unrecorded event is
unrecoverable at *any* DPHEP level).
"""

from repro.trigger.menu import (
    TriggerDecision,
    TriggerMenu,
    TriggerPath,
    standard_menu,
)
from repro.trigger.daq import DataAcquisition, StreamSummary

__all__ = [
    "TriggerPath",
    "TriggerMenu",
    "TriggerDecision",
    "standard_menu",
    "DataAcquisition",
    "StreamSummary",
]
