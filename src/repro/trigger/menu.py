"""Trigger paths, prescales, and the menu.

Paths are evaluated on :class:`~repro.detector.simulation.SimulatedEvent`
quantities — the online system sees detector signals, not truth. Each
path has a hardware-style requirement (count of objects above a
threshold) and an integer prescale: a prescale of N keeps every N-th
accepted event, the standard mechanism for taming high-rate paths.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from repro.detector.simulation import SimulatedEvent
from repro.errors import ConfigurationError

#: Object kinds a trigger requirement can count.
TRIGGER_OBJECTS = ("track", "muon", "calo")


@dataclass
class TriggerPath:
    """One trigger path: requirement plus prescale.

    ``object_kind`` selects what is counted: ``"track"`` (charged
    traversals), ``"muon"`` (traversals reaching the muon system), or
    ``"calo"`` (calorimeter deposits, thresholded on energy).
    ``min_count`` objects above ``threshold`` (pt for tracks/muons,
    energy for calo) are required.
    """

    name: str
    object_kind: str
    threshold: float
    min_count: int = 1
    prescale: int = 1
    _accept_counter: int = field(default=0, repr=False)

    def __post_init__(self) -> None:
        if self.object_kind not in TRIGGER_OBJECTS:
            raise ConfigurationError(
                f"path {self.name!r}: unknown object kind "
                f"{self.object_kind!r}"
            )
        if self.prescale < 1:
            raise ConfigurationError(
                f"path {self.name!r}: prescale must be >= 1"
            )
        if self.min_count < 1:
            raise ConfigurationError(
                f"path {self.name!r}: min_count must be >= 1"
            )

    def _n_objects(self, event: SimulatedEvent) -> int:
        if self.object_kind == "track":
            return sum(1 for t in event.traversals
                       if t.momentum.pt >= self.threshold)
        if self.object_kind == "muon":
            return sum(1 for t in event.traversals
                       if t.reaches_muon_system
                       and t.momentum.pt >= self.threshold)
        return sum(1 for d in event.deposits
                   if d.measured_energy >= self.threshold)

    def fires(self, event: SimulatedEvent) -> bool:
        """Raw (pre-prescale) decision."""
        return self._n_objects(event) >= self.min_count

    def accepts(self, event: SimulatedEvent) -> bool:
        """Prescaled decision; stateful (counts raw accepts)."""
        if not self.fires(event):
            return False
        self._accept_counter += 1
        return self._accept_counter % self.prescale == 0

    def describe(self) -> dict:
        """Preservable path configuration."""
        return {
            "name": self.name,
            "object": self.object_kind,
            "threshold": self.threshold,
            "min_count": self.min_count,
            "prescale": self.prescale,
        }


@dataclass(frozen=True)
class TriggerDecision:
    """The recorded outcome for one event."""

    event_number: int
    fired_paths: tuple[str, ...]
    accepted: bool

    def to_dict(self) -> dict:
        """Serialise for trigger records."""
        return {
            "event": self.event_number,
            "paths": list(self.fired_paths),
            "accepted": self.accepted,
        }


class TriggerMenu:
    """An ordered collection of trigger paths."""

    def __init__(self, name: str, paths: list[TriggerPath]) -> None:
        if not paths:
            raise ConfigurationError(f"menu {name!r} has no paths")
        names = [path.name for path in paths]
        if len(set(names)) != len(names):
            raise ConfigurationError(
                f"menu {name!r} has duplicate path names"
            )
        self.name = name
        self.paths = list(paths)
        self._n_seen = 0
        self._n_accepted = 0
        self._fires_per_path: dict[str, int] = {p.name: 0
                                                for p in paths}

    def decide(self, event: SimulatedEvent) -> TriggerDecision:
        """Evaluate every path; the event is kept if any accepts."""
        self._n_seen += 1
        fired = []
        for path in self.paths:
            if path.accepts(event):
                fired.append(path.name)
                self._fires_per_path[path.name] += 1
        accepted = bool(fired)
        if accepted:
            self._n_accepted += 1
        return TriggerDecision(
            event_number=event.event_number,
            fired_paths=tuple(fired),
            accepted=accepted,
        )

    @property
    def n_seen(self) -> int:
        """Events evaluated so far."""
        return self._n_seen

    @property
    def n_accepted(self) -> int:
        """Events accepted so far."""
        return self._n_accepted

    def acceptance(self) -> float:
        """Overall acceptance fraction (NaN before any event)."""
        if self._n_seen == 0:
            return math.nan
        return self._n_accepted / self._n_seen

    def rates(self) -> dict[str, float]:
        """Per-path accept fraction of all seen events."""
        if self._n_seen == 0:
            return {name: math.nan for name in self._fires_per_path}
        return {name: count / self._n_seen
                for name, count in self._fires_per_path.items()}

    def describe(self) -> dict:
        """The preservable menu configuration."""
        return {
            "menu": self.name,
            "paths": [path.describe() for path in self.paths],
        }


def standard_menu() -> TriggerMenu:
    """A small physics menu: single/double muon, calo, high-rate track."""
    return TriggerMenu("TOY-MENU-v1", [
        TriggerPath("L1_SingleMu8", "muon", 8.0),
        TriggerPath("L1_DoubleMu4", "muon", 4.0, min_count=2),
        TriggerPath("L1_Calo30", "calo", 30.0),
        TriggerPath("L1_Track2_PS20", "track", 2.0, prescale=20),
    ])
