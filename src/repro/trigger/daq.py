"""Data acquisition: trigger decisions to recorded streams."""

from __future__ import annotations

from dataclasses import dataclass

from repro.detector.digitization import Digitizer, RawEvent
from repro.detector.simulation import SimulatedEvent
from repro.errors import ConfigurationError
from repro.trigger.menu import TriggerDecision, TriggerMenu


@dataclass
class StreamSummary:
    """Recording statistics for one output stream."""

    stream: str
    n_events: int = 0
    total_bytes: int = 0


class DataAcquisition:
    """Runs the menu, digitises accepted events, routes them to streams.

    ``streams`` maps stream names to the trigger paths feeding them; an
    accepted event is written to every stream one of its fired paths
    feeds. This is the point where unselected collisions are lost
    forever — the irreversibility that makes the trigger menu itself a
    preservation artifact.
    """

    def __init__(
        self,
        menu: TriggerMenu,
        digitizer: Digitizer,
        streams: dict[str, tuple[str, ...]] | None = None,
    ) -> None:
        self.menu = menu
        self.digitizer = digitizer
        known_paths = {path.name for path in menu.paths}
        if streams is None:
            streams = {"physics": tuple(known_paths)}
        for stream, paths in streams.items():
            unknown = set(paths) - known_paths
            if unknown:
                raise ConfigurationError(
                    f"stream {stream!r} references unknown paths "
                    f"{sorted(unknown)}"
                )
        self.streams = {stream: tuple(paths)
                        for stream, paths in streams.items()}
        self._recorded: dict[str, list[RawEvent]] = {
            stream: [] for stream in self.streams
        }
        self._decisions: list[TriggerDecision] = []

    def process(self, event: SimulatedEvent) -> TriggerDecision:
        """Trigger one event; digitise and record it if accepted."""
        decision = self.menu.decide(event)
        self._decisions.append(decision)
        if not decision.accepted:
            return decision
        raw = self.digitizer.digitize(event)
        fired = set(decision.fired_paths)
        for stream, feeding_paths in self.streams.items():
            if fired & set(feeding_paths):
                self._recorded[stream].append(raw)
        return decision

    def process_many(self, events: list[SimulatedEvent]
                     ) -> list[TriggerDecision]:
        """Trigger a list of events in order."""
        return [self.process(event) for event in events]

    def recorded(self, stream: str) -> list[RawEvent]:
        """The RAW events recorded to one stream."""
        try:
            return list(self._recorded[stream])
        except KeyError:
            raise ConfigurationError(
                f"unknown stream {stream!r}; known: "
                f"{sorted(self.streams)}"
            ) from None

    @property
    def decisions(self) -> list[TriggerDecision]:
        """Every decision taken, in order."""
        return list(self._decisions)

    def summaries(self) -> list[StreamSummary]:
        """Recording statistics per stream, name-sorted."""
        summaries = []
        for stream in sorted(self._recorded):
            events = self._recorded[stream]
            summaries.append(StreamSummary(
                stream=stream,
                n_events=len(events),
                total_bytes=sum(raw.approximate_size_bytes()
                                for raw in events),
            ))
        return summaries

    def describe(self) -> dict:
        """Preservable DAQ configuration (menu + stream routing)."""
        return {
            "menu": self.menu.describe(),
            "streams": {stream: list(paths)
                        for stream, paths in self.streams.items()},
        }
