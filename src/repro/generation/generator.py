"""The toy event generator driver.

:class:`ToyGenerator` samples events from a configured mixture of physics
processes, layers the underlying event on top of each hard interaction, and
records a :class:`GeneratorRunInfo` block — seed, tune, process list, cross
sections — which is exactly the generator-side provenance the preservation
layer must capture.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConfigurationError
from repro.generation.hepmc import GenEvent
from repro.generation.processes import MinimumBias, Process, Tune
from repro.kinematics import ParticleTable, default_particle_table


@dataclass
class GeneratorConfig:
    """Configuration of a generator run.

    ``processes`` is the mixture to sample; when more than one process is
    given, each event's process is chosen in proportion to its cross
    section. ``pileup_mu`` adds that many (Poisson-mean) soft minimum-bias
    overlays to every event, mimicking LHC pile-up.
    """

    processes: list[Process]
    sqrt_s: float = 8000.0
    tune: Tune = field(default_factory=Tune.tune_a)
    seed: int = 20130321
    pileup_mu: float = 0.0
    underlying_event: bool = True

    def __post_init__(self) -> None:
        if not self.processes:
            raise ConfigurationError("generator needs at least one process")
        if self.sqrt_s <= 0.0:
            raise ConfigurationError(f"sqrt_s must be positive: {self.sqrt_s}")
        if self.pileup_mu < 0.0:
            raise ConfigurationError(f"pileup_mu must be >= 0: {self.pileup_mu}")


@dataclass(frozen=True)
class GeneratorRunInfo:
    """Provenance block describing a completed (or planned) generator run."""

    generator: str
    version: str
    seed: int
    tune_name: str
    sqrt_s: float
    processes: tuple[dict, ...]
    pileup_mu: float

    def to_dict(self) -> dict:
        """Serialise for embedding in dataset headers."""
        return {
            "generator": self.generator,
            "version": self.version,
            "seed": self.seed,
            "tune": self.tune_name,
            "sqrt_s": self.sqrt_s,
            "processes": [dict(p) for p in self.processes],
            "pileup_mu": self.pileup_mu,
        }


class ToyGenerator:
    """Samples :class:`GenEvent` records from a process mixture.

    >>> from repro.generation import DrellYanZ
    >>> gen = ToyGenerator(GeneratorConfig(processes=[DrellYanZ()]))
    >>> events = gen.generate(10)
    >>> len(events)
    10
    """

    NAME = "toygen"
    VERSION = "1.0.0"

    def __init__(self, config: GeneratorConfig,
                 table: ParticleTable | None = None) -> None:
        self.config = config
        self.table = table if table is not None else default_particle_table()
        self._rng = np.random.default_rng(config.seed)
        self._minbias = MinimumBias()
        total = sum(p.cross_section_pb for p in config.processes)
        if total <= 0.0:
            raise ConfigurationError("total cross section must be positive")
        self._weights = np.array(
            [p.cross_section_pb / total for p in config.processes]
        )
        self._events_generated = 0

    @property
    def run_info(self) -> GeneratorRunInfo:
        """Provenance description of this generator setup."""
        return GeneratorRunInfo(
            generator=self.NAME,
            version=self.VERSION,
            seed=self.config.seed,
            tune_name=self.config.tune.name,
            sqrt_s=self.config.sqrt_s,
            processes=tuple(p.describe() for p in self.config.processes),
            pileup_mu=self.config.pileup_mu,
        )

    def _next_event(self) -> GenEvent:
        choice = int(self._rng.choice(len(self.config.processes),
                                      p=self._weights))
        process = self.config.processes[choice]
        event = GenEvent(
            event_number=self._events_generated,
            process_id=process.process_id,
            process_name=process.name,
            sqrt_s=self.config.sqrt_s,
        )
        process.fill(event, self._rng, self.table, self.config.tune)
        if self.config.underlying_event and not isinstance(
            process, MinimumBias
        ):
            self._minbias.fill(event, self._rng, self.table, self.config.tune)
        if self.config.pileup_mu > 0.0:
            n_pileup = int(self._rng.poisson(self.config.pileup_mu))
            for _ in range(n_pileup):
                self._minbias.fill(event, self._rng, self.table,
                                   self.config.tune)
        self._events_generated += 1
        return event

    def generate(self, n_events: int) -> list[GenEvent]:
        """Generate ``n_events`` truth events as a list."""
        return [self._next_event() for _ in range(n_events)]

    def stream(self, n_events: int) -> Iterator[GenEvent]:
        """Generate ``n_events`` lazily, one event at a time."""
        for _ in range(n_events):
            yield self._next_event()
