"""Decay kinematics helpers for the toy generator.

Everything here is frame-exact relativistic kinematics; only the angular
distributions are simplified (isotropic in the parent rest frame).
"""

from __future__ import annotations

import math

import numpy as np

from repro.errors import GenerationError
from repro.kinematics import FourVector
from repro.kinematics.units import SPEED_OF_LIGHT_MM_PER_NS


def two_body_decay(
    parent: FourVector,
    mass1: float,
    mass2: float,
    rng: np.random.Generator,
) -> tuple[FourVector, FourVector]:
    """Decay ``parent`` into two bodies of the given masses.

    The decay is isotropic in the parent rest frame; the daughters are
    returned boosted into the lab frame. Raises :class:`GenerationError` if
    the decay is kinematically forbidden.
    """
    parent_mass = parent.mass
    if parent_mass < mass1 + mass2:
        raise GenerationError(
            f"two-body decay forbidden: M={parent_mass:.4f} < "
            f"{mass1:.4f} + {mass2:.4f}"
        )
    # Momentum of each daughter in the rest frame (the Kallen function).
    term_plus = parent_mass**2 - (mass1 + mass2) ** 2
    term_minus = parent_mass**2 - (mass1 - mass2) ** 2
    p_star = math.sqrt(term_plus * term_minus) / (2.0 * parent_mass)

    cos_theta = rng.uniform(-1.0, 1.0)
    sin_theta = math.sqrt(1.0 - cos_theta * cos_theta)
    phi = rng.uniform(-math.pi, math.pi)

    px = p_star * sin_theta * math.cos(phi)
    py = p_star * sin_theta * math.sin(phi)
    pz = p_star * cos_theta

    daughter1 = FourVector.from_p3m(px, py, pz, mass1)
    daughter2 = FourVector.from_p3m(-px, -py, -pz, mass2)

    bx, by, bz = parent.boost_vector()
    return daughter1.boosted(bx, by, bz), daughter2.boosted(bx, by, bz)


def breit_wigner_mass(
    pole_mass: float,
    width: float,
    rng: np.random.Generator,
    minimum: float = 0.1,
    maximum: float | None = None,
) -> float:
    """Sample a resonance mass from a (non-relativistic) Breit-Wigner.

    The Cauchy tail is truncated to ``[minimum, maximum]`` (default maximum
    is ``pole_mass + 25 * width``) by resampling, which keeps the generator
    free of unphysical masses without distorting the core of the peak.
    """
    if width <= 0.0:
        return pole_mass
    if maximum is None:
        maximum = pole_mass + 25.0 * width
    for _ in range(1000):
        mass = pole_mass + 0.5 * width * rng.standard_cauchy()
        if minimum <= mass <= maximum:
            return mass
    raise GenerationError(
        f"failed to sample Breit-Wigner(m={pole_mass}, w={width}) within "
        f"[{minimum}, {maximum}]"
    )


def sample_decay_vertex(
    momentum: FourVector,
    lifetime_ns: float,
    rng: np.random.Generator,
    origin: tuple[float, float, float] = (0.0, 0.0, 0.0),
) -> tuple[tuple[float, float, float], float]:
    """Sample a decay position for a particle with the given proper lifetime.

    Returns ``(vertex_mm, proper_time_ns)``. The lab-frame flight length is
    ``beta * gamma * c * t_proper``; the vertex lies along the momentum
    direction from ``origin``. Stable particles (infinite lifetime) return
    the origin and an infinite proper time.
    """
    if lifetime_ns == float("inf"):
        return origin, float("inf")
    proper_time = rng.exponential(lifetime_ns)
    p = momentum.p
    mass = momentum.mass
    if mass <= 0.0:
        # Massless particles never decay in this model.
        return origin, float("inf")
    beta_gamma = p / mass
    flight = beta_gamma * SPEED_OF_LIGHT_MM_PER_NS * proper_time
    if p == 0.0:
        return origin, proper_time
    direction = (momentum.px / p, momentum.py / p, momentum.pz / p)
    vertex = (
        origin[0] + flight * direction[0],
        origin[1] + flight * direction[1],
        origin[2] + flight * direction[2],
    )
    return vertex, proper_time


def smeared_primary_vertex(
    rng: np.random.Generator,
    sigma_xy_mm: float = 0.02,
    sigma_z_mm: float = 50.0,
) -> tuple[float, float, float]:
    """Sample a primary-vertex position from the beam-spot distribution."""
    return (
        float(rng.normal(0.0, sigma_xy_mm)),
        float(rng.normal(0.0, sigma_xy_mm)),
        float(rng.normal(0.0, sigma_z_mm)),
    )
