"""Toy Monte Carlo event generation.

This package plays the role of the event generators (Pythia/Herwig/...) and
the HepMC exchange format in the paper's ecosystem: it produces truth-level
events — :class:`GenEvent` records of generated particles — that the
detector simulation consumes and that the RIVET-analogue framework analyses
directly.

The physics is deliberately simplified (factorised production spectra,
isotropic decays, toy fragmentation) but statistically honest: mass peaks
are Breit-Wigners, lifetimes are exponential, spectra have the right gross
shapes, so every downstream preservation workflow exercises realistic data.
"""

from repro.generation.hepmc import GenEvent, GenParticle, ParticleStatus
from repro.generation.generator import (
    GeneratorConfig,
    GeneratorRunInfo,
    ToyGenerator,
)
from repro.generation.processes import (
    DrellYanZ,
    DzeroProduction,
    HiggsToFourLeptons,
    JpsiToMuMu,
    KshortProduction,
    MinimumBias,
    Process,
    QCDDijets,
    WProduction,
    ZPrimeResonance,
)

__all__ = [
    "GenEvent",
    "GenParticle",
    "ParticleStatus",
    "GeneratorConfig",
    "GeneratorRunInfo",
    "ToyGenerator",
    "Process",
    "DrellYanZ",
    "WProduction",
    "HiggsToFourLeptons",
    "QCDDijets",
    "DzeroProduction",
    "KshortProduction",
    "JpsiToMuMu",
    "MinimumBias",
    "ZPrimeResonance",
]
