"""Physics processes for the toy generator.

Each :class:`Process` knows how to populate a :class:`GenEvent` with a hard
interaction plus its decay chain. Cross sections are order-of-magnitude toy
values in picobarns — they only need to give the right *relative* rates so
that mixed-process runs, trigger menus, and skim fractions behave sensibly.

A :class:`Tune` bundles the soft-QCD parameters (multiplicities, spectrum
slopes) that differ between "generator tunes"; the RIVET-style comparison
example exercises two tunes against archived reference data exactly the way
the paper describes generator validation.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass

import numpy as np

from repro.errors import GenerationError
from repro.generation.decays import (
    breit_wigner_mass,
    sample_decay_vertex,
    two_body_decay,
)
from repro.generation.hepmc import GenEvent, ParticleStatus
from repro.kinematics import FourVector, ParticleTable

PDG_ELECTRON = 11
PDG_MUON = 13
PDG_NU_E = 12
PDG_NU_MU = 14
PDG_Z = 23
PDG_W = 24
PDG_HIGGS = 25
PDG_PHOTON = 22
PDG_PION = 211
PDG_PI0 = 111
PDG_KAON = 321
PDG_D0 = 421
PDG_JPSI = 443
PDG_GLUON = 21
PDG_ZPRIME = 32
PDG_NEUTRALINO = 1000022


@dataclass(frozen=True)
class Tune:
    """Soft-QCD tune parameters.

    ``ue_mean_multiplicity`` controls the number of underlying-event hadrons
    per event; ``ue_pt_slope_gev`` the exponential slope of their transverse
    momentum spectrum; ``frag_mean_hadrons`` the mean hadron count a 50 GeV
    jet fragments into; ``frag_pt_width_gev`` the intra-jet transverse
    spread.
    """

    name: str = "TUNE-A"
    ue_mean_multiplicity: float = 12.0
    ue_pt_slope_gev: float = 0.55
    frag_mean_hadrons: float = 14.0
    frag_pt_width_gev: float = 0.65

    @classmethod
    def tune_a(cls) -> "Tune":
        """The default tune."""
        return cls()

    @classmethod
    def tune_b(cls) -> "Tune":
        """A harder-spectrum, higher-multiplicity alternative tune."""
        return cls(
            name="TUNE-B",
            ue_mean_multiplicity=17.0,
            ue_pt_slope_gev=0.72,
            frag_mean_hadrons=17.0,
            frag_pt_width_gev=0.80,
        )


class Process(abc.ABC):
    """A physics process the generator can sample.

    Subclasses fill the hard interaction into an event; the generator adds
    the underlying event on top.
    """

    #: Human-readable process name, also used as the process tag in data.
    name: str = "process"
    #: Integer process id recorded in every event.
    process_id: int = 0
    #: Toy production cross section in picobarns.
    cross_section_pb: float = 1.0

    @abc.abstractmethod
    def fill(
        self,
        event: GenEvent,
        rng: np.random.Generator,
        table: ParticleTable,
        tune: Tune,
    ) -> None:
        """Append the hard process and its decay products to ``event``."""

    def describe(self) -> dict:
        """Machine-readable process description for provenance records."""
        return {
            "name": self.name,
            "process_id": self.process_id,
            "cross_section_pb": self.cross_section_pb,
        }


def _sample_resonance_momentum(
    mass: float,
    rng: np.random.Generator,
    mean_pt: float = 12.0,
    rapidity_sigma: float = 1.4,
) -> FourVector:
    """Sample the lab momentum of a centrally produced heavy resonance."""
    pt = rng.exponential(mean_pt)
    y = rng.normal(0.0, rapidity_sigma)
    phi = rng.uniform(-math.pi, math.pi)
    mt = math.sqrt(mass * mass + pt * pt)
    energy = mt * math.cosh(y)
    pz = mt * math.sinh(y)
    return FourVector(energy, pt * math.cos(phi), pt * math.sin(phi), pz)


def _fragment_jet(
    event: GenEvent,
    parton_index: int,
    rng: np.random.Generator,
    table: ParticleTable,
    tune: Tune,
) -> None:
    """Fragment a parton into a spray of hadrons appended to ``event``.

    Longitudinal momentum fractions follow a Dirichlet split (a crude Lund
    string stand-in); each hadron gets a transverse kick relative to the
    parton axis. The hadron system's summed momentum approximates the parton
    momentum to within the kicks.
    """
    parton = event.particles[parton_index]
    jet = parton.momentum
    energy = max(jet.e, 1.0)
    mean_hadrons = tune.frag_mean_hadrons * (energy / 50.0) ** 0.5
    n_hadrons = max(2, int(rng.poisson(mean_hadrons)))
    fractions = rng.dirichlet(np.full(n_hadrons, 1.2))

    axis_p = jet.p
    if axis_p == 0.0:
        raise GenerationError("cannot fragment a parton at rest")
    axis = np.array([jet.px, jet.py, jet.pz]) / axis_p

    # Build two unit vectors transverse to the jet axis.
    seed = np.array([0.0, 0.0, 1.0])
    if abs(axis[2]) > 0.9:
        seed = np.array([1.0, 0.0, 0.0])
    t1 = np.cross(axis, seed)
    t1 /= np.linalg.norm(t1)
    t2 = np.cross(axis, t1)

    for fraction in fractions:
        # 60% pi+-, 15% pi0, 15% K+-, 10% K0_L by species.
        roll = rng.uniform()
        if roll < 0.60:
            pdg = PDG_PION if rng.uniform() < 0.5 else -PDG_PION
        elif roll < 0.75:
            pdg = PDG_PI0
        elif roll < 0.90:
            pdg = PDG_KAON if rng.uniform() < 0.5 else -PDG_KAON
        else:
            pdg = 130
        mass = table.by_id(pdg).mass
        p_long = fraction * axis_p
        kick1 = rng.normal(0.0, tune.frag_pt_width_gev)
        kick2 = rng.normal(0.0, tune.frag_pt_width_gev)
        p3 = p_long * axis + kick1 * t1 + kick2 * t2
        momentum = FourVector.from_p3m(p3[0], p3[1], p3[2], mass)
        event.add_particle(pdg, momentum, ParticleStatus.FINAL,
                           parents=[parton_index])


class DrellYanZ(Process):
    """``q qbar -> Z/gamma* -> l+ l-`` with a Breit-Wigner mass peak.

    The flagship outreach process: ATLAS and CMS master classes (Table 1)
    are built around exactly this dilepton signature.
    """

    def __init__(self, flavour: str = "mu",
                 cross_section_pb: float = 1100.0) -> None:
        if flavour not in ("e", "mu"):
            raise GenerationError(f"unsupported Z decay flavour {flavour!r}")
        self.flavour = flavour
        self.name = f"z_to_{flavour}{flavour}"
        self.process_id = 230 if flavour == "mu" else 231
        self.cross_section_pb = cross_section_pb

    def fill(self, event, rng, table, tune):
        z_species = table.by_id(PDG_Z)
        mass = breit_wigner_mass(z_species.mass, z_species.width, rng,
                                 minimum=40.0)
        z_momentum = _sample_resonance_momentum(mass, rng)
        z = event.add_particle(PDG_Z, z_momentum, ParticleStatus.DECAYED)
        lepton_id = PDG_MUON if self.flavour == "mu" else PDG_ELECTRON
        lepton_mass = table.by_id(lepton_id).mass
        minus, plus = two_body_decay(z_momentum, lepton_mass, lepton_mass, rng)
        event.add_particle(lepton_id, minus, ParticleStatus.FINAL,
                           parents=[z.index])
        event.add_particle(-lepton_id, plus, ParticleStatus.FINAL,
                           parents=[z.index])


class WProduction(Process):
    """``q qbar' -> W -> l nu``; the neutrino gives missing momentum."""

    def __init__(self, flavour: str = "mu", charge: int = 1,
                 cross_section_pb: float = 11000.0) -> None:
        if flavour not in ("e", "mu"):
            raise GenerationError(f"unsupported W decay flavour {flavour!r}")
        if charge not in (1, -1):
            raise GenerationError(f"W charge must be +-1, got {charge}")
        self.flavour = flavour
        self.charge = charge
        sign = "plus" if charge == 1 else "minus"
        self.name = f"w{sign}_to_{flavour}nu"
        self.process_id = 240 + (0 if charge == 1 else 1)
        self.cross_section_pb = cross_section_pb

    def fill(self, event, rng, table, tune):
        w_species = table.by_id(PDG_W)
        mass = breit_wigner_mass(w_species.mass, w_species.width, rng,
                                 minimum=20.0)
        w_momentum = _sample_resonance_momentum(mass, rng)
        w_pdg = PDG_W * self.charge
        w = event.add_particle(w_pdg, w_momentum, ParticleStatus.DECAYED)
        lepton_base = PDG_MUON if self.flavour == "mu" else PDG_ELECTRON
        nu_base = PDG_NU_MU if self.flavour == "mu" else PDG_NU_E
        # W+ -> l+ nu ; W- -> l- nubar.
        lepton_id = -lepton_base if self.charge == 1 else lepton_base
        nu_id = nu_base if self.charge == 1 else -nu_base
        lepton_mass = table.by_id(lepton_base).mass
        lepton_p, nu_p = two_body_decay(w_momentum, lepton_mass, 0.0, rng)
        event.add_particle(lepton_id, lepton_p, ParticleStatus.FINAL,
                           parents=[w.index])
        event.add_particle(nu_id, nu_p, ParticleStatus.FINAL,
                           parents=[w.index])


class HiggsToFourLeptons(Process):
    """``H -> Z Z* -> 4 leptons`` — the "golden channel" master class."""

    name = "higgs_to_4l"
    process_id = 250

    def __init__(self, cross_section_pb: float = 1.3) -> None:
        self.cross_section_pb = cross_section_pb

    def fill(self, event, rng, table, tune):
        higgs_species = table.by_id(PDG_HIGGS)
        higgs_momentum = _sample_resonance_momentum(higgs_species.mass, rng,
                                                    mean_pt=18.0)
        higgs = event.add_particle(PDG_HIGGS, higgs_momentum,
                                   ParticleStatus.DECAYED)
        # One on-shell Z and one off-shell Z*, constrained to the Higgs mass.
        z_species = table.by_id(PDG_Z)
        for _ in range(200):
            m_onshell = breit_wigner_mass(z_species.mass, z_species.width,
                                          rng, minimum=40.0)
            m_offshell = rng.uniform(12.0, 45.0)
            if m_onshell + m_offshell < higgs_species.mass:
                break
        else:
            raise GenerationError("could not partition H -> ZZ* masses")
        z1_p, z2_p = _decay_to_masses(higgs_momentum, m_onshell, m_offshell,
                                      rng)
        z1 = event.add_particle(PDG_Z, z1_p, ParticleStatus.DECAYED,
                                parents=[higgs.index])
        z2 = event.add_particle(PDG_Z, z2_p, ParticleStatus.DECAYED,
                                parents=[higgs.index])
        for z in (z1, z2):
            flavour = PDG_MUON if rng.uniform() < 0.5 else PDG_ELECTRON
            lepton_mass = table.by_id(flavour).mass
            minus, plus = two_body_decay(z.momentum, lepton_mass, lepton_mass,
                                         rng)
            event.add_particle(flavour, minus, ParticleStatus.FINAL,
                               parents=[z.index])
            event.add_particle(-flavour, plus, ParticleStatus.FINAL,
                               parents=[z.index])


def _decay_to_masses(parent: FourVector, mass1: float, mass2: float,
                     rng: np.random.Generator) -> tuple[FourVector, FourVector]:
    """Two-body decay into daughters of fixed (off-shell) masses."""
    return two_body_decay(parent, mass1, mass2, rng)


class QCDDijets(Process):
    """Back-to-back dijet production with a falling pt spectrum."""

    name = "qcd_dijets"
    process_id = 100

    def __init__(self, pt_min: float = 20.0, pt_max: float = 500.0,
                 spectral_index: float = 4.5,
                 cross_section_pb: float = 6.0e7) -> None:
        if pt_min <= 0.0 or pt_max <= pt_min:
            raise GenerationError(
                f"invalid dijet pt range [{pt_min}, {pt_max}]"
            )
        self.pt_min = pt_min
        self.pt_max = pt_max
        self.spectral_index = spectral_index
        self.cross_section_pb = cross_section_pb

    def _sample_pt(self, rng: np.random.Generator) -> float:
        """Inverse-CDF sample of a power-law ``pt^-n`` spectrum."""
        n = self.spectral_index
        u = rng.uniform()
        a = self.pt_min ** (1.0 - n)
        b = self.pt_max ** (1.0 - n)
        return (a + u * (b - a)) ** (1.0 / (1.0 - n))

    def fill(self, event, rng, table, tune):
        pt = self._sample_pt(rng)
        eta1 = rng.normal(0.0, 1.5)
        eta2 = rng.normal(0.0, 1.5)
        phi = rng.uniform(-math.pi, math.pi)
        opposite = phi + math.pi + rng.normal(0.0, 0.12)
        parton1 = FourVector.from_ptetaphim(pt, eta1, phi, 0.0)
        kt_balance = pt * (1.0 + rng.normal(0.0, 0.08))
        parton2 = FourVector.from_ptetaphim(max(1.0, kt_balance), eta2,
                                            opposite, 0.0)
        for parton in (parton1, parton2):
            line = event.add_particle(PDG_GLUON, parton,
                                      ParticleStatus.DECAYED)
            _fragment_jet(event, line.index, rng, table, tune)


class DzeroProduction(Process):
    """Prompt ``D0 -> K- pi+`` with an exponentially distributed flight
    length — the substrate for the LHCb D-lifetime master class in Table 1.
    """

    name = "d0_to_kpi"
    process_id = 400

    def __init__(self, cross_section_pb: float = 2.0e6) -> None:
        self.cross_section_pb = cross_section_pb

    def fill(self, event, rng, table, tune):
        d0_species = table.by_id(PDG_D0)
        pt = 2.0 + rng.exponential(3.0)
        eta = rng.uniform(2.0, 4.5)  # forward, LHCb-like
        phi = rng.uniform(-math.pi, math.pi)
        d0_momentum = FourVector.from_ptetaphim(pt, eta, phi, d0_species.mass)
        vertex, proper_time = sample_decay_vertex(
            d0_momentum, d0_species.lifetime_ns, rng
        )
        d0 = event.add_particle(PDG_D0, d0_momentum, ParticleStatus.DECAYED)
        d0.decay_vertex = vertex
        kaon_mass = table.by_id(PDG_KAON).mass
        pion_mass = table.by_id(PDG_PION).mass
        kaon_p, pion_p = two_body_decay(d0_momentum, kaon_mass, pion_mass, rng)
        event.add_particle(-PDG_KAON, kaon_p, ParticleStatus.FINAL,
                           parents=[d0.index], production_vertex=vertex)
        event.add_particle(PDG_PION, pion_p, ParticleStatus.FINAL,
                           parents=[d0.index], production_vertex=vertex)


class KshortProduction(Process):
    """Prompt ``K0_S -> pi+ pi-`` with centimetre-scale flight lengths.

    The archetypal "V0": a neutral strange hadron decaying to two
    charged tracks at a displaced vertex — the substrate for the
    ALICE-style V0 master class in Table 1.
    """

    name = "kshort_to_pipi"
    process_id = 310

    def __init__(self, cross_section_pb: float = 1.0e7) -> None:
        self.cross_section_pb = cross_section_pb

    def fill(self, event, rng, table, tune):
        kshort_species = table.by_id(310)
        pt = 0.5 + rng.exponential(1.5)
        eta = rng.uniform(-1.5, 1.5)
        phi = rng.uniform(-math.pi, math.pi)
        momentum = FourVector.from_ptetaphim(pt, eta, phi,
                                             kshort_species.mass)
        vertex, _ = sample_decay_vertex(momentum,
                                        kshort_species.lifetime_ns, rng)
        kshort = event.add_particle(310, momentum,
                                    ParticleStatus.DECAYED)
        kshort.decay_vertex = vertex
        pion_mass = table.by_id(PDG_PION).mass
        plus, minus = two_body_decay(momentum, pion_mass, pion_mass,
                                     rng)
        event.add_particle(PDG_PION, plus, ParticleStatus.FINAL,
                           parents=[kshort.index],
                           production_vertex=vertex)
        event.add_particle(-PDG_PION, minus, ParticleStatus.FINAL,
                           parents=[kshort.index],
                           production_vertex=vertex)


class JpsiToMuMu(Process):
    """Prompt ``J/psi -> mu+ mu-`` for low-mass dimuon spectra."""

    name = "jpsi_to_mumu"
    process_id = 443

    def __init__(self, cross_section_pb: float = 8.0e4) -> None:
        self.cross_section_pb = cross_section_pb

    def fill(self, event, rng, table, tune):
        jpsi_species = table.by_id(PDG_JPSI)
        pt = 3.0 + rng.exponential(4.0)
        y = rng.normal(0.0, 1.8)
        phi = rng.uniform(-math.pi, math.pi)
        mt = math.sqrt(jpsi_species.mass**2 + pt * pt)
        momentum = FourVector(mt * math.cosh(y), pt * math.cos(phi),
                              pt * math.sin(phi), mt * math.sinh(y))
        jpsi = event.add_particle(PDG_JPSI, momentum, ParticleStatus.DECAYED)
        mu_mass = table.by_id(PDG_MUON).mass
        minus, plus = two_body_decay(momentum, mu_mass, mu_mass, rng)
        event.add_particle(PDG_MUON, minus, ParticleStatus.FINAL,
                           parents=[jpsi.index])
        event.add_particle(-PDG_MUON, plus, ParticleStatus.FINAL,
                           parents=[jpsi.index])


class MinimumBias(Process):
    """Soft inelastic collisions: a spray of low-pt hadrons."""

    name = "minimum_bias"
    process_id = 1

    def __init__(self, cross_section_pb: float = 7.0e10) -> None:
        self.cross_section_pb = cross_section_pb

    def fill(self, event, rng, table, tune):
        n_hadrons = max(1, int(rng.poisson(tune.ue_mean_multiplicity)))
        for _ in range(n_hadrons):
            roll = rng.uniform()
            if roll < 0.7:
                pdg = PDG_PION if rng.uniform() < 0.5 else -PDG_PION
            elif roll < 0.85:
                pdg = PDG_PI0
            else:
                pdg = PDG_KAON if rng.uniform() < 0.5 else -PDG_KAON
            mass = table.by_id(pdg).mass
            pt = rng.exponential(tune.ue_pt_slope_gev)
            eta = rng.uniform(-4.0, 4.0)
            phi = rng.uniform(-math.pi, math.pi)
            momentum = FourVector.from_ptetaphim(pt, eta, phi, mass)
            event.add_particle(pdg, momentum, ParticleStatus.FINAL)


class ZPrimeResonance(Process):
    """A heavy dilepton resonance — the "new model" a theorist submits to
    the RECAST-analogue framework for re-interpretation.
    """

    def __init__(self, mass: float = 1500.0, width: float | None = None,
                 flavour: str = "mu", cross_section_pb: float = 0.05) -> None:
        if mass <= 200.0:
            raise GenerationError(
                f"Z' mass must exceed 200 GeV for a clean search, got {mass}"
            )
        self.mass = mass
        self.width = width if width is not None else 0.03 * mass
        self.flavour = flavour
        self.name = f"zprime_{int(mass)}_to_{flavour}{flavour}"
        self.process_id = 3200
        self.cross_section_pb = cross_section_pb

    def fill(self, event, rng, table, tune):
        mass = breit_wigner_mass(self.mass, self.width, rng,
                                 minimum=0.3 * self.mass)
        momentum = _sample_resonance_momentum(mass, rng, mean_pt=20.0)
        zp = event.add_particle(PDG_ZPRIME, momentum, ParticleStatus.DECAYED)
        lepton_id = PDG_MUON if self.flavour == "mu" else PDG_ELECTRON
        lepton_mass = table.by_id(lepton_id).mass
        minus, plus = two_body_decay(momentum, lepton_mass, lepton_mass, rng)
        event.add_particle(lepton_id, minus, ParticleStatus.FINAL,
                           parents=[zp.index])
        event.add_particle(-lepton_id, plus, ParticleStatus.FINAL,
                           parents=[zp.index])
