"""A HepMC-like truth event record.

The paper notes that RIVET accepts "any Monte Carlo output ... as long as it
can produce output in HepMC format". This module is our HepMC: a compact,
self-describing truth record with particles, parent/child links, and decay
vertices, serialisable to plain dictionaries for the JSON-lines data files.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import GenerationError
from repro.kinematics import FourVector


class ParticleStatus(enum.IntEnum):
    """HepMC-style status codes for generated particles."""

    #: Stable final-state particle (enters the detector).
    FINAL = 1
    #: Decayed or fragmented intermediate particle.
    DECAYED = 2
    #: Hard-process particle (documentation line).
    HARD_PROCESS = 3


@dataclass(slots=True)
class GenParticle:
    """One particle line of a truth event.

    ``index`` is the particle's position in the event record; ``parents``
    and ``children`` are lists of indices into the same record.
    ``production_vertex`` and ``decay_vertex`` are (x, y, z) positions in
    millimetres, with ``None`` meaning "at the primary vertex" and "did not
    decay" respectively.
    """

    index: int
    pdg_id: int
    momentum: FourVector
    status: ParticleStatus
    parents: list[int] = field(default_factory=list)
    children: list[int] = field(default_factory=list)
    production_vertex: tuple[float, float, float] | None = None
    decay_vertex: tuple[float, float, float] | None = None

    @property
    def is_final(self) -> bool:
        """True for stable final-state particles."""
        return self.status == ParticleStatus.FINAL

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        record = {
            "index": self.index,
            "pdg_id": self.pdg_id,
            "p4": self.momentum.to_list(),
            "status": int(self.status),
            "parents": list(self.parents),
            "children": list(self.children),
        }
        if self.production_vertex is not None:
            record["prod_vtx"] = list(self.production_vertex)
        if self.decay_vertex is not None:
            record["decay_vtx"] = list(self.decay_vertex)
        return record

    @classmethod
    def from_dict(cls, record: dict) -> "GenParticle":
        """Inverse of :meth:`to_dict`."""
        prod = record.get("prod_vtx")
        decay = record.get("decay_vtx")
        return cls(
            index=int(record["index"]),
            pdg_id=int(record["pdg_id"]),
            momentum=FourVector.from_list(record["p4"]),
            status=ParticleStatus(int(record["status"])),
            parents=[int(i) for i in record.get("parents", [])],
            children=[int(i) for i in record.get("children", [])],
            production_vertex=tuple(prod) if prod is not None else None,
            decay_vertex=tuple(decay) if decay is not None else None,
        )


@dataclass(slots=True)
class GenEvent:
    """A complete truth event: the generator's view of one collision."""

    event_number: int
    process_id: int
    process_name: str
    sqrt_s: float
    weight: float = 1.0
    particles: list[GenParticle] = field(default_factory=list)

    def add_particle(
        self,
        pdg_id: int,
        momentum: FourVector,
        status: ParticleStatus,
        parents: list[int] | None = None,
        production_vertex: tuple[float, float, float] | None = None,
    ) -> GenParticle:
        """Append a particle, wiring up parent/child links, and return it."""
        particle = GenParticle(
            index=len(self.particles),
            pdg_id=pdg_id,
            momentum=momentum,
            status=status,
            parents=list(parents) if parents else [],
            production_vertex=production_vertex,
        )
        for parent_index in particle.parents:
            if not 0 <= parent_index < len(self.particles):
                raise GenerationError(
                    f"parent index {parent_index} out of range in event "
                    f"{self.event_number}"
                )
            self.particles[parent_index].children.append(particle.index)
        self.particles.append(particle)
        return particle

    def final_state(self) -> list[GenParticle]:
        """All stable final-state particles, in record order."""
        return [p for p in self.particles if p.is_final]

    def particles_with_pdg(self, *pdg_ids: int) -> list[GenParticle]:
        """All particles (any status) whose pdg id is in ``pdg_ids``."""
        wanted = set(pdg_ids)
        return [p for p in self.particles if p.pdg_id in wanted]

    def visible_momentum(self, invisible_ids: frozenset[int]) -> FourVector:
        """Summed momentum of final-state particles not in ``invisible_ids``."""
        total = FourVector.zero()
        for particle in self.final_state():
            if particle.pdg_id not in invisible_ids:
                total = total + particle.momentum
        return total

    def validate(self) -> None:
        """Check internal link consistency; raises :class:`GenerationError`."""
        n = len(self.particles)
        for particle in self.particles:
            for parent in particle.parents:
                if not 0 <= parent < n:
                    raise GenerationError(
                        f"particle {particle.index} has out-of-range parent "
                        f"{parent}"
                    )
                if particle.index not in self.particles[parent].children:
                    raise GenerationError(
                        f"parent {parent} does not list particle "
                        f"{particle.index} as a child"
                    )
            for child in particle.children:
                if not 0 <= child < n:
                    raise GenerationError(
                        f"particle {particle.index} has out-of-range child "
                        f"{child}"
                    )

    def to_dict(self) -> dict:
        """Serialise to a JSON-compatible dictionary."""
        return {
            "event_number": self.event_number,
            "process_id": self.process_id,
            "process_name": self.process_name,
            "sqrt_s": self.sqrt_s,
            "weight": self.weight,
            "particles": [p.to_dict() for p in self.particles],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "GenEvent":
        """Inverse of :meth:`to_dict`."""
        event = cls(
            event_number=int(record["event_number"]),
            process_id=int(record["process_id"]),
            process_name=str(record["process_name"]),
            sqrt_s=float(record["sqrt_s"]),
            weight=float(record.get("weight", 1.0)),
        )
        event.particles = [
            GenParticle.from_dict(p) for p in record.get("particles", [])
        ]
        return event
