"""Exception hierarchy for the :mod:`repro` library.

All library-specific failures derive from :class:`ReproError` so callers can
catch the whole family with a single ``except`` clause while still being able
to discriminate precise failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every exception raised by the repro library."""


class ConfigurationError(ReproError):
    """A component was configured with inconsistent or invalid parameters."""


class KinematicsError(ReproError):
    """A four-vector or particle operation was physically invalid."""


class UnknownParticleError(KinematicsError):
    """A PDG id or particle name is not present in the particle table."""


class GenerationError(ReproError):
    """The event generator could not produce a valid event."""


class DetectorError(ReproError):
    """Detector simulation or digitisation failed."""


class ConditionsError(ReproError):
    """Conditions database failure (missing tag, IOV gap, stale payload)."""


class IOVError(ConditionsError):
    """An interval of validity is malformed or no interval covers a run."""


class ReconstructionError(ReproError):
    """Reconstruction could not interpret the raw data it was given."""


class ExecutionError(ReproError):
    """A parallel-execution policy or scheduler invocation was invalid."""


class ObservabilityError(ReproError):
    """Tracing, metrics, or run-report assembly/validation failed."""


class DataModelError(ReproError):
    """An event container or tier operation was invalid."""


class TierError(DataModelError):
    """An operation was attempted on the wrong data tier."""


class SchemaError(DataModelError):
    """A record does not conform to its declared schema."""


class PersistenceError(ReproError):
    """Reading or writing a dataset file failed."""


class WorkflowError(ReproError):
    """A processing chain is malformed or failed to execute."""


class StepError(WorkflowError):
    """A single processing step failed."""


class ProvenanceError(ReproError):
    """Provenance records are missing, cyclic, or inconsistent."""


class StatsError(ReproError):
    """A statistical operation received invalid inputs."""


class HistogramError(StatsError):
    """Histogram construction, filling, or arithmetic failed."""


class RivetError(ReproError):
    """Failure inside the RIVET-analogue analysis framework."""


class AnalysisNotFoundError(RivetError):
    """A requested analysis plugin is not registered in the repository."""


class RecastError(ReproError):
    """Failure inside the RECAST-analogue re-analysis framework."""


class BackendError(RecastError):
    """A RECAST back end failed to process a request."""


class ServiceError(RecastError):
    """Failure inside the RECAST request-scheduling service."""


class QuotaError(ServiceError):
    """A tenant exceeded its queue or in-flight quota."""


class LeaseError(ServiceError):
    """A lease was granted, committed, or released inconsistently."""


class HepDataError(ReproError):
    """Failure in the HepData-analogue reactions database."""


class RecordNotFoundError(HepDataError):
    """A requested HepData record does not exist."""


class PreservationError(ReproError):
    """Failure in the core preservation framework."""


class RequestStateError(RecastError, PreservationError):
    """A RECAST request was driven through an illegal state transition.

    Doubles as a :class:`PreservationError`: the request history is a
    preserved artifact, and an illegal edge would corrupt that record.
    """


class ArchiveError(PreservationError):
    """Archive storage/retrieval failure."""


class FixityError(ArchiveError):
    """Archived content failed its checksum verification."""


class MetadataError(PreservationError):
    """Metadata is missing required fields or fails validation."""


class ValidationError(PreservationError):
    """Re-execution of a preserved analysis did not reproduce its outputs."""


class MigrationError(PreservationError):
    """A platform migration broke a preserved artifact."""


class OutreachError(ReproError):
    """Failure in the outreach / Level-2 tooling."""


class ConversionError(OutreachError):
    """An AOD record could not be converted to the simplified format."""


class InterviewError(ReproError):
    """The data-interview template or a response to it is invalid."""


class MaturityError(InterviewError):
    """A maturity rating is outside its rubric scale."""


class ExperimentError(ReproError):
    """An experiment profile is unknown or inconsistent."""
