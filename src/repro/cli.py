"""Command-line interface: the library as a preservation tool.

Subcommands cover the day-to-day verbs of the paper's personas:

- ``generate`` / ``process`` — produce GEN and AOD datasets as
  self-documenting JSON-lines files;
- ``skim`` — apply a declarative skim spec (a JSON file) to an AOD file;
- ``convert-level2`` — the thin outreach converter;
- ``display`` — ASCII (or SVG) event display of a Level-2 file;
- ``validate-bundle`` — re-validate a preserved-analysis bundle;
- ``interview`` / ``table1`` / ``maturity`` — the curator reports.

Invoke as ``python -m repro.cli <command> ...`` or via the ``repro``
console script.
"""

from __future__ import annotations

import argparse
import functools
import json
import os
import sys
from pathlib import Path

from repro.errors import ReproError


def _add_trace_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the observability options shared by traced commands."""
    parser.add_argument(
        "--trace-out", metavar="PATH",
        help="write a run report (trace tree + metrics + environment) "
             "to this JSON file; inspect with 'repro trace PATH'")
    parser.add_argument(
        "--trace-deterministic", action="store_true",
        help="strip clocks and host identity from the run report so "
             "two identical runs produce byte-identical files")


def _trace_context(args, command: str):
    """(tracer, metrics) for a traced command, or ``(None, None)``.

    The trace id is derived from the command name alone, so span ids —
    and with --trace-deterministic the whole report — reproduce across
    invocations.
    """
    if not getattr(args, "trace_out", None):
        return None, None
    from repro.obs import MetricsRegistry, Tracer

    return Tracer(f"repro-{command}"), MetricsRegistry()


def _write_trace(args, tracer, metrics, provenance: dict | None = None) -> None:
    """Assemble and write the run report when tracing was requested."""
    if tracer is None:
        return
    from repro.obs import RunReport

    report = RunReport.build(
        tracer, metrics,
        deterministic=bool(getattr(args, "trace_deterministic", False)),
        provenance=provenance,
    )
    report.save(args.trace_out)
    print(f"wrote run report ({report.n_spans} spans) to "
          f"{args.trace_out}")


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="DASPOS reference implementation command line",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    generate = sub.add_parser("generate",
                              help="generate truth events to a GEN file")
    generate.add_argument("--process", default="z_to_mumu",
                          choices=("z_to_mumu", "z_to_ee", "w_to_munu",
                                   "higgs_4l", "qcd_dijets", "d0_to_kpi",
                                   "jpsi", "minbias"))
    generate.add_argument("--events", type=int, default=100)
    generate.add_argument("--seed", type=int, default=2013)
    generate.add_argument("--output", required=True)

    process = sub.add_parser(
        "process",
        help="run sim+digi+reco+AOD over a GEN file, write an AOD file",
    )
    process.add_argument("--input", required=True)
    process.add_argument("--output", required=True)
    process.add_argument("--run", type=int, default=1)
    process.add_argument("--global-tag", default="GT-FINAL")
    process.add_argument("--geometry", default="GPD",
                         choices=("GPD", "FWD"))
    process.add_argument("--seed", type=int, default=99)
    process.add_argument("--jobs", type=int, default=1,
                         help="worker processes for reconstruction "
                              "(default 1 = serial; -1 = all CPUs)")
    process.add_argument("--columnar", action="store_true",
                         help="reconstruct through the columnar "
                              "engine (bit-identical output; "
                              "takes precedence over --jobs)")
    _add_trace_arguments(process)

    campaign = sub.add_parser(
        "campaign",
        help="process a multi-run campaign to an AOD file",
    )
    campaign.add_argument("--name", default="campaign")
    campaign.add_argument("--process", dest="physics_process",
                          default="z_to_mumu",
                          choices=("z_to_mumu", "z_to_ee", "w_to_munu",
                                   "higgs_4l", "qcd_dijets", "d0_to_kpi",
                                   "jpsi", "minbias"))
    campaign.add_argument("--first-run", type=int, default=1)
    campaign.add_argument("--runs", type=int, default=8,
                          help="number of runs in the range")
    campaign.add_argument("--run-step", type=int, default=5,
                          help="run-number spacing (crosses the 10-run "
                               "IOV blocks of the default conditions)")
    campaign.add_argument("--sections", type=int, default=40,
                          help="certified lumi sections per run")
    campaign.add_argument("--events-per-section", type=float, default=0.2)
    campaign.add_argument("--max-events-per-run", type=int, default=50)
    campaign.add_argument("--global-tag", default="GT-FINAL")
    campaign.add_argument("--geometry", default="GPD",
                          choices=("GPD", "FWD"))
    campaign.add_argument("--seed", type=int, default=6000)
    campaign.add_argument("--jobs", type=int, default=1,
                          help="worker processes for the run sweep "
                               "(default 1 = serial; -1 = all CPUs)")
    campaign.add_argument("--columnar", action="store_true",
                          help="process each run through the columnar "
                               "engine (bit-identical output)")
    campaign.add_argument("--output", required=True,
                          help="AOD output file (JSON lines)")
    campaign.add_argument("--manifest",
                          help="also write the campaign conditions "
                               "manifest to this JSON file")
    _add_trace_arguments(campaign)

    skim = sub.add_parser("skim",
                          help="apply a JSON skim spec to an AOD file")
    skim.add_argument("--input", required=True)
    skim.add_argument("--spec", required=True)
    skim.add_argument("--output", required=True)

    convert = sub.add_parser("convert-level2",
                             help="convert an AOD file to Level-2")
    convert.add_argument("--input", required=True)
    convert.add_argument("--output", required=True)
    convert.add_argument("--energy-tev", type=float, default=8.0)

    display = sub.add_parser("display",
                             help="render one event of a Level-2 file")
    display.add_argument("--input", required=True)
    display.add_argument("--event", type=int, default=0)
    display.add_argument("--svg", help="write an SVG file instead of "
                                       "ASCII to stdout")
    display.add_argument("--geometry", default="GPD",
                         choices=("GPD", "FWD"))

    validate = sub.add_parser(
        "validate-bundle",
        help="re-validate a preserved-analysis bundle JSON file",
    )
    validate.add_argument("--bundle", required=True)

    lint = sub.add_parser(
        "lint",
        help="statically lint preserved artifacts (no re-execution)",
    )
    lint.add_argument("targets", nargs="*",
                      help="Python sources, artifact JSON documents, "
                           "archive directories, or directories of them")
    lint.add_argument("--bundled", action="store_true",
                      help="also lint the library's own bundled "
                           "analyses, conditions, catalogues, and "
                           "interview records")
    lint.add_argument("--format", choices=("text", "json"),
                      default="text", dest="output_format")
    lint.add_argument("--select", action="append", default=[],
                      metavar="PREFIX",
                      help="only report rules matching a code prefix "
                           "(repeatable, e.g. --select DAS1)")
    lint.add_argument("--ignore", action="append", default=[],
                      metavar="PREFIX",
                      help="drop rules matching a code prefix "
                           "(repeatable)")
    lint.add_argument("--suppress", action="append", default=[],
                      metavar="CODE:REASON",
                      help="suppress one rule code globally with a "
                           "mandatory reason (repeatable, e.g. "
                           "--suppress 'DAS204: library IO is the "
                           "point')")
    lint.add_argument("--deep", action="store_true",
                      help="also run the interprocedural pass: build "
                           "call/import graphs per target tree and "
                           "propagate impurity facts to Analysis "
                           "entry points (DAS2xx rules); implies the "
                           "parallel-safety (--par) and determinism "
                           "(--det) passes")
    lint.add_argument("--par", action="store_true",
                      help="also run the parallel/columnar safety "
                           "pass: escape analysis over pool workers, "
                           "RNG-stream discipline, numpy in-place/"
                           "aliasing checks, and equivalence-tier "
                           "order-sensitivity (DAS3xx rules)")
    lint.add_argument("--det", action="store_true",
                      help="also run the determinism/replay-safety "
                           "pass: escape analysis from declared "
                           "serialization roots to non-canonical "
                           "encodings, unordered iteration, clocks, "
                           "environment, and undisciplined "
                           "randomness (DAS4xx rules)")
    lint.add_argument("--list-rules", action="store_true",
                      help="print the rule catalogue and exit")
    _add_trace_arguments(lint)

    closure = sub.add_parser(
        "closure",
        help="extract the static dependency closure of an Analysis "
             "tree as a deterministic JSON manifest",
    )
    closure.add_argument("target",
                         help="Python source file or directory holding "
                              "the Analysis subclass(es)")
    closure.add_argument("--entry",
                         help="restrict to one Analysis subclass "
                              "(class name or metadata name)")
    closure.add_argument("--output",
                         help="write the manifest to this file instead "
                              "of stdout")
    closure.add_argument("--check-archive", metavar="DIR",
                         help="cross-check the closure against a "
                              "preservation archive directory "
                              "(DAS207-DAS209)")
    closure.add_argument("--check-repository", action="store_true",
                         help="cross-check the closure against the "
                              "standard analysis repository "
                              "(DAS210-DAS211)")
    closure.add_argument("--format", choices=("text", "json"),
                         default="text", dest="output_format",
                         help="findings report format when checks are "
                              "requested")

    trace = sub.add_parser(
        "trace",
        help="render the span tree of a run-report JSON file",
    )
    trace.add_argument("report", help="run report written by --trace-out "
                                      "(or extracted from an archive)")

    metrics = sub.add_parser(
        "metrics",
        help="render the metrics snapshot of a run-report JSON file",
    )
    metrics.add_argument("report", help="run report written by --trace-out")
    metrics.add_argument("--format", choices=("text", "json", "prom"),
                         default="text", dest="output_format",
                         help="'prom' renders Prometheus text "
                              "exposition (# HELP/# TYPE, escaped "
                              "labels, cumulative buckets)")

    health = sub.add_parser(
        "health",
        help="render a health report written by 'repro serve "
             "--health-out' (exit code: 0 ok, 1 degraded, 2 failing)",
    )
    health.add_argument("report", help="health report JSON file")
    health.add_argument("--format", choices=("text", "json"),
                        default="text", dest="output_format")

    profile = sub.add_parser(
        "profile",
        help="fold a run report's span tree into a self/cumulative-"
             "time profile",
    )
    profile.add_argument("report", help="run report written by "
                                        "--trace-out")
    profile.add_argument("--format", choices=("text", "json"),
                         default="text", dest="output_format")
    profile.add_argument("--collapsed", metavar="PATH",
                         help="also write collapsed-stack lines "
                              "(flamegraph.pl input) to this file")

    serve = sub.add_parser(
        "serve",
        help="replay a submission script through the RECAST request "
             "service (deterministic: same script, same event log)",
    )
    serve.add_argument("--script", metavar="PATH",
                       help="submission script JSON; omitted = the "
                            "built-in two-tenant demo script")
    serve.add_argument("--events", type=int, default=60,
                       help="events per back-end run of the demo "
                            "experiment")
    serve.add_argument("--toys", type=int, default=400,
                       help="limit-setting toys per back-end run")
    serve.add_argument("--seed", type=int, default=900,
                       help="back-end base seed")
    serve.add_argument("--jobs", type=int, default=1,
                       help="lease worker processes (default 1 = "
                            "serial; -1 = all CPUs)")
    serve.add_argument("--event-log", metavar="PATH",
                       help="write the request-event log (canonical "
                            "JSON lines) to this file")
    serve.add_argument("--health-out", metavar="PATH",
                       help="evaluate the service SLOs over the run's "
                            "windowed telemetry and write the health "
                            "report (canonical JSON) to this file; "
                            "inspect with 'repro health PATH'")
    serve.add_argument("--slo", metavar="PATH",
                       help="SLO spec JSON to evaluate instead of the "
                            "built-in service defaults")
    serve.add_argument("--telemetry-out", metavar="PATH",
                       help="write the windowed telemetry snapshot "
                            "(canonical JSON, deterministic form) to "
                            "this file")
    serve.add_argument("--write-script", metavar="PATH",
                       help="write the effective submission script to "
                            "this JSON file and exit (use to seed a "
                            "custom script from the demo)")
    _add_trace_arguments(serve)

    interview = sub.add_parser("interview",
                               help="print an experiment's interview")
    interview.add_argument("--experiment", required=True)

    sub.add_parser("table1", help="print the Table 1 outreach matrix")
    sub.add_parser("maturity", help="print the maturity-rating table")
    return parser


def _process_registry(name: str):
    from repro.generation import (
        DrellYanZ,
        DzeroProduction,
        HiggsToFourLeptons,
        JpsiToMuMu,
        MinimumBias,
        QCDDijets,
        WProduction,
    )

    registry = {
        "z_to_mumu": lambda: DrellYanZ(flavour="mu"),
        "z_to_ee": lambda: DrellYanZ(flavour="e"),
        "w_to_munu": lambda: WProduction(flavour="mu"),
        "higgs_4l": HiggsToFourLeptons,
        "qcd_dijets": QCDDijets,
        "d0_to_kpi": DzeroProduction,
        "jpsi": JpsiToMuMu,
        "minbias": MinimumBias,
    }
    return registry[name]()


def _cmd_generate(args) -> int:
    from repro.datamodel import DataTier, write_dataset
    from repro.generation import GeneratorConfig, ToyGenerator

    generator = ToyGenerator(GeneratorConfig(
        processes=[_process_registry(args.process)], seed=args.seed,
    ))
    header = write_dataset(
        args.output, f"gen-{args.process}", DataTier.GEN,
        (event.to_dict() for event in generator.stream(args.events)),
        provenance=generator.run_info.to_dict(),
    )
    print(f"wrote {header.n_events} GEN events to {args.output}")
    return 0


def _geometry_for(name: str):
    from repro.detector import forward_spectrometer, generic_lhc_detector

    return (generic_lhc_detector() if name == "GPD"
            else forward_spectrometer())


def _cmd_process(args) -> int:
    from repro.conditions import CachedConditionsView, default_conditions
    from repro.datamodel import (
        DataTier,
        DatasetReader,
        make_aod,
        write_dataset,
    )
    from repro.detector import DetectorSimulation, Digitizer
    from repro.generation import GenEvent
    from repro.reconstruction import Reconstructor
    from repro.runtime import ExecutionPolicy

    geometry = _geometry_for(args.geometry)
    simulation = DetectorSimulation(geometry, seed=args.seed)
    digitizer = Digitizer(geometry, run_number=args.run,
                          seed=args.seed + 1)
    reconstructor = Reconstructor(
        geometry,
        CachedConditionsView(default_conditions(), args.global_tag),
    )
    reader = DatasetReader(args.input)
    if reader.header.tier != DataTier.GEN:
        raise ReproError(
            f"{args.input} is a {reader.header.tier.value} file, "
            f"expected GEN"
        )
    # Simulation and digitisation consume one sequential RNG stream, so
    # they stay serial; reconstruction is pure per event and fans out.
    raws = [digitizer.digitize(simulation.simulate(
                GenEvent.from_dict(record)))
            for record in reader.records()]
    policy = ExecutionPolicy.from_jobs(args.jobs)
    tracer, obs_metrics = _trace_context(args, "process")
    if getattr(args, "columnar", False):
        recos = reconstructor.reconstruct_batch(
            raws, tracer=tracer, metrics=obs_metrics)
    else:
        recos = reconstructor.reconstruct_many(
            raws, policy, tracer=tracer, metrics=obs_metrics)
    aods = [make_aod(reco) for reco in recos]
    header = write_dataset(
        args.output, f"aod-run{args.run}", DataTier.AOD,
        (aod.to_dict() for aod in aods),
        provenance={
            "input": str(args.input),
            "reconstruction": reconstructor.describe(),
            "externals": reconstructor.external_dependencies(),
        },
    )
    _write_trace(args, tracer, obs_metrics, provenance={
        "command": "process",
        "input": str(args.input),
        "output": str(args.output),
        "dataset": header.dataset_name,
        "global_tag": args.global_tag,
    })
    print(f"wrote {header.n_events} AOD events to {args.output}")
    return 0


def _cmd_campaign(args) -> int:
    from repro.conditions import default_conditions
    from repro.datamodel import (
        DataTier,
        GoodRunList,
        RunRecord,
        RunRegistry,
        write_dataset,
    )
    from repro.generation import GeneratorConfig, ToyGenerator
    from repro.runtime import ExecutionPolicy
    from repro.workflow import ProcessingCampaign

    if args.runs < 1:
        raise ReproError(f"--runs must be >= 1, got {args.runs}")
    registry = RunRegistry(args.name)
    good_runs = GoodRunList(f"GRL-{args.name}")
    run_numbers = [args.first_run + index * args.run_step
                   for index in range(args.runs)]
    for run_number in run_numbers:
        registry.add(RunRecord(run_number, args.sections, 0.5))
        good_runs.certify(run_number, 1, args.sections)

    campaign = ProcessingCampaign(
        name=args.name,
        geometry=_geometry_for(args.geometry),
        conditions=default_conditions(),
        global_tag=args.global_tag,
        generator=ToyGenerator(GeneratorConfig(
            processes=[_process_registry(args.physics_process)],
            seed=args.seed,
        )),
        events_per_section=args.events_per_section,
        max_events_per_run=args.max_events_per_run,
        seed=args.seed,
        columnar=getattr(args, "columnar", False),
    )
    policy = ExecutionPolicy.from_jobs(args.jobs)
    tracer, obs_metrics = _trace_context(args, "campaign")
    results = campaign.process(registry, good_runs, policy=policy,
                               tracer=tracer, metrics=obs_metrics)
    aods = campaign.all_aods()
    header = write_dataset(
        args.output, f"aod-{args.name}", DataTier.AOD,
        (aod.to_dict() for aod in aods),
        provenance={
            "campaign": campaign.describe(),
            "execution": policy.describe(),
            "conditions_manifest": campaign.conditions_manifest(),
        },
    )
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as handle:
            json.dump(campaign.conditions_manifest(), handle, indent=2,
                      sort_keys=True)
            handle.write("\n")
        print(f"wrote conditions manifest to {args.manifest}")
    _write_trace(args, tracer, obs_metrics, provenance={
        "command": "campaign",
        "campaign": campaign.name,
        "global_tag": campaign.global_tag,
        "output": str(args.output),
        "runs": [str(run_number) for run_number in sorted(results)],
        "conditions_manifest": campaign.conditions_manifest(),
    })
    print(f"processed {len(results)} runs "
          f"({policy.mode}, {policy.n_jobs} jobs): "
          f"{header.n_events} AOD events -> {args.output}")
    return 0


def _read_aods(path: str):
    from repro.datamodel import AODEvent, DataTier, DatasetReader

    reader = DatasetReader(path)
    if reader.header.tier != DataTier.AOD:
        raise ReproError(
            f"{path} is a {reader.header.tier.value} file, expected AOD"
        )
    return [AODEvent.from_dict(record) for record in reader.records()]


def _cmd_skim(args) -> int:
    from repro.datamodel import DataTier, SkimSpec, write_dataset

    with open(args.spec, "r", encoding="utf-8") as handle:
        spec = SkimSpec.from_dict(json.load(handle))
    aods = _read_aods(args.input)
    selected = spec.apply(aods)
    header = write_dataset(
        args.output, f"skim-{spec.name}", DataTier.AOD,
        (aod.to_dict() for aod in selected),
        provenance={"skim": spec.to_dict(), "input": str(args.input)},
    )
    print(f"skim {spec.name!r}: {header.n_events}/{len(aods)} events "
          f"-> {args.output}")
    return 0


def _cmd_convert_level2(args) -> int:
    from repro.datamodel import DataTier, write_dataset
    from repro.outreach import Level2Converter

    converter = Level2Converter(collision_energy_tev=args.energy_tev)
    aods = _read_aods(args.input)
    level2 = converter.convert_many(aods)
    header = write_dataset(
        args.output, "level2", DataTier.LEVEL2,
        (event.to_dict() for event in level2),
        provenance=converter.describe(),
    )
    stats = converter.stats
    print(f"converted {header.n_events} events -> {args.output} "
          f"(reduction {stats.reduction_factor:.2f}x)")
    return 0


def _cmd_display(args) -> int:
    from repro.datamodel import DataTier, DatasetReader
    from repro.outreach import (
        EventDisplayRecord,
        render_event_svg,
        render_lego_ascii,
    )
    from repro.outreach.format import Level2Event

    reader = DatasetReader(args.input)
    if reader.header.tier != DataTier.LEVEL2:
        raise ReproError(
            f"{args.input} is a {reader.header.tier.value} file, "
            f"expected LEVEL2"
        )
    records = reader.read_all()
    if not 0 <= args.event < len(records):
        raise ReproError(
            f"event index {args.event} out of range 0.."
            f"{len(records) - 1}"
        )
    event = Level2Event.from_dict(records[args.event])
    if args.svg:
        record = EventDisplayRecord.build(_geometry_for(args.geometry),
                                          event)
        Path(args.svg).write_text(render_event_svg(record.to_dict()),
                                  encoding="utf-8")
        print(f"wrote {args.svg}")
    else:
        print(render_lego_ascii(event))
    return 0


def _cmd_validate_bundle(args) -> int:
    from repro.core import PreservedAnalysisBundle, revalidate

    with open(args.bundle, "r", encoding="utf-8") as handle:
        bundle = PreservedAnalysisBundle.from_dict(json.load(handle))
    outcome = revalidate(bundle)
    print(outcome.summary())
    return 0 if outcome.passed else 1


def _parse_suppressions(entries: list[str]) -> dict:
    """``CODE:REASON`` pairs from the command line, validated."""
    suppressions: dict[str, str] = {}
    for entry in entries:
        code, sep, reason = entry.partition(":")
        if not sep or not code.strip() or not reason.strip():
            raise ReproError(
                f"--suppress needs CODE:REASON, got {entry!r}"
            )
        suppressions[code.strip()] = reason.strip()
    return suppressions


def _cmd_lint(args) -> int:
    from repro.lint import (
        LintConfig,
        LintSession,
        lint_bundled_artifacts,
        lint_path,
        lint_tree_deep,
        lint_tree_det,
        lint_tree_par,
        render_json,
        render_rule_catalog,
        render_text,
    )

    if args.list_rules:
        print(render_rule_catalog())
        return 0
    if not args.targets and not args.bundled:
        raise ReproError(
            "lint needs at least one target path (or --bundled)"
        )
    import time

    config = LintConfig(select=tuple(args.select),
                        ignore=tuple(args.ignore),
                        suppressions=_parse_suppressions(args.suppress))
    tracer, obs_metrics = _trace_context(args, "lint")
    session = LintSession(config, tracer=tracer, metrics=obs_metrics)

    def lint_target(label: str, *passes) -> None:
        """One target under its span, timed into the histogram."""
        with session.obs.span("lint.target", target=label) as span:
            started = time.monotonic()
            before = len(session.report().findings)
            for lint_pass in passes:
                session.extend(lint_pass())
            span.set("n_findings",
                     len(session.report().findings) - before)
        if obs_metrics is not None:
            obs_metrics.histogram("lint.target_seconds").observe(
                time.monotonic() - started)

    with session.obs.span("lint.run", n_targets=len(args.targets),
                          bundled=bool(args.bundled)):
        for target in args.targets:
            if not Path(target).exists():
                raise ReproError(
                    f"lint target {target!r} does not exist"
                )
            passes = [functools.partial(lint_path, target)]
            is_tree = (Path(target).is_dir()
                       or Path(target).suffix == ".py")
            if args.deep and is_tree:
                passes.append(functools.partial(lint_tree_deep, target))
            if (args.par or args.deep) and is_tree:
                passes.append(functools.partial(lint_tree_par, target))
            if (args.det or args.deep) and is_tree:
                passes.append(functools.partial(lint_tree_det, target))
            lint_target(target, *passes)
        if args.bundled:
            passes = [lint_bundled_artifacts]
            if args.deep or args.par or args.det:
                import repro.rivet.standard_analyses as standard_analyses
                if args.deep:
                    passes.append(functools.partial(
                        lint_tree_deep, standard_analyses.__file__))
                if args.deep or args.par:
                    passes.append(functools.partial(
                        lint_tree_par, standard_analyses.__file__))
                if args.deep or args.det:
                    passes.append(functools.partial(
                        lint_tree_det, standard_analyses.__file__))
            lint_target("<bundled>", *passes)
    report = session.report()
    _write_trace(args, tracer, obs_metrics, provenance={
        "command": "lint",
        "targets": [str(target) for target in args.targets],
        "bundled": bool(args.bundled),
        "exit_code": report.exit_code,
    })
    if args.output_format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code


def _cmd_closure(args) -> int:
    from repro.lint import (
        LintReport,
        check_manifest_against_archive,
        check_manifest_against_repository,
        extract_closure,
        render_json,
        render_text,
    )

    if not Path(args.target).exists():
        raise ReproError(
            f"closure target {args.target!r} does not exist"
        )
    manifest = extract_closure(args.target, entry=args.entry)
    payload = manifest.to_json_bytes()
    if args.output:
        Path(args.output).write_bytes(payload)

    checking = bool(args.check_archive or args.check_repository)
    if not checking:
        if not args.output:
            # The manifest itself is the output: deterministic bytes,
            # so two runs over the same tree are byte-identical.
            sys.stdout.write(payload.decode("utf-8"))
        else:
            print(f"wrote closure manifest to {args.output}")
        return 0

    findings = []
    if args.check_archive:
        findings.extend(check_manifest_against_archive(
            manifest, args.check_archive))
    if args.check_repository:
        from repro.rivet.standard_analyses import standard_repository

        findings.extend(check_manifest_against_repository(
            manifest, standard_repository()))
    report = LintReport.from_findings(findings)
    if args.output:
        print(f"wrote closure manifest to {args.output}")
    if args.output_format == "json":
        print(render_json(report))
    else:
        print(render_text(report))
    return report.exit_code


def _cmd_trace(args) -> int:
    from repro.obs import RunReport, render_trace

    print(render_trace(RunReport.load(args.report)))
    return 0


def _cmd_metrics(args) -> int:
    from repro.obs import RunReport, render_metrics, render_prometheus

    report = RunReport.load(args.report)
    if args.output_format == "json":
        print(json.dumps(report.metrics, indent=1, sort_keys=True))
    elif args.output_format == "prom":
        sys.stdout.write(render_prometheus(report.metrics))
    else:
        print(render_metrics(report.metrics))
    return 0


def _cmd_health(args) -> int:
    from repro.obs import HealthReport, render_health

    report = HealthReport.load(args.report)
    if args.output_format == "json":
        sys.stdout.write(report.to_json_bytes().decode("utf-8"))
    else:
        print(render_health(report))
    return report.exit_code()


def _cmd_profile(args) -> int:
    from repro.obs import RunReport, SpanProfile, render_profile

    profile = SpanProfile.from_report(RunReport.load(args.report))
    if args.collapsed:
        Path(args.collapsed).write_text(profile.collapsed(),
                                        encoding="utf-8")
        # Status goes to stderr: stdout may be the JSON document.
        print(f"wrote {len(profile.nodes)} collapsed stack(s) to "
              f"{args.collapsed}", file=sys.stderr)
    if args.output_format == "json":
        sys.stdout.write(profile.to_json_text())
    else:
        print(render_profile(profile))
    return 0


def _cmd_serve(args) -> int:
    from repro.runtime import ExecutionPolicy
    from repro.service import demo_api, demo_script, load_script, run_script

    if args.write_script:
        script = demo_script()
        with open(args.write_script, "w", encoding="utf-8") as handle:
            json.dump(script, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote demo submission script to {args.write_script}")
        return 0

    script = (load_script(args.script) if args.script
              else demo_script())
    api = demo_api(n_events=args.events, n_limit_toys=args.toys,
                   seed=args.seed)
    policy = ExecutionPolicy.from_jobs(args.jobs)
    tracer, obs_metrics = _trace_context(args, "serve")
    service, tickets = run_script(api, script, policy=policy,
                                  tracer=tracer, metrics=obs_metrics)

    for ticket in tickets:
        request = api.get_request(ticket.request_id)
        print(f"{ticket.request_id}  {ticket.status:<10}  "
              f"-> {request.status.value}")
    stats = service.cache.stats
    print(f"served {len(tickets)} submission(s): "
          f"{len(service.events)} events, "
          f"cache hit rate {stats.hit_rate:.2f}")
    if args.event_log:
        Path(args.event_log).write_bytes(service.event_log_bytes())
        print(f"wrote request-event log to {args.event_log}")
    if args.telemetry_out:
        Path(args.telemetry_out).write_bytes(
            service.telemetry.to_json_bytes(deterministic=True))
        print(f"wrote telemetry snapshot to {args.telemetry_out}")
    if args.health_out:
        from repro.obs import SLOSpec, evaluate_slo
        from repro.service import default_service_slo

        spec = (SLOSpec.load(args.slo) if args.slo
                else default_service_slo())
        health = evaluate_slo(
            spec, service.telemetry.snapshot(deterministic=True))
        health.save(args.health_out)
        print(f"wrote health report ({health.verdict}) to "
              f"{args.health_out}")
    _write_trace(args, tracer, obs_metrics, provenance={
        "command": "serve",
        "script": str(args.script) if args.script else "<demo>",
        "n_submissions": len(tickets),
        "n_events": len(service.events),
    })
    return 0


def _cmd_interview(args) -> int:
    from repro.experiments import get_experiment
    from repro.interview import response_for_experiment
    from repro.interview.report import interview_report

    response = response_for_experiment(get_experiment(args.experiment))
    print(interview_report(response))
    return 0


def _cmd_table1(args) -> int:
    from repro.experiments import lhc_experiments, render_table1

    print(render_table1(lhc_experiments()))
    return 0


def _cmd_maturity(args) -> int:
    from repro.experiments import all_experiments
    from repro.interview.report import render_maturity_table

    print(render_maturity_table(all_experiments()))
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "process": _cmd_process,
    "campaign": _cmd_campaign,
    "skim": _cmd_skim,
    "convert-level2": _cmd_convert_level2,
    "display": _cmd_display,
    "validate-bundle": _cmd_validate_bundle,
    "lint": _cmd_lint,
    "closure": _cmd_closure,
    "trace": _cmd_trace,
    "metrics": _cmd_metrics,
    "health": _cmd_health,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "interview": _cmd_interview,
    "table1": _cmd_table1,
    "maturity": _cmd_maturity,
}


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return _COMMANDS[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # Output piped into a pager/head that exited early; not an
        # error in the command itself. Detach stdout so the interpreter
        # does not raise again while flushing at shutdown.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
