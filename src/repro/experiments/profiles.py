"""Structured experiment profiles."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.errors import ExperimentError


class ConstantsHandling(enum.Enum):
    """How an experiment ships calibration constants to jobs."""

    DATABASE = "database"
    TEXT_FILES = "text files"


class PostAODCommonality(enum.Enum):
    """How uniform the post-AOD analysis formats are across groups."""

    HIGH = "high"
    MEDIUM = "medium"
    LOW = "low"


class DataPolicyStatus(enum.Enum):
    """Status of the public data-release policy (Section 4)."""

    APPROVED = "approved"
    UNDER_DISCUSSION = "under discussion"
    NONE = "none"


@dataclass(frozen=True)
class DataPolicy:
    """Public-data-release policy of one experiment."""

    status: DataPolicyStatus
    year: int | None = None

    def describe(self) -> str:
        """One-line rendering for the Section 4 listing."""
        if self.status == DataPolicyStatus.APPROVED:
            return f"approved in {self.year}"
        if self.status == DataPolicyStatus.UNDER_DISCUSSION:
            return f"under discussion ({self.year})"
        return "no public policy"


@dataclass(frozen=True)
class OutreachProfile:
    """The Table 1 row-set for one experiment."""

    event_displays: tuple[str, ...]
    display_technology: str
    geometry_format: str
    browser_tools: tuple[str, ...]
    data_formats: tuple[str, ...]
    self_documenting: str  # "yes", "partial", "no", or "unknown"
    masterclass_uses: tuple[str, ...]
    comments: str = ""

    def __post_init__(self) -> None:
        if self.self_documenting not in ("yes", "partial", "no", "unknown"):
            raise ExperimentError(
                f"self_documenting must be yes/partial/no/unknown, got "
                f"{self.self_documenting!r}"
            )


@dataclass(frozen=True)
class ExperimentProfile:
    """Everything the workshop recorded about one experiment."""

    name: str
    collider: str
    detector_type: str  # "general-purpose", "forward", "b-factory", ...
    is_lhc: bool
    outreach: OutreachProfile | None
    constants_handling: ConstantsHandling
    post_aod_commonality: PostAODCommonality
    data_policy: DataPolicy
    #: Named analysis-group derivation formats (the post-AOD variety).
    group_formats: tuple[str, ...] = ()
    #: Interview evidence used by the maturity assessment (booleans and
    #: small scalars keyed by evidence name).
    interview_evidence: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.name:
            raise ExperimentError("experiment name must be non-empty")
