"""Regeneration of Table 1: the outreach feature matrix.

The matrix is emitted from the experiment profiles, and — because this
library actually *implements* a common outreach stack — each capability
row can be cross-checked against running code via
:func:`verify_outreach_capabilities`.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.experiments.profiles import ExperimentProfile

#: Table 1 row labels in the paper's order.
TABLE1_ROWS = (
    "Event Display(s)",
    "display technology",
    "format of Geometry description",
    "Data Browser/Histogrammer",
    "Data Format(s)",
    "self-documenting?",
    "Master Class uses",
    "Comments",
)


def _row_value(profile: ExperimentProfile, row: str) -> str:
    outreach = profile.outreach
    if outreach is None:
        raise ExperimentError(
            f"{profile.name} has no outreach profile (not in Table 1)"
        )
    if row == "Event Display(s)":
        return ", ".join(outreach.event_displays)
    if row == "display technology":
        return outreach.display_technology
    if row == "format of Geometry description":
        return outreach.geometry_format
    if row == "Data Browser/Histogrammer":
        return ", ".join(outreach.browser_tools)
    if row == "Data Format(s)":
        return ", ".join(outreach.data_formats)
    if row == "self-documenting?":
        return outreach.self_documenting
    if row == "Master Class uses":
        return ", ".join(outreach.masterclass_uses)
    if row == "Comments":
        return outreach.comments
    raise ExperimentError(f"unknown Table 1 row {row!r}")


def outreach_feature_matrix(
    profiles: list[ExperimentProfile],
) -> dict[str, dict[str, str]]:
    """The Table 1 matrix: row label -> {experiment -> value}."""
    matrix: dict[str, dict[str, str]] = {}
    for row in TABLE1_ROWS:
        matrix[row] = {profile.name: _row_value(profile, row)
                       for profile in profiles}
    return matrix


def render_table1(profiles: list[ExperimentProfile],
                  column_width: int = 26) -> str:
    """Plain-text rendering of Table 1."""
    matrix = outreach_feature_matrix(profiles)
    names = [profile.name for profile in profiles]
    header = "".ljust(column_width) + "".join(
        name.ljust(column_width) for name in names
    )
    lines = [header, "-" * len(header)]
    for row in TABLE1_ROWS:
        cells = [matrix[row][name][:column_width - 2].ljust(column_width)
                 for name in names]
        lines.append(row[:column_width - 2].ljust(column_width)
                     + "".join(cells))
    return "\n".join(lines)


def diversity_report(profiles: list[ExperimentProfile]) -> dict:
    """Quantifies the "no common formats" conclusion.

    Counts distinct values per Table 1 row; a row with one distinct value
    would indicate a de-facto standard — the paper found none.
    """
    matrix = outreach_feature_matrix(profiles)
    report = {}
    for row in ("display technology", "format of Geometry description",
                "Data Format(s)"):
        values = set(matrix[row].values())
        report[row] = {
            "n_distinct": len(values),
            "n_experiments": len(profiles),
            "values": sorted(values),
        }
    report["any_common_format"] = any(
        entry["n_distinct"] == 1
        for key, entry in report.items()
        if isinstance(entry, dict)
    )
    return report


def verify_outreach_capabilities(profile: ExperimentProfile) -> dict:
    """Cross-check a profile's Table 1 claims against this library.

    For every master-class use the profile lists, report whether the
    repro outreach stack implements an equivalent exercise; likewise for
    display and format capabilities. This is the "common infrastructure"
    counter-demonstration: one stack covering all four columns.
    """
    implemented_exercises = {
        "W": "WPathExercise",
        "Z": "ZPathExercise",
        "Higgs": "HiggsHuntExercise",
        "D lifetime": "DLifetimeExercise",
        "V0": "V0Exercise",
    }
    coverage = {}
    outreach = profile.outreach
    if outreach is None:
        raise ExperimentError(f"{profile.name} has no outreach profile")
    for use in outreach.masterclass_uses:
        matched = None
        for keyword, exercise in implemented_exercises.items():
            if keyword.lower() in use.lower():
                matched = exercise
                break
        coverage[use] = matched
    return {
        "experiment": profile.name,
        "masterclass_coverage": coverage,
        "n_covered": sum(1 for v in coverage.values() if v),
        "n_uses": len(coverage),
        "display_supported": True,   # EventDisplayRecord + lego renderer
        "self_documenting_format": True,  # Level-2 format embeds its docs
        "geometry_export": "JSON",
    }
