"""Experiment profiles: the workshop's empirical inputs as data.

The workshop collected, for each experiment, its outreach technology
stack (Table 1), its processing/analysis workflow, its constants-handling
strategy, and its data-policy status. This package encodes those findings
as structured profiles so the benchmarks can *regenerate* the paper's
tables and quantify its comparative claims (workflow similarity, the
ALICE constants outlier, post-AOD divergence).
"""

from repro.experiments.profiles import (
    DataPolicy,
    ExperimentProfile,
    OutreachProfile,
)
from repro.experiments.registry import (
    all_experiments,
    get_experiment,
    lhc_experiments,
)
from repro.experiments.workflows import (
    WorkflowGraph,
    build_workflow,
    post_aod_subgraph,
    pre_aod_subgraph,
    similarity_matrix,
    workflow_similarity,
)
from repro.experiments.outreach_matrix import (
    diversity_report,
    outreach_feature_matrix,
    render_table1,
    verify_outreach_capabilities,
)

__all__ = [
    "ExperimentProfile",
    "OutreachProfile",
    "DataPolicy",
    "all_experiments",
    "lhc_experiments",
    "get_experiment",
    "WorkflowGraph",
    "build_workflow",
    "workflow_similarity",
    "similarity_matrix",
    "pre_aod_subgraph",
    "post_aod_subgraph",
    "diversity_report",
    "outreach_feature_matrix",
    "render_table1",
    "verify_outreach_capabilities",
]
