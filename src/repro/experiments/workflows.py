"""Declarative experiment workflow graphs and their similarity.

Section 3.2's finding — "the data processing and analysis workflows of
the modern high energy physics experiments are remarkably similar",
differing mainly in constants handling and in the *post-AOD* variety —
becomes quantitative here: each experiment's workflow is a small labelled
DAG, and :func:`workflow_similarity` measures labelled-graph overlap, so
the claim can be checked (and is, in the C-WF benchmark).
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

from repro.errors import ExperimentError
from repro.experiments.profiles import (
    ConstantsHandling,
    ExperimentProfile,
    PostAODCommonality,
)

#: Node kinds appearing in workflow graphs.
NODE_KINDS = ("source", "processing", "dataset", "external")

#: Tiers considered "pre-AOD" for the similarity split.
_PRE_AOD_STAGES = frozenset({
    "detector", "raw", "reconstruction", "reco", "aod_production", "aod",
    "conditions", "constants_files", "mc_generation", "gen", "simulation",
    "sim",
})


@dataclass(frozen=True)
class WorkflowNode:
    """One node of an experiment workflow graph."""

    name: str
    kind: str
    stage: str

    def __post_init__(self) -> None:
        if self.kind not in NODE_KINDS:
            raise ExperimentError(
                f"node {self.name!r} has unknown kind {self.kind!r}"
            )

    @property
    def label(self) -> tuple[str, str]:
        """The (kind, stage) label used for graph matching.

        Node *names* are experiment-specific ("Stripping", "D3PD maker");
        labels capture their semantic role, which is what "similar
        workflow" means.
        """
        return (self.kind, self.stage)


class WorkflowGraph:
    """A labelled DAG describing one experiment's processing workflow."""

    def __init__(self, experiment: str) -> None:
        self.experiment = experiment
        self._graph = nx.DiGraph()
        self._nodes: dict[str, WorkflowNode] = {}

    def add_node(self, name: str, kind: str, stage: str) -> None:
        """Add one workflow node; names unique per graph."""
        if name in self._nodes:
            raise ExperimentError(
                f"{self.experiment}: duplicate workflow node {name!r}"
            )
        node = WorkflowNode(name=name, kind=kind, stage=stage)
        self._nodes[name] = node
        self._graph.add_node(name)

    def add_edge(self, source: str, target: str) -> None:
        """Add a produces/consumes edge."""
        for name in (source, target):
            if name not in self._nodes:
                raise ExperimentError(
                    f"{self.experiment}: unknown workflow node {name!r}"
                )
        self._graph.add_edge(source, target)
        if not nx.is_directed_acyclic_graph(self._graph):
            self._graph.remove_edge(source, target)
            raise ExperimentError(
                f"{self.experiment}: edge {source!r} -> {target!r} "
                f"creates a cycle"
            )

    def node(self, name: str) -> WorkflowNode:
        """Look up one node."""
        try:
            return self._nodes[name]
        except KeyError:
            raise ExperimentError(
                f"{self.experiment}: unknown node {name!r}"
            ) from None

    def nodes(self) -> list[WorkflowNode]:
        """All nodes, name-sorted."""
        return [self._nodes[name] for name in sorted(self._nodes)]

    def label_multiset(self) -> dict[tuple[str, str], int]:
        """Count of nodes per semantic label."""
        counts: dict[tuple[str, str], int] = {}
        for node in self._nodes.values():
            counts[node.label] = counts.get(node.label, 0) + 1
        return counts

    def edge_labels(self) -> set[tuple[tuple[str, str], tuple[str, str]]]:
        """The set of (source label, target label) pairs."""
        return {
            (self._nodes[source].label, self._nodes[target].label)
            for source, target in self._graph.edges
        }

    def __len__(self) -> int:
        return len(self._nodes)

    def to_dot(self) -> str:
        """Graphviz DOT rendering of the workflow (for documentation).

        Node shapes encode the kind: boxes for processing, ellipses for
        datasets, diamonds for externals, and a point for the source.
        """
        shapes = {"processing": "box", "dataset": "ellipse",
                  "external": "diamond", "source": "point"}
        lines = [f'digraph "{self.experiment}" {{',
                 "  rankdir=LR;"]
        for node in self.nodes():
            shape = shapes[node.kind]
            lines.append(
                f'  "{node.name}" [shape={shape}, '
                f'label="{node.name}\\n({node.stage})"];'
            )
        for source, target in sorted(self._graph.edges):
            lines.append(f'  "{source}" -> "{target}";')
        lines.append("}")
        return "\n".join(lines)

    def subgraph(self, keep_stages: frozenset[str],
                 invert: bool = False) -> "WorkflowGraph":
        """A copy restricted to (or excluding) a set of stages."""
        result = WorkflowGraph(self.experiment)
        for node in self._nodes.values():
            selected = node.stage in keep_stages
            if invert:
                selected = not selected
            if selected:
                result.add_node(node.name, node.kind, node.stage)
        for source, target in self._graph.edges:
            if source in result._nodes and target in result._nodes:
                result.add_edge(source, target)
        return result


def build_workflow(profile: ExperimentProfile) -> WorkflowGraph:
    """Build the workflow graph for one experiment profile.

    The pre-AOD spine is identical for everyone (the paper's "remarkably
    similar" core); the differences enter exactly where the paper says:
    the constants-handling node and the post-AOD group formats.
    """
    graph = WorkflowGraph(profile.name)
    # The common spine.
    graph.add_node("detector", "source", "detector")
    graph.add_node("raw", "dataset", "raw")
    graph.add_node("mc_generation", "processing", "mc_generation")
    graph.add_node("simulation", "processing", "simulation")
    graph.add_node("reconstruction", "processing", "reconstruction")
    graph.add_node("reco_data", "dataset", "reco")
    graph.add_node("aod_production", "processing", "aod_production")
    graph.add_node("aod", "dataset", "aod")
    graph.add_edge("detector", "raw")
    graph.add_edge("mc_generation", "simulation")
    graph.add_edge("simulation", "raw")
    graph.add_edge("raw", "reconstruction")
    graph.add_edge("reconstruction", "reco_data")
    graph.add_edge("reco_data", "aod_production")
    graph.add_edge("aod_production", "aod")
    # Constants handling: database access vs shipped text files.
    if profile.constants_handling == ConstantsHandling.DATABASE:
        graph.add_node("conditions_db", "external", "conditions")
        graph.add_edge("conditions_db", "reconstruction")
    else:
        graph.add_node("constants_files", "dataset", "constants_files")
        graph.add_edge("constants_files", "reconstruction")
    # Post-AOD: this is where the paper locates "the most variety of
    # approaches", so the graph structure genuinely differs by the
    # experiment's commonality class.
    first_ntuple = None
    if profile.post_aod_commonality == PostAODCommonality.HIGH:
        # CMS-style: one centrally maintained common format; groups
        # derive ntuples from it.
        graph.add_node("common_skim", "processing", "common_skim")
        graph.add_node("common_format", "dataset", "common_format")
        graph.add_edge("aod", "common_skim")
        graph.add_edge("common_skim", "common_format")
        for group_format in profile.group_formats or ("default",):
            ntuple_name = f"ntuple_{group_format}"
            graph.add_node(ntuple_name, "dataset", "ntuple")
            graph.add_edge("common_format", ntuple_name)
            if first_ntuple is None:
                first_ntuple = ntuple_name
    elif profile.post_aod_commonality == PostAODCommonality.LOW:
        # ATLAS-style: every group maintains its own derivation chain
        # (skim -> group format -> slim -> ntuple).
        for group_format in profile.group_formats or ("default",):
            skim_name = f"skim_{group_format}"
            dataset_name = f"group_{group_format}"
            slim_name = f"slim_{group_format}"
            ntuple_name = f"ntuple_{group_format}"
            graph.add_node(skim_name, "processing", "group_skim")
            graph.add_node(dataset_name, "dataset", "group_format")
            graph.add_node(slim_name, "processing", "group_slim")
            graph.add_node(ntuple_name, "dataset", "ntuple")
            graph.add_edge("aod", skim_name)
            graph.add_edge(skim_name, dataset_name)
            graph.add_edge(dataset_name, slim_name)
            graph.add_edge(slim_name, ntuple_name)
            if first_ntuple is None:
                first_ntuple = ntuple_name
    else:
        # Medium commonality (LHCb stripping, ALICE trains, CDF):
        # shared skim pass, then per-group ntuples.
        for group_format in profile.group_formats or ("default",):
            skim_name = f"skim_{group_format}"
            dataset_name = f"group_{group_format}"
            ntuple_name = f"ntuple_{group_format}"
            graph.add_node(skim_name, "processing", "skimslim")
            graph.add_node(dataset_name, "dataset", "group_format")
            graph.add_node(ntuple_name, "dataset", "ntuple")
            graph.add_edge("aod", skim_name)
            graph.add_edge(skim_name, dataset_name)
            graph.add_edge(dataset_name, ntuple_name)
            if first_ntuple is None:
                first_ntuple = ntuple_name
    # The final analyst scripts — the stage the paper says only direct
    # code preservation can capture.
    graph.add_node("analyst_scripts", "processing", "final_analysis")
    graph.add_node("publication", "dataset", "publication")
    graph.add_edge(first_ntuple, "analyst_scripts")
    graph.add_edge("analyst_scripts", "publication")
    return graph


def workflow_similarity(graph1: WorkflowGraph,
                        graph2: WorkflowGraph) -> float:
    """Labelled-graph similarity in [0, 1].

    The mean of (a) the multiset-Jaccard overlap of node labels and
    (b) the Jaccard overlap of labelled edges. Identical semantic
    structure scores 1 regardless of experiment-specific node names.
    """
    labels1 = graph1.label_multiset()
    labels2 = graph2.label_multiset()
    all_labels = set(labels1) | set(labels2)
    if not all_labels:
        raise ExperimentError("cannot compare two empty workflows")
    intersection = sum(min(labels1.get(label, 0), labels2.get(label, 0))
                       for label in all_labels)
    union = sum(max(labels1.get(label, 0), labels2.get(label, 0))
                for label in all_labels)
    node_score = intersection / union if union else 1.0

    edges1 = graph1.edge_labels()
    edges2 = graph2.edge_labels()
    if edges1 or edges2:
        edge_score = len(edges1 & edges2) / len(edges1 | edges2)
    else:
        edge_score = 1.0
    return 0.5 * (node_score + edge_score)


def pre_aod_subgraph(graph: WorkflowGraph) -> WorkflowGraph:
    """The workflow restricted to the central-production stages."""
    return graph.subgraph(_PRE_AOD_STAGES)


def post_aod_subgraph(graph: WorkflowGraph) -> WorkflowGraph:
    """The workflow restricted to the analysis (post-AOD) stages."""
    return graph.subgraph(_PRE_AOD_STAGES, invert=True)


def similarity_matrix(profiles: list[ExperimentProfile],
                      region: str = "full") -> dict[tuple[str, str], float]:
    """Pairwise similarities for a set of experiments.

    ``region`` selects ``"full"``, ``"pre_aod"``, or ``"post_aod"``.
    """
    selector = {
        "full": lambda graph: graph,
        "pre_aod": pre_aod_subgraph,
        "post_aod": post_aod_subgraph,
    }
    if region not in selector:
        raise ExperimentError(
            f"unknown region {region!r}; use full/pre_aod/post_aod"
        )
    graphs = {profile.name: selector[region](build_workflow(profile))
              for profile in profiles}
    matrix = {}
    names = sorted(graphs)
    for i, name1 in enumerate(names):
        for name2 in names[i + 1:]:
            matrix[(name1, name2)] = workflow_similarity(
                graphs[name1], graphs[name2]
            )
    return matrix
