"""The experiment registry: Table 1 plus workflow/interview context.

Outreach rows transcribe Table 1 of the workshop report (updated 2014);
constants handling, post-AOD commonality, and data policies come from
Sections 3.2 and 4; the interview evidence encodes plausible Appendix-A
answers used to *compute* the maturity ratings rather than assert them.
"""

from __future__ import annotations

from repro.errors import ExperimentError
from repro.experiments.profiles import (
    ConstantsHandling,
    DataPolicy,
    DataPolicyStatus,
    ExperimentProfile,
    OutreachProfile,
    PostAODCommonality,
)

_ALICE = ExperimentProfile(
    name="ALICE",
    collider="LHC",
    detector_type="heavy-ion",
    is_lhc=True,
    outreach=OutreachProfile(
        event_displays=("Root-based display", "simplified display"),
        display_technology="ROOT",
        geometry_format="ROOT",
        browser_tools=("X/Root-based browser",),
        data_formats=("Root",),
        self_documenting="unknown",
        masterclass_uses=("V0 analyses", "general track analyses"),
        comments="Root too heavy for classroom use",
    ),
    constants_handling=ConstantsHandling.TEXT_FILES,
    post_aod_commonality=PostAODCommonality.MEDIUM,
    data_policy=DataPolicy(DataPolicyStatus.UNDER_DISCUSSION, 2014),
    group_formats=("AnalysisTrains",),
    interview_evidence={
        "has_backup": True, "has_security": True, "has_dr_plan": False,
        "dr_procedures": False, "dr_tested": False,
        "metadata_understood": True, "uses_standard_formats": True,
        "data_labeled": False, "outsider_usable": False,
        "preservation_planned": True, "repositories_in_place": False,
        "preservation_effective": False,
        "access_systems": True, "access_controlled": True,
        "sharing_supported": False, "sharing_culture": False,
    },
)

_ATLAS = ExperimentProfile(
    name="ATLAS",
    collider="LHC",
    detector_type="general-purpose",
    is_lhc=True,
    outreach=OutreachProfile(
        event_displays=("ATLANTIS", "VP1"),
        display_technology="Java",
        geometry_format="XML (full geometry)",
        browser_tools=("MINERVA", "HYPATIA", "LPPP", "CAMELIA", "OPloT"),
        data_formats=("Jive-XML", "Root", "Full EDM", "AOD", "xAOD"),
        self_documenting="partial",
        masterclass_uses=("W", "Z", "Higgs",
                          "large MC samples and data"),
        comments="XML format is self-documenting",
    ),
    constants_handling=ConstantsHandling.DATABASE,
    post_aod_commonality=PostAODCommonality.LOW,
    data_policy=DataPolicy(DataPolicyStatus.UNDER_DISCUSSION, 2014),
    group_formats=("D3PD-SM", "D3PD-Top", "D3PD-Exotics", "D3PD-Higgs",
                   "D3PD-SUSY", "D3PD-BPhys"),
    interview_evidence={
        "has_backup": True, "has_security": True, "has_dr_plan": True,
        "dr_procedures": True, "dr_tested": False,
        "metadata_understood": True, "uses_standard_formats": True,
        "data_labeled": True, "outsider_usable": False,
        "preservation_planned": True, "repositories_in_place": False,
        "preservation_effective": False,
        "access_systems": True, "access_controlled": True,
        "sharing_supported": True, "sharing_culture": False,
    },
)

_CMS = ExperimentProfile(
    name="CMS",
    collider="LHC",
    detector_type="general-purpose",
    is_lhc=True,
    outreach=OutreachProfile(
        event_displays=("iSpy",),
        display_technology="browser (WebGL/JS)",
        geometry_format="XML/JSON",
        browser_tools=("JavaScript-based tools",),
        data_formats=("ig",),
        self_documenting="yes",
        masterclass_uses=("W", "Z", "Higgs", "different datasets",
                          "not so much MC"),
        comments="ig format spec published",
    ),
    constants_handling=ConstantsHandling.DATABASE,
    post_aod_commonality=PostAODCommonality.HIGH,
    data_policy=DataPolicy(DataPolicyStatus.APPROVED, 2013),
    group_formats=("PAT-common",),
    interview_evidence={
        "has_backup": True, "has_security": True, "has_dr_plan": True,
        "dr_procedures": True, "dr_tested": True,
        "metadata_understood": True, "uses_standard_formats": True,
        "data_labeled": True, "outsider_usable": True,
        "preservation_planned": True, "repositories_in_place": True,
        "preservation_effective": False,
        "access_systems": True, "access_controlled": True,
        "sharing_supported": True, "sharing_culture": True,
    },
)

_LHCB = ExperimentProfile(
    name="LHCb",
    collider="LHC",
    detector_type="forward",
    is_lhc=True,
    outreach=OutreachProfile(
        event_displays=("Panoramix",),
        display_technology="OpenInventor",
        geometry_format="XML",
        browser_tools=("X-based tools",),
        data_formats=("Root",),
        self_documenting="unknown",
        masterclass_uses=("D lifetime",),
    ),
    constants_handling=ConstantsHandling.DATABASE,
    post_aod_commonality=PostAODCommonality.MEDIUM,
    data_policy=DataPolicy(DataPolicyStatus.APPROVED, 2013),
    group_formats=("Stripping-lines",),
    interview_evidence={
        "has_backup": True, "has_security": True, "has_dr_plan": True,
        "dr_procedures": False, "dr_tested": False,
        "metadata_understood": True, "uses_standard_formats": True,
        "data_labeled": True, "outsider_usable": False,
        "preservation_planned": True, "repositories_in_place": True,
        "preservation_effective": False,
        "access_systems": True, "access_controlled": True,
        "sharing_supported": True, "sharing_culture": False,
    },
)

_BABAR = ExperimentProfile(
    name="BaBar",
    collider="PEP-II",
    detector_type="b-factory",
    is_lhc=False,
    outreach=None,
    constants_handling=ConstantsHandling.DATABASE,
    post_aod_commonality=PostAODCommonality.HIGH,
    data_policy=DataPolicy(DataPolicyStatus.NONE),
    group_formats=("BtaCandidates",),
    interview_evidence={
        "has_backup": True, "has_security": True, "has_dr_plan": True,
        "dr_procedures": True, "dr_tested": True,
        "metadata_understood": True, "uses_standard_formats": True,
        "data_labeled": True, "outsider_usable": False,
        "preservation_planned": True, "repositories_in_place": True,
        "preservation_effective": True,
        "access_systems": True, "access_controlled": True,
        "sharing_supported": False, "sharing_culture": False,
    },
)

_CDF = ExperimentProfile(
    name="CDF",
    collider="Tevatron",
    detector_type="general-purpose",
    is_lhc=False,
    outreach=None,
    constants_handling=ConstantsHandling.DATABASE,
    post_aod_commonality=PostAODCommonality.MEDIUM,
    data_policy=DataPolicy(DataPolicyStatus.NONE),
    group_formats=("Stntuple",),
    interview_evidence={
        "has_backup": True, "has_security": True, "has_dr_plan": True,
        "dr_procedures": False, "dr_tested": False,
        "metadata_understood": True, "uses_standard_formats": False,
        "data_labeled": True, "outsider_usable": False,
        "preservation_planned": True, "repositories_in_place": False,
        "preservation_effective": False,
        "access_systems": True, "access_controlled": False,
        "sharing_supported": False, "sharing_culture": False,
    },
)

_PROFILES = {profile.name: profile
             for profile in (_ALICE, _ATLAS, _CMS, _LHCB, _BABAR, _CDF)}


def all_experiments() -> list[ExperimentProfile]:
    """Every profiled experiment, name-sorted."""
    return [profile for _, profile in sorted(_PROFILES.items())]


def lhc_experiments() -> list[ExperimentProfile]:
    """The four LHC experiments in Table 1's column order."""
    return [_ALICE, _ATLAS, _CMS, _LHCB]


def get_experiment(name: str) -> ExperimentProfile:
    """Look up one experiment profile by name (case-sensitive)."""
    try:
        return _PROFILES[name]
    except KeyError:
        raise ExperimentError(
            f"unknown experiment {name!r}; known: {sorted(_PROFILES)}"
        ) from None
