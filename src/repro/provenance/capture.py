"""The external provenance-capture structure.

When enabled, every dataset a workflow produces is reported here and a
full :class:`ArtifactRecord` is kept. When disabled (``enabled=False``),
reports are dropped — modelling the processing configurations the paper
warns about, where "the parentage and computing (producer) description of
a given file may not be included". The audit benchmark contrasts the two.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.errors import PersistenceError, ProvenanceError
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.records import ArtifactRecord, ProducerRecord


class ProvenanceCapture:
    """Collects artifact records as a workflow runs."""

    def __init__(self, enabled: bool = True,
                 record_producer: bool = True) -> None:
        self.enabled = enabled
        self.record_producer = record_producer
        self.graph = ProvenanceGraph()
        self._sequence = 0

    def new_artifact_id(self, stem: str) -> str:
        """Mint a unique artifact id with a readable stem."""
        self._sequence += 1
        return f"{stem}#{self._sequence:04d}"

    def report(
        self,
        artifact_id: str,
        kind: str,
        tier: str,
        parents: tuple[str, ...] = (),
        producer: ProducerRecord | None = None,
        externals: dict | None = None,
        attributes: dict | None = None,
    ) -> ArtifactRecord | None:
        """Record one produced artifact; a no-op when capture is disabled."""
        if not self.enabled:
            return None
        record = ArtifactRecord(
            artifact_id=artifact_id,
            kind=kind,
            tier=tier,
            parents=parents,
            producer=producer if self.record_producer else None,
            externals=externals if externals is not None else {},
            attributes=attributes if attributes is not None else {},
        )
        self.graph.add(record)
        return record

    def export(self, path: str | Path) -> None:
        """Write the captured graph to a JSON file."""
        path = Path(path)
        try:
            with path.open("w", encoding="utf-8") as handle:
                json.dump(self.graph.to_dict(), handle, indent=1)
        except OSError as exc:
            raise PersistenceError(
                f"cannot export provenance to {path}: {exc}"
            )

    @classmethod
    def load(cls, path: str | Path) -> "ProvenanceCapture":
        """Rebuild a capture (enabled) from an exported graph."""
        path = Path(path)
        try:
            with path.open("r", encoding="utf-8") as handle:
                record = json.load(handle)
        except OSError as exc:
            raise PersistenceError(
                f"cannot load provenance from {path}: {exc}"
            )
        except json.JSONDecodeError as exc:
            raise PersistenceError(
                f"provenance file {path} is not valid JSON: {exc}"
            )
        capture = cls(enabled=True)
        capture.graph = ProvenanceGraph.from_dict(record)
        if len(capture.graph) == 0 and record.get("artifacts"):
            raise ProvenanceError(f"provenance file {path} failed to load")
        return capture
