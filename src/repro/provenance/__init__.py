"""Provenance: parentage records, lineage graphs, and completeness audits.

Section 3.2 of the paper flags provenance retention as an open issue:
"Depending on how the processing is done, the parentage and computing
(producer) description of a given file may not be included. If this is the
case, and the workflow is to be preserved, an external structure to capture
that provenance chain will need to be created."

:class:`ProvenanceCapture` is that external structure. The workflow runner
reports every produced dataset to it; :class:`ProvenanceGraph` answers
lineage queries; :mod:`repro.provenance.audit` quantifies how much ancestry
is recoverable with and without the capture structure enabled — the C-PRV
benchmark.
"""

from repro.provenance.records import ArtifactRecord, ProducerRecord
from repro.provenance.graph import ProvenanceGraph
from repro.provenance.capture import ProvenanceCapture
from repro.provenance.audit import AuditReport, audit_all, audit_artifact

__all__ = [
    "ArtifactRecord",
    "ProducerRecord",
    "ProvenanceGraph",
    "ProvenanceCapture",
    "AuditReport",
    "audit_all",
    "audit_artifact",
]
