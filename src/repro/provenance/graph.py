"""Lineage queries over a set of artifact records."""

from __future__ import annotations

import networkx as nx

from repro.errors import ProvenanceError
from repro.provenance.records import ArtifactRecord


class ProvenanceGraph:
    """A directed acyclic graph of artifact derivations.

    Edges point parent -> child (derivation direction). Parents referenced
    by a record but never registered themselves appear as *dangling*
    ids — the lost-parentage situation the audit quantifies.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._records: dict[str, ArtifactRecord] = {}

    def add(self, record: ArtifactRecord) -> None:
        """Register an artifact; rejects duplicates and cycles."""
        if record.artifact_id in self._records:
            raise ProvenanceError(
                f"artifact {record.artifact_id!r} already registered"
            )
        self._records[record.artifact_id] = record
        self._graph.add_node(record.artifact_id)
        for parent in record.parents:
            self._graph.add_edge(parent, record.artifact_id)
        if not nx.is_directed_acyclic_graph(self._graph):
            # Roll back the offending node to keep the graph usable.
            self._graph.remove_node(record.artifact_id)
            del self._records[record.artifact_id]
            # The removed id may have pre-existed as a dangling parent
            # of registered records; removing the node dropped those
            # edges too, so restore them or later audits would see a
            # spuriously complete ancestry.
            for child_id, child in self._records.items():
                if record.artifact_id in child.parents:
                    self._graph.add_edge(record.artifact_id, child_id)
            raise ProvenanceError(
                f"adding {record.artifact_id!r} would create a cycle"
            )

    def __contains__(self, artifact_id: str) -> bool:
        return artifact_id in self._records

    def __len__(self) -> int:
        return len(self._records)

    def get(self, artifact_id: str) -> ArtifactRecord:
        """Look up a registered artifact record."""
        try:
            return self._records[artifact_id]
        except KeyError:
            raise ProvenanceError(
                f"unknown artifact {artifact_id!r}"
            ) from None

    def artifact_ids(self) -> list[str]:
        """All registered artifact ids, sorted."""
        return sorted(self._records)

    def ancestors(self, artifact_id: str) -> set[str]:
        """All ids upstream of an artifact (registered or dangling)."""
        if artifact_id not in self._graph:
            raise ProvenanceError(f"unknown artifact {artifact_id!r}")
        return set(nx.ancestors(self._graph, artifact_id))

    def descendants(self, artifact_id: str) -> set[str]:
        """All ids derived (transitively) from an artifact."""
        if artifact_id not in self._graph:
            raise ProvenanceError(f"unknown artifact {artifact_id!r}")
        return set(nx.descendants(self._graph, artifact_id))

    def lineage(self, artifact_id: str) -> list[ArtifactRecord]:
        """The registered ancestry of an artifact, topologically ordered."""
        ancestor_ids = self.ancestors(artifact_id)
        ordered = [node for node in nx.topological_sort(self._graph)
                   if node in ancestor_ids and node in self._records]
        return [self._records[node] for node in ordered]

    def dangling_parents(self) -> set[str]:
        """Parent ids that were referenced but never registered."""
        return {node for node in self._graph.nodes
                if node not in self._records}

    def roots(self) -> list[str]:
        """Registered artifacts with no parents at all."""
        return sorted(
            artifact_id for artifact_id, record in self._records.items()
            if not record.parents
        )

    def to_dict(self) -> dict:
        """Serialise the whole graph for archiving."""
        return {
            "artifacts": [self._records[artifact_id].to_dict()
                          for artifact_id in sorted(self._records)],
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ProvenanceGraph":
        """Inverse of :meth:`to_dict`."""
        graph = cls()
        for artifact in record.get("artifacts", []):
            graph.add(ArtifactRecord.from_dict(artifact))
        return graph
