"""Provenance record types."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ProvenanceError


@dataclass(frozen=True)
class ProducerRecord:
    """Who/what produced an artifact: the "computing description".

    ``configuration`` holds the producer's parameters (cuts, tags, seeds);
    it must be JSON-serialisable.
    """

    name: str
    version: str
    configuration: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Serialise for provenance exports."""
        return {
            "name": self.name,
            "version": self.version,
            "configuration": dict(self.configuration),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ProducerRecord":
        """Inverse of :meth:`to_dict`."""
        return cls(
            name=str(record["name"]),
            version=str(record["version"]),
            configuration=dict(record.get("configuration", {})),
        )


@dataclass(frozen=True)
class ArtifactRecord:
    """One node of the provenance graph: a dataset or file.

    ``parents`` are artifact ids this one was derived from; ``externals``
    enumerates external resources (conditions folders, global tags, ...)
    consumed during production — the dependency list the paper asks
    preservation to capture.
    """

    artifact_id: str
    kind: str
    tier: str
    parents: tuple[str, ...] = ()
    producer: ProducerRecord | None = None
    externals: dict = field(default_factory=dict)
    attributes: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.artifact_id:
            raise ProvenanceError("artifact_id must be non-empty")
        if self.artifact_id in self.parents:
            raise ProvenanceError(
                f"artifact {self.artifact_id!r} lists itself as a parent"
            )

    @property
    def has_producer(self) -> bool:
        """True when the computing description survived."""
        return self.producer is not None

    def to_dict(self) -> dict:
        """Serialise for provenance exports."""
        return {
            "artifact_id": self.artifact_id,
            "kind": self.kind,
            "tier": self.tier,
            "parents": list(self.parents),
            "producer": (self.producer.to_dict()
                         if self.producer is not None else None),
            "externals": dict(self.externals),
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, record: dict) -> "ArtifactRecord":
        """Inverse of :meth:`to_dict`."""
        producer_record = record.get("producer")
        return cls(
            artifact_id=str(record["artifact_id"]),
            kind=str(record["kind"]),
            tier=str(record["tier"]),
            parents=tuple(str(p) for p in record.get("parents", [])),
            producer=(ProducerRecord.from_dict(producer_record)
                      if producer_record else None),
            externals=dict(record.get("externals", {})),
            attributes=dict(record.get("attributes", {})),
        )
