"""Provenance completeness audits."""

from __future__ import annotations

from dataclasses import dataclass

from repro.provenance.graph import ProvenanceGraph


@dataclass(frozen=True)
class AuditReport:
    """Completeness of one artifact's recoverable history.

    ``ancestry_completeness`` is the fraction of referenced ancestors that
    are themselves registered (1.0 = full chain recoverable);
    ``producer_completeness`` is the fraction of registered ancestry (plus
    the artifact itself) carrying a computing description;
    ``reproducible`` summarises whether the artifact could in principle be
    regenerated: full ancestry plus full producer records.
    """

    artifact_id: str
    n_ancestors_referenced: int
    n_ancestors_registered: int
    n_with_producer: int
    missing_parents: tuple[str, ...]
    ancestry_completeness: float
    producer_completeness: float
    reproducible: bool

    def summary(self) -> str:
        """One-line human-readable audit verdict."""
        status = "REPRODUCIBLE" if self.reproducible else "INCOMPLETE"
        return (
            f"{self.artifact_id}: {status} "
            f"(ancestry {self.ancestry_completeness:.0%}, "
            f"producers {self.producer_completeness:.0%}, "
            f"{len(self.missing_parents)} missing parents)"
        )


def audit_artifact(graph: ProvenanceGraph, artifact_id: str) -> AuditReport:
    """Audit how much of one artifact's history is recoverable."""
    ancestor_ids = graph.ancestors(artifact_id)
    registered = [a for a in ancestor_ids if a in graph]
    missing = tuple(sorted(a for a in ancestor_ids if a not in graph))

    chain = [graph.get(a) for a in registered] + [graph.get(artifact_id)]
    with_producer = sum(1 for record in chain if record.has_producer)

    n_referenced = len(ancestor_ids)
    ancestry_completeness = (
        len(registered) / n_referenced if n_referenced else 1.0
    )
    producer_completeness = with_producer / len(chain) if chain else 0.0
    reproducible = (
        ancestry_completeness == 1.0 and producer_completeness == 1.0
    )
    return AuditReport(
        artifact_id=artifact_id,
        n_ancestors_referenced=n_referenced,
        n_ancestors_registered=len(registered),
        n_with_producer=with_producer,
        missing_parents=missing,
        ancestry_completeness=ancestry_completeness,
        producer_completeness=producer_completeness,
        reproducible=reproducible,
    )


def audit_all(graph: ProvenanceGraph) -> list[AuditReport]:
    """Audit every registered artifact, sorted by id."""
    return [audit_artifact(graph, artifact_id)
            for artifact_id in graph.artifact_ids()]
