"""Immutable relativistic four-vectors.

The :class:`FourVector` is the workhorse value type of the library. It is
deliberately a plain frozen dataclass over four floats rather than a numpy
wrapper: individual particles are manipulated far more often than bulk
arrays at this layer, and an explicit scalar implementation keeps the
physics readable. Bulk operations (histogram fills, smearing) convert to
numpy arrays at their own boundaries.

Conventions: the metric is (+, -, -, -); energies and momenta are in GeV;
``eta`` is pseudorapidity; ``phi`` is the azimuthal angle in (-pi, pi].
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import KinematicsError

_TWO_PI = 2.0 * math.pi


def wrap_phi(phi: float) -> float:
    """Wrap an azimuthal angle into the interval (-pi, pi]."""
    wrapped = math.fmod(phi, _TWO_PI)
    if wrapped > math.pi:
        wrapped -= _TWO_PI
    elif wrapped <= -math.pi:
        wrapped += _TWO_PI
    return wrapped


def delta_phi(phi1: float, phi2: float) -> float:
    """Smallest signed azimuthal difference ``phi1 - phi2``."""
    return wrap_phi(phi1 - phi2)


@dataclass(frozen=True, slots=True)
class FourVector:
    """An energy-momentum four-vector ``(E, px, py, pz)`` in GeV.

    Instances are immutable; all arithmetic returns new vectors. Use the
    :meth:`from_ptetaphim` / :meth:`from_ptetaphie` constructors to build
    vectors from collider coordinates.
    """

    e: float
    px: float
    py: float
    pz: float

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------

    @classmethod
    def zero(cls) -> "FourVector":
        """The null vector, useful as a sum accumulator."""
        return cls(0.0, 0.0, 0.0, 0.0)

    @classmethod
    def from_ptetaphim(
        cls, pt: float, eta: float, phi: float, mass: float
    ) -> "FourVector":
        """Build a vector from transverse momentum, eta, phi, and mass."""
        if pt < 0.0:
            raise KinematicsError(f"pt must be non-negative, got {pt}")
        px = pt * math.cos(phi)
        py = pt * math.sin(phi)
        pz = pt * math.sinh(eta)
        energy = math.sqrt(px * px + py * py + pz * pz + mass * mass)
        return cls(energy, px, py, pz)

    @classmethod
    def from_ptetaphie(
        cls, pt: float, eta: float, phi: float, energy: float
    ) -> "FourVector":
        """Build a vector from pt, eta, phi, and total energy."""
        if pt < 0.0:
            raise KinematicsError(f"pt must be non-negative, got {pt}")
        px = pt * math.cos(phi)
        py = pt * math.sin(phi)
        pz = pt * math.sinh(eta)
        return cls(energy, px, py, pz)

    @classmethod
    def from_p3m(cls, px: float, py: float, pz: float, mass: float) -> "FourVector":
        """Build an on-shell vector from three-momentum and mass."""
        energy = math.sqrt(px * px + py * py + pz * pz + mass * mass)
        return cls(energy, px, py, pz)

    # ------------------------------------------------------------------
    # Derived kinematic quantities
    # ------------------------------------------------------------------

    @property
    def pt(self) -> float:
        """Transverse momentum.

        Written as ``sqrt(px*px + py*py)`` rather than ``hypot`` so the
        columnar :class:`~repro.columnar.FourVectorArray` twin computes
        the bit-identical value (libm's ``hypot`` and numpy's disagree
        in the last ulp; plain sqrt-of-squares does not).
        """
        return math.sqrt(self.px * self.px + self.py * self.py)

    @property
    def p(self) -> float:
        """Magnitude of the three-momentum."""
        return math.sqrt(
            self.px * self.px + self.py * self.py + self.pz * self.pz
        )

    @property
    def phi(self) -> float:
        """Azimuthal angle in (-pi, pi]; zero for a vanishing pt."""
        if self.px == 0.0 and self.py == 0.0:
            return 0.0
        return math.atan2(self.py, self.px)

    @property
    def eta(self) -> float:
        """Pseudorapidity. Returns +/-inf for a purely longitudinal vector."""
        transverse = self.pt
        if transverse == 0.0:
            if self.pz > 0.0:
                return float("inf")
            if self.pz < 0.0:
                return float("-inf")
            return 0.0
        return math.asinh(self.pz / transverse)

    @property
    def theta(self) -> float:
        """Polar angle from the beam axis, in [0, pi]."""
        if self.p == 0.0:
            return 0.0
        return math.acos(max(-1.0, min(1.0, self.pz / self.p)))

    @property
    def rapidity(self) -> float:
        """True rapidity ``0.5 ln((E+pz)/(E-pz))``."""
        if self.e <= abs(self.pz):
            raise KinematicsError(
                f"rapidity undefined for E={self.e}, pz={self.pz}"
            )
        return 0.5 * math.log((self.e + self.pz) / (self.e - self.pz))

    @property
    def mass2(self) -> float:
        """Invariant mass squared (may be slightly negative numerically).

        Explicit products, not ``**2``: CPython's float power is not
        guaranteed to equal multiplication in the last bit, while
        numpy's ``x**2`` is — the product form is what keeps the
        columnar twin bit-identical.
        """
        return (self.e * self.e - self.px * self.px
                - self.py * self.py - self.pz * self.pz)

    @property
    def mass(self) -> float:
        """Invariant mass; negative ``mass2`` from rounding clamps to zero."""
        m2 = self.mass2
        if m2 < 0.0:
            return 0.0
        return math.sqrt(m2)

    @property
    def et(self) -> float:
        """Transverse energy ``E * sin(theta)``."""
        if self.p == 0.0:
            return 0.0
        return self.e * self.pt / self.p

    @property
    def beta(self) -> float:
        """Velocity in units of c."""
        if self.e == 0.0:
            return 0.0
        return self.p / self.e

    @property
    def gamma(self) -> float:
        """Lorentz factor; raises for a massless (or spacelike) vector."""
        m = self.mass
        if m == 0.0:
            raise KinematicsError("gamma undefined for a massless vector")
        return self.e / m

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------

    def __add__(self, other: "FourVector") -> "FourVector":
        return FourVector(
            self.e + other.e,
            self.px + other.px,
            self.py + other.py,
            self.pz + other.pz,
        )

    def __sub__(self, other: "FourVector") -> "FourVector":
        return FourVector(
            self.e - other.e,
            self.px - other.px,
            self.py - other.py,
            self.pz - other.pz,
        )

    def __mul__(self, scale: float) -> "FourVector":
        return FourVector(
            self.e * scale, self.px * scale, self.py * scale, self.pz * scale
        )

    __rmul__ = __mul__

    def __neg__(self) -> "FourVector":
        return FourVector(-self.e, -self.px, -self.py, -self.pz)

    def dot(self, other: "FourVector") -> float:
        """Minkowski inner product with metric (+,-,-,-)."""
        return (
            self.e * other.e
            - self.px * other.px
            - self.py * other.py
            - self.pz * other.pz
        )

    # ------------------------------------------------------------------
    # Geometry between vectors
    # ------------------------------------------------------------------

    def delta_phi(self, other: "FourVector") -> float:
        """Signed azimuthal separation from ``other``."""
        return delta_phi(self.phi, other.phi)

    def delta_eta(self, other: "FourVector") -> float:
        """Pseudorapidity separation from ``other``."""
        return self.eta - other.eta

    def delta_r(self, other: "FourVector") -> float:
        """Angular distance ``sqrt(d_eta^2 + d_phi^2)`` used by jet cones."""
        d_eta = self.delta_eta(other)
        d_phi = self.delta_phi(other)
        return math.sqrt(d_eta * d_eta + d_phi * d_phi)

    def angle(self, other: "FourVector") -> float:
        """Opening angle in radians between the three-momenta."""
        p1 = self.p
        p2 = other.p
        if p1 == 0.0 or p2 == 0.0:
            raise KinematicsError("opening angle undefined for a null momentum")
        cosine = (
            self.px * other.px + self.py * other.py + self.pz * other.pz
        ) / (p1 * p2)
        return math.acos(max(-1.0, min(1.0, cosine)))

    # ------------------------------------------------------------------
    # Boosts
    # ------------------------------------------------------------------

    def boost_vector(self) -> tuple[float, float, float]:
        """The (bx, by, bz) velocity of this vector's rest frame."""
        if self.e == 0.0:
            raise KinematicsError("boost vector undefined for zero energy")
        return (self.px / self.e, self.py / self.e, self.pz / self.e)

    def boosted(self, bx: float, by: float, bz: float) -> "FourVector":
        """Return this vector actively boosted by velocity (bx, by, bz)."""
        b2 = bx * bx + by * by + bz * bz
        if b2 >= 1.0:
            raise KinematicsError(f"boost speed {math.sqrt(b2)} >= c")
        gamma = 1.0 / math.sqrt(1.0 - b2)
        bp = bx * self.px + by * self.py + bz * self.pz
        gamma2 = (gamma - 1.0) / b2 if b2 > 0.0 else 0.0
        px = self.px + gamma2 * bp * bx + gamma * bx * self.e
        py = self.py + gamma2 * bp * by + gamma * by * self.e
        pz = self.pz + gamma2 * bp * bz + gamma * bz * self.e
        energy = gamma * (self.e + bp)
        return FourVector(energy, px, py, pz)

    def boosted_to_rest_frame_of(self, frame: "FourVector") -> "FourVector":
        """Return this vector expressed in the rest frame of ``frame``."""
        bx, by, bz = frame.boost_vector()
        return self.boosted(-bx, -by, -bz)

    # ------------------------------------------------------------------
    # Serialisation
    # ------------------------------------------------------------------

    def to_list(self) -> list[float]:
        """Serialise as ``[E, px, py, pz]`` for the JSON data formats."""
        return [self.e, self.px, self.py, self.pz]

    @classmethod
    def from_list(cls, values: list[float]) -> "FourVector":
        """Inverse of :meth:`to_list`."""
        if len(values) != 4:
            raise KinematicsError(
                f"four-vector list must have 4 entries, got {len(values)}"
            )
        return cls(*(float(v) for v in values))

    def is_close(self, other: "FourVector", rel_tol: float = 1e-9,
                 abs_tol: float = 1e-12) -> bool:
        """Component-wise closeness test for test assertions."""
        return all(
            math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
            for a, b in zip(self.to_list(), other.to_list())
        )


def invariant_mass(vectors: list[FourVector]) -> float:
    """Invariant mass of a system of four-vectors.

    >>> z = FourVector.from_ptetaphim(30.0, 0.2, 1.0, 91.2)
    >>> round(invariant_mass([z]), 1)
    91.2
    """
    total = FourVector.zero()
    for vector in vectors:
        total = total + vector
    return total.mass


def transverse_mass(lepton: FourVector, met: FourVector) -> float:
    """Transverse mass of a lepton + missing-momentum system.

    This is the W-mass-sensitive observable used by the W master classes:
    ``mT^2 = 2 pT(l) pT(miss) (1 - cos dphi)``.
    """
    d_phi = lepton.delta_phi(met)
    mt2 = 2.0 * lepton.pt * met.pt * (1.0 - math.cos(d_phi))
    return math.sqrt(max(0.0, mt2))
