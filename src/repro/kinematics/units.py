"""Natural-unit constants used throughout the library.

The library works in HEP natural units: energies, momenta, and masses are in
GeV; lengths in millimetres; times in nanoseconds unless a function's
docstring says otherwise. These constants make conversions explicit at call
sites instead of burying magic numbers in formulas.
"""

from __future__ import annotations

# Energy scale factors relative to GeV.
KEV = 1.0e-6
MEV = 1.0e-3
GEV = 1.0
TEV = 1.0e3

# Length scale factors relative to millimetres.
UM = 1.0e-3
MM = 1.0
CM = 10.0
M = 1000.0

# Time scale factors relative to nanoseconds.
PS = 1.0e-3
NS = 1.0
US = 1.0e3

#: Speed of light in mm/ns — handy because a relativistic particle travels
#: about 30 cm per nanosecond, which sets detector timing windows.
SPEED_OF_LIGHT_MM_PER_NS = 299.792458

#: Reduced Planck constant times c, in GeV * mm. Used to convert particle
#: widths (GeV) to lifetimes (ns) and decay lengths (mm).
HBARC_GEV_MM = 1.973269804e-13

#: hbar in GeV * ns, for Gamma (GeV) -> tau (ns) conversions.
HBAR_GEV_NS = 6.582119569e-16

#: Conversion from barns to the inverse-GeV^2 natural cross-section unit.
GEV2_TO_MILLIBARN = 0.3893793721

# Storage sizes, used by the data-model and preservation layers when
# reporting tier volumes the way the Data Interview Template asks for them.
BYTE = 1
KB = 1000
MB = 1000**2
GB = 1000**3
TB = 1000**4
PB = 1000**5


def width_to_lifetime_ns(width_gev: float) -> float:
    """Convert a resonance width in GeV to a mean lifetime in nanoseconds.

    A zero or negative width denotes a stable particle and maps to
    ``float('inf')``.
    """
    if width_gev <= 0.0:
        return float("inf")
    return HBAR_GEV_NS / width_gev


def lifetime_to_width_gev(lifetime_ns: float) -> float:
    """Convert a mean lifetime in nanoseconds to a width in GeV.

    An infinite (or non-positive) lifetime denotes a stable particle and maps
    to a width of zero.
    """
    if lifetime_ns <= 0.0 or lifetime_ns == float("inf"):
        return 0.0
    return HBAR_GEV_NS / lifetime_ns


def human_bytes(n_bytes: float) -> str:
    """Render a byte count with a binary-free, SI-style suffix.

    >>> human_bytes(1536)
    '1.54 kB'
    """
    magnitude = float(n_bytes)
    for suffix in ("B", "kB", "MB", "GB", "TB", "PB"):
        if magnitude < 1000.0 or suffix == "PB":
            if suffix == "B":
                return f"{int(magnitude)} {suffix}"
            return f"{magnitude:.2f} {suffix}"
        magnitude /= 1000.0
    raise AssertionError("unreachable")
