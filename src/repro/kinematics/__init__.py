"""Relativistic kinematics substrate: units, four-vectors, particle data.

This is the lowest layer of the library. Everything above it — event
generation, detector simulation, reconstruction, RIVET-style projections —
manipulates :class:`FourVector` instances and consults the
:class:`ParticleTable` for masses, charges, widths, and lifetimes.
"""

from repro.kinematics.fourvector import (
    FourVector,
    delta_phi,
    invariant_mass,
    transverse_mass,
    wrap_phi,
)
from repro.kinematics.particles import (
    Particle,
    ParticleTable,
    default_particle_table,
)
from repro.kinematics import units

__all__ = [
    "FourVector",
    "delta_phi",
    "invariant_mass",
    "transverse_mass",
    "wrap_phi",
    "Particle",
    "ParticleTable",
    "default_particle_table",
    "units",
]
