"""A PDG-style particle data table.

The table carries the subset of the Particle Data Group listing that the toy
generator, detector simulation, and analysis layers need: masses, charges,
widths/lifetimes, and coarse classification flags. PDG Monte Carlo numbering
is used for ids (electron 11, muon 13, Z 23, ...), with negative ids for
antiparticles as usual.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import UnknownParticleError
from repro.kinematics.units import width_to_lifetime_ns


@dataclass(frozen=True, slots=True)
class Particle:
    """Static properties of one particle species.

    ``lifetime_ns`` is the mean proper lifetime; stable particles carry
    ``float('inf')``. ``charge`` is in units of the proton charge.
    """

    pdg_id: int
    name: str
    mass: float
    charge: float
    width: float = 0.0
    is_lepton: bool = False
    is_neutrino: bool = False
    is_quark: bool = False
    is_boson: bool = False
    is_hadron: bool = False

    @property
    def lifetime_ns(self) -> float:
        """Mean proper lifetime derived from the width."""
        return width_to_lifetime_ns(self.width)

    @property
    def is_charged(self) -> bool:
        """True if the particle carries electric charge."""
        return self.charge != 0.0

    @property
    def is_invisible(self) -> bool:
        """True if the particle escapes a collider detector unseen."""
        return self.is_neutrino or self.pdg_id in _INVISIBLE_EXOTICS

    def antiparticle(self) -> "Particle":
        """Return the charge-conjugate species."""
        if self.pdg_id in _SELF_CONJUGATE:
            return self
        name = self.name
        if name.endswith("+"):
            name = name[:-1] + "-"
        elif name.endswith("-"):
            name = name[:-1] + "+"
        elif name.startswith("anti-"):
            name = name[len("anti-"):]
        else:
            name = "anti-" + name
        return replace(self, pdg_id=-self.pdg_id, name=name,
                       charge=-self.charge)


# Species whose antiparticle is itself (or is treated as such here).
_SELF_CONJUGATE = {21, 22, 23, 25, 111}

# Exotic ids the toy BSM models use for invisible decay products.
_INVISIBLE_EXOTICS = {1000022, -1000022}


@dataclass
class ParticleTable:
    """Lookup of :class:`Particle` records by PDG id or by name.

    The default table (see :func:`default_particle_table`) covers the species
    the generator produces; user code can :meth:`register` additional exotics
    (e.g. a Z' for a RECAST re-analysis request).
    """

    _by_id: dict[int, Particle] = field(default_factory=dict)
    _by_name: dict[str, Particle] = field(default_factory=dict)

    def register(self, particle: Particle) -> None:
        """Add a species and its antiparticle to the table."""
        self._by_id[particle.pdg_id] = particle
        self._by_name[particle.name] = particle
        anti = particle.antiparticle()
        if anti.pdg_id != particle.pdg_id:
            self._by_id[anti.pdg_id] = anti
            self._by_name[anti.name] = anti

    def by_id(self, pdg_id: int) -> Particle:
        """Look a species up by PDG id; raises :class:`UnknownParticleError`."""
        try:
            return self._by_id[pdg_id]
        except KeyError:
            raise UnknownParticleError(f"unknown PDG id {pdg_id}") from None

    def by_name(self, name: str) -> Particle:
        """Look a species up by name; raises :class:`UnknownParticleError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise UnknownParticleError(f"unknown particle name {name!r}") from None

    def __contains__(self, pdg_id: int) -> bool:
        return pdg_id in self._by_id

    def __len__(self) -> int:
        return len(self._by_id)

    def ids(self) -> list[int]:
        """All registered PDG ids, sorted."""
        return sorted(self._by_id)

    def mass(self, pdg_id: int) -> float:
        """Convenience accessor for a species mass."""
        return self.by_id(pdg_id).mass

    def charge(self, pdg_id: int) -> float:
        """Convenience accessor for a species charge."""
        return self.by_id(pdg_id).charge


def _standard_particles() -> list[Particle]:
    """The species list for the default table (PDG 2014-ish values, GeV)."""
    return [
        # Leptons.
        Particle(11, "e-", 0.000511, -1.0, is_lepton=True),
        Particle(13, "mu-", 0.10566, -1.0, width=3.0e-19, is_lepton=True),
        Particle(15, "tau-", 1.77686, -1.0, width=2.27e-12, is_lepton=True),
        Particle(12, "nu_e", 0.0, 0.0, is_lepton=True, is_neutrino=True),
        Particle(14, "nu_mu", 0.0, 0.0, is_lepton=True, is_neutrino=True),
        Particle(16, "nu_tau", 0.0, 0.0, is_lepton=True, is_neutrino=True),
        # Quarks (current masses; only used for labelling jets).
        Particle(1, "d", 0.0047, -1.0 / 3.0, is_quark=True),
        Particle(2, "u", 0.0022, 2.0 / 3.0, is_quark=True),
        Particle(3, "s", 0.095, -1.0 / 3.0, is_quark=True),
        Particle(4, "c", 1.275, 2.0 / 3.0, is_quark=True),
        Particle(5, "b", 4.18, -1.0 / 3.0, is_quark=True),
        Particle(6, "t", 173.0, 2.0 / 3.0, width=1.42, is_quark=True),
        # Gauge and Higgs bosons.
        Particle(21, "g", 0.0, 0.0, is_boson=True),
        Particle(22, "gamma", 0.0, 0.0, is_boson=True),
        Particle(23, "Z", 91.1876, 0.0, width=2.4952, is_boson=True),
        Particle(24, "W+", 80.385, 1.0, width=2.085, is_boson=True),
        Particle(25, "H", 125.0, 0.0, width=0.00407, is_boson=True),
        # Hadrons the toy generator produces as visible final states.
        Particle(211, "pi+", 0.13957, 1.0, width=2.5284e-17, is_hadron=True),
        Particle(111, "pi0", 0.13498, 0.0, width=7.81e-9, is_hadron=True),
        Particle(321, "K+", 0.49368, 1.0, width=5.317e-17, is_hadron=True),
        Particle(130, "K0_L", 0.49761, 0.0, width=1.287e-17, is_hadron=True),
        # K0_S: ctau = 2.68 cm -> the classic V0 signature.
        Particle(310, "K0_S", 0.49761, 0.0, width=7.351e-15,
                 is_hadron=True),
        Particle(3122, "Lambda", 1.11568, 0.0, width=2.501e-15,
                 is_hadron=True),
        Particle(2212, "p", 0.93827, 1.0, is_hadron=True),
        Particle(2112, "n", 0.93957, 0.0, width=7.485e-28, is_hadron=True),
        # Charm hadron for the LHCb D-lifetime master class.
        Particle(421, "D0", 1.86484, 0.0, width=1.605e-12, is_hadron=True),
        Particle(411, "D+", 1.86962, 1.0, width=6.33e-13, is_hadron=True),
        # J/psi for dimuon spectra.
        Particle(443, "J/psi", 3.0969, 0.0, width=9.29e-5, is_hadron=True),
    ]


def default_particle_table() -> ParticleTable:
    """Build a fresh table containing the standard species set.

    A fresh instance is returned each call so tests and RECAST requests can
    register exotics without contaminating a shared global.
    """
    table = ParticleTable()
    for particle in _standard_particles():
        table.register(particle)
    return table
