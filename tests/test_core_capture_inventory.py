"""Tests for script capture (direct code preservation) and inventory."""

import pytest

from repro.core import (
    PreservationArchive,
    PreservationMetadata,
    ReexecutionOutcome,
    ScriptCapture,
    take_inventory,
)
from repro.core.levels import DPHEPLevel
from repro.errors import PreservationError, ValidationError


def final_analysis(events):
    """A final-step script: count events and average a column."""
    total = 0.0
    for event in events:
        total += event["met"]
    mean = total / len(events) if events else 0.0
    return {"n_events": len(events), "mean_met": mean}


INPUTS = [{"met": 10.0}, {"met": 30.0}, {"met": 20.0}]


class TestScriptCapture:
    def test_capture_and_reexecute(self):
        capture = ScriptCapture.create("final-2013", final_analysis,
                                       INPUTS)
        outcome = capture.reexecute()
        assert outcome.passed
        assert capture.expected_result == {"n_events": 3,
                                           "mean_met": 20.0}

    def test_roundtrip_preserves_reproducibility(self):
        capture = ScriptCapture.create("final-2013", final_analysis,
                                       INPUTS)
        restored = ScriptCapture.from_dict(capture.to_dict())
        assert restored.reexecute().passed

    def test_source_drift_detected(self):
        capture = ScriptCapture.create("final-2013", final_analysis,
                                       INPUTS)
        record = capture.to_dict()
        # The "migration" subtly changes the preserved code.
        record["source"] = record["source"].replace(
            "total += event", "total += 2 * event"
        )
        record.pop("expected_digest")  # digest of result unchanged
        drifted = ScriptCapture.from_dict(record)
        outcome = drifted.reexecute()
        assert not outcome.passed
        assert "drifted" in outcome.detail

    def test_input_tampering_detected_by_digest(self):
        capture = ScriptCapture.create("final-2013", final_analysis,
                                       INPUTS)
        record = capture.to_dict()
        record["input_records"][0]["met"] = 999.0
        with pytest.raises(ValidationError):
            ScriptCapture.from_dict(record)

    def test_result_tampering_detected_by_digest(self):
        capture = ScriptCapture.create("final-2013", final_analysis,
                                       INPUTS)
        record = capture.to_dict()
        record["expected_result"]["mean_met"] = -1.0
        with pytest.raises(ValidationError):
            ScriptCapture.from_dict(record)

    def test_uncapturable_script_fails_at_capture_time(self):
        import os

        def final_analysis(events):
            return {"cwd": os.getcwd()}  # needs os: not in sandbox

        with pytest.raises(PreservationError):
            ScriptCapture.create("bad", final_analysis, INPUTS)

    def test_broken_source_reported(self):
        capture = ScriptCapture.create("final-2013", final_analysis,
                                       INPUTS)
        record = capture.to_dict()
        record["source"] = "def final_analysis(events:\n  pass"
        record.pop("expected_digest")
        record.pop("input_digest")
        broken = ScriptCapture.from_dict(record)
        outcome = broken.reexecute()
        assert not outcome.passed
        assert "compile" in outcome.detail

    def test_wrong_function_name_renamed(self):
        def my_count(events):
            return len(events)

        capture = ScriptCapture.create("renamed", my_count, INPUTS)
        assert capture.reexecute().passed
        assert "def final_analysis(" in capture.source

    def test_environment_recorded(self):
        capture = ScriptCapture.create("env", final_analysis, INPUTS)
        assert "python_version" in capture.environment

    def test_script_cannot_mutate_archived_inputs(self):
        def final_analysis(events):
            for event in events:
                event["met"] = 0.0
            return len(events)

        capture = ScriptCapture.create("mutator", final_analysis,
                                       INPUTS)
        # The archived inputs are untouched by re-executions.
        capture.reexecute()
        assert capture.input_records[0]["met"] == 10.0

    def test_outcome_summary(self):
        outcome = ReexecutionOutcome("x", False, "boom")
        assert "FAIL" in outcome.summary()
        assert "boom" in outcome.summary()


def _metadata(title):
    return PreservationMetadata.build(
        title=title, creator="curator", experiment="GPD",
        created="2013-03-21", artifact_format="json", size_bytes=0,
        checksum="", producer="test", access_policy="public",
    )


class TestInventory:
    def test_per_level_breakdown(self):
        archive = PreservationArchive("holdings")
        archive.store({"a": 1}, "raw_dataset", _metadata("raw"))
        archive.store({"b": 2}, "aod_dataset", _metadata("aod"))
        archive.store({"c": 3}, "level2_file", _metadata("l2"))
        archive.store({"d": 4}, "hepdata_record", _metadata("pub"))
        inventory = take_inventory(archive)
        assert inventory.levels[DPHEPLevel.FULL].n_artifacts == 1
        assert inventory.levels[DPHEPLevel.ANALYSIS].n_artifacts == 1
        assert inventory.levels[DPHEPLevel.SIMPLIFIED].n_artifacts == 1
        assert inventory.levels[DPHEPLevel.PUBLICATION].n_artifacts == 1

    def test_highest_level_and_use_cases(self):
        archive = PreservationArchive("pub-only")
        archive.store({"d": 4}, "hepdata_record", _metadata("pub"))
        inventory = take_inventory(archive)
        assert inventory.highest_level_held == DPHEPLevel.PUBLICATION
        supported = inventory.supported_use_cases()
        assert "phenomenology_reinterpretation" in supported
        assert "reprocessing" not in supported

    def test_full_archive_supports_everything(self):
        archive = PreservationArchive("full")
        archive.store({"a": 1}, "raw_dataset", _metadata("raw"))
        inventory = take_inventory(archive)
        from repro.core.levels import use_cases

        assert inventory.supported_use_cases() == use_cases()

    def test_unclassified_counted(self):
        archive = PreservationArchive("odd")
        entry = archive.store({"x": 1}, "hepdata_record",
                              _metadata("x"))
        # Sneak in an unknown kind by mutating the catalogue entry.
        from repro.core.archive import ArchiveEntry

        archive._entries[entry.digest] = ArchiveEntry(
            digest=entry.digest, kind="mystery",
            size_bytes=entry.size_bytes, metadata=entry.metadata,
        )
        inventory = take_inventory(archive)
        assert inventory.unclassified == 1

    def test_empty_archive(self):
        inventory = take_inventory(PreservationArchive("empty"))
        assert inventory.highest_level_held is None
        assert inventory.supported_use_cases() == []

    def test_render(self):
        archive = PreservationArchive("holdings")
        archive.store({"a": 1}, "raw_dataset", _metadata("raw"))
        text = take_inventory(archive).render()
        assert "Level 4" in text
        assert "Supported use cases" in text
