"""RunReport: schema, determinism, archive linkage, rendering."""

from __future__ import annotations

import json

import pytest

from repro.core import PreservationArchive, PreservationMetadata
from repro.core.metadata import MetadataBlock
from repro.errors import ObservabilityError
from repro.obs import (
    MetricsRegistry,
    RunReport,
    Tracer,
    attach_report_to_archive,
    bench_envelope,
    capture_environment,
    export_spans,
    link_run_report,
    load_report_from_archive,
    render_trace,
    validate_bench_report,
    validate_run_report,
)
from repro.obs.report import RUN_REPORT_KIND


def _traced_workload(trace_id: str = "t") -> tuple[Tracer, MetricsRegistry]:
    tracer = Tracer(trace_id)
    metrics = MetricsRegistry()
    with tracer.span("campaign.sweep", n_runs=2):
        for run in (1, 2):
            with tracer.span("campaign.run", run=run):
                metrics.counter("campaign.runs").inc()
                metrics.histogram("run_seconds",
                                  buckets=(0.1, 1.0)).observe(0.01)
    return tracer, metrics


def _report(deterministic: bool = True, **kwargs) -> RunReport:
    tracer, metrics = _traced_workload()
    return RunReport.build(tracer, metrics,
                           deterministic=deterministic, **kwargs)


class TestBuild:
    def test_collects_spans_metrics_environment(self):
        report = _report()
        assert report.n_spans == 3
        assert report.metrics["counters"][0]["name"] == "campaign.runs"
        assert report.environment["python"]

    def test_provenance_is_copied(self):
        provenance = {"command": "campaign"}
        report = _report(provenance=provenance)
        provenance["command"] = "mutated"
        assert report.provenance == {"command": "campaign"}

    def test_open_span_rejected(self):
        tracer = Tracer("t")
        tracer.span("open").__enter__()
        with pytest.raises(ObservabilityError, match="still open"):
            RunReport.build(tracer)

    def test_introspection_walks_the_tree(self):
        report = _report()
        roots = report.root_spans()
        assert [span["name"] for span in roots] == ["campaign.sweep"]
        children = report.children_of(roots[0]["span_id"])
        assert [span["attributes"]["run"] for span in children] == [1, 2]


class TestDeterminism:
    def test_two_builds_are_byte_identical(self):
        assert _report().to_json_bytes() == _report().to_json_bytes()

    def test_deterministic_spans_carry_no_clock(self):
        for span in _report().spans:
            assert span["start"] == float(span["sequence"])
            assert span["duration"] == 0.0

    def test_real_mode_exports_offsets_from_trace_start(self):
        ticks = iter([100.0, 100.5, 101.25, 102.0])
        tracer = Tracer("t", clock=lambda: next(ticks))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        report = RunReport.build(tracer, deterministic=False)
        assert report.spans[0]["start"] == 0.0
        assert report.spans[0]["duration"] == pytest.approx(2.0)
        assert report.spans[1]["start"] == pytest.approx(0.5)
        assert report.spans[1]["duration"] == pytest.approx(0.75)

    def test_deterministic_environment_has_no_wall_clock(self):
        assert _report().environment["started_at"] == ""
        assert capture_environment()["started_at"] != ""


class TestRoundTrip:
    def test_save_load_preserves_bytes(self, tmp_path):
        report = _report(provenance={"command": "campaign"})
        path = tmp_path / "runreport.json"
        report.save(path)
        assert RunReport.load(path).to_json_bytes() == \
            report.to_json_bytes()

    def test_load_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="cannot read"):
            RunReport.load(tmp_path / "absent.json")

    def test_load_bad_json_raises(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ObservabilityError, match="not valid JSON"):
            RunReport.load(path)


class TestValidation:
    def _record(self) -> dict:
        return _report().to_dict()

    def test_valid_report_passes(self):
        validate_run_report(self._record())

    def test_wrong_format_rejected(self):
        record = self._record()
        record["format"] = "not-a-run-report"
        with pytest.raises(ObservabilityError, match="format"):
            validate_run_report(record)

    def test_wrong_schema_version_rejected(self):
        record = self._record()
        record["schema_version"] = 99
        with pytest.raises(ObservabilityError, match="schema version"):
            validate_run_report(record)

    def test_tampered_span_id_rejected(self):
        record = self._record()
        record["trace"]["spans"][0]["span_id"] = "0" * 16
        with pytest.raises(ObservabilityError, match="does not re-derive"):
            validate_run_report(record)

    def test_renamed_span_rejected(self):
        record = self._record()
        record["trace"]["spans"][-1]["name"] = "forged"
        with pytest.raises(ObservabilityError, match="re-derive"):
            validate_run_report(record)

    def test_clock_values_in_deterministic_report_rejected(self):
        record = self._record()
        record["trace"]["spans"][0]["duration"] = 1.5
        with pytest.raises(ObservabilityError, match="clock values"):
            validate_run_report(record)

    def test_orphan_parent_rejected(self):
        record = self._record()
        del record["trace"]["spans"][0]
        with pytest.raises(ObservabilityError, match="precede"):
            validate_run_report(record)

    def test_duplicate_sequence_rejected(self):
        record = self._record()
        spans = record["trace"]["spans"]
        spans[2]["sequence"] = spans[1]["sequence"]
        with pytest.raises(ObservabilityError, match="sequence"):
            validate_run_report(record)

    def test_histogram_count_shape_enforced(self):
        record = self._record()
        record["metrics"]["histograms"][0]["counts"] = [0]
        with pytest.raises(ObservabilityError, match="per bucket"):
            validate_run_report(record)

    def test_missing_environment_field_rejected(self):
        record = self._record()
        del record["environment"]["host"]
        with pytest.raises(ObservabilityError, match="host"):
            validate_run_report(record)

    def test_from_dict_validates(self):
        record = self._record()
        record["format"] = "bogus"
        with pytest.raises(ObservabilityError):
            RunReport.from_dict(record)


class TestExportSpans:
    def test_unfinished_span_rejected(self):
        tracer = Tracer("t")
        tracer.span("open").__enter__()
        with pytest.raises(ObservabilityError, match="still open"):
            export_spans(tracer.spans)

    def test_deterministic_export_uses_sequence_positions(self):
        tracer = Tracer("t")
        with tracer.span("a"):
            with tracer.span("b"):
                pass
        records = export_spans(tracer.spans, deterministic=True)
        assert [r["start"] for r in records] == [0.0, 1.0]
        assert all(r["duration"] == 0.0 for r in records)


def _dataset_metadata(title="aod dataset"):
    return PreservationMetadata.build(
        title=title, creator="curator", experiment="GPD",
        created="2013-03-21", artifact_format="jsonl", size_bytes=0,
        checksum="", producer="test", access_policy="public",
    )


class TestArchiveIntegration:
    def test_attach_and_load_round_trip(self):
        archive = PreservationArchive()
        report = _report(provenance={"command": "campaign"})
        entry = attach_report_to_archive(report, archive)
        assert entry.kind == RUN_REPORT_KIND
        recovered = load_report_from_archive(archive, entry.digest)
        assert recovered.to_json_bytes() == report.to_json_bytes()

    def test_attach_is_idempotent_for_identical_reports(self):
        archive = PreservationArchive()
        first = attach_report_to_archive(_report(), archive)
        second = attach_report_to_archive(_report(), archive)
        assert first.digest == second.digest

    def test_wrong_kind_rejected(self):
        archive = PreservationArchive()
        entry = archive.store({"a": 1}, "table", _dataset_metadata())
        with pytest.raises(ObservabilityError, match="not a"):
            load_report_from_archive(archive, entry.digest)

    def test_link_run_report_writes_provenance_block(self):
        metadata = _dataset_metadata()
        link_run_report(metadata, "abc123")
        block = metadata.blocks[MetadataBlock.PROVENANCE]
        assert block["run_report"] == "abc123"


class TestRendering:
    def test_render_trace_shows_tree_and_attributes(self):
        text = render_trace(_report())
        assert "3 span(s)" in text
        assert "deterministic (timings normalized)" in text
        assert "├─ campaign.run" in text
        assert "run=1" in text

    def test_render_trace_real_mode_shows_timings(self):
        text = render_trace(_report(deterministic=False))
        assert "ms)" in text
        assert "s total" in text

    def test_error_span_flagged(self):
        tracer = Tracer("t")
        with pytest.raises(RuntimeError):
            with tracer.span("work"):
                raise RuntimeError("boom")
        report = RunReport.build(tracer, deterministic=True)
        assert "[ERROR]" in render_trace(report)


class TestBenchEnvelope:
    def test_envelope_validates(self):
        record = bench_envelope("demo", target="src")
        record["workloads"]["w"] = {"seconds": 1.0}
        validate_bench_report(record)
        assert record["target"] == "src"

    def test_missing_schema_rejected(self):
        with pytest.raises(ObservabilityError, match="schema"):
            validate_bench_report({"benchmark": "demo"})

    def test_workload_must_be_object(self):
        record = bench_envelope("demo")
        record["workloads"]["w"] = 3.0
        with pytest.raises(ObservabilityError, match="JSON object"):
            validate_bench_report(record)

    def test_envelope_is_json_serialisable(self):
        json.dumps(bench_envelope("demo"))
