"""Span profiling: telescoping identity, collapsed stacks, exports."""

import itertools
import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.profile import (
    PROFILE_FORMAT,
    UNIT_CALLS,
    UNIT_MICROSECONDS,
    SpanProfile,
    render_profile,
    validate_profile,
)
from repro.obs.report import export_spans
from repro.obs.trace import Tracer


def _span(name, span_id, parent_id, duration, status="ok"):
    return {"name": name, "span_id": span_id, "parent_id": parent_id,
            "duration": duration, "status": status}


def _tree():
    """root(7ms) -> a(3ms), b(2ms): 2ms of root self time."""
    return [
        _span("root", "s0", None, 0.007),
        _span("a", "s1", "s0", 0.003),
        _span("b", "s2", "s0", 0.002, status="error"),
    ]


class TestFolding:
    def test_self_is_cum_minus_children(self):
        profile = SpanProfile.from_spans(_tree())
        by_path = {node.path: node for node in profile.nodes}
        root = by_path[("root",)]
        assert root.cum_us == 7000
        assert root.self_us == 2000
        assert by_path[("root", "a")].self_us == 3000
        assert by_path[("root", "b")].errors == 1
        assert profile.total_us == 7000

    def test_self_times_sum_exactly_to_the_root_duration(self):
        profile = SpanProfile.from_spans(_tree())
        assert sum(node.self_us for node in profile.nodes) \
            == profile.total_us

    def test_parent_widened_when_children_outweigh_it(self):
        spans = [
            _span("root", "s0", None, 0.001),
            _span("a", "s1", "s0", 0.002),
        ]
        profile = SpanProfile.from_spans(spans)
        by_path = {node.path: node for node in profile.nodes}
        # Rounding made the child exceed the parent: the parent is
        # widened, never the child clamped.
        assert by_path[("root",)].cum_us == 2000
        assert by_path[("root",)].self_us == 0

    def test_same_name_path_aggregates(self):
        spans = [
            _span("root", "s0", None, 0.010),
            _span("step", "s1", "s0", 0.002),
            _span("step", "s2", "s0", 0.003),
        ]
        profile = SpanProfile.from_spans(spans)
        by_path = {node.path: node for node in profile.nodes}
        step = by_path[("root", "step")]
        assert step.calls == 2
        assert step.cum_us == 5000
        assert by_path[("root",)].self_us == 5000

    def test_orphan_span_rejected(self):
        spans = [_span("child", "s1", "missing", 0.001)]
        with pytest.raises(ObservabilityError):
            SpanProfile.from_spans(spans)

    def test_child_before_parent_rejected(self):
        spans = [
            _span("a", "s1", "s0", 0.001),
            _span("root", "s0", None, 0.002),
        ]
        with pytest.raises(ObservabilityError):
            SpanProfile.from_spans(spans)

    def test_empty_trace_folds_to_an_empty_profile(self):
        profile = SpanProfile.from_spans([])
        assert profile.nodes == []
        assert profile.total_us == 0
        assert profile.collapsed() == ""


class TestDeterministicFallback:
    def test_unit_switches_to_calls(self):
        profile = SpanProfile.from_spans(_tree(), deterministic=True)
        assert profile.unit == UNIT_CALLS
        assert profile.deterministic

    def test_collapsed_weights_are_call_counts(self):
        spans = [
            _span("root", "s0", None, 0.0),
            _span("step", "s1", "s0", 0.0),
            _span("step", "s2", "s0", 0.0),
        ]
        profile = SpanProfile.from_spans(spans, deterministic=True)
        assert profile.collapsed() == "root 1\nroot;step 2\n"


class TestCollapsed:
    def test_frames_joined_with_semicolons(self):
        lines = SpanProfile.from_spans(_tree()).collapsed().splitlines()
        assert "root 2000" in lines
        assert "root;a 3000" in lines
        assert "root;b 2000" in lines

    def test_zero_weight_nodes_skipped(self):
        spans = [
            _span("root", "s0", None, 0.001),
            _span("a", "s1", "s0", 0.001),
        ]
        collapsed = SpanProfile.from_spans(spans).collapsed()
        assert collapsed == "root;a 1000\n"

    def test_collapsed_weights_sum_to_total(self):
        profile = SpanProfile.from_spans(_tree())
        weights = [int(line.rsplit(" ", 1)[1])
                   for line in profile.collapsed().splitlines()]
        assert sum(weights) == profile.total_us


class TestExportAndValidation:
    def test_document_round_trips_through_validation(self):
        profile = SpanProfile.from_spans(_tree())
        record = json.loads(profile.to_json_bytes())
        assert record["format"] == PROFILE_FORMAT
        assert record["unit"] == UNIT_MICROSECONDS
        assert record["total_us"] == 7000
        validate_profile(record)

    def test_bytes_are_replay_stable(self):
        first = SpanProfile.from_spans(_tree()).to_json_bytes()
        second = SpanProfile.from_spans(_tree()).to_json_bytes()
        assert first == second

    def test_validation_catches_broken_telescoping(self):
        record = json.loads(
            SpanProfile.from_spans(_tree()).to_json_bytes())
        record["nodes"][0]["self_us"] += 1
        with pytest.raises(ObservabilityError):
            validate_profile(record)

    def test_validation_catches_total_mismatch(self):
        record = json.loads(
            SpanProfile.from_spans(_tree()).to_json_bytes())
        record["total_us"] += 1
        with pytest.raises(ObservabilityError):
            validate_profile(record)

    def test_validation_catches_missing_parent(self):
        record = json.loads(
            SpanProfile.from_spans(_tree()).to_json_bytes())
        record["nodes"] = [node for node in record["nodes"]
                           if node["path"] != ["root"]]
        with pytest.raises(ObservabilityError):
            validate_profile(record)

    def test_validation_catches_duplicate_paths(self):
        record = json.loads(
            SpanProfile.from_spans(_tree()).to_json_bytes())
        record["nodes"].append(dict(record["nodes"][0]))
        with pytest.raises(ObservabilityError):
            validate_profile(record)

    def test_validation_rejects_unknown_unit(self):
        record = json.loads(
            SpanProfile.from_spans(_tree()).to_json_bytes())
        record["unit"] = "furlongs"
        with pytest.raises(ObservabilityError):
            validate_profile(record)


class TestTracerIntegration:
    def _traced(self):
        ticks = itertools.count()
        tracer = Tracer("t", clock=lambda: float(next(ticks)))
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        return tracer

    def test_profile_from_real_spans(self):
        tracer = self._traced()
        spans = export_spans(tracer.spans)
        profile = SpanProfile.from_spans(spans, trace_id="t")
        by_path = {node.path: node for node in profile.nodes}
        # outer spans ticks 0..3 (3 us-seconds), inner 1..2.
        assert by_path[("outer",)].cum_us == 3_000_000
        assert by_path[("outer", "inner")].cum_us == 1_000_000
        assert by_path[("outer",)].self_us == 2_000_000
        validate_profile(json.loads(profile.to_json_bytes()))

    def test_deterministic_export_profiles_by_calls(self):
        tracer = self._traced()
        spans = export_spans(tracer.spans, deterministic=True)
        profile = SpanProfile.from_spans(spans, trace_id="t",
                                         deterministic=True)
        assert profile.collapsed() == "outer 1\nouter;inner 1\n"


class TestRendering:
    def test_table_ranks_by_self_weight(self):
        text = render_profile(SpanProfile.from_spans(_tree()))
        lines = text.splitlines()
        assert "total 7000 us" in lines[0]
        # a (3000) ranks above root and b (2000 each).
        assert lines[2].strip().startswith("3000")
        assert "root;a" in lines[2]

    def test_deterministic_header_names_the_fallback(self):
        text = render_profile(
            SpanProfile.from_spans(_tree(), deterministic=True))
        assert "call counts" in text
