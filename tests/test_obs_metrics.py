"""Metrics registry: instruments, bucket semantics, thread safety."""

from __future__ import annotations

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsRegistry,
    is_timing_metric,
    render_metrics,
)
from repro.runtime import ExecutionPolicy, parallel_map


class TestCounters:
    def test_increments_accumulate(self):
        counter = MetricsRegistry().counter("events")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_same_identity_shares_the_instrument(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events").inc()
        assert registry.counter("events").value == 2

    def test_labels_discriminate_series(self):
        registry = MetricsRegistry()
        registry.counter("findings", code="DAS001").inc()
        registry.counter("findings", code="DAS002").inc(2)
        assert registry.counter("findings", code="DAS001").value == 1
        assert registry.counter("findings", code="DAS002").value == 2

    def test_negative_increment_rejected(self):
        with pytest.raises(ObservabilityError, match="cannot decrease"):
            MetricsRegistry().counter("events").inc(-1)


class TestGauges:
    def test_last_write_wins(self):
        gauge = MetricsRegistry().gauge("utilization")
        gauge.set(0.5)
        gauge.set(0.75)
        assert gauge.value == 0.75


class TestHistogramBuckets:
    """Satellite: exact-edge, below-first, and above-last semantics."""

    BOUNDS = (1.0, 2.0, 5.0)

    def _histogram(self):
        return MetricsRegistry().histogram("lat", buckets=self.BOUNDS)

    def test_value_on_exact_edge_lands_in_that_bucket(self):
        histogram = self._histogram()
        for edge in self.BOUNDS:
            histogram.observe(edge)
        assert histogram.counts == [1, 1, 1, 0]

    def test_below_first_bound_lands_in_first_bucket(self):
        histogram = self._histogram()
        histogram.observe(0.0)
        histogram.observe(-3.0)
        histogram.observe(0.999)
        assert histogram.counts == [3, 0, 0, 0]

    def test_above_last_bound_lands_in_overflow(self):
        histogram = self._histogram()
        histogram.observe(5.0001)
        histogram.observe(1e9)
        assert histogram.counts == [0, 0, 0, 2]

    def test_interior_values_bin_by_upper_bound(self):
        histogram = self._histogram()
        histogram.observe(1.5)
        histogram.observe(4.9)
        assert histogram.counts == [0, 1, 1, 0]

    def test_count_and_sum_track_observations(self):
        histogram = self._histogram()
        for value in (0.5, 2.0, 10.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.sum == pytest.approx(12.5)
        assert sum(histogram.counts) == histogram.count

    def test_counts_has_one_slot_per_bound_plus_overflow(self):
        assert len(self._histogram().counts) == len(self.BOUNDS) + 1
        default = MetricsRegistry().histogram("t_seconds")
        assert len(default.counts) == len(DEFAULT_BUCKETS) + 1

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ObservabilityError, match="ascend"):
            MetricsRegistry().histogram("bad", buckets=(2.0, 1.0))

    def test_empty_bounds_rejected(self):
        with pytest.raises(ObservabilityError, match="at least one"):
            MetricsRegistry().histogram("bad", buckets=())

    def test_rebinning_under_same_identity_rejected(self):
        registry = MetricsRegistry()
        registry.histogram("lat", buckets=(1.0, 2.0))
        registry.histogram("lat", buckets=(1.0, 2.0))  # same is fine
        with pytest.raises(ObservabilityError, match="already exists"):
            registry.histogram("lat", buckets=(1.0, 3.0))


class TestThreadSafety:
    """Satellite: concurrent increments from thread workers lose
    no updates."""

    def test_concurrent_counter_increments_all_land(self):
        registry = MetricsRegistry()
        counter = registry.counter("stress")
        increments_per_task = 500

        def work(task: int) -> int:
            for _ in range(increments_per_task):
                counter.inc()
            return task

        n_tasks = 16
        results = parallel_map(work, list(range(n_tasks)),
                               ExecutionPolicy.threads(8))
        assert results == list(range(n_tasks))
        assert counter.value == n_tasks * increments_per_task

    def test_concurrent_histogram_observations_all_land(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("stress_lat", buckets=(10.0,))

        def work(task: int) -> int:
            for _ in range(200):
                histogram.observe(1.0)
            return task

        parallel_map(work, list(range(8)), ExecutionPolicy.threads(4))
        assert histogram.count == 8 * 200
        assert histogram.counts == [8 * 200, 0]


class TestSnapshot:
    def _populated(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        registry.counter("b.events").inc(3)
        registry.counter("a.events").inc(1)
        registry.gauge("pool_utilization").set(0.8)
        registry.histogram("chunk_seconds",
                           buckets=(0.1, 1.0)).observe(0.05)
        return registry

    def test_series_sorted_by_name_then_labels(self):
        snapshot = self._populated().snapshot()
        assert [c["name"] for c in snapshot["counters"]] == \
            ["a.events", "b.events"]

    def test_snapshot_is_json_serialisable(self):
        json.dumps(self._populated().snapshot())

    def test_to_json_bytes_deterministic(self):
        registry = self._populated()
        assert (registry.to_json_bytes(deterministic=True)
                == registry.to_json_bytes(deterministic=True))
        assert registry.to_json_bytes().endswith(b"\n")

    def test_timing_suffixes(self):
        assert is_timing_metric("chunk_seconds")
        assert is_timing_metric("worker_utilization")
        assert not is_timing_metric("events")

    def test_deterministic_mode_normalizes_timing_instruments(self):
        registry = self._populated()
        snapshot = registry.snapshot(deterministic=True)
        gauge = snapshot["gauges"][0]
        assert gauge["name"] == "pool_utilization"
        assert gauge["value"] == 0.0
        histogram = snapshot["histograms"][0]
        assert histogram["sum"] == 0.0
        assert histogram["counts"] == [0, 0, 0]
        # The observation count is run-invariant evidence and survives.
        assert histogram["count"] == 1

    def test_deterministic_mode_keeps_counting_instruments(self):
        snapshot = self._populated().snapshot(deterministic=True)
        values = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert values == {"a.events": 1, "b.events": 3}

    def test_render_metrics_lists_every_instrument(self):
        text = render_metrics(self._populated().snapshot())
        assert "a.events" in text
        assert "pool_utilization" in text
        assert "chunk_seconds" in text
        assert "count=1" in text

    def test_render_includes_labels(self):
        registry = MetricsRegistry()
        registry.counter("findings", code="DAS113").inc()
        text = render_metrics(registry.snapshot())
        assert 'findings{code="DAS113"}' in text

    def test_render_escapes_hostile_label_values(self):
        registry = MetricsRegistry()
        registry.counter("findings", path='a"b\\c\nd').inc()
        text = render_metrics(registry.snapshot())
        assert 'findings{path="a\\"b\\\\c\\nd"}' in text
        # The escaped rendering stays one line per sample.
        assert all(line.count("{") <= 1 for line in text.splitlines())
