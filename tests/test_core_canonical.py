"""The shared canonical JSON encoder: byte stability by construction."""

from __future__ import annotations

import json

from repro.core.canonical import (
    canonical_document,
    canonical_json,
    canonical_text,
)
from repro.datamodel.io import DatasetWriter
from repro.datamodel.schema import DataTier


class TestCanonicalJson:
    def test_key_insertion_order_is_erased(self):
        forward = canonical_json({"a": 1, "b": 2, "c": [3, 4]})
        backward = canonical_json({"c": [3, 4], "b": 2, "a": 1})
        assert forward == backward

    def test_compact_separators(self):
        assert canonical_json({"a": 1, "b": [2, 3]}) == (
            b'{"a":1,"b":[2,3]}')

    def test_nested_keys_are_sorted_too(self):
        payload = canonical_json({"outer": {"z": 1, "a": 2}})
        assert payload.index(b'"a"') < payload.index(b'"z"')

    def test_roundtrips_through_json(self):
        original = {"run": 7, "cuts": ["pt>25", "eta<2.5"]}
        assert json.loads(canonical_json(original)) == original


class TestCanonicalText:
    def test_sorted_and_indented(self):
        text = canonical_text({"b": 1, "a": 2})
        assert text == '{\n "a": 2,\n "b": 1\n}'

    def test_indent_none_gives_one_line(self):
        text = canonical_text({"b": 1, "a": 2}, indent=None)
        assert text == '{"a": 2, "b": 1}'
        assert "\n" not in text

    def test_document_is_text_plus_newline(self):
        payload = {"b": 1, "a": 2}
        assert canonical_document(payload) == (
            canonical_text(payload) + "\n").encode("utf-8")

    def test_document_honours_indent(self):
        assert canonical_document({"a": 1}, indent=2) == (
            b'{\n  "a": 1\n}\n')


class TestDatasetByteStability:
    def test_writer_output_ignores_record_key_order(self, tmp_path):
        """Replaying a write with reordered dicts gives identical bytes."""
        forward = [{"pt": 41.0, "eta": 0.5, "phi": 1.2},
                   {"pt": 38.5, "eta": -1.1, "phi": 0.3}]
        backward = [{key: record[key] for key in reversed(record)}
                    for record in forward]

        paths = []
        for name, records in (("fwd", forward), ("bwd", backward)):
            path = tmp_path / f"{name}.jsonl"
            writer = DatasetWriter(path, "muon_kinematics", DataTier.AOD,
                                   validate=False)
            for record in records:
                writer.write(record)
            writer.close()
            paths.append(path)

        assert paths[0].read_bytes() == paths[1].read_bytes()

    def test_written_lines_are_canonical(self, tmp_path):
        path = tmp_path / "events.jsonl"
        writer = DatasetWriter(path, "muon_kinematics", DataTier.AOD,
                               validate=False)
        writer.write({"pt": 41.0, "eta": 0.5})
        writer.close()

        lines = path.read_text(encoding="utf-8").splitlines()
        for line in lines:
            assert line.encode("utf-8") == canonical_json(
                json.loads(line))
