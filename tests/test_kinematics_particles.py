"""Tests for the particle table."""

import math

import pytest

from repro.errors import UnknownParticleError
from repro.kinematics import Particle, default_particle_table
from repro.kinematics.units import width_to_lifetime_ns


class TestDefaultTable:
    def test_contains_standard_species(self):
        table = default_particle_table()
        for pdg_id in (11, 13, 22, 23, 24, 25, 211, 421):
            assert pdg_id in table

    def test_antiparticles_registered(self):
        table = default_particle_table()
        assert -13 in table
        assert table.by_id(-13).charge == pytest.approx(1.0)

    def test_lookup_by_name(self):
        table = default_particle_table()
        z = table.by_name("Z")
        assert z.pdg_id == 23
        assert z.mass == pytest.approx(91.1876)

    def test_unknown_id_raises(self):
        table = default_particle_table()
        with pytest.raises(UnknownParticleError):
            table.by_id(999999)

    def test_unknown_name_raises(self):
        table = default_particle_table()
        with pytest.raises(UnknownParticleError):
            table.by_name("graviton")

    def test_fresh_instance_per_call(self):
        table1 = default_particle_table()
        table2 = default_particle_table()
        table1.register(Particle(32, "Z'", 1500.0, 0.0, width=45.0))
        assert 32 in table1
        assert 32 not in table2

    def test_charge_accessor(self):
        table = default_particle_table()
        assert table.charge(11) == pytest.approx(-1.0)
        assert table.charge(-11) == pytest.approx(1.0)
        assert table.charge(22) == 0.0


class TestParticleProperties:
    def test_stable_particle_infinite_lifetime(self):
        table = default_particle_table()
        assert table.by_id(11).lifetime_ns == math.inf
        assert table.by_id(2212).lifetime_ns == math.inf

    def test_z_width_gives_short_lifetime(self):
        table = default_particle_table()
        z = table.by_id(23)
        assert z.lifetime_ns == pytest.approx(
            width_to_lifetime_ns(2.4952)
        )
        assert z.lifetime_ns < 1e-15

    def test_d0_lifetime_near_world_average(self):
        table = default_particle_table()
        lifetime_ps = table.by_id(421).lifetime_ns * 1000.0
        assert lifetime_ps == pytest.approx(0.41, rel=0.02)

    def test_neutrinos_invisible(self):
        table = default_particle_table()
        assert table.by_id(12).is_invisible
        assert table.by_id(14).is_invisible
        assert not table.by_id(13).is_invisible

    def test_charged_flag(self):
        table = default_particle_table()
        assert table.by_id(211).is_charged
        assert not table.by_id(111).is_charged


class TestAntiparticle:
    def test_self_conjugate_species(self):
        table = default_particle_table()
        photon = table.by_id(22)
        assert photon.antiparticle() is photon

    def test_charge_conjugation(self):
        table = default_particle_table()
        pion = table.by_id(211)
        anti = pion.antiparticle()
        assert anti.pdg_id == -211
        assert anti.charge == pytest.approx(-1.0)
        assert anti.name == "pi-"

    def test_w_plus_to_minus_name(self):
        table = default_particle_table()
        w = table.by_id(24)
        assert w.antiparticle().name == "W-"
