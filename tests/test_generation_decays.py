"""Unit and property tests for decay kinematics."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import GenerationError
from repro.generation.decays import (
    breit_wigner_mass,
    sample_decay_vertex,
    smeared_primary_vertex,
    two_body_decay,
)
from repro.kinematics import FourVector


class TestTwoBodyDecay:
    def test_energy_momentum_conservation(self, rng):
        parent = FourVector.from_ptetaphim(30.0, 0.5, 1.0, 91.2)
        d1, d2 = two_body_decay(parent, 0.105, 0.105, rng)
        total = d1 + d2
        assert total.is_close(parent, rel_tol=1e-9, abs_tol=1e-6)

    def test_daughter_masses(self, rng):
        parent = FourVector.from_ptetaphim(10.0, -0.2, 0.1, 1.86)
        kaon, pion = two_body_decay(parent, 0.494, 0.140, rng)
        assert kaon.mass == pytest.approx(0.494, rel=1e-6)
        assert pion.mass == pytest.approx(0.140, rel=1e-6)

    def test_forbidden_decay_raises(self, rng):
        parent = FourVector.from_ptetaphim(10.0, 0.0, 0.0, 1.0)
        with pytest.raises(GenerationError):
            two_body_decay(parent, 0.8, 0.5, rng)

    def test_rest_frame_back_to_back(self, rng):
        parent = FourVector(91.2, 0.0, 0.0, 0.0)
        d1, d2 = two_body_decay(parent, 0.105, 0.105, rng)
        assert (d1.px + d2.px) == pytest.approx(0.0, abs=1e-9)
        assert d1.p == pytest.approx(d2.p, rel=1e-9)

    @given(mass=st.floats(min_value=1.0, max_value=500.0),
           pt=st.floats(min_value=0.0, max_value=200.0),
           seed=st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=80)
    def test_conservation_property(self, mass, pt, seed):
        rng = np.random.default_rng(seed)
        parent = FourVector.from_ptetaphim(pt, 0.3, -1.0, mass)
        m1 = 0.3 * mass
        m2 = 0.2 * mass
        d1, d2 = two_body_decay(parent, m1, m2, rng)
        assert (d1 + d2).is_close(parent, rel_tol=1e-7, abs_tol=1e-5)

    def test_isotropy_statistics(self, rng):
        parent = FourVector(100.0, 0.0, 0.0, 0.0)
        cosines = []
        for _ in range(2000):
            d1, _ = two_body_decay(parent, 1.0, 1.0, rng)
            cosines.append(d1.pz / d1.p)
        assert abs(np.mean(cosines)) < 0.05


class TestBreitWigner:
    def test_zero_width_returns_pole(self, rng):
        assert breit_wigner_mass(91.2, 0.0, rng) == 91.2

    def test_samples_respect_bounds(self, rng):
        for _ in range(500):
            mass = breit_wigner_mass(91.2, 2.5, rng, minimum=40.0)
            assert 40.0 <= mass <= 91.2 + 25 * 2.5

    def test_median_near_pole(self, rng):
        masses = [breit_wigner_mass(91.2, 2.5, rng, minimum=40.0)
                  for _ in range(3000)]
        assert float(np.median(masses)) == pytest.approx(91.2, abs=0.5)

    def test_half_width(self, rng):
        masses = np.array([breit_wigner_mass(91.2, 2.5, rng, minimum=40.0)
                           for _ in range(5000)])
        within = np.mean(np.abs(masses - 91.2) < 1.25)
        # A Cauchy has 50% of its mass within +-Gamma/2 of the pole.
        assert within == pytest.approx(0.5, abs=0.05)


class TestDecayVertex:
    def test_stable_particle_stays_at_origin(self, rng):
        momentum = FourVector.from_ptetaphim(10.0, 0.0, 0.0, 0.105)
        vertex, proper_time = sample_decay_vertex(momentum, math.inf, rng)
        assert vertex == (0.0, 0.0, 0.0)
        assert proper_time == math.inf

    def test_vertex_along_momentum(self, rng):
        momentum = FourVector.from_ptetaphim(5.0, 0.0, 0.0, 1.86)
        vertex, _ = sample_decay_vertex(momentum, 4.1e-4, rng)
        # phi = 0 means the flight is along +x.
        assert vertex[0] > 0.0
        assert vertex[1] == pytest.approx(0.0, abs=1e-9)

    def test_mean_flight_length(self, rng):
        momentum = FourVector.from_ptetaphim(5.0, 0.0, 0.0, 1.86)
        lengths = []
        for _ in range(4000):
            vertex, _ = sample_decay_vertex(momentum, 4.1e-4, rng)
            lengths.append(math.hypot(vertex[0], vertex[1]))
        beta_gamma = momentum.p / momentum.mass
        expected = beta_gamma * 299.792458 * 4.1e-4
        assert float(np.mean(lengths)) == pytest.approx(expected, rel=0.1)

    def test_massless_never_decays(self, rng):
        momentum = FourVector.from_ptetaphim(10.0, 0.0, 0.0, 0.0)
        vertex, proper_time = sample_decay_vertex(momentum, 1.0, rng)
        assert proper_time == math.inf
        assert vertex == (0.0, 0.0, 0.0)


class TestPrimaryVertex:
    def test_spread_scales(self, rng):
        zs = [smeared_primary_vertex(rng)[2] for _ in range(2000)]
        assert 30.0 < float(np.std(zs)) < 70.0

    def test_transverse_spread_small(self, rng):
        xs = [smeared_primary_vertex(rng)[0] for _ in range(2000)]
        assert float(np.std(xs)) < 0.05
