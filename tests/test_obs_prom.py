"""Prometheus text exposition: escaping, metadata, the round trip."""

import pytest

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.promexport import (
    escape_label_value,
    parse_prometheus,
    render_prometheus,
    sanitize_metric_name,
    unescape_label_value,
)

HOSTILE = 'a"b\\c\nd'


def _registry():
    registry = MetricsRegistry()
    registry.counter("service.commits", tenant="a").inc(3)
    registry.counter("service.commits", tenant="b").inc(1)
    registry.gauge("queue.depth", tenant="a").set(2.5)
    histogram = registry.histogram("wait", buckets=(1.0, 2.0))
    for value in (0.5, 1.5, 5.0):
        histogram.observe(value)
    return registry


class TestNames:
    def test_dots_become_underscores(self):
        assert sanitize_metric_name("service.commits") \
            == "service_commits"

    def test_colons_and_underscores_survive(self):
        assert sanitize_metric_name("a:b_c") == "a:b_c"

    def test_leading_digit_prefixed(self):
        assert sanitize_metric_name("2pc.aborts") == "_2pc_aborts"

    def test_empty_rejected(self):
        with pytest.raises(ObservabilityError):
            sanitize_metric_name("")


class TestEscaping:
    def test_the_three_escapes(self):
        assert escape_label_value(HOSTILE) == 'a\\"b\\\\c\\nd'

    def test_round_trip(self):
        assert unescape_label_value(escape_label_value(HOSTILE)) \
            == HOSTILE

    def test_unknown_escapes_pass_through(self):
        assert unescape_label_value("a\\tb") == "a\\tb"


class TestRendering:
    def test_counters_gain_the_total_suffix(self):
        text = render_prometheus(_registry().snapshot())
        assert 'service_commits_total{tenant="a"} 3' in text
        assert 'service_commits_total{tenant="b"} 1' in text

    def test_help_and_type_precede_each_family(self):
        lines = render_prometheus(_registry().snapshot()).splitlines()
        type_line = lines.index("# TYPE service_commits_total counter")
        assert lines[type_line - 1] \
            == "# HELP service_commits_total " \
               "repro metric service_commits_total"
        assert "# TYPE queue_depth gauge" in lines
        assert "# TYPE wait histogram" in lines

    def test_histogram_buckets_are_cumulative_with_inf(self):
        lines = render_prometheus(_registry().snapshot()).splitlines()
        assert 'wait_bucket{le="1.0"} 1' in lines
        assert 'wait_bucket{le="2.0"} 2' in lines
        assert 'wait_bucket{le="+Inf"} 3' in lines
        assert "wait_sum 7.0" in lines
        assert "wait_count 3" in lines

    def test_label_values_escaped(self):
        registry = MetricsRegistry()
        registry.counter("hits", path=HOSTILE).inc()
        text = render_prometheus(registry.snapshot())
        assert 'hits_total{path="a\\"b\\\\c\\nd"} 1' in text
        # The raw newline never leaks into the line structure.
        assert HOSTILE not in text

    def test_exactly_one_trailing_newline(self):
        text = render_prometheus(_registry().snapshot())
        assert text.endswith("\n")
        assert not text.endswith("\n\n")

    def test_empty_snapshot_renders_a_comment(self):
        assert render_prometheus(MetricsRegistry().snapshot()) \
            == "# (no metrics recorded)\n"

    def test_family_kind_conflicts_rejected(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.gauge("x_total").set(1.0)
        with pytest.raises(ObservabilityError):
            render_prometheus(registry.snapshot())

    def test_rendering_is_deterministic(self):
        assert render_prometheus(_registry().snapshot()) \
            == render_prometheus(_registry().snapshot())


class TestRoundTrip:
    def test_parse_recovers_families_and_samples(self):
        families = parse_prometheus(
            render_prometheus(_registry().snapshot()))
        assert families["service_commits_total"]["kind"] == "counter"
        assert ("service_commits_total", {"tenant": "a"}, 3.0) \
            in families["service_commits_total"]["samples"]
        assert families["queue_depth"]["samples"] \
            == [("queue_depth", {"tenant": "a"}, 2.5)]

    def test_parse_recovers_hostile_labels(self):
        registry = MetricsRegistry()
        registry.counter("hits", path=HOSTILE).inc()
        families = parse_prometheus(
            render_prometheus(registry.snapshot()))
        (_, labels, value), = families["hits_total"]["samples"]
        assert labels == {"path": HOSTILE}
        assert value == 1.0

    def test_parse_recovers_cumulative_buckets(self):
        families = parse_prometheus(
            render_prometheus(_registry().snapshot()))
        buckets = [
            (labels["le"], value)
            for name, labels, value in families["wait"]["samples"]
            if name == "wait_bucket"
        ]
        assert buckets == [("1.0", 1.0), ("2.0", 2.0), ("+Inf", 3.0)]

    def test_sample_before_type_line_rejected(self):
        with pytest.raises(ObservabilityError):
            parse_prometheus("orphan 1\n")
