"""Service telemetry wiring, default SLOs, and registry determinism."""

import math

from repro.obs.metrics import MetricsRegistry
from repro.recast import ModelSpec
from repro.runtime import ExecutionPolicy
from repro.service import (
    CrashingBackend,
    RecastService,
    ServiceConfig,
    TenantQuota,
    default_service_slo,
    demo_api,
    demo_script,
    run_lease_batch,
    run_script,
)
from repro.obs.slo import evaluate_slo
from repro.obs.telemetry import TelemetryHub
from repro.runtime import LogicalClock


def model(mass=1500.0, name=None):
    return ModelSpec(name or f"Zp-{mass:g}", "zprime",
                     {"mass": mass, "cross_section_pb": 0.05})


def make_service(config=None, **kwargs):
    api = demo_api(n_events=40, n_limit_toys=200)
    service = RecastService(
        api,
        config if config is not None else ServiceConfig(
            lease_duration=2.0, max_attempts=3,
            backoff_base=1.0, backoff_cap=4.0),
        **kwargs,
    )
    return api, service


def finished_snapshot(service):
    service.telemetry.flush(final=True)
    return service.telemetry.snapshot(deterministic=True)


def series(snapshot, name, **labels):
    for entry in snapshot["series"]:
        if entry["name"] == name and entry["labels"] == labels:
            return entry
    raise AssertionError(f"no series {name!r} with labels {labels!r}")


def total(entry):
    return math.fsum(window["sum"] for window in entry["windows"])


def count(entry):
    return sum(window["count"] for window in entry["windows"])


class TestSchedulerWiring:
    def test_lifecycle_series_recorded(self):
        _, service = make_service()
        service.register_tenant("t")
        service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        snapshot = finished_snapshot(service)
        names = {entry["name"] for entry in snapshot["series"]}
        assert {"service.submissions", "service.admissions",
                "service.leases", "service.wait_time",
                "service.commits", "service.queue_depth",
                "service.inflight"} <= names
        assert count(series(snapshot, "service.submissions",
                            tenant="t")) == 1
        assert count(series(snapshot, "service.commits",
                            tenant="t")) == 1
        # The inflight gauge series is unlabelled.
        series(snapshot, "service.inflight")

    def test_wait_time_measures_queue_delay(self):
        _, service = make_service(ServiceConfig(
            lease_duration=2.0, max_attempts=3,
            backoff_base=1.0, backoff_cap=4.0, max_inflight=1))
        service.register_tenant("t")
        service.submit("t", "GPD-EXO-01", model(1500.0))
        service.submit("t", "GPD-EXO-01", model(1600.0))
        service.run_until_idle()
        waits = series(finished_snapshot(service),
                       "service.wait_time", tenant="t")
        # First grant waits 0 ticks, the second one full round.
        assert count(waits) == 2
        assert total(waits) == 1.0

    def test_dedup_hits_counted(self):
        _, service = make_service()
        service.register_tenant("t")
        service.submit("t", "GPD-EXO-01", model())
        service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        snapshot = finished_snapshot(service)
        assert count(series(snapshot, "service.dedup_hits",
                            tenant="t")) == 1
        assert count(series(snapshot, "service.admissions",
                            tenant="t")) == 1

    def test_quota_rejections_counted(self):
        _, service = make_service()
        service.register_tenant("t", TenantQuota(max_queued=1))
        service.submit("t", "GPD-EXO-01", model(1500.0))
        service.submit("t", "GPD-EXO-01", model(1600.0))
        service.run_until_idle()
        snapshot = finished_snapshot(service)
        assert count(series(snapshot, "service.admission_rejections",
                            tenant="t")) == 1

    def test_crash_recovery_emits_expiry_and_retry_series(self):
        api, service = make_service()
        api._backends["GPD"] = CrashingBackend(
            inner=api._backends["GPD"], crash_times=1,
            name="GPD-full-chain")
        service.register_tenant("t")
        service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        snapshot = finished_snapshot(service)
        assert count(series(snapshot, "service.lease_expiries",
                            tenant="t")) == 1
        assert count(series(snapshot, "service.lease_retries",
                            tenant="t")) == 1
        assert count(series(snapshot, "service.leases",
                            tenant="t")) == 2

    def test_disabled_hub_records_nothing_and_costs_nothing(self):
        clock = LogicalClock()
        hub = TelemetryHub(clock, enabled=False)
        _, service = make_service(clock=clock, telemetry=hub)
        service.register_tenant("t")
        ticket = service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        assert service.telemetry is hub
        assert service.telemetry.n_observations == 0
        assert finished_snapshot(service)["series"] == []
        assert ticket.status == "queued"


class TestScriptReplay:
    def _run(self):
        service, _ = run_script(demo_api(), demo_script())
        return service

    def test_telemetry_snapshot_replays_byte_identically(self):
        first = self._run().telemetry.to_json_bytes(deterministic=True)
        second = self._run().telemetry.to_json_bytes(deterministic=True)
        assert first == second

    def test_default_slo_passes_on_the_demo_workload(self):
        snapshot = self._run().telemetry.snapshot(deterministic=True)
        report = evaluate_slo(default_service_slo(), snapshot)
        assert report.ok
        # The per-tenant wait objective expanded over the demo tenants.
        wait_rows = [row for row in report.objectives
                     if row["name"] == "wait-p95-ceiling"]
        assert len(wait_rows) >= 2
        assert all(row["tenant"] for row in wait_rows)

    def test_health_report_replays_byte_identically(self):
        def health():
            snapshot = self._run().telemetry.snapshot(
                deterministic=True)
            return evaluate_slo(default_service_slo(),
                                snapshot).to_json_bytes()

        assert health() == health()

    def test_default_slo_is_versioned_and_covers_the_kinds(self):
        spec = default_service_slo()
        assert spec.revision == 1
        kinds = {objective.kind for objective in spec.objectives}
        assert kinds == {"quantile_ceiling", "availability",
                         "ratio_ceiling", "ratio_floor"}


class TestRegistryUnderThreads:
    """Satellite: MetricsRegistry merged snapshots must not depend on
    the execution policy that produced the updates."""

    def _run(self, policy):
        registry = MetricsRegistry()

        def work(item):
            registry.counter("events", tenant=f"t{item % 3}").inc()
            registry.histogram("load", buckets=(2.0, 4.0),
                               tenant=f"t{item % 3}").observe(
                float(item % 5))
            return item

        run_lease_batch(work, list(range(96)), policy)
        return registry

    def test_thread_snapshot_is_byte_identical_to_serial(self):
        serial = self._run(ExecutionPolicy.serial())
        threaded = self._run(ExecutionPolicy(mode="thread", n_jobs=4))
        assert threaded.to_json_bytes() == serial.to_json_bytes()

    def test_concurrent_counts_are_lossless(self):
        registry = self._run(ExecutionPolicy(mode="thread", n_jobs=4))
        snapshot = registry.snapshot()
        assert sum(c["value"] for c in snapshot["counters"]) == 96
        assert sum(h["count"] for h in snapshot["histograms"]) == 96


class TestLabelCardinality:
    def test_empty_labels_and_labelled_series_coexist(self):
        registry = MetricsRegistry()
        registry.counter("events").inc()
        registry.counter("events", tenant="a").inc(2)
        snapshot = registry.snapshot()
        assert [(c["labels"], c["value"])
                for c in snapshot["counters"]] \
            == [({}, 1), ({"tenant": "a"}, 2)]

    def test_unicode_label_values_survive_the_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("events", tenant="θ-gruppe").inc()
        snapshot = registry.snapshot()
        assert snapshot["counters"][0]["labels"] \
            == {"tenant": "θ-gruppe"}
        assert b"\\u03b8" in registry.to_json_bytes()

    def test_kwarg_order_does_not_split_an_instrument(self):
        registry = MetricsRegistry()
        first = registry.counter("events", a="1", b="2")
        second = registry.counter("events", b="2", a="1")
        assert second is first
        first.inc()
        second.inc()
        assert len(registry.snapshot()["counters"]) == 1
        assert registry.snapshot()["counters"][0]["value"] == 2
