"""Tests for detector geometries."""

import pytest

from repro.detector import (
    DetectorGeometry,
    SubDetector,
    forward_spectrometer,
    generic_lhc_detector,
)
from repro.detector.geometry import SubDetectorKind
from repro.errors import ConfigurationError


class TestSubDetector:
    def test_inverted_envelope_rejected(self):
        with pytest.raises(ConfigurationError):
            SubDetector("bad", SubDetectorKind.TRACKER, 2.5, 100.0, 50.0)

    def test_layer_outside_envelope_rejected(self):
        with pytest.raises(ConfigurationError):
            SubDetector("bad", SubDetectorKind.TRACKER, 2.5, 50.0, 100.0,
                        layer_radii_mm=(200.0,))

    def test_non_positive_eta_rejected(self):
        with pytest.raises(ConfigurationError):
            SubDetector("bad", SubDetectorKind.ECAL, 0.0, 10.0, 20.0)


class TestGeometry:
    def test_generic_detector_has_all_systems(self):
        geometry = generic_lhc_detector()
        assert geometry.tracker.name == "tracker"
        assert geometry.ecal.eta_cells > 0
        assert geometry.hcal.kind == SubDetectorKind.HCAL
        assert len(geometry.muon_system.layer_radii_mm) == 3

    def test_forward_detector_layout(self):
        geometry = forward_spectrometer()
        assert geometry.tracker.hit_resolution_mm < 0.05
        assert geometry.tracker.eta_max > 4.0

    def test_duplicate_name_rejected(self):
        geometry = generic_lhc_detector()
        with pytest.raises(ConfigurationError):
            geometry.add(SubDetector("tracker", SubDetectorKind.TRACKER,
                                     2.5, 10.0, 20.0))

    def test_missing_system_raises(self):
        geometry = DetectorGeometry("empty", 2.0)
        with pytest.raises(ConfigurationError):
            _ = geometry.tracker

    def test_of_kind_filtering(self):
        geometry = generic_lhc_detector()
        trackers = geometry.of_kind(SubDetectorKind.TRACKER)
        assert len(trackers) == 1


class TestDisplayExport:
    def test_export_is_self_documenting(self):
        record = generic_lhc_detector().to_display_dict()
        assert record["schema"]["format"] == "repro-display-geometry"
        assert "units" in record["schema"]
        assert len(record["subdetectors"]) == 4

    def test_export_units_and_fields(self):
        record = forward_spectrometer().to_display_dict()
        assert record["schema"]["units"]["length"] == "mm"
        names = [s["name"] for s in record["subdetectors"]]
        assert "velo_tracker" in names

    def test_export_round_numbers(self):
        record = generic_lhc_detector().to_display_dict()
        tracker = next(s for s in record["subdetectors"]
                       if s["name"] == "tracker")
        assert tracker["layer_radii_mm"][0] == 50.0
