"""Tests for run/luminosity bookkeeping and good-run lists."""

import pytest

from repro.datamodel import (
    GoodRunList,
    RunRecord,
    RunRegistry,
    certify_good_runs,
)
from repro.errors import DataModelError, PersistenceError


@pytest.fixture
def registry():
    registry = RunRegistry("RunA-2012")
    registry.add(RunRecord(1, 100, 0.5))
    registry.add(RunRecord(2, 200, 0.5))
    registry.add(RunRecord(3, 50, 0.5, detector_ok=False))
    return registry


class TestRunRegistry:
    def test_total_luminosity(self, registry):
        assert registry.total_luminosity_ipb() == pytest.approx(175.0)

    def test_duplicate_run_rejected(self, registry):
        with pytest.raises(DataModelError):
            registry.add(RunRecord(1, 10, 0.5))

    def test_unknown_run_raises(self, registry):
        with pytest.raises(DataModelError):
            registry.get(99)

    def test_run_validation(self):
        with pytest.raises(DataModelError):
            RunRecord(1, 0, 0.5)
        with pytest.raises(DataModelError):
            RunRecord(-1, 10, 0.5)
        with pytest.raises(DataModelError):
            RunRecord(1, 10, -0.5)

    def test_roundtrip(self):
        run = RunRecord(7, 42, 0.3, detector_ok=False)
        assert RunRecord.from_dict(run.to_dict()) == run


class TestGoodRunList:
    def test_certify_and_query(self):
        grl = GoodRunList("GRL-test")
        grl.certify(1, 1, 50)
        grl.certify(1, 60, 80)
        assert grl.is_good(1, 25)
        assert not grl.is_good(1, 55)
        assert grl.is_good(1, 60)
        assert not grl.is_good(2, 1)
        assert grl.certified_sections(1) == 71

    def test_overlapping_ranges_rejected(self):
        grl = GoodRunList("GRL-test")
        grl.certify(1, 1, 50)
        with pytest.raises(DataModelError):
            grl.certify(1, 40, 60)

    def test_bad_range_rejected(self):
        grl = GoodRunList("GRL-test")
        with pytest.raises(DataModelError):
            grl.certify(1, 0, 10)
        with pytest.raises(DataModelError):
            grl.certify(1, 10, 5)

    def test_certified_luminosity(self, registry):
        grl = GoodRunList("GRL-test")
        grl.certify(1, 1, 100)
        grl.certify(2, 1, 100)  # half of run 2
        assert grl.certified_luminosity_ipb(registry) == \
            pytest.approx(100.0)

    def test_ranges_clipped_to_run_length(self, registry):
        grl = GoodRunList("GRL-test")
        grl.certify(1, 1, 1000)  # run 1 only has 100 sections
        assert grl.certified_luminosity_ipb(registry) == \
            pytest.approx(50.0)

    def test_unknown_runs_ignored(self, registry):
        grl = GoodRunList("GRL-test")
        grl.certify(99, 1, 100)
        assert grl.certified_luminosity_ipb(registry) == 0.0

    def test_auto_certification_skips_bad_runs(self, registry):
        grl = certify_good_runs(registry)
        assert grl.is_good(1, 1)
        assert grl.is_good(2, 200)
        assert not grl.is_good(3, 1)
        assert grl.certified_luminosity_ipb(registry) == \
            pytest.approx(150.0)

    def test_file_roundtrip(self, registry, tmp_path):
        grl = certify_good_runs(registry)
        path = tmp_path / "grl.json"
        grl.save(path)
        loaded = GoodRunList.load(path)
        assert loaded.certified_luminosity_ipb(registry) == \
            pytest.approx(grl.certified_luminosity_ipb(registry))

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text('{"format": "nope"}')
        with pytest.raises(PersistenceError):
            GoodRunList.load(path)


class TestLimitIntegration:
    def test_certified_luminosity_feeds_limits(self, registry):
        """A GRL change propagates into the physics result."""
        from repro.stats import CountingExperiment, cls_upper_limit

        full_grl = certify_good_runs(registry)
        partial = GoodRunList("partial")
        partial.certify(1, 1, 100)

        def limit_with(grl):
            luminosity = grl.certified_luminosity_ipb(registry)
            experiment = CountingExperiment(
                n_observed=3, background=3.0,
                background_uncertainty=0.3,
                signal_efficiency=0.5, luminosity=luminosity,
            )
            return cls_upper_limit(experiment, n_toys=1000,
                                   seed=11).upper_limit

        # Less certified luminosity -> weaker (larger) limit.
        assert limit_with(partial) > limit_with(full_grl)
