"""Tests for multi-run processing campaigns."""

import pytest

from repro.datamodel import GoodRunList, RunRecord, RunRegistry
from repro.errors import WorkflowError
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.workflow import ProcessingCampaign


@pytest.fixture(scope="module")
def campaign_setup(gpd_geometry, conditions_store):
    registry = RunRegistry("RunA")
    registry.add(RunRecord(5, 60, 0.5))
    registry.add(RunRecord(25, 80, 0.5))
    registry.add(RunRecord(45, 40, 0.5, detector_ok=False))
    good_runs = GoodRunList("GRL")
    good_runs.certify(5, 1, 60)
    good_runs.certify(25, 1, 80)
    campaign = ProcessingCampaign(
        name="Reco-v1",
        geometry=gpd_geometry,
        conditions=conditions_store,
        global_tag="GT-FINAL",
        generator=ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=6100)),
        events_per_section=0.3,
        max_events_per_run=20,
    )
    results = campaign.process(registry, good_runs)
    return campaign, registry, good_runs, results


class TestCampaign:
    def test_only_certified_runs_processed(self, campaign_setup):
        _, _, _, results = campaign_setup
        assert set(results) == {5, 25}

    def test_event_counts_follow_luminosity(self, campaign_setup):
        _, _, _, results = campaign_setup
        assert results[25].n_events >= results[5].n_events
        assert all(result.n_events > 0 for result in results.values())

    def test_events_carry_their_run_number(self, campaign_setup):
        _, _, _, results = campaign_setup
        for run_number, result in results.items():
            assert all(aod.run_number == run_number
                       for aod in result.aods)

    def test_per_run_conditions_recorded(self, campaign_setup):
        campaign, _, _, results = campaign_setup
        manifest = campaign.conditions_manifest()
        assert set(manifest["runs"]) == {"5", "25"}
        for run_number, result in results.items():
            assert "calo/ecal_energy_scale" in result.conditions_used

    def test_conditions_differ_across_iov_boundaries(self,
                                                     campaign_setup,
                                                     conditions_store):
        # Runs 5 and 25 sit in different 10-run IOV blocks, so the
        # campaign used genuinely different constants for them.
        _, _, _, results = campaign_setup
        scale_5 = results[5].conditions_used[
            "calo/ecal_energy_scale"]["scale"]
        scale_25 = results[25].conditions_used[
            "calo/ecal_energy_scale"]["scale"]
        assert scale_5 != scale_25

    def test_combined_sample_run_ordered(self, campaign_setup):
        campaign, _, _, _ = campaign_setup
        runs = [aod.run_number for aod in campaign.all_aods()]
        assert runs == sorted(runs)

    def test_describe_block(self, campaign_setup):
        campaign, _, _, _ = campaign_setup
        record = campaign.describe()
        assert record["campaign"] == "Reco-v1"
        assert record["global_tag"] == "GT-FINAL"

    def test_bad_configuration_rejected(self, gpd_geometry,
                                        conditions_store):
        with pytest.raises(WorkflowError):
            ProcessingCampaign(
                name="bad", geometry=gpd_geometry,
                conditions=conditions_store, global_tag="GT-FINAL",
                generator=ToyGenerator(GeneratorConfig(
                    processes=[DrellYanZ()], seed=1)),
                events_per_section=0.0,
            )
