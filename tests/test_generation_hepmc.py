"""Tests for the truth event record."""

import pytest

from repro.errors import GenerationError
from repro.generation import GenEvent, ParticleStatus
from repro.kinematics import FourVector


def _simple_event():
    event = GenEvent(event_number=1, process_id=230,
                     process_name="z_to_mumu", sqrt_s=8000.0)
    z = event.add_particle(
        23, FourVector.from_ptetaphim(20.0, 0.1, 0.2, 91.2),
        ParticleStatus.DECAYED,
    )
    event.add_particle(
        13, FourVector.from_ptetaphim(45.0, 0.2, 0.3, 0.105),
        ParticleStatus.FINAL, parents=[z.index],
    )
    event.add_particle(
        -13, FourVector.from_ptetaphim(44.0, -0.1, -2.8, 0.105),
        ParticleStatus.FINAL, parents=[z.index],
    )
    return event


class TestEventStructure:
    def test_parent_child_links(self):
        event = _simple_event()
        z = event.particles[0]
        assert z.children == [1, 2]
        assert event.particles[1].parents == [0]

    def test_final_state_selection(self):
        event = _simple_event()
        finals = event.final_state()
        assert len(finals) == 2
        assert all(p.is_final for p in finals)

    def test_particles_with_pdg(self):
        event = _simple_event()
        muons = event.particles_with_pdg(13, -13)
        assert len(muons) == 2
        assert len(event.particles_with_pdg(23)) == 1

    def test_out_of_range_parent_rejected(self):
        event = GenEvent(1, 1, "test", 8000.0)
        with pytest.raises(GenerationError):
            event.add_particle(
                13, FourVector.zero(), ParticleStatus.FINAL, parents=[5]
            )

    def test_validate_passes_for_consistent_event(self):
        _simple_event().validate()

    def test_validate_detects_broken_links(self):
        event = _simple_event()
        event.particles[0].children.clear()
        with pytest.raises(GenerationError):
            event.validate()

    def test_visible_momentum_excludes_invisibles(self):
        event = GenEvent(1, 1, "test", 8000.0)
        event.add_particle(
            13, FourVector.from_ptetaphim(30.0, 0.0, 0.0, 0.105),
            ParticleStatus.FINAL,
        )
        event.add_particle(
            14, FourVector.from_ptetaphim(30.0, 0.0, 3.14, 0.0),
            ParticleStatus.FINAL,
        )
        visible = event.visible_momentum(frozenset({14, -14}))
        assert visible.pt == pytest.approx(30.0, rel=1e-6)


class TestSerialisation:
    def test_roundtrip_preserves_structure(self):
        event = _simple_event()
        restored = GenEvent.from_dict(event.to_dict())
        restored.validate()
        assert len(restored.particles) == 3
        assert restored.process_name == "z_to_mumu"
        assert restored.particles[1].parents == [0]
        assert restored.particles[0].momentum.is_close(
            event.particles[0].momentum
        )

    def test_roundtrip_preserves_vertices(self):
        event = GenEvent(1, 400, "d0", 8000.0)
        particle = event.add_particle(
            421, FourVector.from_ptetaphim(5.0, 2.5, 0.1, 1.86),
            ParticleStatus.DECAYED,
            production_vertex=(0.1, 0.2, 0.3),
        )
        particle.decay_vertex = (1.0, 2.0, 3.0)
        restored = GenEvent.from_dict(event.to_dict())
        assert restored.particles[0].production_vertex == (0.1, 0.2, 0.3)
        assert restored.particles[0].decay_vertex == (1.0, 2.0, 3.0)

    def test_default_weight(self):
        record = _simple_event().to_dict()
        del record["weight"]
        assert GenEvent.from_dict(record).weight == 1.0
