"""Tests for the trigger menu and data acquisition."""

import math

import pytest

from repro.detector import DetectorSimulation, Digitizer, generic_lhc_detector
from repro.errors import ConfigurationError
from repro.generation import (
    DrellYanZ,
    GeneratorConfig,
    MinimumBias,
    QCDDijets,
    ToyGenerator,
)
from repro.trigger import (
    DataAcquisition,
    TriggerMenu,
    TriggerPath,
    standard_menu,
)


@pytest.fixture(scope="module")
def sim_events():
    geometry = generic_lhc_detector()
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ(), QCDDijets(cross_section_pb=1100.0),
                   MinimumBias(cross_section_pb=1100.0)],
        seed=5000,
    ))
    simulation = DetectorSimulation(geometry, seed=5001)
    return [simulation.simulate(event)
            for event in generator.generate(150)]


class TestTriggerPath:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TriggerPath("bad", "neutrino", 5.0)
        with pytest.raises(ConfigurationError):
            TriggerPath("bad", "muon", 5.0, prescale=0)
        with pytest.raises(ConfigurationError):
            TriggerPath("bad", "muon", 5.0, min_count=0)

    def test_muon_path_fires_on_z_events(self, sim_events):
        path = TriggerPath("mu8", "muon", 8.0)
        fires = sum(path.fires(event) for event in sim_events)
        assert fires > 10

    def test_threshold_ordering(self, sim_events):
        loose = TriggerPath("mu4", "muon", 4.0)
        tight = TriggerPath("mu30", "muon", 30.0)
        n_loose = sum(loose.fires(event) for event in sim_events)
        n_tight = sum(tight.fires(event) for event in sim_events)
        assert n_tight < n_loose

    def test_prescale_keeps_every_nth(self, sim_events):
        raw = TriggerPath("trk", "track", 0.5)
        prescaled = TriggerPath("trk_ps5", "track", 0.5, prescale=5)
        n_raw = sum(raw.fires(event) for event in sim_events)
        n_kept = sum(prescaled.accepts(event) for event in sim_events)
        assert n_kept == n_raw // 5

    def test_describe(self):
        record = TriggerPath("mu8", "muon", 8.0, prescale=2).describe()
        assert record == {"name": "mu8", "object": "muon",
                          "threshold": 8.0, "min_count": 1,
                          "prescale": 2}


class TestTriggerMenu:
    def test_empty_menu_rejected(self):
        with pytest.raises(ConfigurationError):
            TriggerMenu("empty", [])

    def test_duplicate_path_names_rejected(self):
        with pytest.raises(ConfigurationError):
            TriggerMenu("dup", [TriggerPath("a", "muon", 5.0),
                                TriggerPath("a", "calo", 5.0)])

    def test_acceptance_bookkeeping(self, sim_events):
        menu = standard_menu()
        decisions = [menu.decide(event) for event in sim_events]
        assert menu.n_seen == len(sim_events)
        assert menu.n_accepted == sum(d.accepted for d in decisions)
        assert 0.0 < menu.acceptance() < 1.0

    def test_rates_per_path(self, sim_events):
        menu = standard_menu()
        for event in sim_events:
            menu.decide(event)
        rates = menu.rates()
        assert set(rates) == {"L1_SingleMu8", "L1_DoubleMu4",
                              "L1_Calo30", "L1_Track2_PS20"}
        assert all(0.0 <= rate <= 1.0 for rate in rates.values())

    def test_empty_menu_rate_is_nan(self):
        menu = standard_menu()
        assert math.isnan(menu.acceptance())

    def test_describe_is_preservable(self):
        record = standard_menu().describe()
        assert record["menu"] == "TOY-MENU-v1"
        assert len(record["paths"]) == 4


class TestDataAcquisition:
    def test_only_accepted_events_recorded(self, sim_events):
        geometry = generic_lhc_detector()
        daq = DataAcquisition(standard_menu(),
                              Digitizer(geometry, seed=5002))
        decisions = daq.process_many(sim_events)
        n_accepted = sum(d.accepted for d in decisions)
        assert len(daq.recorded("physics")) == n_accepted
        assert 0 < n_accepted < len(sim_events)

    def test_stream_routing(self, sim_events):
        geometry = generic_lhc_detector()
        daq = DataAcquisition(
            standard_menu(), Digitizer(geometry, seed=5003),
            streams={
                "muons": ("L1_SingleMu8", "L1_DoubleMu4"),
                "jets": ("L1_Calo30",),
            },
        )
        daq.process_many(sim_events)
        muon_stream = daq.recorded("muons")
        jet_stream = daq.recorded("jets")
        assert muon_stream and jet_stream
        # Routing is by fired path: every muon-stream event had a muon
        # path fire.
        accepted = {d.event_number: set(d.fired_paths)
                    for d in daq.decisions if d.accepted}
        for raw in muon_stream:
            assert accepted[raw.event_number] & {"L1_SingleMu8",
                                                 "L1_DoubleMu4"}

    def test_unknown_stream_path_rejected(self):
        geometry = generic_lhc_detector()
        with pytest.raises(ConfigurationError):
            DataAcquisition(standard_menu(),
                            Digitizer(geometry, seed=1),
                            streams={"x": ("L1_Nope",)})

    def test_unknown_stream_lookup_rejected(self, sim_events):
        geometry = generic_lhc_detector()
        daq = DataAcquisition(standard_menu(),
                              Digitizer(geometry, seed=5004))
        with pytest.raises(ConfigurationError):
            daq.recorded("nope")

    def test_summaries(self, sim_events):
        geometry = generic_lhc_detector()
        daq = DataAcquisition(standard_menu(),
                              Digitizer(geometry, seed=5005))
        daq.process_many(sim_events)
        summary = daq.summaries()[0]
        assert summary.stream == "physics"
        assert summary.total_bytes > 0

    def test_recorded_events_reconstructible(self, sim_events,
                                             conditions_store):
        from repro.reconstruction import GlobalTagView, Reconstructor

        geometry = generic_lhc_detector()
        daq = DataAcquisition(standard_menu(),
                              Digitizer(geometry, run_number=42,
                                        seed=5006))
        daq.process_many(sim_events[:50])
        reconstructor = Reconstructor(
            geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        recos = reconstructor.reconstruct_many(
            daq.recorded("physics"))
        assert any(reco.muons for reco in recos)
