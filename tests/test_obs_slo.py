"""The SLO spec, the health engine, and verdict semantics."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.slo import (
    HEALTH_FORMAT,
    SLO_FORMAT,
    VERDICT_DEGRADED,
    VERDICT_FAILING,
    VERDICT_OK,
    HealthReport,
    Objective,
    SLOSpec,
    evaluate_slo,
    render_health,
    validate_health_report,
)
from repro.obs.telemetry import TelemetryHub, WindowSpec
from repro.runtime import LogicalClock


def _quantile_objective(threshold, tolerated=0.0, tenant=""):
    return Objective(name="latency", kind="quantile_ceiling",
                     series="wait", quantile=0.95,
                     threshold=threshold, tenant=tenant,
                     tolerated_breach_fraction=tolerated)


def _spec(*objectives):
    return SLOSpec(name="test", objectives=tuple(objectives))


def _snapshot(values_by_window, tenant="a", name="wait"):
    """A telemetry snapshot with one value list per 4-tick window."""
    clock = LogicalClock()
    hub = TelemetryHub(clock, spec=WindowSpec(width=4.0))
    for values in values_by_window:
        for value in values:
            hub.observe(name, value, tenant=tenant)
        clock.advance(4.0)
    hub.flush(final=True)
    return hub.snapshot(deterministic=True)


class TestObjectiveValidation:
    def test_known_kinds_only(self):
        with pytest.raises(ObservabilityError):
            Objective(name="x", kind="sparkle", series="s",
                      threshold=1.0)

    def test_quantile_must_sit_on_the_grid(self):
        with pytest.raises(ObservabilityError):
            Objective(name="x", kind="quantile_ceiling", series="s",
                      quantile=0.42, threshold=1.0)

    def test_ratio_kinds_need_a_denominator(self):
        with pytest.raises(ObservabilityError):
            Objective(name="x", kind="availability", series="good",
                      threshold=0.9)

    def test_breach_budget_bounded(self):
        with pytest.raises(ObservabilityError):
            _quantile_objective(1.0, tolerated=1.5)

    def test_round_trip(self):
        objective = _quantile_objective(3.0, tolerated=0.25,
                                        tenant="*")
        assert Objective.from_dict(objective.to_dict()) == objective

    def test_unknown_fields_rejected(self):
        record = _quantile_objective(3.0).to_dict()
        record["severity"] = "high"
        with pytest.raises(ObservabilityError):
            Objective.from_dict(record)


class TestSLOSpec:
    def test_duplicate_objective_names_rejected(self):
        with pytest.raises(ObservabilityError):
            _spec(_quantile_objective(1.0), _quantile_objective(2.0))

    def test_empty_spec_rejected(self):
        with pytest.raises(ObservabilityError):
            SLOSpec(name="empty", objectives=())

    def test_versioned_round_trip(self):
        spec = SLOSpec(name="v", revision=3,
                       objectives=(_quantile_objective(1.0),))
        record = spec.to_dict()
        assert record["format"] == SLO_FORMAT
        assert SLOSpec.from_dict(record) == spec

    def test_load_rejects_wrong_envelope(self, tmp_path):
        path = tmp_path / "spec.json"
        path.write_text(json.dumps({"format": "other"}))
        with pytest.raises(ObservabilityError):
            SLOSpec.load(path)

    def test_load_round_trips_from_disk(self, tmp_path):
        spec = _spec(_quantile_objective(2.0))
        path = tmp_path / "spec.json"
        path.write_text(json.dumps(spec.to_dict()))
        assert SLOSpec.load(path) == spec


class TestQuantileCeiling:
    def test_ok_when_every_window_meets_the_ceiling(self):
        snapshot = _snapshot([[1.0, 2.0], [2.0, 3.0]])
        report = evaluate_slo(_spec(_quantile_objective(5.0)), snapshot)
        assert report.verdict == VERDICT_OK
        assert report.objectives[0]["windows_evaluated"] == 2

    def test_failing_when_breaches_exceed_the_budget(self):
        snapshot = _snapshot([[10.0], [10.0]])
        report = evaluate_slo(_spec(_quantile_objective(5.0)), snapshot)
        assert report.verdict == VERDICT_FAILING
        assert len(report.objectives[0]["breaches"]) == 2

    def test_degraded_within_the_breach_budget(self):
        snapshot = _snapshot([[1.0], [10.0], [1.0], [1.0]])
        report = evaluate_slo(
            _spec(_quantile_objective(5.0, tolerated=0.25)), snapshot)
        assert report.verdict == VERDICT_DEGRADED

    def test_breach_carries_window_provenance(self):
        snapshot = _snapshot([[1.0], [10.0]])
        report = evaluate_slo(_spec(_quantile_objective(5.0)), snapshot)
        breach = report.objectives[0]["breaches"][0]
        assert breach["window_start"] == 4.0
        assert breach["window_end"] == 8.0
        assert breach["observed"] == 10.0

    def test_no_traffic_is_ok_not_failing(self):
        snapshot = _snapshot([], name="other")
        report = evaluate_slo(_spec(_quantile_objective(1.0)), snapshot)
        assert report.verdict == VERDICT_OK


class TestRatioKinds:
    def _two_series(self, good, bad):
        clock = LogicalClock()
        hub = TelemetryHub(clock, spec=WindowSpec(width=4.0))
        for _ in range(good):
            hub.event("good", tenant="a")
        for _ in range(bad):
            hub.event("bad", tenant="a")
        hub.flush(final=True)
        return hub.snapshot(deterministic=True)

    def test_availability_floor(self):
        objective = Objective(name="avail", kind="availability",
                              series="good", bad_series="bad",
                              threshold=0.9)
        ok = evaluate_slo(_spec(objective), self._two_series(99, 1))
        assert ok.verdict == VERDICT_OK
        failing = evaluate_slo(_spec(objective),
                               self._two_series(8, 2))
        assert failing.verdict == VERDICT_FAILING
        assert failing.objectives[0]["observed"] == 0.8

    def test_ratio_ceiling(self):
        objective = Objective(name="retry-rate", kind="ratio_ceiling",
                              series="good", bad_series="bad",
                              threshold=0.5)
        # good/bad = 2/10 <= 0.5.
        assert evaluate_slo(_spec(objective),
                            self._two_series(2, 10)).verdict \
            == VERDICT_OK
        assert evaluate_slo(_spec(objective),
                            self._two_series(8, 10)).verdict \
            == VERDICT_FAILING

    def test_ratio_floor(self):
        objective = Objective(name="dedup", kind="ratio_floor",
                              series="good", bad_series="bad",
                              threshold=0.25)
        assert evaluate_slo(_spec(objective),
                            self._two_series(5, 10)).verdict \
            == VERDICT_OK
        assert evaluate_slo(_spec(objective),
                            self._two_series(1, 10)).verdict \
            == VERDICT_FAILING

    def test_aggregate_breach_has_no_window(self):
        objective = Objective(name="avail", kind="availability",
                              series="good", bad_series="bad",
                              threshold=0.99)
        report = evaluate_slo(_spec(objective), self._two_series(1, 1))
        breach = report.objectives[0]["breaches"][0]
        assert breach["window_start"] is None


class TestTenantExpansion:
    def _multi_tenant(self):
        clock = LogicalClock()
        hub = TelemetryHub(clock, spec=WindowSpec(width=4.0))
        hub.observe("wait", 1.0, tenant="a")
        hub.observe("wait", 9.0, tenant="b")
        hub.flush(final=True)
        return hub.snapshot(deterministic=True)

    def test_star_expands_per_tenant_sorted(self):
        report = evaluate_slo(
            _spec(_quantile_objective(5.0, tenant="*")),
            self._multi_tenant())
        assert [row["tenant"] for row in report.objectives] \
            == ["a", "b"]
        assert [row["verdict"] for row in report.objectives] \
            == [VERDICT_OK, VERDICT_FAILING]
        assert report.verdict == VERDICT_FAILING

    def test_concrete_tenant_selects_one_series(self):
        report = evaluate_slo(
            _spec(_quantile_objective(5.0, tenant="a")),
            self._multi_tenant())
        assert report.verdict == VERDICT_OK


class TestHealthReport:
    def _report(self):
        return evaluate_slo(_spec(_quantile_objective(5.0)),
                            _snapshot([[1.0], [10.0]]))

    def test_canonical_bytes_round_trip(self):
        report = self._report()
        record = json.loads(report.to_json_bytes())
        assert record["format"] == HEALTH_FORMAT
        loaded = HealthReport.from_dict(record)
        assert loaded.to_json_bytes() == report.to_json_bytes()

    def test_save_load(self, tmp_path):
        path = tmp_path / "health.json"
        report = self._report()
        report.save(path)
        assert HealthReport.load(path).verdict == report.verdict

    def test_exit_codes_follow_verdicts(self):
        report = self._report()
        assert report.exit_code() == 2
        assert not report.ok
        ok = evaluate_slo(_spec(_quantile_objective(100.0)),
                          _snapshot([[1.0]]))
        assert ok.exit_code() == 0
        assert ok.ok

    def test_validation_catches_tampering(self):
        record = json.loads(self._report().to_json_bytes())
        record["verdict"] = "sparkling"
        with pytest.raises(ObservabilityError):
            validate_health_report(record)
        record = json.loads(self._report().to_json_bytes())
        del record["objectives"][0]["breaches"]
        with pytest.raises(ObservabilityError):
            validate_health_report(record)

    def test_render_names_breaches(self):
        text = render_health(self._report())
        assert "FAILING" in text
        assert "window [4.0, 8.0)" in text
        assert "latency" in text
