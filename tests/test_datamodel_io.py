"""Tests for the self-documenting dataset files."""

import json

import pytest

from repro.datamodel import (
    DataTier,
    DatasetReader,
    DatasetWriter,
    make_aod,
    read_dataset,
    write_dataset,
)
from repro.datamodel.io import check_records, dataset_size_bytes
from repro.errors import PersistenceError, SchemaError


class TestWriteRead:
    def test_roundtrip_aod(self, z_aods, tmp_path):
        path = tmp_path / "z.aod.jsonl"
        records = [aod.to_dict() for aod in z_aods[:20]]
        header = write_dataset(path, "z-sample", DataTier.AOD, records,
                               provenance={"producer": "test"})
        assert header.n_events == 20
        read_header, read_records = read_dataset(path)
        assert read_header.tier == DataTier.AOD
        assert read_records == records

    def test_header_is_self_documenting(self, z_aods, tmp_path):
        path = tmp_path / "z.aod.jsonl"
        write_dataset(path, "z", DataTier.AOD,
                      [z_aods[0].to_dict()])
        with path.open() as handle:
            header = json.loads(handle.readline())
        assert header["format"] == "repro-dataset"
        assert "muon candidates" in header["schema"]["muons"]

    def test_provenance_preserved(self, z_aods, tmp_path):
        path = tmp_path / "z.jsonl"
        provenance = {"chain": "zmumu", "global_tag": "GT-FINAL"}
        write_dataset(path, "z", DataTier.AOD,
                      [z_aods[0].to_dict()], provenance=provenance)
        reader = DatasetReader(path)
        assert reader.header.provenance == provenance

    def test_streaming_reader(self, z_aods, tmp_path):
        path = tmp_path / "z.jsonl"
        write_dataset(path, "z", DataTier.AOD,
                      [aod.to_dict() for aod in z_aods[:5]])
        count = sum(1 for _ in DatasetReader(path).records())
        assert count == 5

    def test_len_uses_header(self, z_aods, tmp_path):
        path = tmp_path / "z.jsonl"
        write_dataset(path, "z", DataTier.AOD,
                      [aod.to_dict() for aod in z_aods[:7]])
        assert len(DatasetReader(path)) == 7


class TestValidation:
    def test_invalid_record_rejected_at_write(self, tmp_path):
        writer = DatasetWriter(tmp_path / "bad.jsonl", "bad",
                               DataTier.AOD)
        with pytest.raises(SchemaError):
            writer.write({"not": "an aod"})

    def test_validation_can_be_disabled(self, tmp_path):
        path = tmp_path / "loose.jsonl"
        with DatasetWriter(path, "loose", DataTier.AOD,
                           validate=False) as writer:
            writer.write({"free": "form"})
        assert read_dataset(path)[1] == [{"free": "form"}]

    def test_check_records_passes_good_file(self, z_aods, tmp_path):
        path = tmp_path / "good.jsonl"
        write_dataset(path, "good", DataTier.AOD,
                      [aod.to_dict() for aod in z_aods[:4]])
        assert check_records(path) == 4

    def test_check_records_catches_bad_file(self, tmp_path):
        path = tmp_path / "sneaky.jsonl"
        with DatasetWriter(path, "sneaky", DataTier.AOD,
                           validate=False) as writer:
            writer.write({"oops": True})
        with pytest.raises(SchemaError):
            check_records(path)


class TestFailureModes:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            DatasetReader(tmp_path / "absent.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(PersistenceError):
            DatasetReader(path)

    def test_corrupt_header(self, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text("not json\n")
        with pytest.raises(PersistenceError):
            DatasetReader(path)

    def test_wrong_format_tag(self, tmp_path):
        path = tmp_path / "foreign.jsonl"
        path.write_text('{"format": "other-format"}\n')
        with pytest.raises(PersistenceError):
            DatasetReader(path)

    def test_corrupt_record_reported_with_line(self, z_aods, tmp_path):
        path = tmp_path / "partial.jsonl"
        write_dataset(path, "p", DataTier.AOD, [z_aods[0].to_dict()])
        with path.open("a") as handle:
            handle.write("{broken json\n")
        reader = DatasetReader(path)
        with pytest.raises(PersistenceError, match=":3"):
            list(reader.records())

    def test_closed_writer_rejects_writes(self, z_aods, tmp_path):
        writer = DatasetWriter(tmp_path / "done.jsonl", "d",
                               DataTier.AOD)
        writer.write(z_aods[0].to_dict())
        writer.close()
        with pytest.raises(PersistenceError):
            writer.write(z_aods[1].to_dict())

    def test_size_helper(self, z_aods, tmp_path):
        path = tmp_path / "sized.jsonl"
        write_dataset(path, "s", DataTier.AOD, [z_aods[0].to_dict()])
        assert dataset_size_bytes(path) > 100
