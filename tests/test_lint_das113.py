"""DAS113: archived datasets must link their run report."""

from __future__ import annotations

import pytest

from repro.core import PreservationArchive, PreservationMetadata
from repro.lint import Severity, get_rule
from repro.lint.consistency import lint_archive_directory
from repro.obs import (
    MetricsRegistry,
    RunReport,
    Tracer,
    attach_report_to_archive,
    link_run_report,
)


def _metadata(title: str) -> PreservationMetadata:
    return PreservationMetadata.build(
        title=title, creator="curator", experiment="GPD",
        created="2013-03-21", artifact_format="jsonl", size_bytes=0,
        checksum="", producer="test", access_policy="public",
    )


def _run_report() -> RunReport:
    tracer = Tracer("campaign")
    with tracer.span("campaign.process"):
        pass
    return RunReport.build(tracer, MetricsRegistry(),
                           deterministic=True)


def _save(archive: PreservationArchive, tmp_path):
    directory = tmp_path / "archive"
    archive.save(directory)
    return directory


def das113(findings):
    return [f for f in findings if f.code == "DAS113"]


class TestRuleRegistration:
    def test_catalogued_as_warning_in_obs_subsystem(self):
        rule = get_rule("DAS113")
        assert rule.name == "dataset-missing-run-report"
        assert rule.severity is Severity.WARNING
        assert rule.subsystem == "obs"


class TestUnlinkedDataset:
    def test_dataset_without_run_report_flagged(self, tmp_path):
        archive = PreservationArchive("toy")
        archive.store({"events": [1]}, "dataset", _metadata("aod"))
        findings = das113(lint_archive_directory(_save(archive,
                                                       tmp_path)))
        assert len(findings) == 1
        assert "links no run report" in findings[0].message
        assert findings[0].severity is Severity.WARNING

    def test_suffixed_dataset_kinds_audited(self, tmp_path):
        archive = PreservationArchive("toy")
        archive.store({"events": [1]}, "aod_dataset", _metadata("aod"))
        directory = _save(archive, tmp_path)
        assert len(das113(lint_archive_directory(directory))) == 1

    def test_non_dataset_kinds_exempt(self, tmp_path):
        archive = PreservationArchive("toy")
        archive.store({"rows": [1]}, "table", _metadata("a"))
        archive.store({"a": 1}, "hepdata_record", _metadata("b"))
        directory = _save(archive, tmp_path)
        assert das113(lint_archive_directory(directory)) == []


class TestDanglingLink:
    def test_linked_digest_must_be_catalogued(self, tmp_path):
        archive = PreservationArchive("toy")
        metadata = _metadata("aod")
        link_run_report(metadata, "f" * 64)
        archive.store({"events": [1]}, "dataset", metadata)
        findings = das113(lint_archive_directory(_save(archive,
                                                       tmp_path)))
        assert len(findings) == 1
        assert "absent from the catalogue" in findings[0].message


class TestLinkedDataset:
    def test_properly_linked_dataset_is_clean(self, tmp_path):
        archive = PreservationArchive("toy")
        entry = attach_report_to_archive(_run_report(), archive)
        metadata = _metadata("aod")
        link_run_report(metadata, entry.digest)
        archive.store({"events": [1]}, "dataset", metadata)
        directory = _save(archive, tmp_path)
        assert lint_archive_directory(directory) == []

    def test_each_unlinked_dataset_flagged_once(self, tmp_path):
        archive = PreservationArchive("toy")
        entry = attach_report_to_archive(_run_report(), archive)
        linked = _metadata("linked")
        link_run_report(linked, entry.digest)
        archive.store({"events": [1]}, "dataset", linked)
        archive.store({"events": [2]}, "dataset", _metadata("bare"))
        findings = das113(lint_archive_directory(_save(archive,
                                                       tmp_path)))
        assert len(findings) == 1
