"""Property-based equivalence suite: FourVectorArray vs FourVector.

Enforces the per-property agreement contract documented in
``repro.columnar.fourvec``: *exact* properties must be bit-identical to
the scalar implementation element-wise; *ulp* properties may differ by a
few units in the last place (asinh/atan2/sinh/log go through different
libm loops).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import (
    FourVectorArray,
    delta_phi_array,
    delta_r_array,
    invariant_mass_array,
    transverse_mass_array,
    wrap_phi_array,
)
from repro.errors import KinematicsError
from repro.kinematics.fourvector import (
    FourVector,
    delta_phi,
    invariant_mass,
    wrap_phi,
)

# Tolerance for the ulp tier: a handful of last-place bits, far tighter
# than any physics tolerance but loose enough for libm disagreement.
ULP_REL = 1e-12
ULP_ABS = 1e-12

finite_pt = st.floats(min_value=0.0, max_value=2000.0,
                      allow_nan=False, allow_infinity=False)
finite_eta = st.floats(min_value=-6.0, max_value=6.0,
                       allow_nan=False, allow_infinity=False)
finite_phi = st.floats(min_value=-10.0, max_value=10.0,
                       allow_nan=False, allow_infinity=False)
finite_mass = st.floats(min_value=0.0, max_value=500.0,
                        allow_nan=False, allow_infinity=False)

vector_strategy = st.builds(FourVector.from_ptetaphim,
                            finite_pt, finite_eta, finite_phi,
                            finite_mass)
vectors_strategy = st.lists(vector_strategy, min_size=1, max_size=16)


def pack(vectors):
    return FourVectorArray.from_vectors(vectors)


def assert_exact(array_values, scalar_values):
    """Bit-identical agreement (0.0 == -0.0 is fine here)."""
    assert np.asarray(array_values).tolist() == list(scalar_values)


def assert_ulp(array_values, scalar_values):
    for got, want in zip(np.asarray(array_values).tolist(),
                         scalar_values):
        if math.isnan(want) or math.isinf(want):
            # Degenerate kinematics (eta at +/-inf, inf - inf): the
            # contract is that both paths degenerate the same way.
            assert (math.isnan(got) if math.isnan(want)
                    else got == want)
            continue
        assert math.isclose(got, want, rel_tol=ULP_REL, abs_tol=ULP_ABS)


class TestWrapPhi:
    @given(st.lists(finite_phi, min_size=1, max_size=32))
    @settings(max_examples=200)
    def test_matches_scalar_bitwise(self, phis):
        assert_exact(wrap_phi_array(phis), [wrap_phi(p) for p in phis])

    def test_boundary_values(self):
        # The interval is (-pi, pi]: +pi stays, -pi maps to +pi.
        edges = [math.pi, -math.pi, 2.0 * math.pi, -2.0 * math.pi,
                 3.0 * math.pi, -3.0 * math.pi, 0.0, -0.0,
                 math.nextafter(math.pi, 4.0),
                 math.nextafter(-math.pi, -4.0), 1e9, -1e9]
        wrapped = wrap_phi_array(edges)
        assert_exact(wrapped, [wrap_phi(p) for p in edges])
        finite_mask = np.abs(wrapped) <= math.pi
        assert bool(np.all(finite_mask))
        assert wrapped[0] == math.pi
        assert wrapped[1] == math.pi

    @given(st.lists(finite_phi, min_size=1, max_size=16),
           st.lists(finite_phi, min_size=1, max_size=16))
    @settings(max_examples=100)
    def test_delta_phi_matches_scalar(self, phi1, phi2):
        n = min(len(phi1), len(phi2))
        phi1, phi2 = phi1[:n], phi2[:n]
        assert_exact(delta_phi_array(phi1, phi2),
                     [delta_phi(a, b) for a, b in zip(phi1, phi2)])


class TestExactTier:
    @given(vectors_strategy)
    @settings(max_examples=150)
    def test_pt_p_mass2_mass_et_beta(self, vectors):
        array = pack(vectors)
        assert_exact(array.pt, [v.pt for v in vectors])
        assert_exact(array.p, [v.p for v in vectors])
        assert_exact(array.mass2, [v.mass2 for v in vectors])
        assert_exact(array.mass, [v.mass for v in vectors])
        assert_exact(array.et, [v.et for v in vectors])
        assert_exact(array.beta, [v.beta for v in vectors])

    @given(vectors_strategy, vectors_strategy)
    @settings(max_examples=100)
    def test_arithmetic_and_dot(self, lhs, rhs):
        n = min(len(lhs), len(rhs))
        lhs, rhs = lhs[:n], rhs[:n]
        a, b = pack(lhs), pack(rhs)
        assert (a + b).to_vectors() == [x + y for x, y in zip(lhs, rhs)]
        assert (a - b).to_vectors() == [x - y for x, y in zip(lhs, rhs)]
        assert (a * 2.5).to_vectors() == [x * 2.5 for x in lhs]
        assert (-a).to_vectors() == [-x for x in lhs]
        assert_exact(a.dot(b), [x.dot(y) for x, y in zip(lhs, rhs)])

    @given(vectors_strategy,
           st.floats(min_value=-0.9, max_value=0.9),
           st.floats(min_value=-0.3, max_value=0.3),
           st.floats(min_value=-0.3, max_value=0.3))
    @settings(max_examples=100)
    def test_boosted_bit_identical(self, vectors, bx, by, bz):
        if bx * bx + by * by + bz * bz >= 1.0:
            return
        array = pack(vectors)
        assert (array.boosted(bx, by, bz).to_vectors()
                == [v.boosted(bx, by, bz) for v in vectors])

    @given(vectors_strategy, vectors_strategy, vectors_strategy)
    @settings(max_examples=100)
    def test_invariant_mass_accumulation_order(self, vs1, vs2, vs3):
        # One array per "object slot", n parallel systems: element i of
        # the array result must equal the scalar invariant mass of the
        # i-th system, bit for bit (same zero-accumulator sum order).
        n = min(len(vs1), len(vs2), len(vs3))
        vs1, vs2, vs3 = vs1[:n], vs2[:n], vs3[:n]
        got = invariant_mass_array([pack(vs1), pack(vs2), pack(vs3)])
        want = [invariant_mass([a, b, c])
                for a, b, c in zip(vs1, vs2, vs3)]
        assert_exact(got, want)

    def test_ultra_relativistic_mass2_cancellation(self):
        # E ~ |p| with a tiny mass: catastrophic cancellation territory.
        # The contract is not accuracy but *identical* rounding: the
        # columnar value must equal the scalar one bit for bit.
        vectors = [
            FourVector.from_p3m(1e8, 2e7, -5e7, 0.000511),
            FourVector.from_p3m(3e9, -1e9, 7e8, 0.105658),
            FourVector.from_p3m(1e12, 0.0, -1e11, 0.000511),
        ]
        array = pack(vectors)
        assert_exact(array.mass2, [v.mass2 for v in vectors])
        assert_exact(array.mass, [v.mass for v in vectors])

    @given(st.lists(st.tuples(finite_pt, finite_eta, finite_phi,
                              finite_mass),
                    min_size=1, max_size=16))
    @settings(max_examples=100)
    def test_from_ptetaphim_px_py_exact(self, coords):
        scalars = [FourVector.from_ptetaphim(*c) for c in coords]
        array = FourVectorArray.from_ptetaphim(
            [c[0] for c in coords], [c[1] for c in coords],
            [c[2] for c in coords], [c[3] for c in coords])
        assert_exact(array.px, [v.px for v in scalars])
        assert_exact(array.py, [v.py for v in scalars])
        # pz/e go through sinh: ulp tier.
        assert_ulp(array.pz, [v.pz for v in scalars])
        assert_ulp(array.e, [v.e for v in scalars])


class TestUlpTier:
    @given(vectors_strategy)
    @settings(max_examples=150)
    def test_eta_phi_theta(self, vectors):
        array = pack(vectors)
        assert_ulp(array.phi, [v.phi for v in vectors])
        assert_ulp(array.eta, [v.eta for v in vectors])
        assert_ulp(array.theta, [v.theta for v in vectors])

    @given(vectors_strategy)
    @settings(max_examples=100)
    def test_rapidity(self, vectors):
        array = pack(vectors)
        defined = all(v.e > abs(v.pz) for v in vectors)
        if not defined:
            with pytest.raises(KinematicsError):
                _ = array.rapidity
            return
        assert_ulp(array.rapidity, [v.rapidity for v in vectors])

    @given(vectors_strategy, vectors_strategy)
    @settings(max_examples=100)
    def test_delta_r(self, lhs, rhs):
        n = min(len(lhs), len(rhs))
        lhs, rhs = lhs[:n], rhs[:n]
        a, b = pack(lhs), pack(rhs)
        assert_ulp(a.delta_r(b),
                   [x.delta_r(y) for x, y in zip(lhs, rhs)])

    def test_delta_r_array_exact_on_shared_inputs(self):
        # Given *identical* eta/phi inputs the helper itself is exact —
        # the ulp tier above comes only from recomputing eta/phi.
        eta1, phi1 = [0.5, -1.2, 3.0], [0.1, 3.1, -3.1]
        eta2, phi2 = [0.4, 1.0, -2.0], [-0.1, -3.0, 3.0]
        want = [
            math.sqrt((e1 - e2) ** 2 + delta_phi(p1, p2) ** 2)
            for e1, p1, e2, p2 in zip(eta1, phi1, eta2, phi2)
        ]
        got = delta_r_array(eta1, phi1, eta2, phi2)
        for g, w in zip(got.tolist(), want):
            assert math.isclose(g, w, rel_tol=1e-15, abs_tol=0.0)


class TestEdgeCases:
    def test_null_vector_conventions(self):
        array = FourVectorArray.zeros(2)
        assert array.phi.tolist() == [0.0, 0.0]
        assert array.eta.tolist() == [0.0, 0.0]
        assert array.theta.tolist() == [0.0, 0.0]
        assert array.et.tolist() == [0.0, 0.0]
        assert array.beta.tolist() == [0.0, 0.0]

    def test_purely_longitudinal_eta_is_infinite(self):
        array = FourVectorArray([5.0, 5.0], [0.0, 0.0], [0.0, 0.0],
                                [4.0, -4.0])
        assert array.eta.tolist() == [math.inf, -math.inf]
        scalar_up = FourVector(5.0, 0.0, 0.0, 4.0)
        assert scalar_up.eta == math.inf

    def test_negative_pt_rejected(self):
        with pytest.raises(KinematicsError):
            FourVectorArray.from_ptetaphim([-1.0], [0.0], [0.0], [0.0])

    def test_shape_mismatch_rejected(self):
        with pytest.raises(KinematicsError):
            FourVectorArray([1.0, 2.0], [0.0], [0.0], [0.0])


class TestContainerProtocol:
    @given(vectors_strategy)
    @settings(max_examples=50)
    def test_roundtrip_and_indexing(self, vectors):
        array = pack(vectors)
        assert len(array) == len(vectors)
        assert array.to_vectors() == vectors
        assert array[0] == vectors[0]
        assert array[1:].to_vectors() == vectors[1:]
        mask = np.zeros(len(vectors), dtype=bool)
        mask[0] = True
        assert array[mask].to_vectors() == vectors[:1]
        taken = array.take(np.arange(len(vectors))[::-1])
        assert taken.to_vectors() == vectors[::-1]

    @given(vectors_strategy)
    @settings(max_examples=50)
    def test_components_roundtrip(self, vectors):
        array = pack(vectors)
        again = FourVectorArray.from_components(array.to_components())
        assert again.to_vectors() == vectors

    def test_concatenate_empty(self):
        assert len(FourVectorArray.concatenate([])) == 0


class TestTransverseMass:
    @given(vectors_strategy,
           st.lists(st.floats(min_value=0.0, max_value=300.0),
                    min_size=1, max_size=16),
           st.lists(finite_phi, min_size=1, max_size=16))
    @settings(max_examples=100)
    def test_against_scalar(self, leptons, mets, met_phis):
        n = min(len(leptons), len(mets), len(met_phis))
        leptons, mets, met_phis = leptons[:n], mets[:n], met_phis[:n]
        got = transverse_mass_array(pack(leptons), mets, met_phis)
        for lepton, met, met_phi, value in zip(leptons, mets, met_phis,
                                               got.tolist()):
            d_phi = delta_phi(lepton.phi, met_phi)
            mt2 = 2.0 * lepton.pt * met * (1.0 - math.cos(d_phi))
            want = math.sqrt(max(0.0, mt2))
            assert math.isclose(value, want, rel_tol=ULP_REL,
                                abs_tol=ULP_ABS)
