"""Tests for the conditions store and global tags."""

import pytest

from repro.conditions import ConditionsStore, GlobalTag, IOV
from repro.conditions.calibration import (
    FOLDER_ECAL_SCALE,
    RECONSTRUCTION_FOLDERS,
    default_conditions,
)
from repro.errors import ConditionsError, IOVError


@pytest.fixture
def store():
    store = ConditionsStore("test")
    store.add_payload("calo/scale", "v1", IOV(1, 10), {"scale": 1.01})
    store.add_payload("calo/scale", "v1", IOV(11, 20), {"scale": 0.99})
    store.add_payload("calo/scale", "v2", IOV(1, 20), {"scale": 1.00})
    return store


class TestPayloads:
    def test_lookup_by_run(self, store):
        assert store.payload("calo/scale", "v1", 5)["scale"] == 1.01
        assert store.payload("calo/scale", "v1", 15)["scale"] == 0.99

    def test_iov_gap_raises(self, store):
        with pytest.raises(IOVError):
            store.payload("calo/scale", "v1", 25)

    def test_overlapping_iov_rejected(self, store):
        with pytest.raises(IOVError):
            store.add_payload("calo/scale", "v1", IOV(5, 15), {})

    def test_different_tags_may_overlap(self, store):
        # v2 spans 1-20 although v1 covers the same runs.
        assert store.payload("calo/scale", "v2", 5)["scale"] == 1.00

    def test_unknown_folder_raises(self, store):
        with pytest.raises(ConditionsError):
            store.payload("nope", "v1", 5)

    def test_unknown_tag_raises(self, store):
        with pytest.raises(ConditionsError):
            store.payload("calo/scale", "v9", 5)

    def test_payload_is_a_copy(self, store):
        payload = store.payload("calo/scale", "v1", 5)
        payload["scale"] = 999.0
        assert store.payload("calo/scale", "v1", 5)["scale"] == 1.01

    def test_iovs_listing_sorted(self, store):
        iovs = store.iovs("calo/scale", "v1")
        assert [iov.first_run for iov in iovs] == [1, 11]


class TestGlobalTags:
    def test_register_and_resolve(self, store):
        tag = GlobalTag.from_mapping("GT-A", {"calo/scale": "v2"})
        store.register_global_tag(tag)
        payload = store.payload_for_global_tag("calo/scale", "GT-A", 3)
        assert payload["scale"] == 1.00

    def test_unknown_folder_in_tag_rejected(self, store):
        tag = GlobalTag.from_mapping("GT-B", {"missing": "v1"})
        with pytest.raises(ConditionsError):
            store.register_global_tag(tag)

    def test_unknown_tag_in_folder_rejected(self, store):
        tag = GlobalTag.from_mapping("GT-C", {"calo/scale": "v99"})
        with pytest.raises(ConditionsError):
            store.register_global_tag(tag)

    def test_unmapped_folder_raises(self):
        tag = GlobalTag.from_mapping("GT-D", {"a": "v1"})
        with pytest.raises(ConditionsError):
            tag.tag_for("b")


class TestAccessLog:
    def test_reads_logged(self, store):
        store.payload("calo/scale", "v1", 5)
        store.payload("calo/scale", "v2", 7)
        assert ("calo/scale", "v1", 5) in store.access_log
        assert store.accessed_payload_keys() == {
            ("calo/scale", "v1"), ("calo/scale", "v2"),
        }

    def test_clear(self, store):
        store.payload("calo/scale", "v1", 5)
        store.clear_access_log()
        assert store.access_log == []


class TestDefaultConditions:
    def test_all_folders_present(self):
        store = default_conditions()
        assert set(store.folders()) == set(RECONSTRUCTION_FOLDERS)

    def test_global_tags_registered(self):
        store = default_conditions()
        assert store.global_tag("GT-PROMPT").name == "GT-PROMPT"
        assert store.global_tag("GT-FINAL").name == "GT-FINAL"

    def test_final_tighter_than_prompt(self):
        store = default_conditions(seed=4242)
        prompt_drifts = []
        final_drifts = []
        for run in range(1, 101, 10):
            prompt_drifts.append(abs(
                store.payload(FOLDER_ECAL_SCALE, "prompt", run)["scale"]
                - 1.0
            ))
            final_drifts.append(abs(
                store.payload(FOLDER_ECAL_SCALE, "final", run)["scale"]
                - 1.0
            ))
        assert sum(final_drifts) < sum(prompt_drifts)

    def test_open_ended_tail(self):
        store = default_conditions()
        payload = store.payload(FOLDER_ECAL_SCALE, "final", 10**8)
        assert "scale" in payload
