"""Tests for the physics processes."""

import numpy as np
import pytest

from repro.errors import GenerationError
from repro.generation import (
    DrellYanZ,
    DzeroProduction,
    GenEvent,
    HiggsToFourLeptons,
    JpsiToMuMu,
    MinimumBias,
    QCDDijets,
    WProduction,
    ZPrimeResonance,
)
from repro.generation.processes import Tune
from repro.kinematics import default_particle_table, invariant_mass


@pytest.fixture
def table():
    return default_particle_table()


def _fill_one(process, table, seed=3):
    rng = np.random.default_rng(seed)
    event = GenEvent(0, process.process_id, process.name, 8000.0)
    process.fill(event, rng, table, Tune.tune_a())
    event.validate()
    return event


class TestDrellYanZ:
    def test_produces_opposite_charge_muons(self, table):
        event = _fill_one(DrellYanZ(), table)
        muons = [p for p in event.final_state() if abs(p.pdg_id) == 13]
        assert len(muons) == 2
        assert muons[0].pdg_id == -muons[1].pdg_id

    def test_mass_peak(self, table):
        rng = np.random.default_rng(8)
        masses = []
        process = DrellYanZ()
        for i in range(300):
            event = GenEvent(i, 230, "z", 8000.0)
            process.fill(event, rng, table, Tune.tune_a())
            pair = [p.momentum for p in event.final_state()
                    if abs(p.pdg_id) == 13]
            masses.append(invariant_mass(pair))
        assert float(np.median(masses)) == pytest.approx(91.2, abs=1.0)

    def test_electron_flavour(self, table):
        event = _fill_one(DrellYanZ(flavour="e"), table)
        electrons = [p for p in event.final_state()
                     if abs(p.pdg_id) == 11]
        assert len(electrons) == 2

    def test_bad_flavour_rejected(self):
        with pytest.raises(GenerationError):
            DrellYanZ(flavour="tau")


class TestWProduction:
    def test_charge_correlation(self, table):
        event = _fill_one(WProduction(charge=1), table)
        leptons = [p for p in event.final_state()
                   if abs(p.pdg_id) == 13]
        neutrinos = [p for p in event.final_state()
                     if abs(p.pdg_id) == 14]
        assert len(leptons) == 1 and len(neutrinos) == 1
        # W+ -> mu+ (pdg -13) + nu_mu (pdg 14).
        assert leptons[0].pdg_id == -13
        assert neutrinos[0].pdg_id == 14

    def test_minus_charge(self, table):
        event = _fill_one(WProduction(charge=-1), table)
        leptons = [p for p in event.final_state()
                   if abs(p.pdg_id) == 13]
        assert leptons[0].pdg_id == 13

    def test_bad_charge_rejected(self):
        with pytest.raises(GenerationError):
            WProduction(charge=2)


class TestHiggs:
    def test_four_leptons_with_zero_net_charge(self, table):
        event = _fill_one(HiggsToFourLeptons(), table)
        leptons = [p for p in event.final_state()
                   if abs(p.pdg_id) in (11, 13)]
        assert len(leptons) == 4
        charges = sum(-1 if p.pdg_id > 0 else 1 for p in leptons)
        assert charges == 0

    def test_four_lepton_mass_is_higgs(self, table):
        event = _fill_one(HiggsToFourLeptons(), table)
        leptons = [p.momentum for p in event.final_state()
                   if abs(p.pdg_id) in (11, 13)]
        assert invariant_mass(leptons) == pytest.approx(125.0, abs=0.5)


class TestQCDDijets:
    def test_produces_hadrons(self, table):
        event = _fill_one(QCDDijets(), table)
        hadrons = [p for p in event.final_state()
                   if abs(p.pdg_id) in (211, 111, 321, 130)]
        assert len(hadrons) >= 4

    def test_spectrum_bounds(self, table):
        process = QCDDijets(pt_min=30.0, pt_max=100.0)
        rng = np.random.default_rng(5)
        for _ in range(200):
            pt = process._sample_pt(rng)
            assert 30.0 <= pt <= 100.0

    def test_falling_spectrum(self, table):
        process = QCDDijets(pt_min=20.0, pt_max=500.0)
        rng = np.random.default_rng(6)
        samples = np.array([process._sample_pt(rng) for _ in range(4000)])
        low = np.sum(samples < 40.0)
        high = np.sum(samples > 100.0)
        assert low > 10 * high

    def test_bad_range_rejected(self):
        with pytest.raises(GenerationError):
            QCDDijets(pt_min=100.0, pt_max=50.0)


class TestDzero:
    def test_displaced_decay_vertex(self, table):
        event = _fill_one(DzeroProduction(), table, seed=11)
        d0 = event.particles_with_pdg(421)[0]
        assert d0.decay_vertex is not None
        kaons = event.particles_with_pdg(-321)
        assert kaons[0].production_vertex == d0.decay_vertex

    def test_kpi_mass(self, table):
        event = _fill_one(DzeroProduction(), table, seed=12)
        kaon = event.particles_with_pdg(-321)[0]
        pion = event.particles_with_pdg(211)[0]
        mass = invariant_mass([kaon.momentum, pion.momentum])
        assert mass == pytest.approx(1.865, abs=0.01)

    def test_forward_production(self, table):
        event = _fill_one(DzeroProduction(), table, seed=13)
        d0 = event.particles_with_pdg(421)[0]
        assert 2.0 <= d0.momentum.eta <= 4.5


class TestJpsi:
    def test_dimuon_at_jpsi_mass(self, table):
        event = _fill_one(JpsiToMuMu(), table)
        muons = [p.momentum for p in event.final_state()
                 if abs(p.pdg_id) == 13]
        assert invariant_mass(muons) == pytest.approx(3.097, abs=0.01)


class TestMinimumBias:
    def test_multiplicity_follows_tune(self, table):
        rng = np.random.default_rng(9)
        process = MinimumBias()
        counts = []
        for i in range(300):
            event = GenEvent(i, 1, "mb", 8000.0)
            process.fill(event, rng, table, Tune.tune_a())
            counts.append(len(event.final_state()))
        assert float(np.mean(counts)) == pytest.approx(12.0, rel=0.15)

    def test_tune_b_is_busier(self, table):
        rng = np.random.default_rng(10)
        process = MinimumBias()

        def mean_mult(tune):
            counts = []
            for i in range(300):
                event = GenEvent(i, 1, "mb", 8000.0)
                process.fill(event, rng, table, tune)
                counts.append(len(event.final_state()))
            return float(np.mean(counts))

        assert mean_mult(Tune.tune_b()) > mean_mult(Tune.tune_a())


class TestZPrime:
    def test_mass_peak_at_requested_mass(self, table):
        rng = np.random.default_rng(14)
        process = ZPrimeResonance(mass=2000.0)
        masses = []
        for i in range(100):
            event = GenEvent(i, 3200, "zp", 8000.0)
            process.fill(event, rng, table, Tune.tune_a())
            pair = [p.momentum for p in event.final_state()
                    if abs(p.pdg_id) == 13]
            masses.append(invariant_mass(pair))
        assert float(np.median(masses)) == pytest.approx(2000.0, rel=0.05)

    def test_too_light_rejected(self):
        with pytest.raises(GenerationError):
            ZPrimeResonance(mass=100.0)
