"""Regression tests for the parallel-execution determinism guarantee.

The runtime's contract is that parallel output is *bit-identical* to
serial output — reproducibility is the preservation claim, so these
tests serialize everything to plain dicts and compare for equality
between ``n_jobs=1`` and parallel policies at every wired-in layer:
campaign processing, bulk reconstruction, and the RECAST mass scan.
"""

import pytest

from repro.datamodel import (
    AndCut,
    CountCut,
    GoodRunList,
    MassWindowCut,
    RunRecord,
    RunRegistry,
    SkimSpec,
    make_aod,
)
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.recast import PreservedSearch, run_mass_scan
from repro.recast.backend import FullChainBackend
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.runtime import ExecutionPolicy
from repro.workflow import ProcessingCampaign

PARALLEL_POLICIES = [
    ExecutionPolicy.processes(4),
    ExecutionPolicy.threads(2),
    ExecutionPolicy.processes(2, chunk_size=1),
]


def _build_campaign(conditions_store, gpd_geometry):
    registry = RunRegistry("DetRuns")
    good_runs = GoodRunList("DetGRL")
    # Runs 5, 15 and 25 sit in different 10-run IOV blocks.
    for run_number, sections in [(5, 20), (15, 25), (25, 30)]:
        registry.add(RunRecord(run_number, sections, 0.5))
        good_runs.certify(run_number, 1, sections)
    campaign = ProcessingCampaign(
        name="det-v1",
        geometry=gpd_geometry,
        conditions=conditions_store,
        global_tag="GT-FINAL",
        generator=ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=6100)),
        events_per_section=0.3,
        max_events_per_run=8,
    )
    return campaign, registry, good_runs


def _campaign_snapshot(campaign):
    return {
        "aods": [aod.to_dict() for aod in campaign.all_aods()],
        "manifest": campaign.conditions_manifest(),
        "counts": {run: result.n_events
                   for run, result in campaign.results().items()},
    }


class TestCampaignDeterminism:
    @pytest.mark.parametrize("policy", PARALLEL_POLICIES)
    def test_parallel_identical_to_serial(self, policy,
                                          conditions_store,
                                          gpd_geometry):
        serial, registry, good_runs = _build_campaign(
            conditions_store, gpd_geometry)
        serial.process(registry, good_runs,
                       policy=ExecutionPolicy.serial())
        parallel, registry, good_runs = _build_campaign(
            conditions_store, gpd_geometry)
        parallel.process(registry, good_runs, policy=policy)
        assert _campaign_snapshot(serial) == _campaign_snapshot(parallel)

    def test_constructor_policy_used_as_default(self, conditions_store,
                                                gpd_geometry):
        serial, registry, good_runs = _build_campaign(
            conditions_store, gpd_geometry)
        serial.process(registry, good_runs)
        parallel, registry, good_runs = _build_campaign(
            conditions_store, gpd_geometry)
        parallel.policy = ExecutionPolicy.processes(3)
        parallel.process(registry, good_runs)
        assert _campaign_snapshot(serial) == _campaign_snapshot(parallel)

    def test_dependency_record_matches_payloads_used(
            self, conditions_store, gpd_geometry):
        # The manifest must be read through the same view the
        # reconstruction used (the drift bug this PR fixes).
        campaign, registry, good_runs = _build_campaign(
            conditions_store, gpd_geometry)
        results = campaign.process(registry, good_runs)
        for run_number, result in results.items():
            for folder, payload in result.conditions_used.items():
                expected = conditions_store.payload_for_global_tag(
                    folder, "GT-FINAL", run_number)
                assert payload == expected


@pytest.fixture(scope="module")
def raw_sample(gpd_geometry, conditions_store):
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=8800))
    simulation = DetectorSimulation(gpd_geometry, seed=8801)
    digitizer = Digitizer(gpd_geometry, run_number=17, seed=8802)
    return [digitizer.digitize(simulation.simulate(event))
            for event in generator.generate(24)]


class TestReconstructionDeterminism:
    @pytest.mark.parametrize("policy", PARALLEL_POLICIES)
    def test_parallel_identical_to_serial(self, policy, raw_sample,
                                          gpd_geometry,
                                          conditions_store):
        serial = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        serial_recos = serial.reconstruct_many(raw_sample)
        parallel = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        parallel_recos = parallel.reconstruct_many(raw_sample,
                                                   policy=policy)
        assert ([make_aod(reco).to_dict() for reco in serial_recos]
                == [make_aod(reco).to_dict()
                    for reco in parallel_recos])

    @pytest.mark.parametrize("policy", PARALLEL_POLICIES)
    def test_conditions_reads_aggregated_in_order(self, policy,
                                                  raw_sample,
                                                  gpd_geometry,
                                                  conditions_store):
        serial = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        serial.reconstruct_many(raw_sample)
        parallel = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        parallel.reconstruct_many(raw_sample, policy=policy)
        assert serial.conditions_reads == parallel.conditions_reads
        assert (serial.external_dependencies()
                == parallel.external_dependencies())

    def test_empty_input(self, gpd_geometry, conditions_store):
        reconstructor = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        assert reconstructor.reconstruct_many(
            [], policy=ExecutionPolicy.processes(2)) == []


class TestScanDeterminism:
    def test_parallel_limits_identical_to_serial(self):
        selection = SkimSpec("highmass", AndCut((
            CountCut("muons", 2, min_pt=30.0),
            MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
        )))
        search = PreservedSearch(
            analysis_id="GPD-EXO-2013-01", title="High-mass dimuon",
            experiment="GPD", selection=selection, n_observed=3,
            background=2.5, background_uncertainty=0.6,
            luminosity_ipb=20000.0,
        )
        backend = FullChainBackend("GPD", n_events=60,
                                   n_limit_toys=200, seed=6400)
        masses = [800.0, 1600.0]
        serial = run_mass_scan(backend, search, masses)
        parallel = run_mass_scan(backend, search, masses,
                                 policy=ExecutionPolicy.processes(4))
        assert serial.limits() == parallel.limits()
        assert ([point.efficiency for point in serial.points]
                == [point.efficiency for point in parallel.points])
        assert (serial.mass_reach(0.05) == parallel.mass_reach(0.05))
