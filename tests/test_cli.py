"""End-to-end tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.datamodel import DataTier, DatasetReader


@pytest.fixture(scope="module")
def workdir(tmp_path_factory):
    """A directory with a generated GEN file and processed AOD file."""
    directory = tmp_path_factory.mktemp("cli")
    gen_path = directory / "gen.jsonl"
    aod_path = directory / "aod.jsonl"
    assert main(["generate", "--process", "z_to_mumu", "--events",
                 "30", "--seed", "9", "--output", str(gen_path)]) == 0
    assert main(["process", "--input", str(gen_path), "--output",
                 str(aod_path), "--run", "42"]) == 0
    return directory


class TestGenerateProcess:
    def test_gen_file_valid(self, workdir):
        reader = DatasetReader(workdir / "gen.jsonl")
        assert reader.header.tier == DataTier.GEN
        assert reader.header.n_events == 30
        assert reader.header.provenance["generator"] == "toygen"

    def test_aod_file_valid(self, workdir):
        reader = DatasetReader(workdir / "aod.jsonl")
        assert reader.header.tier == DataTier.AOD
        assert reader.header.n_events == 30
        externals = reader.header.provenance["externals"]
        assert externals["runs"] == [42]

    def test_process_rejects_wrong_tier(self, workdir, capsys):
        code = main(["process", "--input",
                     str(workdir / "aod.jsonl"), "--output",
                     str(workdir / "nope.jsonl")])
        assert code == 2
        assert "expected GEN" in capsys.readouterr().err


class TestSkimConvertDisplay:
    @pytest.fixture(scope="class")
    def level2_path(self, workdir):
        spec_path = workdir / "skim.json"
        spec_path.write_text(json.dumps({
            "name": "dimuon",
            "cut": {"kind": "count", "collection": "muons",
                    "min_count": 2, "min_pt": 10.0},
        }))
        skim_path = workdir / "skimmed.jsonl"
        assert main(["skim", "--input", str(workdir / "aod.jsonl"),
                     "--spec", str(spec_path), "--output",
                     str(skim_path)]) == 0
        level2_path = workdir / "l2.jsonl"
        assert main(["convert-level2", "--input", str(skim_path),
                     "--output", str(level2_path)]) == 0
        return level2_path

    def test_skim_reduces_events(self, workdir, level2_path):
        full = DatasetReader(workdir / "aod.jsonl").header.n_events
        skimmed = DatasetReader(workdir / "skimmed.jsonl")
        assert 0 < skimmed.header.n_events <= full
        assert skimmed.header.provenance["skim"]["name"] == "dimuon"

    def test_level2_file_valid(self, level2_path):
        reader = DatasetReader(level2_path)
        assert reader.header.tier == DataTier.LEVEL2

    def test_ascii_display(self, level2_path, capsys):
        assert main(["display", "--input", str(level2_path),
                     "--event", "0"]) == 0
        output = capsys.readouterr().out
        assert "MET" in output

    def test_svg_display(self, level2_path, workdir):
        svg_path = workdir / "event.svg"
        assert main(["display", "--input", str(level2_path),
                     "--event", "0", "--svg", str(svg_path)]) == 0
        content = svg_path.read_text()
        assert content.startswith("<svg")
        assert "</svg>" in content

    def test_display_index_out_of_range(self, level2_path, capsys):
        assert main(["display", "--input", str(level2_path),
                     "--event", "9999"]) == 2
        assert "out of range" in capsys.readouterr().err


class TestValidateBundle:
    def test_pass_and_fail_exit_codes(self, workdir, z_aods):
        from repro.core import PreservedAnalysisBundle
        from repro.datamodel import CountCut, SkimSpec, SlimSpec

        bundle = PreservedAnalysisBundle.create(
            "cli-bundle", z_aods[:30],
            SkimSpec("s", CountCut("muons", 1)),
            SlimSpec("n", ("met",)),
        )
        good_path = workdir / "bundle.json"
        good_path.write_text(json.dumps(bundle.to_dict()))
        assert main(["validate-bundle", "--bundle",
                     str(good_path)]) == 0

        record = bundle.to_dict()
        record["expected_rows"] = record["expected_rows"][:-1]
        bad_path = workdir / "bad_bundle.json"
        bad_path.write_text(json.dumps(record))
        assert main(["validate-bundle", "--bundle",
                     str(bad_path)]) == 1


class TestReports:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        assert "iSpy" in capsys.readouterr().out

    def test_maturity(self, capsys):
        assert main(["maturity"]) == 0
        assert "Preservation" in capsys.readouterr().out

    def test_interview(self, capsys):
        assert main(["interview", "--experiment", "CMS"]) == 0
        assert "Data Sharing Grid" in capsys.readouterr().out

    def test_interview_unknown_experiment(self, capsys):
        assert main(["interview", "--experiment", "UA1"]) == 2
        assert "error" in capsys.readouterr().err
