"""Tests for exclusion scans."""

import math

import pytest

from repro.datamodel import AndCut, CountCut, MassWindowCut, SkimSpec
from repro.errors import RecastError
from repro.recast import (
    ExclusionScan,
    PreservedSearch,
    RecastResult,
    ScanPoint,
    run_mass_scan,
)
from repro.recast.bridge import RivetBridgeBackend, RivetSignalRegion
from repro.rivet import standard_repository


def _search():
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    return PreservedSearch(
        analysis_id="GPD-EXO-2013-01", title="High-mass dimuon search",
        experiment="GPD", selection=selection, n_observed=3,
        background=2.5, background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )


def _point(mass, limit, efficiency=0.7):
    return ScanPoint(mass=mass, result=RecastResult(
        analysis_id="A", model_name=f"m{mass}", n_generated=100,
        n_selected=int(100 * efficiency),
        signal_efficiency=efficiency, efficiency_error=0.05,
        upper_limit_pb=limit, model_cross_section_pb=0.05,
        excluded=limit < 0.05, backend="test",
    ))


class TestExclusionScanLogic:
    def test_limits_mass_ordered(self):
        scan = ExclusionScan("A", "zprime", points=[
            _point(2000.0, 0.01), _point(1000.0, 0.001),
        ])
        assert scan.limits() == [(1000.0, 0.001), (2000.0, 0.01)]

    def test_excluded_masses(self):
        scan = ExclusionScan("A", "zprime", points=[
            _point(1000.0, 0.001), _point(2000.0, 0.1),
        ])
        assert scan.excluded_masses(0.05) == [1000.0]

    def test_mass_reach_contiguous(self):
        scan = ExclusionScan("A", "zprime", points=[
            _point(1000.0, 0.001),
            _point(1500.0, 0.001),
            _point(2000.0, 0.1),   # gap: allowed
            _point(2500.0, 0.001),  # excluded again, but beyond the gap
        ])
        assert scan.mass_reach(0.05) == 1500.0

    def test_no_reach_when_lightest_allowed(self):
        scan = ExclusionScan("A", "zprime", points=[
            _point(1000.0, 0.1),
        ])
        assert scan.mass_reach(0.05) is None

    def test_infinite_limit_never_excludes(self):
        scan = ExclusionScan("A", "zprime", points=[
            _point(1000.0, math.inf),
        ])
        assert scan.excluded_masses(1e6) == []

    def test_render(self):
        scan = ExclusionScan("A", "zprime", points=[
            _point(1000.0, 0.001),
        ])
        text = scan.render(0.05)
        assert "mass reach" in text
        assert "EXCL" in text


class TestScanDriver:
    def test_empty_grid_rejected(self):
        backend = RivetBridgeBackend(standard_repository(), {},
                                     n_events=10)
        with pytest.raises(RecastError):
            run_mass_scan(backend, _search(), [])

    def test_bridge_scan_small_grid(self):
        search = _search()
        backend = RivetBridgeBackend(
            standard_repository(),
            signal_regions={search.analysis_id: RivetSignalRegion(
                "TOY_2013_I0007", "mass", 500.0, 3000.0)},
            n_events=150, n_limit_toys=600, seed=6400,
        )
        scan = run_mass_scan(backend, search, [800.0, 1600.0],
                             cross_section_pb=0.05)
        assert len(scan.points) == 2
        assert all(point.efficiency > 0.4 for point in scan.points)
        assert scan.mass_reach(0.05) == 1600.0
