"""Tests for DPHEP levels and preservation metadata."""

import pytest

from repro.core import (
    DPHEPLevel,
    MetadataBlock,
    PreservationMetadata,
    classify_artifact,
    classify_tier,
    level_description,
    required_level,
    supports_use_case,
    use_cases,
)
from repro.datamodel import DataTier
from repro.errors import MetadataError, PreservationError


class TestLevels:
    def test_tier_classification(self):
        assert classify_tier(DataTier.RAW) == DPHEPLevel.FULL
        assert classify_tier(DataTier.AOD) == DPHEPLevel.ANALYSIS
        assert classify_tier(DataTier.LEVEL2) == DPHEPLevel.SIMPLIFIED

    def test_artifact_classification(self):
        assert classify_artifact("hepdata_record") == \
            DPHEPLevel.PUBLICATION
        assert classify_artifact("rivet_analysis") == \
            DPHEPLevel.SIMPLIFIED
        assert classify_artifact("recast_backend") == DPHEPLevel.FULL

    def test_unknown_artifact_rejected(self):
        with pytest.raises(PreservationError):
            classify_artifact("mystery")

    def test_use_case_requirements(self):
        assert required_level("outreach") == DPHEPLevel.SIMPLIFIED
        assert required_level("reprocessing") == DPHEPLevel.FULL

    def test_higher_levels_subsume_lower(self):
        assert supports_use_case(DPHEPLevel.FULL, "outreach")
        assert supports_use_case(DPHEPLevel.ANALYSIS,
                                 "internal_reanalysis")
        assert not supports_use_case(DPHEPLevel.PUBLICATION,
                                     "internal_reanalysis")

    def test_unknown_use_case_rejected(self):
        with pytest.raises(PreservationError):
            required_level("time travel")

    def test_descriptions_exist(self):
        for level in DPHEPLevel:
            assert len(level_description(level)) > 20

    def test_use_case_listing(self):
        assert "outreach" in use_cases()


class TestMetadata:
    def _metadata(self, **overrides):
        arguments = dict(
            title="Z dataset", creator="analyst", experiment="GPD",
            created="2013-03-21", artifact_format="aod_dataset",
            size_bytes=1000, checksum="abc", producer="chain",
            access_policy="collaboration",
        )
        arguments.update(overrides)
        return PreservationMetadata.build(**arguments)

    def test_build_validates(self):
        metadata = self._metadata()
        assert metadata.title == "Z dataset"
        assert metadata.access_policy == "collaboration"

    def test_missing_block_detected(self):
        metadata = self._metadata()
        del metadata.blocks[MetadataBlock.RIGHTS]
        with pytest.raises(MetadataError, match="rights"):
            metadata.validate()

    def test_missing_field_detected(self):
        metadata = self._metadata()
        del metadata.blocks[MetadataBlock.TECHNICAL]["checksum"]
        with pytest.raises(MetadataError, match="checksum"):
            metadata.validate()

    def test_unknown_access_policy_rejected(self):
        with pytest.raises(MetadataError):
            self._metadata(access_policy="secret")

    def test_extra_descriptive_fields(self):
        metadata = self._metadata(campaign="run1")
        assert metadata.get(MetadataBlock.DESCRIPTIVE,
                            "campaign") == "run1"

    def test_roundtrip(self):
        metadata = self._metadata()
        restored = PreservationMetadata.from_dict(metadata.to_dict())
        assert restored.to_dict() == metadata.to_dict()

    def test_unknown_block_rejected_on_load(self):
        with pytest.raises(MetadataError):
            PreservationMetadata.from_dict({"mystery": {}})

    def test_missing_field_access_raises(self):
        metadata = self._metadata()
        with pytest.raises(MetadataError):
            metadata.get(MetadataBlock.RIGHTS, "licence")
