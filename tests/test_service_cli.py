"""End-to-end tests for the ``repro serve`` subcommand."""

import json

import pytest

from repro.cli import main


SPEED = ["--events", "30", "--toys", "150"]


class TestServeDemo:
    def test_demo_run_reports_tickets(self, capsys):
        assert main(["serve", *SPEED]) == 0
        out = capsys.readouterr().out
        assert "queued" in out
        assert "subscribed" in out
        assert "cached" in out
        assert "pending_approval" in out

    def test_event_log_written_and_canonical(self, tmp_path, capsys):
        log_path = tmp_path / "events.jsonl"
        assert main(["serve", *SPEED,
                     "--event-log", str(log_path)]) == 0
        lines = log_path.read_text(encoding="utf-8").splitlines()
        assert lines
        events = [json.loads(line) for line in lines]
        assert [e["seq"] for e in events] == list(range(len(events)))
        kinds = [e["event"] for e in events]
        assert "enqueue" in kinds
        assert "dedup_subscribe" in kinds
        assert "cache_hit" in kinds
        assert "committed" in kinds

    def test_replay_is_byte_identical(self, tmp_path):
        logs = []
        for name in ("one.jsonl", "two.jsonl"):
            path = tmp_path / name
            assert main(["serve", *SPEED,
                         "--event-log", str(path)]) == 0
            logs.append(path.read_bytes())
        assert logs[0] == logs[1]


class TestServeScripts:
    def test_write_script_then_replay_it(self, tmp_path, capsys):
        script_path = tmp_path / "script.json"
        assert main(["serve", "--write-script", str(script_path)]) == 0
        script = json.loads(script_path.read_text(encoding="utf-8"))
        assert script["format"] == "repro-service-script"
        assert main(["serve", *SPEED,
                     "--script", str(script_path)]) == 0
        assert "served 4 submission(s)" in capsys.readouterr().out

    def test_invalid_script_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"format": "nope"}), encoding="utf-8")
        assert main(["serve", "--script", str(bad)]) == 2
        assert "error:" in capsys.readouterr().err

    def test_quota_overflow_script_rejects_politely(self, tmp_path,
                                                    capsys):
        script = {
            "format": "repro-service-script",
            "version": 1,
            "tenants": [{"name": "t",
                         "quota": {"max_queued": 1}}],
            "actions": [
                {"action": "submit", "tenant": "t",
                 "analysis": "GPD-EXO-01",
                 "model": {"name": "Zp-a", "process": "zprime",
                           "parameters": {"mass": 1500.0,
                                          "cross_section_pb": 0.05}}},
                {"action": "submit", "tenant": "t",
                 "analysis": "GPD-EXO-01",
                 "model": {"name": "Zp-b", "process": "zprime",
                           "parameters": {"mass": 1700.0,
                                          "cross_section_pb": 0.05}}},
            ],
        }
        path = tmp_path / "overflow.json"
        path.write_text(json.dumps(script), encoding="utf-8")
        assert main(["serve", *SPEED, "--script", str(path)]) == 0
        out = capsys.readouterr().out
        assert "rejected" in out


class TestServeTracing:
    def test_deterministic_run_report(self, tmp_path):
        reports = []
        for name in ("a.json", "b.json"):
            path = tmp_path / name
            assert main(["serve", *SPEED, "--trace-out", str(path),
                         "--trace-deterministic"]) == 0
            reports.append(path.read_bytes())
        assert reports[0] == reports[1]

    def test_report_carries_service_spans(self, tmp_path):
        from repro.obs import RunReport

        path = tmp_path / "report.json"
        assert main(["serve", *SPEED, "--trace-out", str(path)]) == 0
        report = RunReport.load(path)
        names = {span["name"] for span in report.spans}
        assert "service.submit" in names
        assert "service.step" in names
