"""Closure extraction, manifest determinism, and archive cross-checks."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.core.archive import PreservationArchive
from repro.core.metadata import PreservationMetadata
from repro.errors import ConfigurationError, PreservationError
from repro.lint import (
    LintReport,
    archive_closure_sources,
    check_manifest_against_archive,
    check_manifest_against_recast,
    check_manifest_against_repository,
    extract_closure,
)
from repro.lint.flow import ClosureManifest, analyze_tree

TREE = {
    "base.py": """
        class Analysis:
            pass

        class AnalysisMetadata:
            def __init__(self, name, inspire_id=""):
                self.name = name
    """,
    "analysis.py": """
        from base import Analysis, AnalysisMetadata
        import helpers

        class ZPeakAnalysis(Analysis):
            def __init__(self):
                self.metadata = AnalysisMetadata(
                    name="TOY_2013_I0042", inspire_id="I0042")

            def init(self):
                self.book("mass", 60, 60.0, 120.0)

            def analyze(self, event):
                return helpers.smear(event, "GT-FINAL")
    """,
    "helpers.py": """
        import util

        def smear(value, tag):
            return value + util.offset()
    """,
    "util.py": """
        def offset():
            return 0.5
    """,
    "unused.py": """
        def never_called():
            return None
    """,
}


def write_tree(root, files: dict) -> None:
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


@pytest.fixture
def tree(tmp_path):
    write_tree(tmp_path, TREE)
    return tmp_path


class TestExtraction:
    def test_closure_contains_reachable_modules_only(self, tree):
        manifest = extract_closure(tree)
        modules = {m["module"] for m in manifest.modules}
        assert {"analysis", "base", "helpers", "util"} <= modules
        assert "unused" not in modules

    def test_closure_records_booked_keys_and_tags(self, tree):
        manifest = extract_closure(tree)
        analysis = next(a for a in manifest.analyses
                        if a["class"] == "ZPeakAnalysis")
        assert analysis["booked_keys"] == ["mass"]
        assert "GT-FINAL" in manifest.conditions_tags

    def test_entry_restriction_by_metadata_name(self, tree):
        manifest = extract_closure(tree, entry="TOY_2013_I0042")
        assert len(manifest.analyses) == 1

    def test_unknown_entry_raises(self, tree):
        with pytest.raises(ConfigurationError):
            extract_closure(tree, entry="NoSuchAnalysis")


class TestDeterminism:
    def test_two_extractions_are_byte_identical(self, tree):
        first = extract_closure(tree).to_json_bytes()
        second = extract_closure(tree).to_json_bytes()
        assert first == second

    def test_manifest_has_no_absolute_paths(self, tree):
        payload = extract_closure(tree).to_json_bytes().decode("utf-8")
        assert str(tree) not in payload

    def test_round_trip_through_dict(self, tree):
        manifest = extract_closure(tree)
        clone = ClosureManifest.from_dict(
            json.loads(manifest.to_json_bytes()))
        assert clone.to_json_bytes() == manifest.to_json_bytes()

    def test_from_dict_rejects_foreign_documents(self):
        with pytest.raises(PreservationError):
            ClosureManifest.from_dict({"format": "something-else"})


def _snapshot_payload(tag: str) -> dict:
    return {
        "schema": {"format": "repro-conditions-snapshot"},
        "global_tag": tag,
        "records": [],
    }


def _snapshot_metadata(tag: str) -> PreservationMetadata:
    return PreservationMetadata.build(
        title=f"conditions snapshot {tag}",
        creator="tests",
        experiment="TOY",
        created="2013-01-01",
        artifact_format="json",
        size_bytes=0,
        checksum="",
        producer="tests",
        access_policy="public",
    )


@pytest.fixture
def archived(tree, tmp_path):
    """The tree fully preserved: sources and the GT-FINAL snapshot."""
    graph = analyze_tree(tree)
    archive = PreservationArchive("closure-test")
    archive_closure_sources(archive, graph)
    archive.store(_snapshot_payload("GT-FINAL"), kind="snapshot",
                  metadata=_snapshot_metadata("GT-FINAL"))
    directory = tmp_path / "archive"
    archive.save(directory)
    return directory


class TestArchiveCheck:
    def test_fully_archived_tree_is_clean(self, tree, archived):
        manifest = extract_closure(tree)
        assert check_manifest_against_archive(manifest, archived) == []

    def test_deleting_one_blob_flips_exactly_one_rule(self, tree,
                                                      archived):
        catalogue = json.loads(
            (archived / "catalogue.json").read_text(encoding="utf-8"))
        victim = next(
            entry["digest"] for entry in catalogue["entries"]
            if json.loads(
                (archived / "blobs" / entry["digest"])
                .read_text(encoding="utf-8")).get("module") == "util")
        (archived / "blobs" / victim).unlink()
        manifest = extract_closure(tree)
        findings = check_manifest_against_archive(manifest, archived)
        assert [f.code for f in findings] == ["DAS208"]
        assert "'util'" in findings[0].message
        assert LintReport.from_findings(findings).exit_code == 2

    def test_source_drift_is_reported(self, tree, archived):
        path = tree / "util.py"
        path.write_text(path.read_text(encoding="utf-8")
                        + "\nEXTRA = 1\n", encoding="utf-8")
        manifest = extract_closure(tree)
        findings = check_manifest_against_archive(manifest, archived)
        das208 = [f for f in findings if f.code == "DAS208"]
        assert len(das208) == 1 and "differs" in das208[0].message

    def test_missing_snapshot_tag_is_an_error(self, tree, tmp_path):
        graph = analyze_tree(tree)
        archive = PreservationArchive("no-snapshot")
        archive_closure_sources(archive, graph)
        directory = tmp_path / "bare"
        archive.save(directory)
        findings = check_manifest_against_archive(
            extract_closure(tree), directory)
        assert [f.code for f in findings] == ["DAS209"]
        assert "GT-FINAL" in findings[0].message

    def test_unreadable_catalogue_is_a_finding_not_a_crash(self, tree,
                                                           tmp_path):
        directory = tmp_path / "damaged"
        directory.mkdir()
        (directory / "catalogue.json").write_text("{not json",
                                                  encoding="utf-8")
        findings = check_manifest_against_archive(
            extract_closure(tree), directory)
        assert [f.code for f in findings] == ["DAS208"]
        assert "unreadable" in findings[0].message


class TestRepositoryCheck:
    def test_unregistered_analysis_warns(self, tree):
        from repro.rivet.standard_analyses import standard_repository

        manifest = extract_closure(tree)
        findings = check_manifest_against_repository(
            manifest, standard_repository())
        das210 = [f for f in findings if f.code == "DAS210"]
        assert len(das210) == 1
        assert das210[0].severity.name == "WARNING"

    def test_dynamic_name_downgrades_to_info(self):
        import repro.rivet.standard_analyses as standard_analyses
        from repro.rivet.standard_analyses import standard_repository

        manifest = extract_closure(standard_analyses.__file__)
        findings = check_manifest_against_repository(
            manifest, standard_repository())
        das210 = [f for f in findings if f.code == "DAS210"]
        assert das210 and all(f.severity.name == "INFO"
                              for f in das210)


class TestRecastCheck:
    def test_mapping_outside_closure_warns(self, tree):
        from repro.recast.bridge import RivetSignalRegion

        manifest = extract_closure(tree)
        regions = {
            "TOY-EXO-001": RivetSignalRegion(
                analysis_name="TOY_2013_I0042", histogram_key="mass",
                window_low=60.0, window_high=120.0),
            "TOY-EXO-002": RivetSignalRegion(
                analysis_name="TOY_2013_I9999", histogram_key="mass",
                window_low=0.0, window_high=1.0),
        }
        findings = check_manifest_against_recast(manifest, regions)
        assert [f.code for f in findings] == ["DAS212"]
        assert findings[0].artifact == "TOY-EXO-002"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
