"""EventBatch round-trip and jagged-container tests.

The batch container must be a lossless columnar twin of the AOD list:
``EventBatch.from_events(events).to_events()`` reproduces every event's
``to_dict()`` exactly — over full-chain samples and over
hypothesis-generated corner cases (empty collections, empty batches,
single events).
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.columnar import EventBatch, FourVectorArray, JaggedCollection
from repro.datamodel.event import AODEvent
from repro.kinematics.fourvector import FourVector
from repro.reconstruction.objects import (
    Electron,
    Jet,
    MissingEnergy,
    Muon,
    Photon,
)

finite = st.floats(min_value=-500.0, max_value=500.0,
                   allow_nan=False, allow_infinity=False)
positive = st.floats(min_value=0.0, max_value=500.0,
                     allow_nan=False, allow_infinity=False)

p4_strategy = st.builds(FourVector, positive, finite, finite, finite)

electron_strategy = st.builds(
    Electron, p4=p4_strategy, charge=st.sampled_from((-1, 1)),
    e_over_p=st.floats(min_value=0.5, max_value=1.5),
    isolation=positive)
muon_strategy = st.builds(
    Muon, p4=p4_strategy, charge=st.sampled_from((-1, 1)),
    n_stations=st.integers(min_value=0, max_value=4),
    isolation=positive)
photon_strategy = st.builds(Photon, p4=p4_strategy)
jet_strategy = st.builds(
    Jet, p4=p4_strategy,
    n_constituents=st.integers(min_value=1, max_value=40),
    em_fraction=st.floats(min_value=0.0, max_value=1.0))

aod_strategy = st.builds(
    AODEvent,
    run_number=st.integers(min_value=0, max_value=10**6),
    event_number=st.integers(min_value=0, max_value=10**9),
    electrons=st.lists(electron_strategy, max_size=4),
    muons=st.lists(muon_strategy, max_size=4),
    photons=st.lists(photon_strategy, max_size=3),
    jets=st.lists(jet_strategy, max_size=5),
    met=st.builds(MissingEnergy, met=positive, phi=finite),
    trigger_bits=st.lists(
        st.sampled_from(("HLT_SingleMu20", "HLT_DiEl12", "HLT_Met80")),
        max_size=3, unique=True),
    n_tracks=st.integers(min_value=0, max_value=60),
)


def dicts(events):
    return [event.to_dict() for event in events]


class TestRoundTrip:
    def test_full_chain_sample(self, mixed_aods):
        batch = EventBatch.from_events(mixed_aods)
        assert batch.n_events == len(mixed_aods)
        assert dicts(batch.to_events()) == dicts(mixed_aods)

    def test_z_sample(self, z_aods):
        batch = EventBatch.from_events(z_aods)
        assert dicts(batch.to_events()) == dicts(z_aods)

    @given(st.lists(aod_strategy, max_size=8))
    @settings(max_examples=60, deadline=None)
    def test_generated_events(self, events):
        batch = EventBatch.from_events(events)
        assert dicts(batch.to_events()) == dicts(events)

    def test_empty_batch(self):
        batch = EventBatch.from_events([])
        assert batch.n_events == 0
        assert batch.to_events() == []
        assert batch.select(np.zeros(0, dtype=bool)).n_events == 0


class TestDerivedQuantities:
    def test_ht_matches_scalar(self, mixed_aods):
        batch = EventBatch.from_events(mixed_aods)
        assert batch.ht().tolist() == [e.ht() for e in mixed_aods]

    def test_counts_and_event_index(self, mixed_aods):
        batch = EventBatch.from_events(mixed_aods)
        assert (batch.jets.counts.tolist()
                == [len(e.jets) for e in mixed_aods])
        # event_index maps every flat object back to its event.
        index = batch.muons.event_index
        counts = np.bincount(index, minlength=batch.n_events)
        assert counts.tolist() == [len(e.muons) for e in mixed_aods]

    def test_select_matches_python_filter(self, mixed_aods):
        batch = EventBatch.from_events(mixed_aods)
        mask = np.array([len(e.jets) >= 2 for e in mixed_aods])
        kept = batch.select(mask)
        want = [e for e, keep in zip(mixed_aods, mask) if keep]
        assert dicts(kept.to_events()) == dicts(want)


class TestJaggedCollection:
    def test_segment_sum_accumulation_order(self):
        # bincount accumulates flat weights left to right per segment —
        # the same association order as a per-event Python sum().
        p4 = FourVectorArray.from_vectors([
            FourVector.from_ptetaphim(pt, 0.1 * i, 0.2, 0.0)
            for i, pt in enumerate([30.0, 20.0, 50.0, 1e-3, 1e16])
        ])
        offsets = np.array([0, 2, 2, 5], dtype=np.int64)
        collection = JaggedCollection(offsets, p4)
        got = collection.segment_sum(p4.pt)
        pts = p4.pt.tolist()
        want = [pts[0] + pts[1], 0.0, pts[2] + pts[3] + pts[4]]
        assert got.tolist() == want

    def test_select_events_empty_and_full(self, z_aods):
        batch = EventBatch.from_events(z_aods)
        none = batch.muons.select_events(
            np.zeros(batch.n_events, dtype=bool))
        assert none.n_events == 0 and len(none.p4) == 0
        everything = batch.muons.select_events(
            np.ones(batch.n_events, dtype=bool))
        assert everything.counts.tolist() == batch.muons.counts.tolist()

    def test_field_access(self, z_aods):
        batch = EventBatch.from_events(z_aods)
        charges = batch.muons.field("charge")
        flat = [m.charge for e in z_aods for m in e.muons]
        assert charges.tolist() == flat
        assert charges.dtype == np.int64

    def test_met_stored_polar(self, mixed_aods):
        batch = EventBatch.from_events(mixed_aods)
        assert batch.met.tolist() == [e.met.met for e in mixed_aods]
        assert batch.met_phi.tolist() == [e.met.phi for e in mixed_aods]
        for value in batch.met_phi.tolist():
            assert math.isfinite(value)
