"""Tests for cone jet clustering."""

import math

import pytest

from repro.reconstruction import CaloCluster
from repro.reconstruction.jets import ConeJetConfig, ConeJetFinder


@pytest.fixture
def finder():
    return ConeJetFinder()


def _cluster(energy, eta, phi, sub="hcal"):
    return CaloCluster(sub, energy, eta, phi, 2)


class TestConeJets:
    def test_collimated_clusters_form_one_jet(self, finder):
        clusters = [_cluster(30.0, 0.5, 1.0), _cluster(10.0, 0.55, 1.1),
                    _cluster(5.0, 0.45, 0.95)]
        jets = finder.find(clusters)
        assert len(jets) == 1
        assert jets[0].n_constituents == 3
        assert jets[0].p4.e == pytest.approx(45.0, rel=1e-6)

    def test_back_to_back_dijet(self, finder):
        clusters = [_cluster(60.0, 0.2, 0.5),
                    _cluster(55.0, -0.3, 0.5 - math.pi)]
        jets = finder.find(clusters)
        assert len(jets) == 2
        assert jets[0].p4.pt >= jets[1].p4.pt

    def test_soft_activity_ignored(self, finder):
        clusters = [_cluster(2.0, 1.0, 1.0), _cluster(2.5, -1.0, -1.0)]
        assert finder.find(clusters) == []

    def test_jet_min_pt(self):
        finder = ConeJetFinder(ConeJetConfig(jet_min_pt=100.0))
        clusters = [_cluster(50.0, 0.0, 1.0)]
        assert finder.find(clusters) == []

    def test_cone_radius_controls_merging(self):
        narrow = ConeJetFinder(ConeJetConfig(cone_radius=0.2))
        wide = ConeJetFinder(ConeJetConfig(cone_radius=0.8))
        clusters = [_cluster(40.0, 0.0, 1.0), _cluster(35.0, 0.5, 1.0)]
        assert len(narrow.find(clusters)) == 2
        assert len(wide.find(clusters)) == 1

    def test_em_fraction(self, finder):
        clusters = [_cluster(30.0, 0.5, 1.0, sub="hcal"),
                    _cluster(10.0, 0.52, 1.05, sub="ecal")]
        jets = finder.find(clusters)
        assert jets[0].em_fraction == pytest.approx(0.25, rel=1e-6)

    def test_jets_sorted_by_pt(self, finder):
        clusters = [_cluster(30.0, 2.0, 0.0),
                    _cluster(80.0, 0.0, 2.0),
                    _cluster(50.0, -1.0, -2.0)]
        jets = finder.find(clusters)
        pts = [jet.p4.pt for jet in jets]
        assert pts == sorted(pts, reverse=True)

    def test_empty_input(self, finder):
        assert finder.find([]) == []


class TestOnRealEvents:
    def test_dijet_events_have_jets(self, mixed_pairs):
        dijet_recos = [reco for gen, reco in mixed_pairs
                       if gen.process_name == "qcd_dijets"]
        assert dijet_recos, "mixed sample should contain dijet events"
        with_jets = sum(1 for reco in dijet_recos if reco.jets)
        assert with_jets / len(dijet_recos) > 0.4
