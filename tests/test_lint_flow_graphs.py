"""Module/import graph and call graph construction (repro.lint.flow)."""

from __future__ import annotations

import ast
import textwrap

import pytest

from repro.lint.flow import analyze_tree, build_module_graph
from repro.lint.pycheck import _ImportMap


def write_tree(root, files: dict) -> None:
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


class TestModuleGraph:
    def test_plain_directory_modules(self, tmp_path):
        write_tree(tmp_path, {
            "analysis.py": "import helpers\n",
            "helpers.py": "import math\n",
        })
        graph = build_module_graph(tmp_path)
        assert set(graph.modules) == {"analysis", "helpers"}
        assert graph.modules["analysis"].internal_imports == ("helpers",)
        assert graph.modules["helpers"].external_imports == ("math",)

    def test_package_anchor_walks_above_init(self, tmp_path):
        write_tree(tmp_path, {
            "src/pkg/__init__.py": "",
            "src/pkg/mod.py": "from pkg import other\n",
            "src/pkg/other.py": "",
        })
        graph = build_module_graph(tmp_path / "src" / "pkg")
        assert graph.anchor == tmp_path / "src"
        assert "pkg.mod" in graph.modules
        assert graph.modules["pkg.mod"].internal_imports == (
            "pkg", "pkg.other")

    def test_relative_import_resolves_inside_package(self, tmp_path):
        write_tree(tmp_path, {
            "pkg/__init__.py": "",
            "pkg/sub/__init__.py": "",
            "pkg/sub/a.py": "from .. import b\nfrom . import c\n",
            "pkg/sub/c.py": "",
            "pkg/b.py": "",
        })
        graph = build_module_graph(tmp_path / "pkg")
        node = graph.modules["pkg.sub.a"]
        assert set(node.internal_imports) == {
            "pkg", "pkg.b", "pkg.sub", "pkg.sub.c"}
        assert node.unresolved_imports == ()

    def test_relative_import_above_root_is_unresolved(self, tmp_path):
        write_tree(tmp_path, {"orphan.py": "from ..nowhere import x\n"})
        graph = build_module_graph(tmp_path)
        node = graph.modules["orphan"]
        rendered = [name for name, _ in node.unresolved_imports]
        assert rendered == ["..nowhere"]

    def test_internal_closure_follows_import_chain(self, tmp_path):
        write_tree(tmp_path, {
            "a.py": "import b\n",
            "b.py": "import c\n",
            "c.py": "",
            "island.py": "",
        })
        graph = build_module_graph(tmp_path)
        assert graph.internal_closure(["a"]) == ["a", "b", "c"]

    def test_file_target_narrows_targets_not_graph(self, tmp_path):
        write_tree(tmp_path, {
            "main.py": "import dep\n",
            "dep.py": "",
        })
        graph = build_module_graph(tmp_path / "main.py")
        assert graph.targets == ("main",)
        assert set(graph.modules) == {"main", "dep"}

    def test_syntax_error_recorded_not_raised(self, tmp_path):
        write_tree(tmp_path, {"broken.py": "def f(:\n"})
        graph = build_module_graph(tmp_path)
        assert graph.modules["broken"].parse_error


class TestImportMapRegressions:
    def parse(self, source: str, package: str = "") -> _ImportMap:
        imports = _ImportMap(package)
        for node in ast.walk(ast.parse(textwrap.dedent(source))):
            if isinstance(node, ast.Import):
                imports.visit_import(node)
            elif isinstance(node, ast.ImportFrom):
                imports.visit_import_from(node)
        return imports

    def test_dotted_alias_keeps_full_path(self):
        imports = self.parse("import os.path as p\n")
        assert imports.alias_target("p") == "os.path"
        assert imports.resolve("p.join") == "os.path.join"

    def test_dotted_import_without_alias_binds_root(self):
        imports = self.parse("import os.path\n")
        assert imports.resolve("os.path.join") == "os.path.join"
        assert ("os.path", 1) in imports.imported_modules()

    def test_relative_from_import_uses_package(self):
        imports = self.parse("from . import util\n", package="pkg.sub")
        assert imports.alias_target("util") == "pkg.sub.util"

    def test_two_dot_relative_climbs_one_package(self):
        imports = self.parse("from ..core import io\n",
                             package="pkg.sub")
        assert imports.alias_target("io") == "pkg.core.io"

    def test_relative_import_without_package_is_dropped(self):
        imports = self.parse("from . import util\n")
        assert imports.alias_target("util") is None
        assert imports.imported_modules() == []

    def test_from_import_alias(self):
        imports = self.parse("from json import dumps as d\n")
        assert imports.resolve("d") == "json.dumps"


class TestCallGraph:
    def test_two_hop_call_chain(self, tmp_path):
        write_tree(tmp_path, {
            "analysis.py": """
                import helpers

                def run():
                    return helpers.smear(1.0)
            """,
            "helpers.py": """
                import util

                def smear(x):
                    return x + util.offset()
            """,
            "util.py": """
                def offset():
                    return 0.5
            """,
        })
        graph = analyze_tree(tmp_path)
        calls = dict(graph.functions["analysis:run"].calls)
        assert "helpers:smear" in calls
        calls = dict(graph.functions["helpers:smear"].calls)
        assert "util:offset" in calls

    def test_self_method_resolution(self, tmp_path):
        write_tree(tmp_path, {
            "mod.py": """
                class Thing:
                    def outer(self):
                        return self.inner()

                    def inner(self):
                        return 1
            """,
        })
        graph = analyze_tree(tmp_path)
        calls = dict(graph.functions["mod:Thing.outer"].calls)
        assert "mod:Thing.inner" in calls

    def test_constructor_call_edges_to_init(self, tmp_path):
        write_tree(tmp_path, {
            "mod.py": """
                class Box:
                    def __init__(self):
                        self.items = []

                def build():
                    return Box()
            """,
        })
        graph = analyze_tree(tmp_path)
        calls = dict(graph.functions["mod:build"].calls)
        assert "mod:Box.__init__" in calls

    def test_analysis_subclass_detected_through_base(self, tmp_path):
        write_tree(tmp_path, {
            "base.py": """
                class Analysis:
                    pass
            """,
            "mine.py": """
                from base import Analysis

                class Middle(Analysis):
                    pass

                class ZPeak(Middle):
                    def analyze(self, event):
                        pass
            """,
        })
        graph = analyze_tree(tmp_path)
        names = {info.name for info in graph.analysis_entries()}
        assert "ZPeak" in names and "Middle" in names

    def test_metadata_name_extracted_statically(self, tmp_path):
        write_tree(tmp_path, {
            "base.py": """
                class Analysis:
                    pass

                class AnalysisMetadata:
                    def __init__(self, name, inspire_id=""):
                        pass
            """,
            "mine.py": """
                from base import Analysis, AnalysisMetadata

                class ZPeak(Analysis):
                    def __init__(self):
                        self.metadata = AnalysisMetadata(
                            name="TOY_2013_I0042",
                            inspire_id="I0042",
                        )
            """,
        })
        graph = analyze_tree(tmp_path)
        info = next(c for c in graph.analysis_entries()
                    if c.name == "ZPeak")
        assert info.metadata_name == "TOY_2013_I0042"
        assert info.inspire_id == "I0042"

    def test_dynamic_metadata_name_left_empty(self, tmp_path):
        write_tree(tmp_path, {
            "base.py": """
                class Analysis:
                    pass

                class AnalysisMetadata:
                    def __init__(self, name):
                        pass
            """,
            "mine.py": """
                from base import Analysis, AnalysisMetadata

                class Param(Analysis):
                    def __init__(self, n):
                        self.metadata = AnalysisMetadata(
                            name=f"TOY_{n}")
            """,
        })
        graph = analyze_tree(tmp_path)
        info = next(c for c in graph.analysis_entries()
                    if c.name == "Param")
        assert info.metadata_name == ""

    def test_functions_edge_to_their_module_pseudo_node(self, tmp_path):
        write_tree(tmp_path, {
            "mod.py": """
                import time

                def f():
                    return 1
            """,
        })
        graph = analyze_tree(tmp_path)
        calls = dict(graph.functions["mod:f"].calls)
        assert "mod:<module>" in calls

    def test_standard_analyses_graph_builds(self):
        import repro.rivet.standard_analyses as standard_analyses

        graph = analyze_tree(standard_analyses.__file__)
        entries = graph.analysis_entries()
        names = {info.metadata_name for info in entries}
        assert "TOY_2013_I0001" in names
        assert len(entries) >= 7


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
