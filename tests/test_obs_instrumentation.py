"""Instrumentation wiring: spans and metrics across the whole chain."""

from __future__ import annotations

import pickle

import pytest

from repro.datamodel import (
    AndCut,
    CountCut,
    GoodRunList,
    MassWindowCut,
    RunRecord,
    RunRegistry,
    SkimSpec,
)
from repro.detector import DetectorSimulation, Digitizer
from repro.errors import WorkflowError
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.lint import Finding, LintConfig, LintSession, Severity
from repro.obs import MetricsRegistry, Tracer
from repro.recast import PreservedSearch, run_mass_scan
from repro.recast.backend import FullChainBackend
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.runtime import ExecutionPolicy, parallel_map
from repro.workflow import (
    ChainRunner,
    ProcessingCampaign,
    ProcessingChain,
    SkimStep,
)


def _square(value: int) -> int:
    return value * value


class TestParallelMapInstrumentation:
    def test_serial_path_records_one_span(self):
        tracer, metrics = Tracer("t"), MetricsRegistry()
        results = parallel_map(_square, [1, 2, 3], None,
                               tracer=tracer, metrics=metrics)
        assert results == [1, 4, 9]
        (span,) = tracer.spans
        assert span.name == "runtime.parallel_map"
        assert span.attributes["mode"] == "serial"
        assert metrics.counter("runtime.items").value == 3

    def test_pooled_path_adopts_chunk_spans_in_order(self):
        tracer, metrics = Tracer("t"), MetricsRegistry()
        policy = ExecutionPolicy.threads(2, chunk_size=2)
        results = parallel_map(_square, list(range(6)), policy,
                               tracer=tracer, metrics=metrics)
        assert results == [v * v for v in range(6)]
        outer = tracer.spans[0]
        assert outer.name == "runtime.parallel_map"
        assert outer.attributes["n_chunks"] == 3
        chunks = tracer.find("runtime.chunk")
        assert [span.attributes["chunk"] for span in chunks] == [0, 1, 2]
        assert all(span.parent_id == outer.span_id for span in chunks)
        assert metrics.counter("runtime.chunks").value == 3
        assert metrics.histogram("runtime.chunk_seconds").count == 3
        assert metrics.histogram("runtime.queue_wait_seconds").count == 3
        assert 0.0 <= metrics.gauge("runtime.worker_utilization").value \
            <= 1.0

    def test_process_pool_trace_structure_is_deterministic(self):
        trees = []
        for _ in range(2):
            tracer = Tracer("scan")
            parallel_map(_square, list(range(8)),
                         ExecutionPolicy.processes(2, chunk_size=3),
                         tracer=tracer)
            trees.append([(s.name, s.span_id, s.parent_id,
                           dict(s.attributes)) for s in tracer.spans])
        assert trees[0] == trees[1]

    def test_untraced_call_records_nothing(self):
        tracer = Tracer("t", enabled=False)
        results = parallel_map(_square, [1, 2],
                               ExecutionPolicy.threads(2), tracer=tracer)
        assert results == [1, 4]
        assert tracer.spans == []


def _build_campaign(conditions_store, gpd_geometry, global_tag="GT-FINAL"):
    registry = RunRegistry("ObsRuns")
    good_runs = GoodRunList("ObsGRL")
    for run_number, sections in [(5, 20), (15, 25)]:
        registry.add(RunRecord(run_number, sections, 0.5))
        good_runs.certify(run_number, 1, sections)
    campaign = ProcessingCampaign(
        name="obs-v1",
        geometry=gpd_geometry,
        conditions=conditions_store,
        global_tag=global_tag,
        generator=ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=6100)),
        events_per_section=0.2,
        max_events_per_run=4,
    )
    return campaign, registry, good_runs


class TestCampaignInstrumentation:
    def _traced_sweep(self, conditions_store, gpd_geometry, policy):
        campaign, registry, good_runs = _build_campaign(
            conditions_store, gpd_geometry)
        tracer, metrics = Tracer("campaign"), MetricsRegistry()
        campaign.process(registry, good_runs, policy=policy,
                         tracer=tracer, metrics=metrics)
        return tracer, metrics

    def test_sweep_span_with_one_run_child_per_run(
            self, conditions_store, gpd_geometry):
        tracer, metrics = self._traced_sweep(
            conditions_store, gpd_geometry, ExecutionPolicy.serial())
        sweep = tracer.spans[0]
        assert sweep.name == "campaign.process"
        assert sweep.attributes["n_runs"] == 2
        runs = tracer.find("campaign.run")
        assert [span.attributes["run"] for span in runs] == [5, 15]
        assert all(span.parent_id == sweep.span_id for span in runs)
        assert metrics.counter("campaign.runs").value == 2
        assert metrics.counter("campaign.events").value > 0

    def test_run_spans_carry_seed_and_conditions_reads(
            self, conditions_store, gpd_geometry):
        tracer, _ = self._traced_sweep(
            conditions_store, gpd_geometry, ExecutionPolicy.serial())
        for span in tracer.find("campaign.run"):
            assert span.attributes["generator_seed"] > 0
            assert span.attributes["conditions_reads"] > 0

    def test_parallel_sweep_trace_identical_to_serial(
            self, conditions_store, gpd_geometry):
        serial, _ = self._traced_sweep(
            conditions_store, gpd_geometry, ExecutionPolicy.serial())
        parallel, _ = self._traced_sweep(
            conditions_store, gpd_geometry, ExecutionPolicy.processes(2))
        key = [(s.name, s.span_id, s.parent_id, dict(s.attributes))
               for s in serial.spans]
        assert key == [(s.name, s.span_id, s.parent_id,
                        dict(s.attributes)) for s in parallel.spans]

    def test_failed_run_names_span_and_run_index(
            self, conditions_store, gpd_geometry):
        campaign, registry, good_runs = _build_campaign(
            conditions_store, gpd_geometry, global_tag="GT-MISSING")
        with pytest.raises(WorkflowError) as excinfo:
            campaign.process(registry, good_runs)
        message = str(excinfo.value)
        assert "span 'campaign.run'" in message
        assert "run 5" in message
        assert "run index 0" in message


class TestChainInstrumentation:
    def _skim_chain(self):
        return ProcessingChain("post-aod", [
            SkimStep(SkimSpec("dimuon", AndCut((
                CountCut("muons", 2, min_pt=10.0),
                MassWindowCut("muons", 60.0, 120.0,
                              opposite_charge=True),
            )))),
        ])

    def _aod_sample(self, gpd_geometry, conditions_store, n_events=6):
        from repro.datamodel import make_aod

        generator = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=7700))
        simulation = DetectorSimulation(gpd_geometry, seed=7701)
        digitizer = Digitizer(gpd_geometry, run_number=17, seed=7702)
        reconstructor = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        return [make_aod(reconstructor.reconstruct(
                    digitizer.digitize(simulation.simulate(event))))
                for event in generator.generate(n_events)]

    def test_chain_run_and_step_spans(self, gpd_geometry,
                                      conditions_store):
        tracer, metrics = Tracer("chain"), MetricsRegistry()
        runner = ChainRunner(tracer=tracer, metrics=metrics)
        aods = self._aod_sample(gpd_geometry, conditions_store)
        runner.run(self._skim_chain(), initial_records=aods)
        run_span = tracer.spans[0]
        assert run_span.name == "chain.run"
        assert run_span.attributes["n_steps"] == 1
        (step,) = tracer.find("chain.step")
        assert step.parent_id == run_span.span_id
        assert step.attributes["step"] == "skim:dimuon"
        assert step.attributes["position"] == 0
        assert step.attributes["n_records"] >= 0
        assert metrics.counter("chain.steps").value == 1

    def test_failed_step_names_span_step_and_position(self):
        runner = ChainRunner(tracer=Tracer("chain"))
        with pytest.raises(WorkflowError) as excinfo:
            # Integers are not AOD events; the skim step dies on them.
            runner.run(self._skim_chain(), initial_records=[1, 2])
        message = str(excinfo.value)
        assert "span 'chain.step'" in message
        assert "step 'skim:dimuon'" in message
        assert "position 0" in message


class TestReconstructionInstrumentation:
    def _raw_sample(self, gpd_geometry, n_events=8):
        generator = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=8800))
        simulation = DetectorSimulation(gpd_geometry, seed=8801)
        digitizer = Digitizer(gpd_geometry, run_number=17, seed=8802)
        return [digitizer.digitize(simulation.simulate(event))
                for event in generator.generate(n_events)]

    def test_serial_pass_records_span_and_counters(
            self, gpd_geometry, conditions_store):
        reconstructor = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        tracer, metrics = Tracer("reco"), MetricsRegistry()
        raws = self._raw_sample(gpd_geometry)
        reconstructor.reconstruct_many(raws, tracer=tracer,
                                       metrics=metrics)
        (span,) = tracer.spans
        assert span.name == "reco.reconstruct_many"
        assert span.attributes == {"n_events": 8, "mode": "serial"}
        assert metrics.counter("reco.events").value == 8
        assert metrics.counter("reco.conditions_reads").value > 0

    def test_parallel_pass_nests_scheduler_spans(
            self, gpd_geometry, conditions_store):
        reconstructor = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        tracer = Tracer("reco")
        raws = self._raw_sample(gpd_geometry)
        reconstructor.reconstruct_many(
            raws, policy=ExecutionPolicy.processes(2), tracer=tracer)
        outer = tracer.spans[0]
        assert outer.name == "reco.reconstruct_many"
        assert outer.attributes["mode"] == "process"
        (scheduler,) = tracer.find("runtime.parallel_map")
        assert scheduler.parent_id == outer.span_id
        assert len(tracer.find("runtime.chunk")) \
            == outer.attributes["n_chunks"]


def _search():
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    return PreservedSearch(
        analysis_id="GPD-EXO-2013-01", title="High-mass dimuon",
        experiment="GPD", selection=selection, n_observed=3,
        background=2.5, background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )


class TestRecastInstrumentation:
    def test_mass_scan_span_and_request_counters(self):
        tracer, metrics = Tracer("recast"), MetricsRegistry()
        backend = FullChainBackend("GPD", n_events=30, n_limit_toys=50,
                                   seed=6400).instrument(tracer, metrics)
        run_mass_scan(backend, _search(), [800.0, 1600.0],
                      tracer=tracer, metrics=metrics)
        scan = tracer.spans[0]
        assert scan.name == "recast.mass_scan"
        assert scan.attributes["n_points"] == 2
        requests = tracer.find("recast.request")
        assert len(requests) == 2
        assert {span.attributes["model"] for span in requests} \
            == {"zprime-800", "zprime-1600"}
        assert metrics.counter("recast.scan_points").value == 2
        assert metrics.counter(
            "recast.requests", backend=backend.name).value == 2
        assert metrics.counter("recast.events_generated").value == 60

    def test_instrumentation_stripped_before_pickling(self):
        backend = FullChainBackend("GPD", n_events=10, seed=1)
        backend.instrument(Tracer("t"), MetricsRegistry())
        clone = pickle.loads(pickle.dumps(backend))
        assert getattr(clone, "_obs_tracer", None) is None
        assert getattr(clone, "_obs_metrics", None) is None

    def test_parallel_scan_unaffected_by_instrumentation(self):
        backend = FullChainBackend("GPD", n_events=30, n_limit_toys=50,
                                   seed=6400)
        serial = run_mass_scan(backend, _search(), [800.0])
        backend.instrument(Tracer("t"), MetricsRegistry())
        parallel = run_mass_scan(backend, _search(), [800.0],
                                 policy=ExecutionPolicy.processes(2))
        assert serial.limits() == parallel.limits()


class TestLintInstrumentation:
    def _finding(self, code):
        return Finding(code=code, severity=Severity.WARNING,
                       message="m", artifact="", file="a.py", line=1)

    def test_kept_findings_counted_by_code(self):
        metrics = MetricsRegistry()
        session = LintSession(metrics=metrics)
        session.extend([self._finding("DAS001"),
                        self._finding("DAS001"),
                        self._finding("DAS113")])
        assert metrics.counter("lint.findings", code="DAS001").value == 2
        assert metrics.counter("lint.findings", code="DAS113").value == 1

    def test_suppressed_findings_not_counted(self):
        metrics = MetricsRegistry()
        session = LintSession(config=LintConfig(ignore=("DAS001",)),
                              metrics=metrics)
        session.extend([self._finding("DAS001"),
                        self._finding("DAS113")])
        assert metrics.counter("lint.findings", code="DAS001").value == 0
        assert metrics.counter("lint.findings", code="DAS113").value == 1

    def test_session_obs_falls_back_to_noop(self):
        session = LintSession()
        assert not session.obs.enabled
        traced = LintSession(tracer=Tracer("lint"))
        assert traced.obs.enabled
