"""Tests for the Level-2 format and the thin converter."""

import pytest

from repro.errors import ConversionError, OutreachError
from repro.outreach import Level2Converter, Level2Event, SimplifiedParticle
from repro.outreach.converter import ConverterConfig
from repro.outreach.format import format_documentation


class TestSimplifiedParticle:
    def test_unknown_type_rejected(self):
        with pytest.raises(OutreachError):
            SimplifiedParticle("neutrino", 10.0, 5.0, 0.0, 0.0)

    def test_p4_reconstruction(self):
        particle = SimplifiedParticle("muon", 50.0, 30.0, 1.0, 0.5, -1)
        p4 = particle.p4()
        assert p4.pt == pytest.approx(30.0)
        assert p4.e == pytest.approx(50.0)

    def test_roundtrip(self):
        particle = SimplifiedParticle("jet", 80.0, 60.0, -1.5, 2.0, 0)
        assert SimplifiedParticle.from_dict(particle.to_dict()) == \
            particle


class TestLevel2Event:
    def test_roundtrip_with_candidates_and_display(self):
        event = Level2Event(
            run_number=1, event_number=7, collision_energy_tev=8.0,
            particles=[SimplifiedParticle("muon", 50.0, 30.0, 1.0,
                                          0.5, -1)],
            met=12.0, met_phi=0.3,
            candidates=[{"type": "D0", "mass": 1.86,
                         "decay_time_ps": 0.5}],
            display={"tracks": [], "towers": []},
        )
        restored = Level2Event.from_dict(event.to_dict())
        assert restored.to_dict() == event.to_dict()

    def test_type_selection(self):
        event = Level2Event(1, 1, 8.0, particles=[
            SimplifiedParticle("muon", 50.0, 30.0, 1.0, 0.5, -1),
            SimplifiedParticle("muon", 40.0, 35.0, -1.0, 1.5, 1),
            SimplifiedParticle("jet", 80.0, 60.0, 0.0, 2.0, 0),
        ])
        muons = event.of_type("muon")
        assert len(muons) == 2
        assert muons[0].pt >= muons[1].pt
        assert len(event.leptons()) == 2

    def test_format_self_documentation(self):
        docs = format_documentation()
        assert docs["format"] == "repro-level2"
        assert "particles" in docs["fields"]


class TestConverter:
    def test_objects_mapped_to_types(self, z_aods):
        converter = Level2Converter()
        level2 = converter.convert_many(z_aods)
        assert len(level2) == len(z_aods)
        n_muons_aod = sum(
            sum(1 for m in aod.muons if m.p4.pt >= 5.0)
            for aod in z_aods
        )
        n_muons_l2 = sum(len(e.of_type("muon")) for e in level2)
        assert n_muons_l2 == n_muons_aod

    def test_met_carried_over(self, z_aods):
        converter = Level2Converter()
        for aod in z_aods[:10]:
            level2 = converter.convert(aod)
            assert level2.met == aod.met.met

    def test_thresholds_applied(self, mixed_aods):
        tight = Level2Converter(config=ConverterConfig(
            min_lepton_pt=50.0, min_jet_pt=100.0))
        loose = Level2Converter()
        n_tight = sum(len(tight.convert(a).particles)
                      for a in mixed_aods)
        n_loose = sum(len(loose.convert(a).particles)
                      for a in mixed_aods)
        assert n_tight < n_loose

    def test_size_reduction_tracked(self, z_aods):
        converter = Level2Converter()
        converter.convert_many(z_aods)
        stats = converter.stats
        assert stats.n_events == len(z_aods)
        assert stats.reduction_factor > 1.0

    def test_candidates_embedded(self, z_aods):
        converter = Level2Converter()
        level2 = converter.convert(
            z_aods[0], candidates=[{"type": "D0", "mass": 1.86}]
        )
        assert level2.candidates[0]["type"] == "D0"

    def test_display_payload_optional(self, z_aods):
        plain = Level2Converter().convert(z_aods[0])
        assert plain.display is None
        with_display = Level2Converter(config=ConverterConfig(
            include_display=True)).convert(z_aods[0])
        assert with_display.display is not None
        assert "tracks" in with_display.display

    def test_bad_energy_rejected(self):
        with pytest.raises(ConversionError):
            Level2Converter(collision_energy_tev=0.0)

    def test_describe_block(self):
        record = Level2Converter().describe()
        assert record["converter"] == "repro-level2-converter"
