"""Shared fixtures: geometries, conditions, and small processed samples.

Chain-level fixtures are session-scoped and deliberately small so the
whole suite stays fast; tests that need statistics use the module-level
samples rather than regenerating events.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.conditions import default_conditions
from repro.datamodel import make_aod
from repro.detector import (
    DetectorSimulation,
    Digitizer,
    forward_spectrometer,
    generic_lhc_detector,
)
from repro.detector.simulation import SimulationConfig
from repro.generation import (
    DrellYanZ,
    DzeroProduction,
    GeneratorConfig,
    HiggsToFourLeptons,
    QCDDijets,
    ToyGenerator,
    WProduction,
)
from repro.reconstruction import GlobalTagView, Reconstructor


@pytest.fixture
def rng():
    """A fresh deterministic random generator."""
    return np.random.default_rng(12345)


@pytest.fixture(scope="session")
def gpd_geometry():
    """The general-purpose detector geometry."""
    return generic_lhc_detector()


@pytest.fixture(scope="session")
def fwd_geometry():
    """The forward-spectrometer geometry."""
    return forward_spectrometer()


@pytest.fixture(scope="session")
def conditions_store():
    """A populated conditions store with GT-PROMPT and GT-FINAL."""
    return default_conditions()


def run_chain(processes, n_events, geometry, conditions, seed=1000,
              run_number=42, sim_config=None):
    """Run gen -> sim -> digi -> reco and return (gen, reco) event pairs."""
    generator = ToyGenerator(GeneratorConfig(processes=processes,
                                             seed=seed))
    simulation = DetectorSimulation(geometry, config=sim_config,
                                    seed=seed + 1)
    digitizer = Digitizer(geometry, run_number=run_number, seed=seed + 2)
    reconstructor = Reconstructor(
        geometry, GlobalTagView(conditions, "GT-FINAL")
    )
    pairs = []
    for event in generator.generate(n_events):
        sim_event = simulation.simulate(event)
        raw = digitizer.digitize(sim_event)
        pairs.append((event, reconstructor.reconstruct(raw)))
    return pairs


@pytest.fixture(scope="session")
def z_pairs(gpd_geometry, conditions_store):
    """120 Z->mumu events processed through the full chain."""
    return run_chain([DrellYanZ()], 120, gpd_geometry, conditions_store,
                     seed=7000)


@pytest.fixture(scope="session")
def z_recos(z_pairs):
    """The RECO events of the Z sample."""
    return [reco for _, reco in z_pairs]


@pytest.fixture(scope="session")
def z_aods(z_recos):
    """The AOD events of the Z sample."""
    return [make_aod(reco) for reco in z_recos]


@pytest.fixture(scope="session")
def mixed_pairs(gpd_geometry, conditions_store):
    """A mixed W/Z/dijet/Higgs sample through the full chain."""
    processes = [
        DrellYanZ(),
        WProduction(cross_section_pb=2200.0),
        QCDDijets(cross_section_pb=3000.0),
        HiggsToFourLeptons(),
    ]
    return run_chain(processes, 80, gpd_geometry, conditions_store,
                     seed=7100)


@pytest.fixture(scope="session")
def mixed_aods(mixed_pairs):
    """The AOD events of the mixed sample."""
    return [make_aod(reco) for _, reco in mixed_pairs]


@pytest.fixture(scope="session")
def d0_recos(fwd_geometry, conditions_store):
    """Forward-spectrometer D0 events through the full chain."""
    pairs = run_chain(
        [DzeroProduction()], 400, fwd_geometry, conditions_store,
        seed=7200, sim_config=SimulationConfig(eta_min=1.8),
    )
    return [reco for _, reco in pairs]
