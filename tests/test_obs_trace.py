"""Tracing core: spans, nesting, deterministic ids, adoption."""

from __future__ import annotations

import pickle

import pytest

from repro.errors import ObservabilityError
from repro.obs import NOOP_TRACER, Span, Tracer, active, derive_span_id
from repro.obs.trace import STATUS_ERROR, STATUS_OK, _NOOP_SPAN


class TestSpanIds:
    def test_id_is_deterministic(self):
        assert (derive_span_id("t", None, "work", 0)
                == derive_span_id("t", None, "work", 0))

    def test_id_is_16_hex_digits(self):
        span_id = derive_span_id("t", "abc", "work", 3)
        assert len(span_id) == 16
        int(span_id, 16)

    @pytest.mark.parametrize("other", [
        ("u", None, "work", 0),
        ("t", "p", "work", 0),
        ("t", None, "other", 0),
        ("t", None, "work", 1),
    ])
    def test_every_component_matters(self, other):
        assert derive_span_id("t", None, "work", 0) != derive_span_id(*other)

    def test_two_tracers_same_structure_same_ids(self):
        ids = []
        for _ in range(2):
            tracer = Tracer("same")
            with tracer.span("outer"):
                with tracer.span("inner"):
                    pass
            ids.append([span.span_id for span in tracer.spans])
        assert ids[0] == ids[1]


class TestNesting:
    def test_nested_spans_parent_chain(self):
        tracer = Tracer("t")
        with tracer.span("a") as a:
            with tracer.span("b") as b:
                with tracer.span("c") as c:
                    pass
        assert a.parent_id is None
        assert b.parent_id == a.span_id
        assert c.parent_id == b.span_id

    def test_siblings_share_parent(self):
        tracer = Tracer("t")
        with tracer.span("root") as root:
            with tracer.span("one") as one:
                pass
            with tracer.span("two") as two:
                pass
        assert one.parent_id == root.span_id
        assert two.parent_id == root.span_id
        assert one.sequence < two.sequence

    def test_spans_recorded_in_start_order(self):
        tracer = Tracer("t")
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        assert [span.name for span in tracer.spans] == ["outer", "inner"]
        assert [span.sequence for span in tracer.spans] == [0, 1]

    def test_current_span_tracks_the_stack(self):
        tracer = Tracer("t")
        assert tracer.current_span is None
        with tracer.span("a"):
            with tracer.span("b"):
                assert tracer.current_span.name == "b"
            assert tracer.current_span.name == "a"
        assert tracer.current_span is None


class TestTiming:
    def test_monotonic_duration(self):
        ticks = iter([10.0, 12.5])
        tracer = Tracer("t", clock=lambda: next(ticks))
        with tracer.span("work") as span:
            pass
        assert span.start == 10.0
        assert span.duration == pytest.approx(2.5)
        assert span.finished

    def test_open_span_duration_is_zero(self):
        tracer = Tracer("t")
        with tracer.span("work") as span:
            assert span.duration == 0.0
            assert not span.finished


class TestStatus:
    def test_clean_exit_is_ok(self):
        tracer = Tracer("t")
        with tracer.span("work") as span:
            pass
        assert span.status == STATUS_OK

    def test_exception_marks_error_and_propagates(self):
        tracer = Tracer("t")
        with pytest.raises(ValueError):
            with tracer.span("work") as span:
                raise ValueError("boom")
        assert span.status == STATUS_ERROR
        assert span.finished

    def test_attributes_via_kwargs_and_set(self):
        tracer = Tracer("t")
        with tracer.span("work", run=7) as span:
            span.set("n_events", 50)
        assert span.attributes == {"run": 7, "n_events": 50}


class TestDisabledTracer:
    def test_disabled_span_is_shared_noop(self):
        tracer = Tracer("t", enabled=False)
        assert tracer.span("anything") is _NOOP_SPAN
        with tracer.span("anything") as span:
            span.set("key", "discarded")
        assert tracer.spans == []

    def test_active_falls_back_to_noop(self):
        assert active(None) is NOOP_TRACER
        tracer = Tracer("mine")
        assert active(tracer) is tracer

    def test_noop_tracer_is_disabled(self):
        assert not NOOP_TRACER.enabled
        assert NOOP_TRACER.adopt([]) == []


class TestAdoption:
    def _worker_spans(self, trace_id: str = "worker") -> list[Span]:
        worker = Tracer(trace_id)
        with worker.span("chunk", index=0):
            with worker.span("item"):
                pass
        return worker.spans

    def test_adoption_reparents_roots(self):
        driver = Tracer("driver")
        with driver.span("map") as outer:
            adopted = driver.adopt(self._worker_spans(), parent=outer)
        assert adopted[0].parent_id == outer.span_id
        assert adopted[1].parent_id == adopted[0].span_id

    def test_adoption_renumbers_and_rederives_ids(self):
        driver = Tracer("driver")
        with driver.span("map") as outer:
            adopted = driver.adopt(self._worker_spans(), parent=outer)
        for span in adopted:
            assert span.trace_id == "driver"
            assert span.span_id == derive_span_id(
                "driver", span.parent_id, span.name, span.sequence)
        assert [span.sequence for span in adopted] == [1, 2]

    def test_adoption_in_submission_order_is_deterministic(self):
        trees = []
        for _ in range(2):
            driver = Tracer("driver")
            with driver.span("map") as outer:
                for index in range(3):
                    worker = Tracer(f"w{index}")
                    with worker.span("chunk", index=index):
                        pass
                    driver.adopt(worker.spans, parent=outer)
            trees.append([(s.name, s.span_id, s.parent_id)
                          for s in driver.spans])
        assert trees[0] == trees[1]

    def test_adoption_defaults_to_current_span(self):
        driver = Tracer("driver")
        with driver.span("map") as outer:
            adopted = driver.adopt(self._worker_spans())
        assert adopted[0].parent_id == outer.span_id

    def test_unfinished_span_rejected(self):
        worker = Tracer("w")
        handle = worker.span("open")
        handle.__enter__()
        with pytest.raises(ObservabilityError, match="unfinished"):
            Tracer("driver").adopt(worker.spans)

    def test_out_of_batch_parent_rejected(self):
        spans = self._worker_spans()
        with pytest.raises(ObservabilityError, match="outside"):
            Tracer("driver").adopt(spans[1:])

    def test_spans_are_picklable_tracers_are_not(self):
        spans = self._worker_spans()
        assert pickle.loads(pickle.dumps(spans)) is not None
        with pytest.raises(Exception):
            pickle.dumps(Tracer("t"))


class TestIntrospection:
    def test_find_by_name(self):
        tracer = Tracer("t")
        with tracer.span("a"):
            pass
        with tracer.span("b"):
            pass
        with tracer.span("a"):
            pass
        assert len(tracer.find("a")) == 2
        assert tracer.find("missing") == []

    def test_to_dict_shape(self):
        tracer = Tracer("t")
        with tracer.span("work", run=1) as span:
            pass
        record = span.to_dict()
        assert record["name"] == "work"
        assert record["span_id"] == span.span_id
        assert record["parent_id"] is None
        assert record["status"] == "ok"
        assert record["attributes"] == {"run": 1}
        assert record["duration"] >= 0.0
