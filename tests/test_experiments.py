"""Tests for experiment profiles, workflows, and the Table 1 matrix."""

import statistics

import pytest

from repro.errors import ExperimentError
from repro.experiments import (
    all_experiments,
    build_workflow,
    diversity_report,
    get_experiment,
    lhc_experiments,
    outreach_feature_matrix,
    post_aod_subgraph,
    pre_aod_subgraph,
    render_table1,
    similarity_matrix,
    verify_outreach_capabilities,
    workflow_similarity,
)
from repro.experiments.profiles import (
    ConstantsHandling,
    DataPolicyStatus,
)


class TestRegistry:
    def test_six_experiments(self):
        assert len(all_experiments()) == 6

    def test_lhc_subset_ordered(self):
        names = [profile.name for profile in lhc_experiments()]
        assert names == ["ALICE", "ATLAS", "CMS", "LHCb"]

    def test_unknown_experiment_raises(self):
        with pytest.raises(ExperimentError):
            get_experiment("UA1")

    def test_alice_text_file_constants(self):
        assert get_experiment("ALICE").constants_handling == \
            ConstantsHandling.TEXT_FILES

    def test_data_policies_match_section4(self):
        assert get_experiment("CMS").data_policy.status == \
            DataPolicyStatus.APPROVED
        assert get_experiment("CMS").data_policy.year == 2013
        assert get_experiment("LHCb").data_policy.status == \
            DataPolicyStatus.APPROVED
        assert get_experiment("ATLAS").data_policy.status == \
            DataPolicyStatus.UNDER_DISCUSSION
        assert get_experiment("ALICE").data_policy.status == \
            DataPolicyStatus.UNDER_DISCUSSION


class TestWorkflowGraphs:
    def test_common_spine_present(self):
        for profile in all_experiments():
            graph = build_workflow(profile)
            for node in ("raw", "reconstruction", "aod",
                         "analyst_scripts", "publication"):
                graph.node(node)

    def test_constants_node_differs_for_alice(self):
        alice = build_workflow(get_experiment("ALICE"))
        atlas = build_workflow(get_experiment("ATLAS"))
        alice.node("constants_files")
        atlas.node("conditions_db")
        with pytest.raises(ExperimentError):
            alice.node("conditions_db")

    def test_self_similarity_is_one(self):
        graph = build_workflow(get_experiment("CMS"))
        assert workflow_similarity(graph, graph) == 1.0

    def test_symmetry(self):
        cms = build_workflow(get_experiment("CMS"))
        lhcb = build_workflow(get_experiment("LHCb"))
        assert workflow_similarity(cms, lhcb) == pytest.approx(
            workflow_similarity(lhcb, cms)
        )

    def test_paper_claim_pre_aod_similar_post_aod_varied(self):
        experiments = all_experiments()
        pre = similarity_matrix(experiments, "pre_aod")
        post = similarity_matrix(experiments, "post_aod")
        assert statistics.mean(pre.values()) > 0.85
        assert (statistics.mean(pre.values())
                > statistics.mean(post.values()) + 0.2)

    def test_paper_claim_alice_is_the_pre_aod_outlier(self):
        experiments = all_experiments()
        pre = similarity_matrix(experiments, "pre_aod")
        alice_scores = [value for pair, value in pre.items()
                        if "ALICE" in pair]
        other_scores = [value for pair, value in pre.items()
                        if "ALICE" not in pair]
        assert max(alice_scores) < min(other_scores)
        # Non-ALICE pre-AOD workflows are *identical*.
        assert min(other_scores) == 1.0

    def test_subgraph_split_partitions_nodes(self):
        graph = build_workflow(get_experiment("ATLAS"))
        pre = pre_aod_subgraph(graph)
        post = post_aod_subgraph(graph)
        assert len(pre) + len(post) == len(graph)

    def test_unknown_region_rejected(self):
        with pytest.raises(ExperimentError):
            similarity_matrix(all_experiments(), "sideways")

    def test_cycle_rejected(self):
        graph = build_workflow(get_experiment("CMS"))
        with pytest.raises(ExperimentError):
            graph.add_edge("publication", "raw")


class TestTable1:
    def test_matrix_rows_and_columns(self):
        matrix = outreach_feature_matrix(lhc_experiments())
        assert "Event Display(s)" in matrix
        assert set(matrix["Data Format(s)"]) == \
            {"ALICE", "ATLAS", "CMS", "LHCb"}

    def test_transcribed_values(self):
        matrix = outreach_feature_matrix(lhc_experiments())
        assert matrix["Event Display(s)"]["CMS"] == "iSpy"
        assert matrix["Data Format(s)"]["CMS"] == "ig"
        assert matrix["self-documenting?"]["CMS"] == "yes"
        assert matrix["Master Class uses"]["LHCb"] == "D lifetime"
        assert "ATLANTIS" in matrix["Event Display(s)"]["ATLAS"]
        assert "Root too heavy" in matrix["Comments"]["ALICE"]

    def test_rendered_table(self):
        text = render_table1(lhc_experiments())
        assert "iSpy" in text
        assert "Panoramix" in text

    def test_non_lhc_has_no_outreach_row(self):
        with pytest.raises(ExperimentError):
            outreach_feature_matrix([get_experiment("CDF")])

    def test_paper_claim_no_common_formats(self):
        report = diversity_report(lhc_experiments())
        assert report["any_common_format"] is False
        assert report["Data Format(s)"]["n_distinct"] >= 3

    def test_library_covers_masterclass_uses(self):
        total_covered = 0
        total_core_uses = 0
        for profile in lhc_experiments():
            result = verify_outreach_capabilities(profile)
            total_covered += result["n_covered"]
            for use, exercise in result["masterclass_coverage"].items():
                if any(k in use for k in ("W", "Z", "Higgs",
                                          "D lifetime")):
                    total_core_uses += 1
                    assert exercise is not None, use
        assert total_covered >= total_core_uses
