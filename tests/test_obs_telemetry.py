"""Windowed telemetry: grids, exact quantiles, the hub, determinism."""

import json

import pytest

from repro.errors import ObservabilityError
from repro.obs.telemetry import (
    DEFAULT_WINDOW_BUCKETS,
    QUANTILE_GRID,
    TELEMETRY_FORMAT,
    TelemetryHub,
    WindowedSeries,
    WindowSpec,
    exact_quantile,
    quantile_label,
    validate_telemetry_snapshot,
)
from repro.runtime import Clock, LogicalClock, MonotonicClock


class TestWindowSpec:
    def test_tumbling_default(self):
        spec = WindowSpec(width=8.0)
        assert spec.stride == 8.0
        assert spec.kind == "tumbling"

    def test_sliding_when_stride_under_width(self):
        spec = WindowSpec(width=8.0, stride=2.0)
        assert spec.kind == "sliding"

    def test_tumbling_assigns_each_instant_one_window(self):
        spec = WindowSpec(width=4.0)
        assert list(spec.indices_for(0.0)) == [0]
        assert list(spec.indices_for(3.999)) == [0]
        # Half-open upper edge: 4.0 belongs to the next window.
        assert list(spec.indices_for(4.0)) == [1]

    def test_sliding_covers_each_instant_width_over_stride_times(self):
        spec = WindowSpec(width=4.0, stride=2.0)
        assert list(spec.indices_for(0.5)) == [0]
        assert list(spec.indices_for(2.5)) == [0, 1]
        assert list(spec.indices_for(4.5)) == [1, 2]

    def test_exact_grid_point_excluded_from_closing_window(self):
        spec = WindowSpec(width=4.0, stride=2.0)
        # t=4.0 is the exclusive end of window 0 ([0, 4)).
        assert list(spec.indices_for(4.0)) == [1, 2]

    def test_window_boundaries(self):
        spec = WindowSpec(width=4.0, stride=2.0)
        assert spec.start_of(3) == 6.0
        assert spec.end_of(3) == 10.0

    def test_negative_time_rejected(self):
        with pytest.raises(ObservabilityError):
            WindowSpec(width=4.0).indices_for(-0.1)

    def test_invalid_specs_rejected(self):
        with pytest.raises(ObservabilityError):
            WindowSpec(width=0.0)
        with pytest.raises(ObservabilityError):
            WindowSpec(width=4.0, stride=8.0)
        with pytest.raises(ObservabilityError):
            WindowSpec(width=4.0, stride=0.0)

    def test_round_trip(self):
        spec = WindowSpec(width=8.0, stride=2.0)
        assert WindowSpec.from_dict(spec.to_dict()) == spec

    def test_from_dict_rejects_unknown_fields(self):
        with pytest.raises(ObservabilityError):
            WindowSpec.from_dict({"width": 4.0, "anchor": 1.0})


class TestExactQuantile:
    def test_matches_inverse_cdf_definition(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert exact_quantile(values, 0.5) == 2.0
        assert exact_quantile(values, 0.9) == 4.0
        assert exact_quantile(values, 1.0) == 4.0

    def test_returns_an_observed_value(self):
        values = [0.1, 100.0]
        for q in QUANTILE_GRID:
            assert exact_quantile(values, q) in values

    def test_empty_and_out_of_range_rejected(self):
        with pytest.raises(ObservabilityError):
            exact_quantile([], 0.5)
        with pytest.raises(ObservabilityError):
            exact_quantile([1.0], 0.0)
        with pytest.raises(ObservabilityError):
            exact_quantile([1.0], 1.5)

    def test_quantile_labels(self):
        assert [quantile_label(q) for q in QUANTILE_GRID] == \
            ["p50", "p90", "p95", "p99", "p100"]


class TestWindowedSeries:
    def _series(self, **kwargs):
        return WindowedSeries("s", (), WindowSpec(width=4.0), **kwargs)

    def test_close_reduces_passed_windows_only(self):
        series = self._series()
        series.observe(0.0, 1.0)
        series.observe(5.0, 2.0)
        assert series.close_upto(5.0) == 1
        assert len(series.windows) == 1
        assert series.windows[0].start == 0.0
        assert series.windows[0].count == 1

    def test_final_flush_closes_open_windows(self):
        series = self._series()
        series.observe(5.0, 2.0)
        assert series.close_upto(5.0) == 0
        assert series.close_upto(5.0, final=True) == 1

    def test_empty_windows_emit_nothing(self):
        series = self._series()
        series.observe(9.0, 1.0)  # window [8, 12) only
        series.close_upto(100.0)
        assert [w.start for w in series.windows] == [8.0]

    def test_window_aggregates_are_exact(self):
        series = self._series(buckets=(1.0, 2.0))
        for value in (0.5, 1.5, 1.5, 3.0):
            series.observe(1.0, value)
        series.close_upto(4.0)
        window = series.windows[0]
        assert window.count == 4
        assert window.sum == 6.5
        assert (window.min, window.max) == (0.5, 3.0)
        # Inclusive upper bounds, trailing overflow.
        assert window.bucket_counts == (1, 2, 1)
        record = window.to_dict()
        assert record["quantiles"]["p50"] == 1.5
        assert record["quantiles"]["p100"] == 3.0

    def test_sliding_observation_lands_in_every_covering_window(self):
        series = WindowedSeries("s", (),
                                WindowSpec(width=4.0, stride=2.0))
        series.observe(2.5, 7.0)
        series.close_upto(100.0)
        assert [w.start for w in series.windows] == [0.0, 2.0]
        assert all(w.count == 1 for w in series.windows)

    def test_bad_buckets_rejected(self):
        with pytest.raises(ObservabilityError):
            self._series(buckets=())
        with pytest.raises(ObservabilityError):
            self._series(buckets=(2.0, 1.0))

    def test_timing_series_normalized_deterministically(self):
        series = WindowedSeries("backend_seconds", (),
                                WindowSpec(width=4.0))
        series.observe(0.0, 3.25)
        series.close_upto(4.0)
        record = series.to_dict(deterministic=True)
        window = record["windows"][0]
        assert window["count"] == 1  # counts survive
        assert window["sum"] == 0.0
        assert window["max"] == 0.0
        assert set(window["quantiles"].values()) == {0.0}
        real = series.to_dict(deterministic=False)
        assert real["windows"][0]["sum"] == 3.25


class TestTelemetryHub:
    def test_series_identity_by_name_and_labels(self):
        hub = TelemetryHub(LogicalClock())
        a = hub.series("s", tenant="a")
        assert hub.series("s", tenant="a") is a
        assert hub.series("s", tenant="b") is not a

    def test_conflicting_buckets_rejected(self):
        hub = TelemetryHub(LogicalClock())
        hub.series("s", buckets=(1.0, 2.0))
        with pytest.raises(ObservabilityError):
            hub.series("s", buckets=(5.0,))

    def test_observe_reads_the_injected_clock(self):
        clock = LogicalClock()
        hub = TelemetryHub(clock, spec=WindowSpec(width=4.0))
        hub.observe("s", 1.0)
        clock.advance(6.0)
        hub.observe("s", 2.0)
        hub.flush()
        snapshot = hub.snapshot()
        assert [w["start"] for w in snapshot["series"][0]["windows"]] \
            == [0.0]
        hub.flush(final=True)
        snapshot = hub.snapshot()
        assert [w["start"] for w in snapshot["series"][0]["windows"]] \
            == [0.0, 4.0]

    def test_disabled_hub_records_nothing(self):
        hub = TelemetryHub(LogicalClock(), enabled=False)
        hub.observe("s", 1.0)
        hub.event("e")
        assert hub.flush(final=True) == 0
        assert hub.n_observations == 0
        assert hub.snapshot()["series"] == []

    def test_event_is_a_unit_observation(self):
        clock = LogicalClock()
        hub = TelemetryHub(clock, spec=WindowSpec(width=4.0))
        hub.event("hits", tenant="t")
        hub.event("hits", tenant="t")
        hub.flush(final=True)
        window = hub.snapshot()["series"][0]["windows"][0]
        assert window["count"] == 2
        assert window["sum"] == 2.0

    def test_snapshot_bytes_are_replay_stable(self):
        def run() -> bytes:
            clock = LogicalClock()
            hub = TelemetryHub(clock, spec=WindowSpec(width=2.0))
            for step in range(10):
                hub.observe("depth", step % 3, tenant="a")
                hub.event("hits", tenant="b")
                clock.advance()
                hub.flush()
            hub.flush(final=True)
            return hub.to_json_bytes(deterministic=True)

        assert run() == run()

    def test_snapshot_validates_and_carries_envelope(self):
        hub = TelemetryHub(LogicalClock())
        hub.event("hits")
        hub.flush(final=True)
        snapshot = json.loads(hub.to_json_bytes())
        assert snapshot["format"] == TELEMETRY_FORMAT
        validate_telemetry_snapshot(snapshot)

    def test_validation_rejects_malformed_snapshots(self):
        with pytest.raises(ObservabilityError):
            validate_telemetry_snapshot([])
        with pytest.raises(ObservabilityError):
            validate_telemetry_snapshot({"format": "nope"})
        hub = TelemetryHub(LogicalClock())
        hub.event("hits")
        hub.flush(final=True)
        snapshot = hub.snapshot()
        snapshot["series"][0]["windows"][0]["bucket_counts"] = [1]
        with pytest.raises(ObservabilityError):
            validate_telemetry_snapshot(snapshot)


class TestClockInterface:
    def test_logical_and_monotonic_share_the_interface(self):
        assert isinstance(LogicalClock(), Clock)
        assert isinstance(MonotonicClock(), Clock)

    def test_monotonic_clock_advances_itself(self):
        clock = MonotonicClock()
        first = clock.now()
        assert clock.advance() >= first

    def test_hub_accepts_the_production_clock(self):
        hub = TelemetryHub(MonotonicClock(), spec=WindowSpec(width=1e9))
        hub.event("hits")
        hub.flush(final=True)
        assert hub.snapshot()["series"][0]["n_observations"] == 1

    def test_default_buckets_strictly_ascend(self):
        assert list(DEFAULT_WINDOW_BUCKETS) == \
            sorted(DEFAULT_WINDOW_BUCKETS)
