"""Tests for candidate-object building and the RECO container."""

import math

import pytest

from repro.detector.digitization import MuonChamberHit
from repro.kinematics import invariant_mass
from repro.reconstruction import CaloCluster, RecoEvent, Track
from repro.reconstruction.objects import (
    ELECTRON_MASS,
    MUON_MASS,
    ObjectBuilder,
)


@pytest.fixture
def builder():
    return ObjectBuilder()


def _track(pt, eta, phi, charge=1):
    return Track(pt, eta, phi, charge, 0.0, 0.0, 1.0, 8)


class TestMuonBuilding:
    def test_matched_track_becomes_muon(self, builder):
        track = _track(30.0, 0.5, 1.0)
        hits = [MuonChamberHit(0, 0.5, 1.0), MuonChamberHit(1, 0.51, 1.0)]
        muons = builder.build_muons([track], hits)
        assert len(muons) == 1
        assert muons[0].n_stations == 2
        assert muons[0].p4.mass == pytest.approx(MUON_MASS, rel=1e-6)

    def test_single_station_rejected(self, builder):
        track = _track(30.0, 0.5, 1.0)
        hits = [MuonChamberHit(0, 0.5, 1.0)]
        assert builder.build_muons([track], hits) == []

    def test_unmatched_direction_rejected(self, builder):
        track = _track(30.0, 0.5, 1.0)
        hits = [MuonChamberHit(0, -1.5, 2.0), MuonChamberHit(1, -1.5, 2.0)]
        assert builder.build_muons([track], hits) == []

    def test_low_pt_rejected(self, builder):
        track = _track(1.0, 0.5, 1.0)
        hits = [MuonChamberHit(0, 0.5, 1.0), MuonChamberHit(1, 0.5, 1.0)]
        assert builder.build_muons([track], hits) == []

    def test_isolation_sums_nearby_tracks(self, builder):
        track = _track(30.0, 0.5, 1.0)
        nearby = _track(5.0, 0.55, 1.05)
        far = _track(50.0, -2.0, -2.0)
        hits = [MuonChamberHit(0, 0.5, 1.0), MuonChamberHit(1, 0.5, 1.0)]
        muons = builder.build_muons([track, nearby, far], hits)
        muon = next(m for m in muons if m.p4.pt > 25.0)
        assert muon.isolation == pytest.approx(5.0)


class TestElectronBuilding:
    def test_track_cluster_match(self, builder):
        track = _track(25.0, 0.3, -1.0, charge=-1)
        momentum = track.p4(ELECTRON_MASS).p
        cluster = CaloCluster("ecal", momentum * 1.0, 0.3, -1.0, 4)
        electrons = builder.build_electrons([track], [cluster], [])
        assert len(electrons) == 1
        assert electrons[0].charge == -1
        assert electrons[0].e_over_p == pytest.approx(1.0, rel=0.01)

    def test_bad_e_over_p_rejected(self, builder):
        track = _track(25.0, 0.3, -1.0)
        momentum = track.p4(ELECTRON_MASS).p
        cluster = CaloCluster("ecal", momentum * 3.0, 0.3, -1.0, 4)
        assert builder.build_electrons([track], [cluster], []) == []

    def test_muon_track_not_reused(self, builder):
        track = _track(25.0, 0.3, -1.0)
        hits = [MuonChamberHit(0, 0.3, -1.0),
                MuonChamberHit(1, 0.3, -1.0)]
        muons = builder.build_muons([track], hits)
        momentum = track.p4(ELECTRON_MASS).p
        cluster = CaloCluster("ecal", momentum, 0.3, -1.0, 4)
        assert builder.build_electrons([track], [cluster], muons) == []

    def test_cluster_used_once(self, builder):
        track1 = _track(25.0, 0.3, -1.0)
        track2 = _track(24.0, 0.31, -0.99)
        momentum = track1.p4(ELECTRON_MASS).p
        cluster = CaloCluster("ecal", momentum, 0.3, -1.0, 4)
        electrons = builder.build_electrons([track1, track2], [cluster],
                                            [])
        assert len(electrons) == 1


class TestPhotonBuilding:
    def test_trackless_cluster_is_photon(self, builder):
        cluster = CaloCluster("ecal", 30.0, 1.0, 2.0, 3)
        photons = builder.build_photons([], [cluster], [])
        assert len(photons) == 1
        assert photons[0].p4.e == pytest.approx(30.0, rel=1e-6)

    def test_cluster_near_track_rejected(self, builder):
        cluster = CaloCluster("ecal", 30.0, 1.0, 2.0, 3)
        track = _track(28.0, 1.02, 2.01)
        assert builder.build_photons([track], [cluster], []) == []

    def test_soft_cluster_rejected(self, builder):
        cluster = CaloCluster("ecal", 0.8, 1.0, 2.0, 1)
        assert builder.build_photons([], [cluster], []) == []


class TestMet:
    def test_met_balances_single_cluster(self, builder):
        cluster = CaloCluster("hcal", 40.0, 0.0, 0.5, 4)
        met = builder.build_met([], [cluster], [])
        assert met.met == pytest.approx(cluster.p4().pt, rel=1e-6)
        expected_phi = 0.5 - math.pi
        assert met.phi == pytest.approx(expected_phi, abs=1e-6)

    def test_balanced_event_has_no_met(self, builder):
        cluster1 = CaloCluster("hcal", 40.0, 0.0, 0.5, 4)
        cluster2 = CaloCluster("hcal", 40.0, 0.0, 0.5 - math.pi, 4)
        met = builder.build_met([], [cluster1, cluster2], [])
        assert met.met == pytest.approx(0.0, abs=1e-9)


class TestRecoEventContainer:
    def test_serialisation_roundtrip(self, z_recos):
        reco = z_recos[0]
        restored = RecoEvent.from_dict(reco.to_dict())
        assert restored.to_dict() == reco.to_dict()

    def test_size_grows_with_content(self, z_recos):
        empty = RecoEvent(1, 1)
        assert (z_recos[0].approximate_size_bytes()
                > empty.approximate_size_bytes())


class TestPhysicsOutput:
    def test_z_mass_from_reco_muons(self, z_recos):
        masses = []
        for reco in z_recos:
            positive = [m for m in reco.muons if m.charge > 0]
            negative = [m for m in reco.muons if m.charge < 0]
            if positive and negative:
                masses.append(invariant_mass(
                    [positive[0].p4, negative[0].p4]
                ))
        assert len(masses) > 40
        median = sorted(masses)[len(masses) // 2]
        assert median == pytest.approx(91.2, abs=2.0)
