"""Tests for track finding and fitting."""

import numpy as np
import pytest

from repro.detector import Digitizer, generic_lhc_detector
from repro.detector.digitization import DigitizerConfig, TrackerHit
from repro.detector.simulation import Traversal
from repro.errors import ReconstructionError
from repro.kinematics import FourVector
from repro.reconstruction import Track, TrackFinder, two_track_vertex


@pytest.fixture(scope="module")
def geometry():
    return generic_lhc_detector()


def _hits_for(geometry, pt, eta, phi, charge, origin=(0.0, 0.0, 0.0),
              seed=7, noise=0.0):
    digitizer = Digitizer(
        geometry,
        config=DigitizerConfig(layer_inefficiency=0.0,
                               tracker_noise_hits=noise),
        seed=seed,
    )
    momentum = FourVector.from_ptetaphim(pt, eta, phi, 0.105)
    traversal = Traversal(0, 13, float(charge), momentum, origin, True)
    return digitizer._tracker_hits_for(traversal)


class TestSingleTrack:
    def test_reconstructs_kinematics(self, geometry):
        finder = TrackFinder(geometry)
        hits = _hits_for(geometry, 40.0, 0.8, 1.2, -1)
        tracks = finder.find(hits)
        assert len(tracks) == 1
        track = tracks[0]
        assert track.pt == pytest.approx(40.0, rel=0.1)
        assert track.eta == pytest.approx(0.8, abs=0.05)
        assert track.phi == pytest.approx(1.2, abs=0.01)
        assert track.charge == -1

    def test_charge_from_curvature_sign(self, geometry):
        finder = TrackFinder(geometry)
        positive = finder.find(_hits_for(geometry, 20.0, 0.0, 0.0, +1))
        negative = finder.find(_hits_for(geometry, 20.0, 0.0, 0.0, -1))
        assert positive[0].charge == 1
        assert negative[0].charge == -1

    def test_pt_resolution_scales(self, geometry):
        # Relative resolution should be percent-level at 10 GeV.
        finder = TrackFinder(geometry)
        pulls = []
        for seed in range(30):
            hits = _hits_for(geometry, 10.0, 0.3, 0.5, 1, seed=seed)
            tracks = finder.find(hits)
            if tracks:
                pulls.append(tracks[0].pt / 10.0 - 1.0)
        assert len(pulls) > 25
        assert float(np.std(pulls)) < 0.05

    def test_impact_parameter_measured(self, geometry):
        finder = TrackFinder(geometry)
        # Origin offset of 0.8 mm transverse to the direction phi=0:
        # d0 = x0 sin(phi) - y0 cos(phi) = -y0 for phi=0.
        hits = _hits_for(geometry, 20.0, 0.2, 0.0, 1,
                         origin=(0.0, -0.8, 0.0))
        tracks = finder.find(hits)
        assert len(tracks) == 1
        assert tracks[0].d0_mm == pytest.approx(0.8, abs=0.1)

    def test_too_few_hits_no_track(self, geometry):
        finder = TrackFinder(geometry)
        hits = _hits_for(geometry, 20.0, 0.0, 0.0, 1)[:3]
        assert finder.find(hits) == []


class TestMultiTrack:
    def test_separated_tracks_found(self, geometry):
        finder = TrackFinder(geometry)
        hits = (_hits_for(geometry, 30.0, 0.5, 0.3, 1, seed=1)
                + _hits_for(geometry, 25.0, -1.0, 2.4, -1, seed=2))
        tracks = finder.find(hits)
        assert len(tracks) == 2
        charges = sorted(track.charge for track in tracks)
        assert charges == [-1, 1]

    def test_noise_does_not_fake_tracks(self, geometry):
        finder = TrackFinder(geometry)
        rng = np.random.default_rng(3)
        noise_hits = [
            TrackerHit(
                layer=int(rng.integers(0, 8)),
                r_mm=geometry.tracker.layer_radii_mm[
                    int(rng.integers(0, 8))],
                phi=float(rng.uniform(-3.14, 3.14)),
                z_mm=float(rng.uniform(-2000, 2000)),
            )
            for _ in range(30)
        ]
        assert len(finder.find(noise_hits)) == 0

    def test_track_survives_moderate_noise(self, geometry):
        finder = TrackFinder(geometry)
        hits = _hits_for(geometry, 40.0, 0.2, -1.0, 1, noise=10.0,
                         seed=4)
        tracks = finder.find(hits)
        assert any(abs(track.pt - 40.0) / 40.0 < 0.2 for track in tracks)


class TestTrackDataclass:
    def test_serialisation_roundtrip(self):
        track = Track(10.0, 0.5, -1.0, 1, 0.02, 3.0, 1.5, 7)
        assert Track.from_dict(track.to_dict()) == track

    def test_p4_mass_hypothesis(self):
        track = Track(10.0, 0.5, -1.0, 1, 0.0, 0.0, 1.0, 8)
        assert track.p4(0.494).mass == pytest.approx(0.494)


class TestVertexing:
    def test_common_origin_reconstructed(self, geometry):
        finder = TrackFinder(geometry)
        origin = (1.5, 0.5, 10.0)
        tracks = []
        for seed, (pt, eta, phi, charge) in enumerate(
            [(8.0, 2.4, 0.4, 1), (6.0, 2.2, 1.2, -1)]
        ):
            hits = _hits_for(geometry, pt, eta, phi, charge,
                             origin=origin, seed=seed + 10)
            found = finder.find(hits)
            assert len(found) == 1
            tracks.append(found[0])
        vertex, doca = two_track_vertex(tracks[0], tracks[1])
        assert vertex[0] == pytest.approx(1.5, abs=0.5)
        assert vertex[1] == pytest.approx(0.5, abs=0.5)
        assert doca < 1.0

    def test_parallel_tracks_raise(self):
        track = Track(10.0, 0.5, 1.0, 1, 0.0, 0.0, 1.0, 8)
        other = Track(20.0, 0.5, 1.0, -1, 5.0, 2.0, 1.0, 8)
        with pytest.raises(ReconstructionError):
            two_track_vertex(track, other)
