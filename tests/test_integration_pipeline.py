"""End-to-end integration tests across the full library stack."""

import statistics

import pytest

from repro.conditions import export_snapshot
from repro.datamodel import (
    AndCut,
    CountCut,
    DataTier,
    MassWindowCut,
    SkimSpec,
    SlimSpec,
    read_dataset,
    write_dataset,
)
from repro.kinematics import invariant_mass


class TestPhysicsFidelity:
    """The chain must preserve physics, not just run."""

    def test_z_peak_survives_full_chain(self, z_pairs):
        truth_masses = []
        reco_masses = []
        for gen, reco in z_pairs:
            muons = [p.momentum for p in gen.final_state()
                     if abs(p.pdg_id) == 13]
            truth_masses.append(invariant_mass(muons[:2]))
            positive = [m for m in reco.muons if m.charge > 0]
            negative = [m for m in reco.muons if m.charge < 0]
            if positive and negative:
                reco_masses.append(invariant_mass(
                    [positive[0].p4, negative[0].p4]
                ))
        assert statistics.median(truth_masses) == pytest.approx(
            91.2, abs=1.0
        )
        assert statistics.median(reco_masses) == pytest.approx(
            statistics.median(truth_masses), abs=2.0
        )

    def test_muon_reconstruction_efficiency(self, z_pairs):
        n_truth = 0
        n_matched = 0
        for gen, reco in z_pairs:
            truth_muons = [
                p for p in gen.final_state()
                if abs(p.pdg_id) == 13 and p.momentum.pt > 15.0
                and abs(p.momentum.eta) < 2.2
            ]
            n_truth += len(truth_muons)
            for truth in truth_muons:
                matched = any(
                    truth.momentum.delta_r(muon.p4) < 0.1
                    for muon in reco.muons
                )
                if matched:
                    n_matched += 1
        assert n_truth > 100
        assert n_matched / n_truth > 0.6

    def test_charge_assignment_mostly_correct(self, z_pairs):
        n_checked = 0
        n_correct = 0
        for gen, reco in z_pairs:
            truth_muons = [p for p in gen.final_state()
                           if abs(p.pdg_id) == 13
                           and p.momentum.pt > 15.0]
            for truth in truth_muons:
                for muon in reco.muons:
                    if truth.momentum.delta_r(muon.p4) < 0.05:
                        n_checked += 1
                        truth_charge = -1 if truth.pdg_id > 0 else 1
                        if muon.charge == truth_charge:
                            n_correct += 1
                        break
        assert n_checked > 50
        assert n_correct / n_checked > 0.95


class TestTierReduction:
    """The nested-reduction structure of Section 3.2."""

    def test_event_counts_reduce_through_skim(self, z_aods):
        skim = SkimSpec("tight", AndCut((
            CountCut("muons", 2, min_pt=20.0),
            MassWindowCut("muons", 80.0, 100.0, opposite_charge=True),
        )))
        selected = skim.apply(z_aods)
        assert 0 < len(selected) < len(z_aods)

    def test_bytes_reduce_through_tiers(self, z_pairs, z_aods):
        from repro.datamodel import make_aod

        reco_bytes = sum(reco.approximate_size_bytes()
                         for _, reco in z_pairs)
        aod_bytes = sum(aod.approximate_size_bytes() for aod in z_aods)
        slim = SlimSpec("tiny", ("dimuon_mass",))
        ntuple_bytes = sum(row.approximate_size_bytes()
                           for row in slim.apply(z_aods))
        assert ntuple_bytes < aod_bytes < reco_bytes


class TestRoundTripThroughFiles:
    """Persistence must be lossless for re-analysis."""

    def test_aod_file_reanalysis(self, z_aods, tmp_path):
        from repro.datamodel import AODEvent

        path = tmp_path / "z.aod.jsonl"
        write_dataset(path, "z", DataTier.AOD,
                      [aod.to_dict() for aod in z_aods])
        _, records = read_dataset(path)
        reloaded = [AODEvent.from_dict(record) for record in records]
        skim = SkimSpec("dimuon", CountCut("muons", 2, min_pt=10.0))
        assert len(skim.apply(reloaded)) == len(skim.apply(z_aods))

    def test_conditions_snapshot_travels_with_data(
        self, conditions_store, tmp_path
    ):
        snapshot_path = tmp_path / "conditions.json"
        export_snapshot(conditions_store, "GT-FINAL", 1, 100,
                        path=snapshot_path)
        assert snapshot_path.exists()
        from repro.conditions import load_snapshot

        snapshot = load_snapshot(snapshot_path)
        assert snapshot.payload("calo/ecal_energy_scale", 42)


class TestPreservationLoop:
    """Preserve -> archive -> retrieve -> re-validate, end to end."""

    def test_full_preservation_cycle(self, z_aods, tmp_path):
        from repro.core import (
            PreservationArchive,
            PreservedAnalysisBundle,
            SubmissionPackage,
            disseminate,
            ingest,
            revalidate,
        )

        skim = SkimSpec("zskim", AndCut((
            CountCut("muons", 2, min_pt=15.0),
            MassWindowCut("muons", 60.0, 120.0, opposite_charge=True),
        )))
        slim = SlimSpec("zslim", ("dimuon_mass", "met"))
        bundle = PreservedAnalysisBundle.create("Z-2013", z_aods, skim,
                                                slim)
        archive = PreservationArchive("daspos")
        sip = SubmissionPackage("Z preservation", "analyst", "GPD",
                                "2013-03-21")
        sip.add("bundle", "aod_dataset", bundle.to_dict())
        aip = ingest(sip, archive, "AIP-Z")
        # Save/load the archive from disk, then re-validate.
        archive.save(tmp_path / "archive")
        loaded = PreservationArchive.load(tmp_path / "archive")
        dip = disseminate(loaded, aip, "archivist")
        recovered = PreservedAnalysisBundle.from_dict(
            dip.payloads["bundle"]
        )
        outcome = revalidate(recovered)
        assert outcome.passed
