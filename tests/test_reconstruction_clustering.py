"""Tests for calorimeter clustering."""

import pytest

from repro.detector import generic_lhc_detector
from repro.detector.digitization import CaloCellHit
from repro.errors import ReconstructionError
from repro.reconstruction import CaloCluster, CaloClusterer
from repro.reconstruction.clustering import ClustererConfig


@pytest.fixture(scope="module")
def clusterer():
    return CaloClusterer(generic_lhc_detector())


def _cells(sub, entries):
    return [CaloCellHit(sub, ieta, iphi, energy)
            for ieta, iphi, energy in entries]


class TestClustering:
    def test_single_cluster_from_neighbourhood(self, clusterer):
        cells = _cells("ecal", [(60, 64, 10.0), (60, 65, 2.0),
                                (61, 64, 1.5)])
        clusters = clusterer.cluster(cells, "ecal")
        assert len(clusters) == 1
        assert clusters[0].energy == pytest.approx(13.5)
        assert clusters[0].n_cells == 3

    def test_two_separated_clusters(self, clusterer):
        cells = _cells("ecal", [(20, 10, 8.0), (80, 100, 12.0)])
        clusters = clusterer.cluster(cells, "ecal")
        assert len(clusters) == 2
        energies = sorted(c.energy for c in clusters)
        assert energies == pytest.approx([8.0, 12.0])

    def test_highest_seed_claims_shared_cells(self, clusterer):
        # Two seeds two cells apart share a middle cell; the higher seed
        # claims it first.
        cells = _cells("ecal", [(50, 50, 10.0), (50, 51, 3.0),
                                (50, 52, 9.0)])
        clusters = clusterer.cluster(cells, "ecal")
        total = sum(c.energy for c in clusters)
        assert total == pytest.approx(22.0)
        leading = max(clusters, key=lambda c: c.energy)
        assert leading.energy == pytest.approx(13.0)

    def test_sub_threshold_cells_ignored(self, clusterer):
        cells = _cells("ecal", [(30, 30, 0.05)])
        assert clusterer.cluster(cells, "ecal") == []

    def test_seed_threshold_respected(self, clusterer):
        cells = _cells("ecal", [(30, 30, 0.4)])
        assert clusterer.cluster(cells, "ecal") == []

    def test_min_cluster_energy(self):
        clusterer = CaloClusterer(
            generic_lhc_detector(),
            config=ClustererConfig(cluster_min_energy=20.0),
        )
        cells = _cells("ecal", [(30, 30, 10.0)])
        assert clusterer.cluster(cells, "ecal") == []

    def test_phi_wraparound_neighbourhood(self, clusterer):
        # Cells at iphi = 0 and iphi = 127 are adjacent on the cylinder.
        cells = _cells("ecal", [(40, 0, 10.0), (40, 127, 2.0)])
        clusters = clusterer.cluster(cells, "ecal")
        assert len(clusters) == 1
        assert clusters[0].energy == pytest.approx(12.0)

    def test_energy_scale_correction(self, clusterer):
        cells = _cells("ecal", [(60, 64, 10.0)])
        corrected = clusterer.cluster(cells, "ecal", energy_scale=1.05)
        assert corrected[0].energy == pytest.approx(10.0 / 1.05)

    def test_bad_scale_rejected(self, clusterer):
        with pytest.raises(ReconstructionError):
            clusterer.cluster([], "ecal", energy_scale=0.0)

    def test_centroid_position(self, clusterer):
        cells = _cells("ecal", [(60, 64, 10.0)])
        cluster = clusterer.cluster(cells, "ecal")[0]
        # ieta 60 of 120 cells over |eta|<3 -> eta ~ 0.0 + half cell.
        assert abs(cluster.eta) < 0.05

    def test_wrong_subdetector_cells_ignored(self, clusterer):
        cells = _cells("hcal", [(40, 30, 10.0)])
        assert clusterer.cluster(cells, "ecal") == []


class TestCaloClusterDataclass:
    def test_p4_points_at_centroid(self):
        cluster = CaloCluster("ecal", 50.0, 1.0, 0.5, 3)
        p4 = cluster.p4()
        assert p4.eta == pytest.approx(1.0, rel=1e-6)
        assert p4.phi == pytest.approx(0.5, rel=1e-6)
        assert p4.e == pytest.approx(50.0, rel=1e-6)
        assert p4.mass == pytest.approx(0.0, abs=1e-6)

    def test_serialisation_roundtrip(self):
        cluster = CaloCluster("hcal", 22.0, -1.2, 2.2, 5)
        assert CaloCluster.from_dict(cluster.to_dict()) == cluster
