"""Tests for the parameterised response models."""

import numpy as np
import pytest

from repro.detector import CaloResponse, EfficiencyCurve, TrackerResponse
from repro.errors import ConfigurationError


class TestCaloResponse:
    def test_resolution_improves_with_energy(self):
        response = CaloResponse(stochastic_term=0.1, constant_term=0.01)
        assert (response.relative_resolution(10.0)
                > response.relative_resolution(100.0))

    def test_constant_term_floor(self):
        response = CaloResponse(stochastic_term=0.1, constant_term=0.02)
        assert response.relative_resolution(1e6) == pytest.approx(
            0.02, rel=0.01
        )

    def test_smear_statistics(self, rng):
        response = CaloResponse(stochastic_term=0.5, constant_term=0.0)
        energies = [response.smear(100.0, rng) for _ in range(4000)]
        assert np.mean(energies) == pytest.approx(100.0, rel=0.01)
        assert np.std(energies) == pytest.approx(5.0, rel=0.1)

    def test_smear_never_negative(self, rng):
        response = CaloResponse(stochastic_term=2.0, constant_term=0.5)
        assert all(response.smear(0.5, rng) >= 0.0 for _ in range(500))

    def test_energy_scale_applied(self, rng):
        response = CaloResponse(stochastic_term=0.0, constant_term=0.0,
                                energy_scale=1.05)
        assert response.smear(100.0, rng) == pytest.approx(105.0)

    def test_negative_terms_rejected(self):
        with pytest.raises(ConfigurationError):
            CaloResponse(stochastic_term=-0.1, constant_term=0.0)

    def test_zero_energy(self, rng):
        response = CaloResponse(stochastic_term=0.1, constant_term=0.01)
        assert response.smear(0.0, rng) == 0.0


class TestTrackerResponse:
    def test_resolution_worsens_at_high_pt(self):
        response = TrackerResponse()
        assert (response.relative_resolution(500.0)
                > response.relative_resolution(5.0))

    def test_multiple_scattering_floor(self):
        response = TrackerResponse(curvature_term=1e-4, ms_term=0.02)
        assert response.relative_resolution(0.5) == pytest.approx(
            0.02, rel=0.01
        )

    def test_smear_stays_positive(self, rng):
        response = TrackerResponse(curvature_term=0.1, ms_term=0.5)
        assert all(response.smear_pt(0.3, rng) > 0.0 for _ in range(500))


class TestEfficiencyCurve:
    def test_half_plateau_at_threshold(self):
        curve = EfficiencyCurve(plateau=0.9, threshold=20.0, width=2.0)
        assert curve.value(20.0) == pytest.approx(0.45)

    def test_plateau_reached(self):
        curve = EfficiencyCurve(plateau=0.95, threshold=5.0, width=1.0)
        assert curve.value(50.0) == pytest.approx(0.95, rel=1e-6)

    def test_monotonic(self):
        curve = EfficiencyCurve(plateau=0.9, threshold=10.0, width=3.0)
        values = [curve.value(pt) for pt in range(0, 50, 5)]
        assert values == sorted(values)

    def test_sampling_statistics(self, rng):
        curve = EfficiencyCurve(plateau=0.8, threshold=0.0, width=0.001)
        passes = sum(curve.passes(10.0, rng) for _ in range(4000))
        assert passes / 4000 == pytest.approx(0.8, abs=0.03)

    def test_invalid_plateau_rejected(self):
        with pytest.raises(ConfigurationError):
            EfficiencyCurve(plateau=1.2, threshold=1.0, width=1.0)

    def test_invalid_width_rejected(self):
        with pytest.raises(ConfigurationError):
            EfficiencyCurve(plateau=0.9, threshold=1.0, width=0.0)
