"""Tests for the AOD container, triggers, and ntuple rows."""

import pytest

from repro.datamodel import AODEvent, NtupleRow, make_aod
from repro.datamodel.event import TRIGGER_MENU
from repro.errors import DataModelError


class TestAODProduction:
    def test_aod_drops_basic_objects(self, z_recos):
        aod = make_aod(z_recos[0])
        assert not hasattr(aod, "tracks")
        assert aod.n_tracks == len(z_recos[0].tracks)

    def test_aod_keeps_candidates(self, z_recos):
        reco = z_recos[0]
        aod = make_aod(reco)
        assert len(aod.muons) == len(reco.muons)
        assert aod.met.met == reco.met.met

    def test_aod_smaller_than_reco(self, z_recos):
        total_reco = sum(r.approximate_size_bytes() for r in z_recos)
        total_aod = sum(make_aod(r).approximate_size_bytes()
                        for r in z_recos)
        assert total_aod < total_reco

    def test_triggers_fire_on_z_sample(self, z_aods):
        dimuon_fires = sum(1 for aod in z_aods
                           if "HLT_DiMu10" in aod.trigger_bits)
        assert dimuon_fires > len(z_aods) * 0.3

    def test_trigger_menu_consistency(self, z_recos):
        reco = z_recos[0]
        aod = make_aod(reco)
        for name, condition in TRIGGER_MENU.items():
            assert (name in aod.trigger_bits) == condition(reco)


class TestAODContainer:
    def test_serialisation_roundtrip(self, z_aods):
        aod = z_aods[0]
        restored = AODEvent.from_dict(aod.to_dict())
        assert restored.to_dict() == aod.to_dict()

    def test_leptons_sorted_by_pt(self, z_aods):
        for aod in z_aods:
            leptons = aod.leptons()
            pts = [lepton.p4.pt for lepton in leptons]
            assert pts == sorted(pts, reverse=True)

    def test_ht_sums_jets(self, mixed_aods):
        for aod in mixed_aods:
            assert aod.ht() == pytest.approx(
                sum(jet.p4.pt for jet in aod.jets)
            )


class TestNtupleRow:
    def test_scalar_columns_only(self):
        with pytest.raises(DataModelError):
            NtupleRow(1, 1, {"bad": [1, 2, 3]})

    def test_roundtrip(self):
        row = NtupleRow(5, 17, {"met": 42.5, "n_jets": 3, "tag": "x"})
        restored = NtupleRow.from_dict(row.to_dict())
        assert restored.columns == row.columns
        assert restored.run_number == 5

    def test_size_accounting(self):
        small = NtupleRow(1, 1, {"a": 1.0})
        large = NtupleRow(1, 1, {c: 1.0 for c in "abcdefgh"})
        assert (large.approximate_size_bytes()
                > small.approximate_size_bytes())


class TestLeptonOrderingDeterminism:
    """leptons() breaks exact-pt ties with an explicit key.

    The secondary key (electrons before muons, then stored order) is
    part of the preserved selection semantics: MassWindowCut over
    "leptons" pairs the two leading leptons, so the ordering of an
    exact-pt tie decides which pair is tested. The columnar engine
    reproduces the same key with np.lexsort.
    """

    def _tied_event(self):
        from repro.kinematics import FourVector
        from repro.reconstruction.objects import Electron, Muon

        # Exactly representable components: two pt=50 ties (one
        # electron, one muon) and two pt=30 ties.
        pt50_a = FourVector(50.0, 30.0, 40.0, 0.0)
        pt50_b = FourVector(55.0, 40.0, 30.0, 5.0)
        pt30_a = FourVector(60.0, 0.0, 30.0, 10.0)
        pt30_b = FourVector(35.0, 0.0, 30.0, 2.0)
        return AODEvent(
            run_number=1, event_number=1,
            electrons=[Electron(pt50_a, -1, 1.0, 0.0),
                       Electron(pt30_a, 1, 1.1, 0.5)],
            muons=[Muon(pt50_b, 1, 3, 0.0),
                   Muon(pt30_b, -1, 2, 0.2)],
        )

    def test_electrons_precede_muons_on_exact_ties(self):
        event = self._tied_event()
        leptons = event.leptons()
        pts = [lepton.p4.pt for lepton in leptons]
        assert pts == sorted(pts, reverse=True)
        # Both electrons share their pt with one muon each: every tie
        # resolves electron-first, then stored order.
        from repro.reconstruction.objects import Electron, Muon
        kinds = [type(lepton) for lepton in leptons]
        assert kinds == [Electron, Muon, Electron, Muon]
        assert leptons[0] is event.electrons[0]
        assert leptons[1] is event.muons[0]
        assert leptons[2] is event.electrons[1]
        assert leptons[3] is event.muons[1]

    def test_ordering_survives_serialisation(self):
        # The tie-break depends only on persisted content, so the
        # order is reproducible after a to_dict/from_dict round trip.
        event = self._tied_event()
        restored = AODEvent.from_dict(event.to_dict())
        assert ([lepton.to_dict() for lepton in restored.leptons()]
                == [lepton.to_dict() for lepton in event.leptons()])

    def test_matches_columnar_merged_ordering(self, mixed_aods):
        # The columnar MassWindowCut("leptons") path orders the merged
        # electron+muon collection with the same key; spot-check that
        # the scalar order equals (-pt, flavour-rank, stored index).
        for event in mixed_aods:
            want = sorted(
                list(event.electrons) + list(event.muons),
                key=lambda lepton: (
                    -lepton.p4.pt,
                    1 if lepton in event.muons else 0,
                ),
            )
            assert event.leptons() == want
