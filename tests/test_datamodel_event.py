"""Tests for the AOD container, triggers, and ntuple rows."""

import pytest

from repro.datamodel import AODEvent, NtupleRow, make_aod
from repro.datamodel.event import TRIGGER_MENU
from repro.errors import DataModelError


class TestAODProduction:
    def test_aod_drops_basic_objects(self, z_recos):
        aod = make_aod(z_recos[0])
        assert not hasattr(aod, "tracks")
        assert aod.n_tracks == len(z_recos[0].tracks)

    def test_aod_keeps_candidates(self, z_recos):
        reco = z_recos[0]
        aod = make_aod(reco)
        assert len(aod.muons) == len(reco.muons)
        assert aod.met.met == reco.met.met

    def test_aod_smaller_than_reco(self, z_recos):
        total_reco = sum(r.approximate_size_bytes() for r in z_recos)
        total_aod = sum(make_aod(r).approximate_size_bytes()
                        for r in z_recos)
        assert total_aod < total_reco

    def test_triggers_fire_on_z_sample(self, z_aods):
        dimuon_fires = sum(1 for aod in z_aods
                           if "HLT_DiMu10" in aod.trigger_bits)
        assert dimuon_fires > len(z_aods) * 0.3

    def test_trigger_menu_consistency(self, z_recos):
        reco = z_recos[0]
        aod = make_aod(reco)
        for name, condition in TRIGGER_MENU.items():
            assert (name in aod.trigger_bits) == condition(reco)


class TestAODContainer:
    def test_serialisation_roundtrip(self, z_aods):
        aod = z_aods[0]
        restored = AODEvent.from_dict(aod.to_dict())
        assert restored.to_dict() == aod.to_dict()

    def test_leptons_sorted_by_pt(self, z_aods):
        for aod in z_aods:
            leptons = aod.leptons()
            pts = [lepton.p4.pt for lepton in leptons]
            assert pts == sorted(pts, reverse=True)

    def test_ht_sums_jets(self, mixed_aods):
        for aod in mixed_aods:
            assert aod.ht() == pytest.approx(
                sum(jet.p4.pt for jet in aod.jets)
            )


class TestNtupleRow:
    def test_scalar_columns_only(self):
        with pytest.raises(DataModelError):
            NtupleRow(1, 1, {"bad": [1, 2, 3]})

    def test_roundtrip(self):
        row = NtupleRow(5, 17, {"met": 42.5, "n_jets": 3, "tag": "x"})
        restored = NtupleRow.from_dict(row.to_dict())
        assert restored.columns == row.columns
        assert restored.run_number == 5

    def test_size_accounting(self):
        small = NtupleRow(1, 1, {"a": 1.0})
        large = NtupleRow(1, 1, {c: 1.0 for c in "abcdefgh"})
        assert (large.approximate_size_bytes()
                > small.approximate_size_bytes())
