"""Tests for the generator driver."""

import pytest

from repro.errors import ConfigurationError
from repro.generation import (
    DrellYanZ,
    GeneratorConfig,
    MinimumBias,
    QCDDijets,
    ToyGenerator,
)
from repro.generation.processes import Tune


class TestConfiguration:
    def test_empty_process_list_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(processes=[])

    def test_negative_pileup_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(processes=[DrellYanZ()], pileup_mu=-1.0)

    def test_bad_sqrt_s_rejected(self):
        with pytest.raises(ConfigurationError):
            GeneratorConfig(processes=[DrellYanZ()], sqrt_s=0.0)


class TestGeneration:
    def test_event_count_and_numbering(self):
        generator = ToyGenerator(
            GeneratorConfig(processes=[DrellYanZ()], seed=1)
        )
        events = generator.generate(25)
        assert len(events) == 25
        assert [event.event_number for event in events] == list(range(25))

    def test_determinism(self):
        config = GeneratorConfig(processes=[DrellYanZ()], seed=99)
        events1 = ToyGenerator(config).generate(10)
        events2 = ToyGenerator(
            GeneratorConfig(processes=[DrellYanZ()], seed=99)
        ).generate(10)
        for a, b in zip(events1, events2):
            assert a.to_dict() == b.to_dict()

    def test_different_seeds_differ(self):
        events1 = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=1)).generate(5)
        events2 = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=2)).generate(5)
        assert events1[0].to_dict() != events2[0].to_dict()

    def test_stream_matches_generate(self):
        config = GeneratorConfig(processes=[DrellYanZ()], seed=7)
        streamed = list(ToyGenerator(config).stream(8))
        batch = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=7)).generate(8)
        assert [e.to_dict() for e in streamed] == [
            e.to_dict() for e in batch
        ]

    def test_mixture_respects_cross_sections(self):
        config = GeneratorConfig(
            processes=[DrellYanZ(cross_section_pb=100.0),
                       QCDDijets(cross_section_pb=9900.0)],
            seed=3,
        )
        events = ToyGenerator(config).generate(400)
        z_fraction = sum(1 for e in events
                         if e.process_name == "z_to_mumu") / len(events)
        assert z_fraction < 0.05

    def test_underlying_event_adds_particles(self):
        with_ue = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=5)).generate(30)
        without_ue = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=5,
            underlying_event=False)).generate(30)
        mean_with = sum(len(e.final_state()) for e in with_ue) / 30
        mean_without = sum(len(e.final_state()) for e in without_ue) / 30
        assert mean_with > mean_without + 5

    def test_pileup_increases_multiplicity(self):
        base = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=6)).generate(30)
        piled = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=6,
            pileup_mu=5.0)).generate(30)
        mean_base = sum(len(e.final_state()) for e in base) / 30
        mean_piled = sum(len(e.final_state()) for e in piled) / 30
        assert mean_piled > mean_base + 20

    def test_minbias_process_gets_no_extra_ue(self):
        events = ToyGenerator(GeneratorConfig(
            processes=[MinimumBias()], seed=8)).generate(50)
        mean = sum(len(e.final_state()) for e in events) / 50
        assert mean == pytest.approx(12.0, rel=0.25)


class TestRunInfo:
    def test_run_info_contents(self):
        config = GeneratorConfig(processes=[DrellYanZ()], seed=42,
                                 tune=Tune.tune_b(), pileup_mu=2.0)
        info = ToyGenerator(config).run_info
        assert info.seed == 42
        assert info.tune_name == "TUNE-B"
        assert info.pileup_mu == 2.0
        assert info.processes[0]["name"] == "z_to_mumu"

    def test_run_info_serialises(self):
        generator = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=1))
        record = generator.run_info.to_dict()
        assert record["generator"] == "toygen"
        assert isinstance(record["processes"], list)
