"""Tests for the RIVET-analogue analysis framework."""

import pytest

from repro.errors import AnalysisNotFoundError, RivetError
from repro.generation import (
    DrellYanZ,
    GeneratorConfig,
    ToyGenerator,
)
from repro.generation.processes import Tune
from repro.rivet import (
    Analysis,
    AnalysisMetadata,
    AnalysisRepository,
    ReferenceData,
    RivetRunner,
    standard_repository,
)
from repro.rivet.standard_analyses import register_generated_catalog
from repro.stats import Histogram1D


@pytest.fixture(scope="module")
def z_events():
    return ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=710)).generate(150)


@pytest.fixture(scope="module")
def repository():
    return standard_repository()


class TestAnalysisBase:
    def test_metadata_required(self):
        class Nameless(Analysis):
            def init(self):
                pass

            def analyze(self, event):
                pass

        with pytest.raises(RivetError):
            Nameless()

    def test_double_booking_rejected(self):
        class Doubles(Analysis):
            metadata = AnalysisMetadata("D", "doubles")

            def init(self):
                self.book("h", 10, 0.0, 1.0)
                self.book("h", 10, 0.0, 1.0)

            def analyze(self, event):
                pass

        analysis = Doubles()
        with pytest.raises(RivetError):
            analysis._run_init()

    def test_lifecycle_enforced(self):
        class Simple(Analysis):
            metadata = AnalysisMetadata("S", "simple")

            def init(self):
                self.book("h", 10, 0.0, 1.0)

            def analyze(self, event):
                pass

        analysis = Simple()
        with pytest.raises(RivetError):
            analysis._run_finalize()
        analysis._run_init()
        with pytest.raises(RivetError):
            analysis._run_init()

    def test_unknown_histogram_raises(self):
        class Simple(Analysis):
            metadata = AnalysisMetadata("S2", "simple")

            def init(self):
                self.book("h", 10, 0.0, 1.0)

            def analyze(self, event):
                pass

        analysis = Simple()
        analysis._run_init()
        with pytest.raises(RivetError):
            analysis.histogram("missing")


class TestRepository:
    def test_standard_catalogue_registered(self, repository):
        assert len(repository) == 7
        assert "TOY_2013_I0001" in repository

    def test_create_gives_fresh_instances(self, repository):
        first = repository.create("TOY_2013_I0001")
        second = repository.create("TOY_2013_I0001")
        assert first is not second

    def test_unknown_analysis_raises(self, repository):
        with pytest.raises(AnalysisNotFoundError):
            repository.create("NOPE")

    def test_duplicate_registration_rejected(self, repository):
        from repro.rivet.standard_analyses import ZMuMuMassAnalysis

        with pytest.raises(RivetError):
            repository.register(ZMuMuMassAnalysis)

    def test_metadata_listing(self, repository):
        listing = repository.listing()
        assert len(listing) == 7
        assert all("description" in entry for entry in listing)

    def test_generated_catalog_scales(self):
        repository = AnalysisRepository("big")
        names = register_generated_catalog(repository, 120)
        assert len(repository) == 120
        assert len(set(names)) == 120

    def test_footprint_reports_shared_classes(self):
        repository = AnalysisRepository("big")
        register_generated_catalog(repository, 60)
        footprint = repository.footprint()
        assert footprint["n_analyses"] == 60
        # All 60 share the one parameterised plugin class.
        assert footprint["n_plugin_classes"] == 1
        assert footprint["source_bytes"] > 0


class TestRunner:
    def test_z_mass_analysis(self, repository, z_events):
        runner = RivetRunner(repository)
        result = runner.run_one("TOY_2013_I0001", z_events)
        histogram = result.histogram("mass")
        assert histogram.integral() == pytest.approx(1.0, rel=1e-6)
        assert histogram.mean() == pytest.approx(91.2, abs=1.5)

    def test_multiple_analyses_one_pass(self, repository, z_events):
        runner = RivetRunner(repository)
        results = runner.run(["TOY_2013_I0001", "TOY_2013_I0003"],
                             z_events)
        assert set(results) == {"TOY_2013_I0001", "TOY_2013_I0003"}
        assert all(r.n_events == len(z_events)
                   for r in results.values())

    def test_result_serialisation(self, repository, z_events):
        from repro.rivet.runner import AnalysisResult

        runner = RivetRunner(repository)
        result = runner.run_one("TOY_2013_I0001", z_events,
                                generator_info={"tune": "TUNE-A"})
        restored = AnalysisResult.from_dict(result.to_dict())
        assert restored.generator_info["tune"] == "TUNE-A"
        assert restored.histogram("mass").integral() == pytest.approx(
            result.histogram("mass").integral()
        )


class TestReferenceComparison:
    def test_same_tune_compatible(self, repository, z_events):
        runner = RivetRunner(repository)
        reference_run = runner.run_one(
            "TOY_2013_I0003",
            ToyGenerator(GeneratorConfig(processes=[DrellYanZ()],
                                         seed=711)).generate(150),
        )
        reference = ReferenceData("TOY_2013_I0003", source="pseudo-data")
        for key, histogram in reference_run.histograms.items():
            reference.add(key, histogram)
        repository.attach_reference(reference)
        result = runner.run_one("TOY_2013_I0003", z_events)
        comparisons = runner.compare_to_reference(result)
        assert set(comparisons) == {"nch", "pt"}
        assert comparisons["nch"].compatible

    def test_different_tune_discrepant(self, repository):
        runner = RivetRunner(repository)
        data_events = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=712,
            tune=Tune.tune_a())).generate(400)
        mc_events = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=713,
            tune=Tune.tune_b())).generate(400)
        reference = ReferenceData("TOY_2013_I0003")
        for key, histogram in runner.run_one(
            "TOY_2013_I0003", data_events
        ).histograms.items():
            reference.add(key, histogram)
        repository.attach_reference(reference)
        result = runner.run_one("TOY_2013_I0003", mc_events)
        comparisons = runner.compare_to_reference(result)
        assert not comparisons["nch"].compatible

    def test_no_reference_returns_empty(self, z_events):
        repository = standard_repository()
        runner = RivetRunner(repository)
        result = runner.run_one("TOY_2013_I0001", z_events)
        assert runner.compare_to_reference(result) == {}

    def test_reference_persistence(self, tmp_path):
        reference = ReferenceData("X", source="paper")
        histogram = Histogram1D("X/mass", 10, 0.0, 10.0)
        histogram.fill(5.0)
        reference.add("mass", histogram)
        path = tmp_path / "ref.json"
        reference.save(path)
        loaded = ReferenceData.load(path)
        assert loaded.analysis_name == "X"
        assert loaded.histogram("mass").integral() == 1.0

    def test_mismatched_reference_rejected(self, repository):
        reference = ReferenceData("SOMETHING_ELSE")
        with pytest.raises(AnalysisNotFoundError):
            repository.attach_reference(reference)
