"""Tests for the injectable clocks behind lease scheduling."""

import pytest

from repro.errors import ExecutionError
from repro.runtime import LogicalClock, MonotonicClock


class TestLogicalClock:
    def test_starts_where_told(self):
        assert LogicalClock().now() == 0.0
        assert LogicalClock(start=5.5).now() == 5.5

    def test_advance_defaults_to_one_tick(self):
        clock = LogicalClock(tick=2.0)
        assert clock.advance() == 2.0
        assert clock.advance() == 4.0
        assert clock.now() == 4.0

    def test_advance_by_explicit_amount(self):
        clock = LogicalClock()
        clock.advance(0.25)
        assert clock.now() == 0.25

    def test_zero_advance_allowed(self):
        clock = LogicalClock()
        clock.advance(0.0)
        assert clock.now() == 0.0

    def test_time_never_runs_backwards(self):
        clock = LogicalClock()
        with pytest.raises(ExecutionError):
            clock.advance(-1.0)

    def test_nonpositive_tick_rejected(self):
        with pytest.raises(ExecutionError):
            LogicalClock(tick=0.0)
        with pytest.raises(ExecutionError):
            LogicalClock(tick=-1.0)

    def test_time_only_moves_on_advance(self):
        clock = LogicalClock()
        readings = {clock.now() for _ in range(100)}
        assert readings == {0.0}


class TestMonotonicClock:
    def test_reads_forward(self):
        clock = MonotonicClock()
        first = clock.now()
        assert clock.now() >= first

    def test_advance_is_a_noop(self):
        clock = MonotonicClock()
        before = clock.now()
        after = clock.advance(1000.0)
        # Real time cannot be steered; advance just reads the clock.
        assert after - before < 10.0

    def test_interface_matches_logical_clock(self):
        assert hasattr(MonotonicClock, "tick")
        for method in ("now", "advance"):
            assert callable(getattr(MonotonicClock(), method))
