"""Tests for the distributable plot-data files."""

import pytest

from repro.errors import RivetError
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.rivet import (
    ReferenceData,
    RivetRunner,
    format_plot_file,
    standard_repository,
    write_plot_files,
)


@pytest.fixture(scope="module")
def comparison():
    repository = standard_repository()
    runner = RivetRunner(repository)
    data_events = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=6200)).generate(150)
    mc_events = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=6201)).generate(150)
    reference = ReferenceData("TOY_2013_I0001", source="pseudo-data")
    for key, histogram in runner.run_one(
        "TOY_2013_I0001", data_events
    ).histograms.items():
        reference.add(key, histogram)
    result = runner.run_one("TOY_2013_I0001", mc_events,
                            generator_info={"generator": "toygen",
                                            "tune": "TUNE-A"})
    return result, reference


class TestFormat:
    def test_structure(self, comparison):
        result, reference = comparison
        text = format_plot_file(result, reference, "mass")
        assert text.startswith("# BEGIN PLOT TOY_2013_I0001/mass")
        assert text.endswith("# END PLOT")
        assert "tune=TUNE-A" in text
        assert "comparison: chi2" in text

    def test_one_row_per_bin(self, comparison):
        result, reference = comparison
        text = format_plot_file(result, reference, "mass")
        data_rows = [line for line in text.splitlines()
                     if not line.startswith("#")]
        assert len(data_rows) == result.histogram("mass").nbins
        # Every row has the eight documented columns.
        assert all(len(row.split()) == 8 for row in data_rows)

    def test_unknown_key_rejected(self, comparison):
        result, reference = comparison
        with pytest.raises(RivetError):
            format_plot_file(result, reference, "nope")


class TestWriting:
    def test_files_written(self, comparison, tmp_path):
        result, reference = comparison
        paths = write_plot_files(result, reference, tmp_path / "plots")
        assert len(paths) == 1
        assert paths[0].name == "TOY_2013_I0001_mass.dat"
        assert paths[0].read_text().startswith("# BEGIN PLOT")

    def test_no_shared_keys_rejected(self, comparison, tmp_path):
        result, _ = comparison
        empty_reference = ReferenceData("TOY_2013_I0001")
        with pytest.raises(RivetError):
            write_plot_files(result, empty_reference, tmp_path)
