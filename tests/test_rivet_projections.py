"""Tests for RIVET-style projections."""

import pytest

from repro.generation import (
    DrellYanZ,
    GeneratorConfig,
    QCDDijets,
    ToyGenerator,
    WProduction,
)
from repro.rivet import (
    ChargedFinalState,
    FinalState,
    IdentifiedFinalState,
    TruthJets,
    VisibleMomentum,
)


@pytest.fixture(scope="module")
def z_events():
    return ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=700)).generate(40)


@pytest.fixture(scope="module")
def dijet_events():
    return ToyGenerator(GeneratorConfig(
        processes=[QCDDijets()], seed=701)).generate(40)


class TestFinalState:
    def test_only_final_particles(self, z_events):
        projection = FinalState()
        for event in z_events:
            for particle in projection.particles(event):
                assert particle.is_final

    def test_pt_cut(self, z_events):
        projection = FinalState(pt_min=5.0)
        for event in z_events:
            assert all(p.momentum.pt >= 5.0
                       for p in projection.particles(event))

    def test_eta_cut(self, z_events):
        projection = FinalState(eta_max=1.0)
        for event in z_events:
            assert all(abs(p.momentum.eta) <= 1.0
                       for p in projection.particles(event))

    def test_tighter_cuts_select_fewer(self, z_events):
        loose = FinalState()
        tight = FinalState(eta_max=1.0, pt_min=2.0)
        n_loose = sum(len(loose.particles(e)) for e in z_events)
        n_tight = sum(len(tight.particles(e)) for e in z_events)
        assert n_tight < n_loose


class TestChargedFinalState:
    def test_only_charged(self, z_events):
        projection = ChargedFinalState()
        for event in z_events:
            for particle in projection.particles(event):
                assert particle.pdg_id not in (22, 111, 130, 12, 14, 16)


class TestIdentifiedFinalState:
    def test_id_selection(self, z_events):
        muons = IdentifiedFinalState((13, -13))
        for event in z_events:
            selected = muons.particles(event)
            assert all(abs(p.pdg_id) == 13 for p in selected)
            assert len(selected) >= 2


class TestVisibleMomentum:
    def test_w_events_have_met(self):
        events = ToyGenerator(GeneratorConfig(
            processes=[WProduction()], seed=702)).generate(40)
        projection = VisibleMomentum()
        mets = [projection.missing_pt(event).pt for event in events]
        assert sum(1 for met in mets if met > 15.0) > 20

    def test_z_events_have_little_met(self, z_events):
        projection = VisibleMomentum()
        mets = [projection.missing_pt(event).pt for event in z_events]
        assert sorted(mets)[len(mets) // 2] < 10.0


class TestTruthJets:
    def test_dijet_events_make_jets(self, dijet_events):
        projection = TruthJets(jet_pt_min=15.0)
        jet_counts = [len(projection.jets(event))
                      for event in dijet_events]
        assert sum(1 for n in jet_counts if n >= 2) > 15

    def test_jets_sorted(self, dijet_events):
        projection = TruthJets()
        for event in dijet_events:
            pts = [jet.pt for jet in projection.jets(event)]
            assert pts == sorted(pts, reverse=True)

    def test_leptons_excluded(self, z_events):
        projection = TruthJets(jet_pt_min=15.0)
        for event in z_events:
            for jet in projection.jets(event):
                muons = [p.momentum for p in event.final_state()
                         if abs(p.pdg_id) == 13]
                for muon in muons:
                    if muon.pt > 20.0:
                        assert jet.delta_r(muon) > 0.1
