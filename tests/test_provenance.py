"""Unit and property tests for provenance records, graphs, and audits."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ProvenanceError
from repro.provenance import (
    ArtifactRecord,
    ProducerRecord,
    ProvenanceCapture,
    ProvenanceGraph,
    audit_all,
    audit_artifact,
)


def _artifact(artifact_id, parents=(), producer=True):
    return ArtifactRecord(
        artifact_id=artifact_id,
        kind="dataset",
        tier="AOD",
        parents=tuple(parents),
        producer=(ProducerRecord("step", "1.0", {"cut": 5})
                  if producer else None),
    )


class TestRecords:
    def test_empty_id_rejected(self):
        with pytest.raises(ProvenanceError):
            _artifact("")

    def test_self_parent_rejected(self):
        with pytest.raises(ProvenanceError):
            _artifact("a", parents=("a",))

    def test_roundtrip(self):
        record = _artifact("a", parents=("b", "c"))
        restored = ArtifactRecord.from_dict(record.to_dict())
        assert restored == record

    def test_roundtrip_without_producer(self):
        record = _artifact("a", producer=False)
        restored = ArtifactRecord.from_dict(record.to_dict())
        assert not restored.has_producer


class TestGraph:
    def test_lineage_topological(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("raw"))
        graph.add(_artifact("reco", parents=("raw",)))
        graph.add(_artifact("aod", parents=("reco",)))
        lineage = graph.lineage("aod")
        assert [record.artifact_id for record in lineage] == \
            ["raw", "reco"]

    def test_duplicate_rejected(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("a"))
        with pytest.raises(ProvenanceError):
            graph.add(_artifact("a"))

    def test_cycle_rejected_and_rolled_back(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("a", parents=("b",)))
        with pytest.raises(ProvenanceError):
            graph.add(_artifact("b", parents=("a",)))
        assert "b" not in graph
        assert len(graph) == 1

    def test_dangling_parents_detected(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("child", parents=("lost-parent",)))
        assert graph.dangling_parents() == {"lost-parent"}

    def test_descendants(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("a"))
        graph.add(_artifact("b", parents=("a",)))
        graph.add(_artifact("c", parents=("a",)))
        assert graph.descendants("a") == {"b", "c"}

    def test_roots(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("a"))
        graph.add(_artifact("b", parents=("a",)))
        assert graph.roots() == ["a"]

    def test_serialisation_roundtrip(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("a"))
        graph.add(_artifact("b", parents=("a",)))
        restored = ProvenanceGraph.from_dict(graph.to_dict())
        assert restored.artifact_ids() == graph.artifact_ids()
        assert restored.get("b").parents == ("a",)

    @given(n_nodes=st.integers(min_value=1, max_value=20),
           seed=st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_random_dags_always_acyclic(self, n_nodes, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        graph = ProvenanceGraph()
        for index in range(n_nodes):
            n_parents = int(rng.integers(0, min(index, 3) + 1))
            parents = tuple(
                f"n{int(p)}"
                for p in rng.choice(index, size=n_parents,
                                    replace=False)
            ) if index else ()
            graph.add(_artifact(f"n{index}", parents=parents))
        # Every audit terminates and completeness is 1 (all registered).
        for report in audit_all(graph):
            assert report.ancestry_completeness == 1.0


class TestAudit:
    def test_complete_chain_reproducible(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("raw"))
        graph.add(_artifact("aod", parents=("raw",)))
        report = audit_artifact(graph, "aod")
        assert report.reproducible
        assert report.missing_parents == ()

    def test_missing_parent_breaks_reproducibility(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("aod", parents=("lost",)))
        report = audit_artifact(graph, "aod")
        assert not report.reproducible
        assert report.ancestry_completeness == 0.0
        assert report.missing_parents == ("lost",)

    def test_missing_producer_breaks_reproducibility(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("raw", producer=False))
        graph.add(_artifact("aod", parents=("raw",)))
        report = audit_artifact(graph, "aod")
        assert not report.reproducible
        assert report.producer_completeness == pytest.approx(0.5)

    def test_summary_readable(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("a"))
        assert "REPRODUCIBLE" in audit_artifact(graph, "a").summary()


class TestAuditAll:
    def test_empty_graph_audits_to_nothing(self):
        assert audit_all(ProvenanceGraph()) == []

    def test_reports_come_back_sorted_by_id(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("zeta"))
        graph.add(_artifact("alpha"))
        graph.add(_artifact("mid", parents=("alpha",)))
        reports = audit_all(graph)
        assert [r.artifact_id for r in reports] == \
            ["alpha", "mid", "zeta"]

    def test_dangling_parent_counts_against_whole_chain(self):
        graph = ProvenanceGraph()
        graph.add(_artifact("aod", parents=("raw-lost",)))
        graph.add(_artifact("ntuple", parents=("aod",)))
        by_id = {r.artifact_id: r for r in audit_all(graph)}
        # The dangling grandparent poisons the ntuple's ancestry too.
        assert by_id["ntuple"].missing_parents == ("raw-lost",)
        assert by_id["ntuple"].ancestry_completeness == pytest.approx(0.5)
        assert not by_id["ntuple"].reproducible
        assert not by_id["aod"].reproducible

    def test_cycle_rejected_and_graph_left_auditable(self):
        graph_cyclic = ProvenanceGraph()
        graph_cyclic.add(_artifact("x", parents=("y",)))
        with pytest.raises(ProvenanceError):
            # Registering y as derived from x would close the loop and
            # make every ancestry query non-terminating; the add must
            # be rolled back rather than half-applied.
            graph_cyclic.add(_artifact("y", parents=("x",)))
        # The rejected node left no trace: audits still terminate and
        # see exactly the registered artifact.
        reports = audit_all(graph_cyclic)
        assert [r.artifact_id for r in reports] == ["x"]
        assert reports[0].missing_parents == ("y",)


class TestCapture:
    def test_report_and_export(self, tmp_path):
        capture = ProvenanceCapture()
        first = capture.new_artifact_id("raw")
        capture.report(first, "dataset", "RAW")
        second = capture.new_artifact_id("aod")
        capture.report(second, "dataset", "AOD", parents=(first,),
                       producer=ProducerRecord("reco", "1.0"))
        path = tmp_path / "prov.json"
        capture.export(path)
        loaded = ProvenanceCapture.load(path)
        assert len(loaded.graph) == 2
        assert loaded.graph.get(second).parents == (first,)

    def test_disabled_capture_drops_reports(self):
        capture = ProvenanceCapture(enabled=False)
        assert capture.report("x", "dataset", "RAW") is None
        assert len(capture.graph) == 0

    def test_producer_suppression(self):
        capture = ProvenanceCapture(record_producer=False)
        capture.report("x", "dataset", "RAW",
                       producer=ProducerRecord("gen", "1.0"))
        assert not capture.graph.get("x").has_producer

    def test_ids_unique(self):
        capture = ProvenanceCapture()
        ids = {capture.new_artifact_id("x") for _ in range(100)}
        assert len(ids) == 100
