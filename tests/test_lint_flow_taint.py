"""Interprocedural taint propagation to Analysis entry points."""

from __future__ import annotations

import textwrap

import pytest

from repro.lint import lint_source_file, lint_tree_deep

BASE = """
    class Analysis:
        pass


    class AnalysisMetadata:
        def __init__(self, name, inspire_id=""):
            self.name = name
            self.inspire_id = inspire_id
"""

ANALYSIS = """
    from base import Analysis, AnalysisMetadata
    import helpers

    class ZPeakAnalysis(Analysis):
        def __init__(self):
            self.metadata = AnalysisMetadata(
                name="TOY_2013_I0042", inspire_id="I0042")

        def analyze(self, event):
            return helpers.smear(event)
"""

HELPERS = """
    import util

    def smear(value):
        return value + util.clock_offset()
"""

UTIL = """
    import time

    def clock_offset():
        return time.time() % 1.0
"""


def write_tree(root, files: dict) -> None:
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


@pytest.fixture
def two_hop_tree(tmp_path):
    write_tree(tmp_path, {
        "base.py": BASE,
        "analysis.py": ANALYSIS,
        "helpers.py": HELPERS,
        "util.py": UTIL,
    })
    return tmp_path


class TestAcceptanceScenario:
    """The ISSUE's fixture: a helper two hops away calls time.time()."""

    def test_shallow_pass_is_clean_on_the_entry_file(self, two_hop_tree):
        assert lint_source_file(two_hop_tree / "analysis.py") == []

    def test_deep_pass_flags_the_entry_point(self, two_hop_tree):
        findings = lint_tree_deep(two_hop_tree)
        codes = [f.code for f in findings]
        assert "DAS201" in codes
        finding = next(f for f in findings if f.code == "DAS201")
        assert finding.severity.name == "ERROR"
        assert finding.file.endswith("analysis.py")
        assert finding.artifact == "ZPeakAnalysis"

    def test_finding_carries_the_full_chain(self, two_hop_tree):
        finding = next(f for f in lint_tree_deep(two_hop_tree)
                       if f.code == "DAS201")
        assert "analysis.ZPeakAnalysis.analyze" in finding.message
        assert "helpers.smear" in finding.message
        assert "util.clock_offset" in finding.message
        assert "util.py:" in finding.message
        assert " -> " in finding.message

    def test_waiver_at_the_source_kills_propagation(self, two_hop_tree):
        waived = UTIL.replace(
            "return time.time() % 1.0",
            "return time.time() % 1.0  # lint: ignore[DAS001]")
        write_tree(two_hop_tree, {"util.py": waived})
        assert [f for f in lint_tree_deep(two_hop_tree)
                if f.code == "DAS201"] == []


class TestTaintKinds:
    def test_unseeded_rng_two_hops(self, tmp_path):
        write_tree(tmp_path, {
            "base.py": BASE,
            "analysis.py": """
                from base import Analysis
                import helpers

                class SmearAnalysis(Analysis):
                    def analyze(self, event):
                        return helpers.jitter(event)
            """,
            "helpers.py": """
                import random

                def jitter(value):
                    return value + random.random()
            """,
        })
        findings = lint_tree_deep(tmp_path)
        assert any(f.code == "DAS202" for f in findings)

    def test_env_read_is_a_warning(self, tmp_path):
        write_tree(tmp_path, {
            "base.py": BASE,
            "analysis.py": """
                from base import Analysis
                import helpers

                class TagAnalysis(Analysis):
                    def init(self):
                        self.tag = helpers.tag()
            """,
            "helpers.py": """
                import os

                def tag():
                    return os.getenv("GLOBAL_TAG")
            """,
        })
        findings = lint_tree_deep(tmp_path)
        finding = next(f for f in findings if f.code == "DAS205")
        assert finding.severity.name == "WARNING"

    def test_import_time_impurity_propagates(self, tmp_path):
        # The hazard sits in a module body executed at import time, not
        # in any function the entry calls directly.
        write_tree(tmp_path, {
            "base.py": BASE,
            "analysis.py": """
                from base import Analysis
                import helpers

                class StampAnalysis(Analysis):
                    def analyze(self, event):
                        return helpers.shift(event)
            """,
            "helpers.py": """
                import time

                STAMP = time.time()

                def shift(value):
                    return value + STAMP
            """,
        })
        findings = lint_tree_deep(tmp_path)
        finding = next((f for f in findings if f.code == "DAS201"), None)
        assert finding is not None
        assert "(import)" in finding.message

    def test_hazard_in_entry_itself_left_to_shallow_rules(self, tmp_path):
        write_tree(tmp_path, {
            "base.py": BASE,
            "analysis.py": """
                from base import Analysis
                import time

                class DirectAnalysis(Analysis):
                    def analyze(self, event):
                        return time.time()
            """,
        })
        deep = [f for f in lint_tree_deep(tmp_path)
                if f.code.startswith("DAS20")]
        assert deep == []
        shallow = lint_source_file(tmp_path / "analysis.py")
        assert any(f.code == "DAS001" for f in shallow)


class TestUnresolvedImports:
    def test_das207_on_unresolvable_relative_import(self, tmp_path):
        write_tree(tmp_path, {
            "base.py": BASE,
            "analysis.py": """
                from base import Analysis
                from ..outside import helper

                class LeakyAnalysis(Analysis):
                    def analyze(self, event):
                        return helper(event)
            """,
        })
        findings = lint_tree_deep(tmp_path)
        finding = next(f for f in findings if f.code == "DAS207")
        assert "..outside" in finding.message


class TestBundledCorpus:
    def test_standard_analyses_deep_pass_is_clean(self):
        import repro.rivet.standard_analyses as standard_analyses

        assert lint_tree_deep(standard_analyses.__file__) == []

    def test_examples_deep_pass_is_clean(self):
        from pathlib import Path

        examples = Path(__file__).resolve().parent.parent / "examples"
        assert lint_tree_deep(examples) == []


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
