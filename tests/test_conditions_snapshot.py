"""Tests for the ALICE-style conditions snapshots."""

import pytest

from repro.conditions import (
    ConditionsSnapshot,
    default_conditions,
    export_snapshot,
    load_snapshot,
)
from repro.conditions.calibration import FOLDER_ECAL_SCALE
from repro.errors import ConditionsError, IOVError, PersistenceError


@pytest.fixture(scope="module")
def store():
    return default_conditions()


class TestExport:
    def test_snapshot_matches_store(self, store):
        snapshot = export_snapshot(store, "GT-FINAL", 1, 50)
        for run in (1, 25, 50):
            assert snapshot.payload(FOLDER_ECAL_SCALE, run) == \
                store.payload(FOLDER_ECAL_SCALE, "final", run)

    def test_snapshot_covers_all_folders(self, store):
        snapshot = export_snapshot(store, "GT-FINAL", 1, 50)
        assert set(snapshot.folders()) == set(store.folders())

    def test_out_of_range_run_rejected(self, store):
        snapshot = export_snapshot(store, "GT-FINAL", 1, 50)
        with pytest.raises(IOVError):
            snapshot.payload(FOLDER_ECAL_SCALE, 60)

    def test_unknown_folder_rejected(self, store):
        snapshot = export_snapshot(store, "GT-FINAL", 1, 50)
        with pytest.raises(ConditionsError):
            snapshot.payload("nope", 10)

    def test_prompt_vs_final_differ(self, store):
        prompt = export_snapshot(store, "GT-PROMPT", 1, 50)
        final = export_snapshot(store, "GT-FINAL", 1, 50)
        differs = any(
            prompt.payload(FOLDER_ECAL_SCALE, run)
            != final.payload(FOLDER_ECAL_SCALE, run)
            for run in range(1, 51, 5)
        )
        assert differs


class TestPersistence:
    def test_file_roundtrip(self, store, tmp_path):
        path = tmp_path / "snapshot.json"
        original = export_snapshot(store, "GT-FINAL", 1, 30, path=path)
        loaded = load_snapshot(path)
        assert loaded.global_tag_name == "GT-FINAL"
        for run in (1, 15, 30):
            assert loaded.payload(FOLDER_ECAL_SCALE, run) == \
                original.payload(FOLDER_ECAL_SCALE, run)

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_snapshot(tmp_path / "missing.json")

    def test_garbage_file_raises(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("not json at all {")
        with pytest.raises(PersistenceError):
            load_snapshot(path)

    def test_wrong_format_raises(self, tmp_path):
        path = tmp_path / "wrong.json"
        path.write_text('{"schema": {"format": "other"}}')
        with pytest.raises(PersistenceError):
            load_snapshot(path)

    def test_snapshot_is_self_documenting(self, store):
        record = export_snapshot(store, "GT-FINAL", 1, 10).to_dict()
        assert record["schema"]["format"] == "repro-conditions-snapshot"
        assert "description" in record["schema"]


class TestReconstructionCompatibility:
    def test_snapshot_drives_reconstruction(self, store, z_pairs,
                                            gpd_geometry):
        # The snapshot implements the same ConditionsSource protocol:
        # reconstruction runs identically from a file as from the DB.
        from repro.detector import DetectorSimulation, Digitizer
        from repro.generation import (DrellYanZ, GeneratorConfig,
                                      ToyGenerator)
        from repro.reconstruction import GlobalTagView, Reconstructor

        snapshot = export_snapshot(store, "GT-FINAL", 1, 100)
        events = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=111)).generate(5)
        simulation = DetectorSimulation(gpd_geometry, seed=112)
        digitizer = Digitizer(gpd_geometry, run_number=42, seed=113)
        raws = [digitizer.digitize(simulation.simulate(event))
                for event in events]
        reco_db = Reconstructor(gpd_geometry,
                                GlobalTagView(store, "GT-FINAL"))
        reco_file = Reconstructor(gpd_geometry, snapshot)
        for raw in raws:
            from_db = reco_db.reconstruct(raw)
            from_file = reco_file.reconstruct(raw)
            assert from_db.to_dict() == from_file.to_dict()
