"""The rule engine: findings, config, reports, and the catalogue."""

from __future__ import annotations

import json

import pytest

from repro.errors import ConfigurationError
from repro.lint import (
    Finding,
    LintConfig,
    LintReport,
    LintSession,
    Severity,
    all_rules,
    get_rule,
    render_json,
    render_rule_catalog,
    render_text,
)


def finding(code="DAS001", severity=Severity.ERROR, message="m",
            file="a.py", line=1, artifact=""):
    return Finding(code=code, severity=severity, message=message,
                   artifact=artifact, file=file, line=line)


# ----------------------------------------------------------------------
# Findings and severities
# ----------------------------------------------------------------------

class TestSeverity:
    def test_ordering(self):
        assert Severity.INFO < Severity.WARNING < Severity.ERROR

    def test_rank_is_stable(self):
        assert [s.rank for s in
                (Severity.INFO, Severity.WARNING, Severity.ERROR)] \
            == [0, 1, 2]


class TestFinding:
    def test_location_prefers_file_line(self):
        assert finding(file="x.py", line=7).location() == "x.py:7"

    def test_location_falls_back_to_artifact(self):
        f = finding(file="", line=0, artifact="bundle-1")
        assert f.location() == "bundle-1"

    def test_sort_is_deterministic(self):
        unordered = [
            finding(file="b.py", line=1),
            finding(file="a.py", line=9),
            finding(file="a.py", line=2, code="DAS009"),
            finding(file="a.py", line=2, code="DAS002"),
        ]
        report = LintReport.from_findings(unordered)
        keys = [(f.file, f.line, f.code) for f in report.findings]
        assert keys == sorted(keys)

    def test_to_dict_round_trips_fields(self):
        record = finding(code="DAS003", line=12).to_dict()
        assert record["code"] == "DAS003"
        assert record["severity"] == "error"
        assert record["line"] == 12


# ----------------------------------------------------------------------
# LintConfig
# ----------------------------------------------------------------------

class TestLintConfig:
    def test_default_enables_everything(self):
        config = LintConfig()
        assert config.enabled("DAS001")
        assert config.enabled("DAS112")

    def test_select_is_prefix_match(self):
        config = LintConfig(select=("DAS00",))
        assert config.enabled("DAS001")
        assert not config.enabled("DAS101")

    def test_ignore_beats_select(self):
        config = LintConfig(select=("DAS",), ignore=("DAS00",))
        assert not config.enabled("DAS001")
        assert config.enabled("DAS101")

    def test_apply_filters_disabled_codes(self):
        config = LintConfig(ignore=("DAS001",))
        kept = config.apply([finding(code="DAS001"),
                             finding(code="DAS002")])
        assert [f.code for f in kept] == ["DAS002"]

    def test_suppression_requires_reason(self):
        with pytest.raises(ConfigurationError):
            LintConfig(suppressions={"DAS001": ""})

    def test_suppression_disables_code(self):
        config = LintConfig(
            suppressions={"DAS004": "archive API wraps file io"})
        assert not config.enabled("DAS004")
        assert config.enabled("DAS001")


# ----------------------------------------------------------------------
# LintReport exit-code contract
# ----------------------------------------------------------------------

class TestLintReport:
    def test_exit_0_on_clean(self):
        assert LintReport.from_findings([]).exit_code == 0

    def test_exit_0_on_info_only(self):
        report = LintReport.from_findings(
            [finding(code="DAS009", severity=Severity.INFO)])
        assert report.exit_code == 0

    def test_exit_1_on_warnings(self):
        report = LintReport.from_findings(
            [finding(code="DAS004", severity=Severity.WARNING)])
        assert report.exit_code == 1

    def test_exit_2_on_any_error(self):
        report = LintReport.from_findings([
            finding(code="DAS009", severity=Severity.INFO),
            finding(code="DAS004", severity=Severity.WARNING),
            finding(code="DAS001", severity=Severity.ERROR),
        ])
        assert report.exit_code == 2
        assert report.worst() is Severity.ERROR

    def test_counts_by_severity(self):
        report = LintReport.from_findings([
            finding(code="DAS001", severity=Severity.ERROR),
            finding(code="DAS004", severity=Severity.WARNING, line=2),
            finding(code="DAS005", severity=Severity.WARNING, line=3),
        ])
        assert report.count(Severity.WARNING) == 2
        assert report.count(Severity.ERROR) == 1

    def test_summary_mentions_totals(self):
        report = LintReport.from_findings(
            [finding(code="DAS001", severity=Severity.ERROR)])
        assert "1" in report.summary()


class TestLintSession:
    def test_session_applies_config_on_extend(self):
        session = LintSession(config=LintConfig(ignore=("DAS004",)))
        session.extend([finding(code="DAS004",
                                severity=Severity.WARNING),
                        finding(code="DAS001")])
        assert [f.code for f in session.report().findings] \
            == ["DAS001"]


# ----------------------------------------------------------------------
# Reporters
# ----------------------------------------------------------------------

class TestReporters:
    def test_render_text_one_line_per_finding(self):
        report = LintReport.from_findings([
            finding(code="DAS001", file="x.py", line=3,
                    message="wall clock"),
        ])
        text = render_text(report)
        assert "x.py:3" in text
        assert "DAS001" in text
        assert "wall clock" in text

    def test_render_json_is_parseable_and_sorted(self):
        report = LintReport.from_findings([
            finding(code="DAS002", file="y.py", line=4),
            finding(code="DAS001", file="x.py", line=3),
        ])
        payload = json.loads(render_json(report))
        assert [f["code"] for f in payload["findings"]] \
            == ["DAS001", "DAS002"]
        assert payload["exit_code"] == 2


# ----------------------------------------------------------------------
# The rule catalogue itself
# ----------------------------------------------------------------------

class TestRuleCatalog:
    def test_at_least_ten_rules_across_four_subsystems(self):
        rules = all_rules()
        assert len(rules) >= 10
        assert len({rule.subsystem for rule in rules}) >= 4

    def test_codes_are_unique_and_stable_format(self):
        codes = [rule.code for rule in all_rules()]
        assert len(codes) == len(set(codes))
        assert all(code.startswith("DAS") and code[3:].isdigit()
                   for code in codes)

    def test_every_rule_documents_itself(self):
        for rule in all_rules():
            assert rule.description, rule.code
            assert rule.rationale, rule.code

    def test_get_rule_round_trip(self):
        assert get_rule("DAS001").code == "DAS001"

    def test_get_rule_unknown_raises(self):
        with pytest.raises(ConfigurationError):
            get_rule("DAS999")

    def test_catalog_table_lists_every_code(self):
        table = render_rule_catalog()
        for rule in all_rules():
            assert rule.code in table

    def test_docs_cover_every_rule(self):
        import pathlib

        doc = (pathlib.Path(__file__).resolve().parent.parent
               / "docs" / "linting.md").read_text(encoding="utf-8")
        for rule in all_rules():
            assert rule.code in doc, (
                f"{rule.code} missing from docs/linting.md")
            assert rule.name in doc, (
                f"{rule.name} missing from docs/linting.md")
            row = (f"| {rule.code} | {rule.name} "
                   f"| {rule.severity.value} | {rule.subsystem} |")
            assert row in doc, (
                f"rule-table row for {rule.code} missing or stale "
                f"in docs/linting.md (expected {row!r})")

    def test_docs_table_has_no_unknown_rules(self):
        import pathlib
        import re

        doc = (pathlib.Path(__file__).resolve().parent.parent
               / "docs" / "linting.md").read_text(encoding="utf-8")
        documented = set(re.findall(r"^\| (DAS\d+) \|", doc,
                                    flags=re.MULTILINE))
        registered = {rule.code for rule in all_rules()}
        assert documented == registered, (
            f"docs/linting.md table out of sync with the registry: "
            f"extra={sorted(documented - registered)} "
            f"missing={sorted(registered - documented)}")
