"""CLI observability: --trace-out, repro trace, repro metrics."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import RunReport, validate_run_report


@pytest.fixture(scope="module")
def traced_campaign(tmp_path_factory):
    """One deterministic traced campaign run in its own directory."""
    directory = tmp_path_factory.mktemp("obs_cli")
    report_path = directory / "runreport.json"
    code = main(["campaign", "--name", "obs-cli", "--runs", "3",
                 "--sections", "10", "--seed", "11",
                 "--output", str(directory / "aods.jsonl"),
                 "--trace-out", str(report_path),
                 "--trace-deterministic"])
    assert code == 0
    return report_path


class TestTraceOut:
    def test_report_validates(self, traced_campaign):
        record = json.loads(traced_campaign.read_text())
        validate_run_report(record)

    def test_campaign_trace_has_sweep_and_run_spans(self,
                                                    traced_campaign):
        report = RunReport.load(traced_campaign)
        assert [span["name"] for span in report.root_spans()] \
            == ["campaign.process"]
        runs = [span for span in report.spans
                if span["name"] == "campaign.run"]
        assert len(runs) == 3

    def test_provenance_names_command_and_campaign(self,
                                                   traced_campaign):
        report = RunReport.load(traced_campaign)
        assert report.provenance["command"] == "campaign"
        assert report.provenance["campaign"] == "obs-cli"
        assert len(report.provenance["runs"]) == 3

    def _relative_run(self, monkeypatch, directory, jobs="1"):
        """One traced campaign run from inside ``directory``.

        Relative paths keep the provenance block (which records the
        output path) identical across working directories — the same
        setup the CI byte-identity check uses.
        """
        directory.mkdir()
        monkeypatch.chdir(directory)
        assert main(["campaign", "--name", "obs-cli", "--runs", "3",
                     "--sections", "10", "--seed", "11",
                     "--jobs", jobs, "--output", "aods.jsonl",
                     "--trace-out", "runreport.json",
                     "--trace-deterministic"]) == 0
        return (directory / "runreport.json").read_bytes()

    def test_deterministic_runs_are_byte_identical(self, tmp_path,
                                                   monkeypatch):
        first = self._relative_run(monkeypatch, tmp_path / "run1")
        second = self._relative_run(monkeypatch, tmp_path / "run2")
        assert first == second

    def test_byte_identity_across_job_counts(self, tmp_path,
                                             monkeypatch):
        serial = self._relative_run(monkeypatch, tmp_path / "serial")
        pooled = self._relative_run(monkeypatch, tmp_path / "pooled",
                                    jobs="2")
        assert serial == pooled

    def test_write_is_announced(self, tmp_path, capsys):
        assert main(["campaign", "--name", "obs-cli", "--runs", "1",
                     "--sections", "5",
                     "--output", str(tmp_path / "aods.jsonl"),
                     "--trace-out", str(tmp_path / "rr.json"),
                     "--trace-deterministic"]) == 0
        assert "wrote run report" in capsys.readouterr().out

    def test_without_flag_no_report_is_written(self, tmp_path):
        assert main(["campaign", "--name", "obs-cli", "--runs", "1",
                     "--sections", "5",
                     "--output", str(tmp_path / "aods.jsonl")]) == 0
        assert list(tmp_path.glob("*.json")) == []


class TestProcessTraceOut:
    def test_process_writes_validating_report(self, tmp_path):
        gen_path = tmp_path / "gen.jsonl"
        assert main(["generate", "--process", "z_to_mumu", "--events",
                     "10", "--seed", "9", "--output",
                     str(gen_path)]) == 0
        report_path = tmp_path / "runreport.json"
        assert main(["process", "--input", str(gen_path), "--output",
                     str(tmp_path / "aod.jsonl"), "--run", "42",
                     "--trace-out", str(report_path),
                     "--trace-deterministic"]) == 0
        report = RunReport.load(report_path)
        assert report.provenance["command"] == "process"
        assert any(span["name"] == "reco.reconstruct_many"
                   for span in report.spans)


class TestLintTraceOut:
    def test_lint_writes_report_with_target_spans(self, tmp_path):
        target = tmp_path / "analysis.py"
        target.write_text("import time\nnow = time.time()\n")
        report_path = tmp_path / "runreport.json"
        code = main(["lint", str(target),
                     "--trace-out", str(report_path),
                     "--trace-deterministic"])
        assert code != 0  # wall-clock read is a lint error
        report = RunReport.load(report_path)
        assert [span["name"] for span in report.root_spans()] \
            == ["lint.run"]
        (target_span,) = [span for span in report.spans
                          if span["name"] == "lint.target"]
        assert target_span["attributes"]["n_findings"] >= 1
        assert report.provenance["exit_code"] == code
        counters = {(c["name"], tuple(sorted(c["labels"].items()))): c
                    for c in report.metrics["counters"]}
        assert any(name == "lint.findings" for name, _ in counters)


class TestTraceAndMetricsCommands:
    def test_trace_renders_the_tree(self, traced_campaign, capsys):
        assert main(["trace", str(traced_campaign)]) == 0
        out = capsys.readouterr().out
        assert "trace 'repro-campaign'" in out
        assert "campaign.run" in out
        assert "deterministic (timings normalized)" in out

    def test_metrics_renders_text(self, traced_campaign, capsys):
        assert main(["metrics", str(traced_campaign)]) == 0
        out = capsys.readouterr().out
        assert "campaign.runs" in out

    def test_metrics_json_mode(self, traced_campaign, capsys):
        assert main(["metrics", str(traced_campaign),
                     "--format", "json"]) == 0
        snapshot = json.loads(capsys.readouterr().out)
        names = [c["name"] for c in snapshot["counters"]]
        assert "campaign.runs" in names

    def test_trace_on_invalid_file_fails_cleanly(self, tmp_path,
                                                 capsys):
        path = tmp_path / "not-a-report.json"
        path.write_text("{}")
        assert main(["trace", str(path)]) != 0
