"""Scheduler error paths: exception propagation and edge-case inputs.

``parallel_map`` promises that an exception raised by any ``fn(item)``
propagates to the caller *unchanged under every policy* — a failed
re-execution must fail loudly and identically whether it ran serially
or across a pool. These tests pin that promise, plus the degenerate
inputs (no items, one item, one chunk) where pooled code paths are
easiest to get wrong.
"""

from __future__ import annotations

import pytest

from repro.errors import ExecutionError
from repro.obs.metrics import MetricsRegistry
from repro.runtime import ExecutionPolicy, parallel_map

ALL_POLICIES = [
    pytest.param(None, id="default"),
    pytest.param(ExecutionPolicy.serial(), id="serial"),
    pytest.param(ExecutionPolicy.threads(2), id="thread"),
    pytest.param(ExecutionPolicy.processes(2), id="process"),
]


class SelectionError(ValueError):
    """A caller-defined type the pool must deliver intact."""


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise SelectionError(f"cannot select item {value}")
    return value


def _always_fails(value):
    raise RuntimeError("worker is broken")


class TestExceptionPropagation:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_exception_type_and_message_survive(self, policy):
        with pytest.raises(SelectionError, match="cannot select item 3"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], policy)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_failure_in_a_late_chunk_still_raises(self, policy):
        items = list(range(20)) + [3]
        with pytest.raises(SelectionError):
            parallel_map(_fail_on_three, items, policy, chunk_size=2)

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_every_chunk_failing_raises_the_first(self, policy):
        with pytest.raises(RuntimeError, match="worker is broken"):
            parallel_map(_always_fails, [1, 2, 3, 4], policy,
                         chunk_size=1)

    @pytest.mark.parametrize("policy", [
        pytest.param(ExecutionPolicy.threads(2), id="thread"),
        pytest.param(ExecutionPolicy.processes(2), id="process"),
    ])
    def test_observed_path_propagates_too(self, policy):
        metrics = MetricsRegistry()
        with pytest.raises(SelectionError, match="cannot select"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], policy,
                         metrics=metrics)

    def test_serial_failure_is_immediate(self):
        calls = []

        def record_then_fail(value):
            calls.append(value)
            raise SelectionError("first item already fails")

        with pytest.raises(SelectionError):
            parallel_map(record_then_fail, [1, 2, 3], None)
        assert calls == [1]


class TestDegenerateInputs:
    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_empty_items(self, policy):
        assert parallel_map(_square, [], policy) == []

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_empty_generator(self, policy):
        assert parallel_map(_square, iter(()), policy) == []

    @pytest.mark.parametrize("policy", ALL_POLICIES)
    def test_single_item(self, policy):
        assert parallel_map(_square, [7], policy) == [49]

    def test_chunk_larger_than_input_is_one_chunk(self):
        metrics = MetricsRegistry()
        result = parallel_map(_square, [1, 2, 3],
                              ExecutionPolicy.processes(2),
                              chunk_size=100, metrics=metrics)
        assert result == [1, 4, 9]
        assert metrics.counter("runtime.chunks").value == 1
        assert metrics.counter("runtime.items").value == 3

    def test_fewer_items_than_workers(self):
        result = parallel_map(_square, [5, 6],
                              ExecutionPolicy.processes(4))
        assert result == [25, 36]

    def test_invalid_explicit_chunk_size_raises(self):
        with pytest.raises(ExecutionError, match="chunk_size"):
            parallel_map(_square, [1, 2, 3],
                         ExecutionPolicy.processes(2), chunk_size=0)
