"""Tests for RECAST requests, catalog, and the state machine."""

import pytest

from repro.datamodel import AndCut, CountCut, MassWindowCut, SkimSpec
from repro.errors import PreservationError, RecastError, RequestStateError
from repro.recast import (
    AnalysisCatalog,
    ModelSpec,
    PreservedSearch,
    RecastRequest,
    RequestStatus,
)
from repro.recast.requests import legal_transitions


def make_search(analysis_id="GPD-EXO-01", experiment="GPD"):
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    return PreservedSearch(
        analysis_id=analysis_id,
        title="High-mass dimuon search",
        experiment=experiment,
        selection=selection,
        n_observed=3,
        background=2.5,
        background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )


class TestPreservedSearch:
    def test_validation(self):
        with pytest.raises(RecastError):
            PreservedSearch("x", "t", "GPD",
                            SkimSpec("s", CountCut("muons", 1)),
                            n_observed=-1, background=1.0,
                            background_uncertainty=0.1,
                            luminosity_ipb=10.0)

    def test_public_metadata_hides_internals(self):
        search = make_search()
        public = search.public_metadata()
        assert "selection" not in public
        assert "background" not in public
        assert public["analysis_id"] == "GPD-EXO-01"

    def test_roundtrip(self):
        search = make_search()
        restored = PreservedSearch.from_dict(search.to_dict())
        assert restored.analysis_id == search.analysis_id
        assert restored.selection.to_dict() == search.selection.to_dict()


class TestCatalog:
    def test_register_and_get(self):
        catalog = AnalysisCatalog("GPD")
        catalog.register(make_search())
        assert "GPD-EXO-01" in catalog
        assert catalog.get("GPD-EXO-01").n_observed == 3

    def test_wrong_experiment_rejected(self):
        catalog = AnalysisCatalog("FWD")
        with pytest.raises(RecastError):
            catalog.register(make_search(experiment="GPD"))

    def test_duplicate_rejected(self):
        catalog = AnalysisCatalog("GPD")
        catalog.register(make_search())
        with pytest.raises(RecastError):
            catalog.register(make_search())

    def test_public_listing(self):
        catalog = AnalysisCatalog("GPD")
        catalog.register(make_search())
        catalog.register(make_search(analysis_id="GPD-EXO-02"))
        listing = catalog.public_listing()
        assert len(listing) == 2
        assert all("selection" not in entry for entry in listing)


class TestModelSpec:
    def test_unknown_process_rejected(self):
        with pytest.raises(RecastError):
            ModelSpec("bad", "magic_process")

    def test_roundtrip(self):
        model = ModelSpec("Zp", "zprime", {"mass": 1500.0})
        assert ModelSpec.from_dict(model.to_dict()) == model


class TestStateMachine:
    def _request(self):
        return RecastRequest(
            request_id="req-1", analysis_id="GPD-EXO-01",
            requester="theorist",
            model=ModelSpec("Zp", "zprime", {"mass": 1500.0}),
        )

    def test_happy_path(self):
        request = self._request()
        request.transition(RequestStatus.ACCEPTED)
        request.transition(RequestStatus.PROCESSING)
        request.transition(RequestStatus.PENDING_APPROVAL)
        request.transition(RequestStatus.APPROVED)
        assert request.is_terminal
        assert len(request.history) == 4

    def test_rejection_path(self):
        request = self._request()
        request.transition(RequestStatus.REJECTED, "out of scope")
        assert request.is_terminal
        assert "out of scope" in request.history[0]

    def test_illegal_jump_rejected(self):
        request = self._request()
        with pytest.raises(RequestStateError):
            request.transition(RequestStatus.APPROVED)

    def test_terminal_state_frozen(self):
        request = self._request()
        request.transition(RequestStatus.REJECTED)
        with pytest.raises(RequestStateError):
            request.transition(RequestStatus.ACCEPTED)

    def test_cannot_skip_processing(self):
        request = self._request()
        request.transition(RequestStatus.ACCEPTED)
        with pytest.raises(RequestStateError):
            request.transition(RequestStatus.PENDING_APPROVAL)

    def test_public_view_hides_result_until_approved(self):
        from repro.recast import RecastResult

        request = self._request()
        request.transition(RequestStatus.ACCEPTED)
        request.transition(RequestStatus.PROCESSING)
        request.result = RecastResult(
            analysis_id="GPD-EXO-01", model_name="Zp", n_generated=10,
            n_selected=5, signal_efficiency=0.5, efficiency_error=0.1,
            upper_limit_pb=0.1, model_cross_section_pb=0.05,
            excluded=False, backend="test",
        )
        request.transition(RequestStatus.PENDING_APPROVAL)
        assert "result" not in request.public_view()
        request.transition(RequestStatus.APPROVED)
        assert request.public_view()["result"]["signal_efficiency"] == 0.5

    def test_failure_reason_visible(self):
        request = self._request()
        request.transition(RequestStatus.ACCEPTED)
        request.transition(RequestStatus.PROCESSING)
        request.failure_reason = "generator crashed"
        request.transition(RequestStatus.FAILED)
        assert request.public_view()["failure_reason"] == \
            "generator crashed"


#: The complete legal edge set — one source of truth for the matrix
#: test below. Kept literal (not imported) so an accidental edit to the
#: state machine cannot silently rewrite its own test.
LEGAL_EDGES = {
    (RequestStatus.SUBMITTED, RequestStatus.ACCEPTED),
    (RequestStatus.SUBMITTED, RequestStatus.REJECTED),
    (RequestStatus.ACCEPTED, RequestStatus.PROCESSING),
    (RequestStatus.ACCEPTED, RequestStatus.QUEUED),
    (RequestStatus.QUEUED, RequestStatus.LEASED),
    (RequestStatus.QUEUED, RequestStatus.PENDING_APPROVAL),
    (RequestStatus.QUEUED, RequestStatus.FAILED),
    (RequestStatus.QUEUED, RequestStatus.REJECTED),
    (RequestStatus.LEASED, RequestStatus.PENDING_APPROVAL),
    (RequestStatus.LEASED, RequestStatus.RETRYING),
    (RequestStatus.LEASED, RequestStatus.FAILED),
    (RequestStatus.RETRYING, RequestStatus.QUEUED),
    (RequestStatus.RETRYING, RequestStatus.FAILED),
    (RequestStatus.PROCESSING, RequestStatus.PENDING_APPROVAL),
    (RequestStatus.PROCESSING, RequestStatus.FAILED),
    (RequestStatus.PENDING_APPROVAL, RequestStatus.APPROVED),
    (RequestStatus.PENDING_APPROVAL, RequestStatus.REJECTED),
}


class TestTransitionMatrix:
    """Every (from, to) pair of the state machine, exhaustively."""

    def _request_at(self, status):
        request = RecastRequest(
            request_id="req-m", analysis_id="GPD-EXO-01",
            requester="theorist",
            model=ModelSpec("Zp", "zprime", {"mass": 1500.0}),
        )
        request.status = status
        return request

    @pytest.mark.parametrize(
        "source,target",
        [(s, t) for s in RequestStatus for t in RequestStatus],
        ids=[f"{s.value}->{t.value}"
             for s in RequestStatus for t in RequestStatus],
    )
    def test_every_edge_agrees_with_the_matrix(self, source, target):
        request = self._request_at(source)
        if (source, target) in LEGAL_EDGES:
            request.transition(target)
            assert request.status is target
            assert request.history == [
                f"{source.value} -> {target.value}"
            ]
        else:
            with pytest.raises(RequestStateError):
                request.transition(target)
            assert request.status is source
            assert request.history == []

    def test_legal_transitions_helper_matches(self):
        for status in RequestStatus:
            expected = {target for source, target in LEGAL_EDGES
                        if source is status}
            assert legal_transitions(status) == expected

    def test_terminal_statuses_have_no_exits(self):
        for status in (RequestStatus.APPROVED, RequestStatus.REJECTED,
                       RequestStatus.FAILED):
            assert legal_transitions(status) == frozenset()

    def test_illegal_edge_error_is_a_preservation_error(self):
        # The request history is itself a preserved artifact; breaking
        # its state machine is a preservation failure, not just an API
        # misuse, so both error families must catch it.
        request = self._request_at(RequestStatus.SUBMITTED)
        with pytest.raises(PreservationError):
            request.transition(RequestStatus.APPROVED)
        with pytest.raises(RecastError):
            request.transition(RequestStatus.APPROVED)

    def test_error_message_names_the_edge(self):
        request = self._request_at(RequestStatus.QUEUED)
        with pytest.raises(RequestStateError,
                           match="queued -> processing"):
            request.transition(RequestStatus.PROCESSING)

    def test_terminal_error_message_explains(self):
        request = self._request_at(RequestStatus.APPROVED)
        with pytest.raises(RequestStateError,
                           match="no transitions leave a terminal"):
            request.transition(RequestStatus.SUBMITTED)

    def test_self_transition_called_out(self):
        request = self._request_at(RequestStatus.ACCEPTED)
        with pytest.raises(RequestStateError, match="already accepted"):
            request.transition(RequestStatus.ACCEPTED)

    def test_non_status_target_rejected(self):
        request = self._request_at(RequestStatus.SUBMITTED)
        with pytest.raises(RequestStateError,
                           match="not a RequestStatus"):
            request.transition("accepted")
