"""Unit and property tests for intervals of validity."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.conditions import IOV
from repro.conditions.iov import INFINITE_RUN
from repro.errors import IOVError

run_numbers = st.integers(min_value=0, max_value=10**6)


class TestIOV:
    def test_contains_endpoints(self):
        iov = IOV(10, 20)
        assert iov.contains(10)
        assert iov.contains(20)
        assert not iov.contains(9)
        assert not iov.contains(21)

    def test_open_ended(self):
        iov = IOV(5)
        assert iov.is_open_ended
        assert iov.contains(10**9)

    def test_empty_interval_rejected(self):
        with pytest.raises(IOVError):
            IOV(10, 9)

    def test_negative_run_rejected(self):
        with pytest.raises(IOVError):
            IOV(-1, 10)

    def test_single_run_interval(self):
        iov = IOV(7, 7)
        assert iov.contains(7)
        assert not iov.contains(8)

    def test_str_rendering(self):
        assert str(IOV(1, 10)) == "[1, 10]"
        assert str(IOV(5)) == "[5, inf]"

    def test_roundtrip(self):
        iov = IOV(3, 99)
        assert IOV.from_dict(iov.to_dict()) == iov


class TestOverlap:
    def test_touching_intervals_overlap(self):
        assert IOV(1, 10).overlaps(IOV(10, 20))

    def test_adjacent_intervals_do_not_overlap(self):
        assert not IOV(1, 10).overlaps(IOV(11, 20))

    def test_containment_overlaps(self):
        assert IOV(1, 100).overlaps(IOV(40, 50))

    def test_open_ended_overlaps_everything_later(self):
        assert IOV(50).overlaps(IOV(1000, 2000))
        assert not IOV(50).overlaps(IOV(1, 49))

    @given(a=run_numbers, b=run_numbers, c=run_numbers, d=run_numbers)
    @settings(max_examples=200)
    def test_overlap_symmetry(self, a, b, c, d):
        first = IOV(min(a, b), max(a, b))
        second = IOV(min(c, d), max(c, d))
        assert first.overlaps(second) == second.overlaps(first)

    @given(a=run_numbers, b=run_numbers, run=run_numbers)
    @settings(max_examples=200)
    def test_contains_implies_overlap_with_point(self, a, b, run):
        iov = IOV(min(a, b), max(a, b))
        point = IOV(run, run)
        assert iov.contains(run) == iov.overlaps(point)

    def test_infinite_constant(self):
        assert IOV(0).last_run == INFINITE_RUN
