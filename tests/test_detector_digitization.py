"""Tests for digitisation into the RAW tier."""

import math

import numpy as np
import pytest

from repro.detector import (
    DetectorSimulation,
    Digitizer,
    RawEvent,
    generic_lhc_detector,
)
from repro.detector.digitization import KAPPA, DigitizerConfig
from repro.detector.simulation import Traversal
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.kinematics import FourVector


@pytest.fixture(scope="module")
def geometry():
    return generic_lhc_detector()


def _simulated(n, geometry, seed=80):
    events = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=seed)).generate(n)
    simulation = DetectorSimulation(geometry, seed=seed + 1)
    return [simulation.simulate(event) for event in events]


class TestTrackerHits:
    def test_hits_on_multiple_layers(self, geometry):
        digitizer = Digitizer(geometry, seed=81)
        sim_events = _simulated(10, geometry)
        raw = digitizer.digitize(sim_events[0])
        layers = {hit.layer for hit in raw.tracker_hits}
        assert len(layers) >= 5

    def test_helix_curvature_encodes_pt(self, geometry):
        # A clean single traversal: check the phi(r) slope matches the
        # curvature formula.
        digitizer = Digitizer(
            geometry,
            config=DigitizerConfig(layer_inefficiency=0.0,
                                   tracker_noise_hits=0.0),
            seed=82,
        )
        momentum = FourVector.from_ptetaphim(20.0, 0.3, 0.5, 0.105)
        traversal = Traversal(0, 13, -1.0, momentum, (0.0, 0.0, 0.0),
                              True)
        hits = digitizer._tracker_hits_for(traversal)
        assert len(hits) == 8
        radii = np.array([hit.r_mm for hit in hits])
        phis = np.array([hit.phi for hit in hits])
        slope = np.polyfit(radii, phis, 1)[0]
        expected = -(-1.0) * KAPPA * geometry.bfield_tesla / (2.0 * 20.0)
        assert slope == pytest.approx(expected, rel=0.05)

    def test_z_slope_encodes_eta(self, geometry):
        digitizer = Digitizer(
            geometry,
            config=DigitizerConfig(layer_inefficiency=0.0,
                                   tracker_noise_hits=0.0),
            seed=83,
        )
        momentum = FourVector.from_ptetaphim(20.0, 1.2, 0.0, 0.105)
        traversal = Traversal(0, 13, -1.0, momentum, (0.0, 0.0, 0.0),
                              True)
        hits = digitizer._tracker_hits_for(traversal)
        radii = np.array([hit.r_mm for hit in hits])
        zs = np.array([hit.z_mm for hit in hits])
        slope = np.polyfit(radii, zs, 1)[0]
        assert slope == pytest.approx(math.sinh(1.2), rel=0.02)

    def test_displaced_origin_skips_inner_layers(self, geometry):
        digitizer = Digitizer(
            geometry,
            config=DigitizerConfig(layer_inefficiency=0.0,
                                   tracker_noise_hits=0.0),
            seed=84,
        )
        momentum = FourVector.from_ptetaphim(10.0, 0.0, 0.0, 0.494)
        traversal = Traversal(0, 321, 1.0, momentum,
                              (60.0, 0.0, 0.0), False)
        hits = digitizer._tracker_hits_for(traversal)
        assert all(hit.r_mm > 60.0 for hit in hits)

    def test_noise_hits_added(self, geometry):
        digitizer = Digitizer(
            geometry,
            config=DigitizerConfig(tracker_noise_hits=20.0),
            seed=85,
        )
        sim_events = _simulated(5, geometry, seed=86)
        raw = digitizer.digitize(sim_events[0])
        assert len(raw.tracker_hits) > 15


class TestCaloCells:
    def test_cells_above_threshold_only(self, geometry):
        digitizer = Digitizer(geometry, seed=87)
        sim_events = _simulated(10, geometry, seed=88)
        for sim_event in sim_events:
            raw = digitizer.digitize(sim_event)
            for hit in raw.calo_hits:
                assert hit.energy >= digitizer.config.calo_cell_threshold

    def test_cell_indices_in_range(self, geometry):
        digitizer = Digitizer(geometry, seed=89)
        sim_events = _simulated(10, geometry, seed=90)
        for sim_event in sim_events:
            raw = digitizer.digitize(sim_event)
            for hit in raw.calo_hits:
                sub = geometry.subdetectors[hit.subdetector]
                assert 0 <= hit.ieta < sub.eta_cells
                assert 0 <= hit.iphi < sub.phi_cells


class TestMuonHits:
    def test_muon_stations_hit(self, geometry):
        digitizer = Digitizer(geometry, seed=91)
        sim_events = _simulated(20, geometry, seed=92)
        stations = set()
        for sim_event in sim_events:
            raw = digitizer.digitize(sim_event)
            stations.update(hit.station for hit in raw.muon_hits)
        assert stations == {0, 1, 2}

    def test_muon_hit_direction_close_to_truth(self, geometry):
        digitizer = Digitizer(geometry, seed=93)
        sim_events = _simulated(10, geometry, seed=94)
        for sim_event in sim_events:
            raw = digitizer.digitize(sim_event)
            for hit in raw.muon_hits:
                closest = min(
                    (t for t in sim_event.traversals
                     if t.reaches_muon_system),
                    key=lambda t: abs(t.momentum.eta - hit.eta),
                    default=None,
                )
                assert closest is not None
                assert abs(closest.momentum.eta - hit.eta) < 0.1


class TestRawEvent:
    def test_serialisation_roundtrip(self, geometry):
        digitizer = Digitizer(geometry, run_number=9, seed=95)
        sim_events = _simulated(3, geometry, seed=96)
        raw = digitizer.digitize(sim_events[0])
        restored = RawEvent.from_dict(raw.to_dict())
        assert restored.run_number == 9
        assert len(restored.tracker_hits) == len(raw.tracker_hits)
        assert restored.tracker_hits[0] == raw.tracker_hits[0]
        assert restored.calo_hits[0] == raw.calo_hits[0]

    def test_bunch_crossing_increments(self, geometry):
        digitizer = Digitizer(geometry, seed=97)
        sim_events = _simulated(3, geometry, seed=98)
        raws = digitizer.digitize_many(sim_events)
        assert [raw.bunch_crossing for raw in raws] == [1, 2, 3]

    def test_size_accounting_positive(self, geometry):
        digitizer = Digitizer(geometry, seed=99)
        sim_events = _simulated(2, geometry, seed=100)
        raw = digitizer.digitize(sim_events[0])
        assert raw.approximate_size_bytes() > 64
