"""Tests for leases, the lease table, and the worker pool."""

import pytest

from repro.errors import LeaseError, ServiceError
from repro.recast import FullChainBackend, ModelSpec
from repro.service import (
    CrashingBackend,
    FailingBackend,
    LeaseTable,
    LeaseTask,
    WorkerCrash,
    execute_lease,
    run_lease_batch,
)
from tests.test_recast_requests import make_search


def make_task(attempt=1, backend=None, mass=1500.0):
    return LeaseTask(
        key="k" * 64,
        attempt=attempt,
        analysis_id="GPD-EXO-01",
        backend=backend if backend is not None
        else FullChainBackend("GPD", n_events=40, n_limit_toys=200,
                              seed=11),
        search=make_search(),
        model=ModelSpec("Zp", "zprime",
                        {"mass": mass, "cross_section_pb": 0.05}),
    )


class TestLeaseTable:
    def test_grant_and_settle(self):
        table = LeaseTable()
        lease = table.grant("k", "t", 1, now=0.0, duration=5.0)
        assert lease.expires_at == 5.0
        assert "k" in table
        settled = table.settle("k", 1)
        assert settled is lease
        assert "k" not in table

    def test_double_grant_rejected(self):
        table = LeaseTable()
        table.grant("k", "t", 1, now=0.0, duration=5.0)
        with pytest.raises(LeaseError):
            table.grant("k", "t", 2, now=1.0, duration=5.0)

    def test_stale_attempt_not_settled(self):
        # The exactly-once gate: an outcome from a superseded attempt
        # must be discarded, not committed.
        table = LeaseTable()
        table.grant("k", "t", 1, now=0.0, duration=5.0)
        table.revoke("k")
        table.grant("k", "t", 2, now=10.0, duration=5.0)
        assert table.settle("k", 1) is None
        assert table.settle("k", 2) is not None

    def test_settle_without_lease_is_stale(self):
        assert LeaseTable().settle("k", 1) is None

    def test_revoke_missing_rejected(self):
        with pytest.raises(LeaseError):
            LeaseTable().revoke("k")

    def test_expiry_is_inclusive_at_deadline(self):
        table = LeaseTable()
        lease = table.grant("k", "t", 1, now=0.0, duration=5.0)
        assert not lease.expired(4.999)
        assert lease.expired(5.0)

    def test_expired_sweep_is_grant_ordered(self):
        table = LeaseTable()
        table.grant("b", "t", 1, now=0.0, duration=1.0)
        table.grant("a", "t", 1, now=0.0, duration=1.0)
        keys = [lease.key for lease in table.expired(10.0)]
        assert keys == ["b", "a"]

    def test_inflight_accounting(self):
        table = LeaseTable()
        table.grant("k1", "a", 1, now=0.0, duration=5.0)
        table.grant("k2", "a", 1, now=0.0, duration=5.0)
        table.grant("k3", "b", 1, now=0.0, duration=5.0)
        assert table.inflight_by_tenant() == {"a": 2, "b": 1}
        assert len(table) == 3


class TestExecuteLease:
    def test_success_reports_result(self):
        outcome = execute_lease(make_task())
        assert outcome.status == "ok"
        assert outcome.result is not None
        assert outcome.attempt == 1

    def test_backend_exception_reports_error(self):
        outcome = execute_lease(make_task(
            backend=FailingBackend(reason="bad physics")))
        assert outcome.status == "error"
        assert outcome.error == "bad physics"
        assert outcome.result is None

    def test_worker_crash_reports_crashed(self):
        backend = CrashingBackend(
            inner=FullChainBackend("GPD", n_events=40), crash_times=1)
        outcome = execute_lease(make_task(backend=backend))
        assert outcome.status == "crashed"
        assert "injected worker death" in outcome.error


class TestRunLeaseBatch:
    def test_outcomes_preserve_task_order(self):
        tasks = [make_task(mass=mass)
                 for mass in (1500.0, 1700.0, 1900.0)]
        outcomes = run_lease_batch(execute_lease, tasks)
        assert [o.key for o in outcomes] == [t.key for t in tasks]
        assert all(o.status == "ok" for o in outcomes)


class TestFaultInjection:
    def test_crashing_backend_dies_n_times_then_succeeds(self):
        backend = CrashingBackend(
            inner=FullChainBackend("GPD", n_events=40, n_limit_toys=200,
                                   seed=11),
            crash_times=2,
        )
        search = make_search()
        model = ModelSpec("Zp", "zprime",
                          {"mass": 1500.0, "cross_section_pb": 0.05})
        for _ in range(2):
            with pytest.raises(WorkerCrash):
                backend.process(search, model)
        assert backend.process(search, model).n_generated == 40

    def test_crash_counting_is_per_question(self):
        backend = CrashingBackend(
            inner=FullChainBackend("GPD", n_events=40, n_limit_toys=200,
                                   seed=11),
            crash_times=1,
        )
        search = make_search()
        with pytest.raises(WorkerCrash):
            backend.process(search, ModelSpec(
                "Zp-a", "zprime",
                {"mass": 1500.0, "cross_section_pb": 0.05}))
        # A different model is a different question: fresh crash budget.
        with pytest.raises(WorkerCrash):
            backend.process(search, ModelSpec(
                "Zp-b", "zprime",
                {"mass": 1700.0, "cross_section_pb": 0.05}))

    def test_negative_crash_times_rejected(self):
        with pytest.raises(ServiceError):
            CrashingBackend(inner=FullChainBackend("GPD", n_events=10),
                            crash_times=-1)

    def test_worker_crash_is_a_service_error(self):
        assert issubclass(WorkerCrash, ServiceError)
