"""Tests for the HepData-analogue archive and INSPIRE linkage."""

import numpy as np
import pytest

from repro.errors import HepDataError, PersistenceError, RecordNotFoundError
from repro.hepdata import (
    DataTable,
    DependentVariable,
    HepDataArchive,
    HepDataRecord,
    InspireCatalog,
    InspireEntry,
    Reaction,
    find_by_keyword,
    find_by_observable,
    find_by_reaction,
)
from repro.hepdata.query import find_with_auxiliary_format
from repro.stats import EfficiencyGrid, Histogram1D


def _cross_section_record(record_id="ins0001", version=1):
    histogram = Histogram1D("zpt", 10, 0.0, 100.0)
    rng = np.random.default_rng(3)
    histogram.fill_array(rng.exponential(15.0, 500))
    record = HepDataRecord(
        record_id=record_id,
        title="Z boson pt spectrum at 8 TeV",
        experiment="GPD",
        inspire_id="I1001",
        keywords=("Z", "cross section"),
        version=version,
    )
    record.reactions.append(Reaction("P P", "Z0 X", 8000.0))
    record.add_table(DataTable.from_histogram(
        "Table 1", histogram, "pt(Z)", "GeV",
        "dsigma/dpt", "pb/GeV",
    ))
    return record


class TestTables:
    def test_histogram_roundtrip_through_table(self):
        histogram = Histogram1D("h", 5, 0.0, 5.0)
        histogram.fill(2.5, weight=3.0)
        table = DataTable.from_histogram("t", histogram, "x", "GeV",
                                         "y", "pb")
        restored = table.to_histogram()
        assert np.allclose(restored.values(), histogram.values())
        assert np.allclose(restored.errors(), histogram.errors())

    def test_column_length_validated(self):
        table = DataTable("t", "x", "GeV", [0.0, 1.0, 2.0])
        with pytest.raises(HepDataError):
            table.add_dependent(DependentVariable(
                "y", "pb", [1.0], [0.1]))

    def test_values_errors_length_validated(self):
        with pytest.raises(HepDataError):
            DependentVariable("y", "pb", [1.0, 2.0], [0.1])

    def test_table_roundtrip(self):
        record = _cross_section_record()
        table = record.tables[0]
        assert DataTable.from_dict(table.to_dict()).to_dict() == \
            table.to_dict()


class TestRecords:
    def test_duplicate_table_name_rejected(self):
        record = _cross_section_record()
        with pytest.raises(HepDataError):
            record.add_table(DataTable("Table 1", "x", "", [0.0, 1.0]))

    def test_auxiliary_needs_format_tag(self):
        record = _cross_section_record()
        with pytest.raises(HepDataError):
            record.add_auxiliary("raw", {"data": [1, 2, 3]})

    def test_heterogeneous_payloads_accepted(self):
        # The "ATLAS search with a very large amount of information"
        # use case: efficiency grids and cut flows ride along.
        record = _cross_section_record()
        grid = EfficiencyGrid("acc", [0, 500, 1000], [0, 250, 500])
        grid.record(250.0, 100.0, True)
        record.add_auxiliary("acceptance_grid", grid.to_dict())
        record.add_auxiliary("cutflow", {
            "format": "repro-cutflow",
            "rows": [["all", 1000], ["2 leptons", 400]],
        })
        assert record.payload_size_bytes() > 1000
        restored = HepDataRecord.from_dict(record.to_dict())
        grid_back = EfficiencyGrid.from_dict(
            restored.auxiliary["acceptance_grid"]
        )
        assert grid_back.efficiency(250.0, 100.0) == 1.0

    def test_reaction_label(self):
        reaction = Reaction("P P", "Z0 X", 8000.0)
        assert reaction.label() == "P P --> Z0 X"


class TestArchive:
    def test_submit_and_get(self):
        archive = HepDataArchive()
        archive.submit(_cross_section_record())
        assert "ins0001" in archive
        assert archive.get("ins0001").title.startswith("Z boson")

    def test_versioning(self):
        archive = HepDataArchive()
        archive.submit(_cross_section_record())
        archive.submit(_cross_section_record(version=2))
        assert archive.n_versions("ins0001") == 2
        assert archive.get("ins0001").version == 2
        assert archive.get("ins0001", version=1).version == 1

    def test_wrong_version_rejected(self):
        archive = HepDataArchive()
        archive.submit(_cross_section_record())
        with pytest.raises(HepDataError):
            archive.submit(_cross_section_record(version=5))

    def test_unknown_record_raises(self):
        archive = HepDataArchive()
        with pytest.raises(RecordNotFoundError):
            archive.get("missing")

    def test_persistence_roundtrip(self, tmp_path):
        archive = HepDataArchive("durham")
        archive.submit(_cross_section_record())
        archive.submit(_cross_section_record(version=2))
        path = tmp_path / "archive.json"
        archive.save(path)
        loaded = HepDataArchive.load(path)
        assert loaded.name == "durham"
        assert loaded.n_versions("ins0001") == 2

    def test_load_rejects_foreign_file(self, tmp_path):
        path = tmp_path / "foreign.json"
        path.write_text('{"format": "something-else"}')
        with pytest.raises(PersistenceError):
            HepDataArchive.load(path)


class TestQueries:
    @pytest.fixture
    def archive(self):
        archive = HepDataArchive()
        archive.submit(_cross_section_record())
        search = HepDataRecord(
            record_id="ins0002",
            title="Search for high-mass dimuon resonances",
            experiment="GPD",
            keywords=("search", "dimuon"),
        )
        search.reactions.append(Reaction("P P", "MU+ MU- X", 8000.0))
        search.add_auxiliary("analysis_description", {
            "format": "repro-analysis-description",
            "analysis_id": "GPD-EXO-01",
        })
        archive.submit(search)
        return archive

    def test_find_by_keyword(self, archive):
        assert [r.record_id
                for r in find_by_keyword(archive, "search")] == ["ins0002"]
        assert find_by_keyword(archive, "SEARCH")

    def test_find_by_reaction(self, archive):
        matches = find_by_reaction(archive, "Z0 X")
        assert [r.record_id for r in matches] == ["ins0001"]
        assert find_by_reaction(archive, "Z0 X", sqrt_s_gev=7000.0) == []

    def test_find_by_observable(self, archive):
        matches = find_by_observable(archive, "dsigma/dpt")
        assert [r.record_id for r in matches] == ["ins0001"]

    def test_find_with_auxiliary_format(self, archive):
        matches = find_with_auxiliary_format(
            archive, "repro-analysis-description"
        )
        assert [r.record_id for r in matches] == ["ins0002"]


class TestInspire:
    def test_link_and_resolve(self):
        archive = HepDataArchive()
        archive.submit(_cross_section_record())
        catalog = InspireCatalog()
        catalog.register(InspireEntry(
            inspire_id="I1001",
            title="Measurement of the Z pt spectrum",
            authors=("GPD Collaboration",),
            year=2013,
        ))
        catalog.link_record("I1001", "ins0001")
        records = catalog.resolve_data("I1001", archive)
        assert [r.record_id for r in records] == ["ins0001"]
        assert catalog.publications_with_data()[0].inspire_id == "I1001"

    def test_duplicate_entry_rejected(self):
        catalog = InspireCatalog()
        entry = InspireEntry("I1", "t", ("a",), 2013)
        catalog.register(entry)
        with pytest.raises(HepDataError):
            catalog.register(entry)

    def test_link_idempotent(self):
        catalog = InspireCatalog()
        catalog.register(InspireEntry("I1", "t", ("a",), 2013))
        catalog.link_record("I1", "r1")
        catalog.link_record("I1", "r1")
        assert catalog.get("I1").hepdata_record_ids == ["r1"]
