"""Integration tests for the full RECAST system and the RIVET bridge."""

import math

import pytest

from repro.datamodel import AndCut, CountCut, MassWindowCut, SkimSpec
from repro.errors import RecastError
from repro.recast import (
    AnalysisCatalog,
    FullChainBackend,
    ModelSpec,
    PreservedSearch,
    RecastAPI,
    RecastFrontend,
    RecastResult,
    RivetBridgeBackend,
)
from repro.recast.bridge import RivetSignalRegion
from repro.rivet import standard_repository


def _search():
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    return PreservedSearch(
        analysis_id="GPD-EXO-01",
        title="High-mass dimuon search",
        experiment="GPD",
        selection=selection,
        n_observed=3,
        background=2.5,
        background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )


@pytest.fixture(scope="module")
def api():
    catalog = AnalysisCatalog("GPD")
    catalog.register(_search())
    api = RecastAPI()
    api.register_experiment(
        catalog,
        FullChainBackend("GPD", n_events=120, n_limit_toys=1200,
                         seed=900),
    )
    return api


@pytest.fixture(scope="module")
def approved_request(api):
    frontend = RecastFrontend(api)
    request_id = frontend.submit_request(
        "GPD-EXO-01",
        ModelSpec("Zp-1.5TeV", "zprime",
                  {"mass": 1500.0, "cross_section_pb": 0.05}),
        requester="theorist@ippp",
    )
    api.accept(request_id)
    api.run(request_id)
    api.approve(request_id, "physics coordinator")
    return request_id


class TestFullRoundTrip:
    def test_catalog_browsable(self, api):
        frontend = RecastFrontend(api)
        listing = frontend.browse_catalog()
        assert listing[0]["analysis_id"] == "GPD-EXO-01"
        assert "selection" not in listing[0]

    def test_result_after_approval(self, api, approved_request):
        frontend = RecastFrontend(api)
        result = frontend.result(approved_request)
        assert result is not None
        assert result["signal_efficiency"] > 0.3
        assert result["upper_limit_pb"] < 0.01
        assert result["excluded"] is True

    def test_unknown_analysis_rejected(self, api):
        frontend = RecastFrontend(api)
        with pytest.raises(RecastError):
            frontend.submit_request(
                "NOPE", ModelSpec("m", "zprime", {"mass": 1000.0}), "x"
            )

    def test_duplicate_experiment_rejected(self, api):
        catalog = AnalysisCatalog("GPD")
        with pytest.raises(RecastError):
            api.register_experiment(
                catalog, FullChainBackend("GPD", n_events=10)
            )

    def test_failure_captured_not_raised(self, api):
        frontend = RecastFrontend(api)
        # Z' so light the generator refuses: backend fails gracefully.
        request_id = frontend.submit_request(
            "GPD-EXO-01",
            ModelSpec("Zp-too-light", "zprime", {"mass": 150.0}),
            requester="theorist",
        )
        api.accept(request_id)
        api.run(request_id)
        view = frontend.status(request_id)
        assert view["status"] == "failed"
        assert "failure_reason" in view

    def test_resolution_failure_during_run_fails_request(self):
        # Regression: a request accepted while its analysis was
        # catalogued must land in FAILED — not be stranded mid
        # -PROCESSING with an exception — if the catalogue entry is
        # gone by the time the back end is resolved.
        catalog = AnalysisCatalog("GPD")
        catalog.register(_search())
        api = RecastAPI()
        api.register_experiment(
            catalog, FullChainBackend("GPD", n_events=10))
        request_id = api.submit(
            "GPD-EXO-01",
            ModelSpec("Zp", "zprime",
                      {"mass": 1500.0, "cross_section_pb": 0.05}),
            "theorist",
        ).request_id
        api.accept(request_id)
        api._catalogs.clear()
        api.run(request_id)
        view = api.public_status(request_id)
        assert view["status"] == "failed"
        assert "GPD-EXO-01" in view["failure_reason"]

    def test_off_peak_model_not_excluded(self, api):
        # A model whose dimuon mass sits below the search window has
        # low efficiency and must not be excluded.
        frontend = RecastFrontend(api)
        request_id = frontend.submit_request(
            "GPD-EXO-01",
            ModelSpec("SM-Z", "drell_yan_z",
                      {"cross_section_pb": 1100.0}),
            requester="theorist",
        )
        api.accept(request_id)
        api.run(request_id)
        api.approve(request_id, "coordinator")
        result = frontend.result(request_id)
        assert result["signal_efficiency"] < 0.05


class TestBridge:
    def test_rivet_analysis_as_backend(self):
        repository = standard_repository()
        bridge = RivetBridgeBackend(
            repository,
            signal_regions={
                "GPD-EXO-01": RivetSignalRegion(
                    "TOY_2013_I0006", "mass", 500.0, 202.0 + 1e4,
                ),
            },
            n_events=400,
            n_limit_toys=1200,
        )
        result = bridge.process(
            _search(),
            ModelSpec("Zp-100", "zprime",
                      {"mass": 1500.0, "cross_section_pb": 0.05}),
        )
        assert result.backend == "rivet-bridge"
        assert result.extra["truth_level_only"] is True
        # The 1.5 TeV peak is above the histogram range (202 GeV), so
        # entries land in overflow -> low in-window efficiency is
        # possible; what matters is the machinery ran and set a limit.
        assert result.n_generated == 400

    def test_bridge_limit_setting_works(self):
        repository = standard_repository()
        bridge = RivetBridgeBackend(
            repository,
            signal_regions={
                "GPD-EXO-01": RivetSignalRegion(
                    "TOY_2013_I0006", "mass", 60.0, 120.0,
                ),
            },
            n_events=400,
            n_limit_toys=1200,
        )
        # A Z sample fills the 60-120 window with high efficiency.
        result = bridge.process(
            _search(),
            ModelSpec("SM-Z", "drell_yan_z",
                      {"cross_section_pb": 1100.0, "flavour": "mu"}),
        )
        assert result.signal_efficiency > 0.3
        assert math.isfinite(result.upper_limit_pb)

    def test_missing_signal_region_rejected(self):
        repository = standard_repository()
        bridge = RivetBridgeBackend(repository, signal_regions={},
                                    n_events=10)
        from repro.errors import BackendError

        with pytest.raises(BackendError):
            bridge.process(_search(),
                           ModelSpec("m", "zprime", {"mass": 1000.0}))


class TestResultPayload:
    def test_roundtrip(self):
        result = RecastResult(
            analysis_id="A", model_name="M", n_generated=100,
            n_selected=42, signal_efficiency=0.42,
            efficiency_error=0.05, upper_limit_pb=0.3,
            model_cross_section_pb=0.1, excluded=False,
            backend="full-chain", extra={"note": "x"},
        )
        assert RecastResult.from_dict(result.to_dict()) == result

    def test_validation(self):
        with pytest.raises(RecastError):
            RecastResult(
                analysis_id="A", model_name="M", n_generated=10,
                n_selected=20, signal_efficiency=0.5,
                efficiency_error=0.1, upper_limit_pb=1.0,
                model_cross_section_pb=0.1, excluded=False,
                backend="b",
            )

    def test_summary_readable(self):
        result = RecastResult(
            analysis_id="A", model_name="M", n_generated=100,
            n_selected=42, signal_efficiency=0.42,
            efficiency_error=0.05, upper_limit_pb=0.3,
            model_cross_section_pb=0.5, excluded=True,
            backend="full-chain",
        )
        assert "EXCLUDED" in result.summary()
