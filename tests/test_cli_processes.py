"""CLI coverage across every generator process and both geometries."""

import pytest

from repro.cli import main
from repro.datamodel import DataTier, DatasetReader

ALL_PROCESSES = ("z_to_mumu", "z_to_ee", "w_to_munu", "higgs_4l",
                 "qcd_dijets", "d0_to_kpi", "jpsi", "minbias")


class TestGenerateAllProcesses:
    @pytest.mark.parametrize("process", ALL_PROCESSES)
    def test_generate(self, process, tmp_path):
        path = tmp_path / f"{process}.jsonl"
        assert main(["generate", "--process", process, "--events",
                     "5", "--seed", "3", "--output", str(path)]) == 0
        reader = DatasetReader(path)
        assert reader.header.n_events == 5
        processes = reader.header.provenance["processes"]
        assert len(processes) == 1


class TestForwardGeometryPath:
    def test_process_with_fwd_geometry(self, tmp_path):
        gen_path = tmp_path / "d0.jsonl"
        aod_path = tmp_path / "d0.aod.jsonl"
        assert main(["generate", "--process", "d0_to_kpi", "--events",
                     "10", "--seed", "4", "--output",
                     str(gen_path)]) == 0
        assert main(["process", "--input", str(gen_path), "--output",
                     str(aod_path), "--run", "7", "--geometry",
                     "FWD"]) == 0
        reader = DatasetReader(aod_path)
        assert reader.header.tier == DataTier.AOD
        assert reader.header.provenance["reconstruction"][
            "geometry"] == "FWD"

    def test_display_with_fwd_geometry(self, tmp_path, capsys):
        gen_path = tmp_path / "g.jsonl"
        aod_path = tmp_path / "a.jsonl"
        level2_path = tmp_path / "l.jsonl"
        main(["generate", "--process", "z_to_mumu", "--events", "8",
              "--seed", "5", "--output", str(gen_path)])
        main(["process", "--input", str(gen_path), "--output",
              str(aod_path)])
        main(["convert-level2", "--input", str(aod_path), "--output",
              str(level2_path)])
        svg_path = tmp_path / "e.svg"
        assert main(["display", "--input", str(level2_path),
                     "--event", "0", "--svg", str(svg_path),
                     "--geometry", "FWD"]) == 0
        assert "velo_tracker" not in svg_path.read_text()  # names not drawn
        assert svg_path.read_text().startswith("<svg")


class TestProvenanceThroughCli:
    def test_skim_provenance_points_at_input(self, tmp_path):
        import json

        gen_path = tmp_path / "g.jsonl"
        aod_path = tmp_path / "a.jsonl"
        out_path = tmp_path / "s.jsonl"
        main(["generate", "--process", "z_to_mumu", "--events", "10",
              "--seed", "6", "--output", str(gen_path)])
        main(["process", "--input", str(gen_path), "--output",
              str(aod_path)])
        spec_path = tmp_path / "spec.json"
        spec_path.write_text(json.dumps({
            "name": "any", "cut": {"kind": "count",
                                   "collection": "muons",
                                   "min_count": 0},
        }))
        main(["skim", "--input", str(aod_path), "--spec",
              str(spec_path), "--output", str(out_path)])
        reader = DatasetReader(out_path)
        assert reader.header.provenance["input"] == str(aod_path)
        assert reader.header.n_events == 10  # min_count=0 keeps all
