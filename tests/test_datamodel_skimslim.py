"""Tests for the declarative skim/slim language."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datamodel import (
    AndCut,
    CountCut,
    HtCut,
    MassWindowCut,
    MetCut,
    NotCut,
    OrCut,
    SkimSpec,
    SlimSpec,
    TriggerCut,
    available_derived_columns,
    cut_from_dict,
)
from repro.errors import DataModelError


class TestCuts:
    def test_count_cut(self, z_aods):
        cut = CountCut("muons", 2, min_pt=10.0)
        passing = [aod for aod in z_aods if cut.passes(aod)]
        assert 0 < len(passing) < len(z_aods)

    def test_count_cut_eta_window(self, z_aods):
        loose = CountCut("muons", 1, min_pt=5.0)
        tight = CountCut("muons", 1, min_pt=5.0, max_abs_eta=0.5)
        n_loose = sum(loose.passes(a) for a in z_aods)
        n_tight = sum(tight.passes(a) for a in z_aods)
        assert n_tight < n_loose

    def test_met_cut(self, mixed_aods):
        cut = MetCut(30.0)
        for aod in mixed_aods:
            assert cut.passes(aod) == (aod.met.met >= 30.0)

    def test_ht_cut(self, mixed_aods):
        cut = HtCut(50.0)
        for aod in mixed_aods:
            assert cut.passes(aod) == (aod.ht() >= 50.0)

    def test_mass_window_opposite_charge(self, z_aods):
        window = MassWindowCut("muons", 60.0, 120.0,
                               opposite_charge=True)
        n_pass = sum(window.passes(a) for a in z_aods)
        assert n_pass > len(z_aods) * 0.2

    def test_mass_window_needs_two_objects(self):
        from repro.datamodel import AODEvent

        empty = AODEvent(1, 1)
        assert not MassWindowCut("muons", 0.0, 1e9).passes(empty)

    def test_trigger_cut(self, z_aods):
        cut = TriggerCut(("HLT_DiMu10",))
        for aod in z_aods:
            assert cut.passes(aod) == ("HLT_DiMu10" in aod.trigger_bits)

    def test_boolean_combinators(self, z_aods):
        a = CountCut("muons", 2, min_pt=10.0)
        b = MetCut(15.0)
        for aod in z_aods:
            assert AndCut((a, b)).passes(aod) == (
                a.passes(aod) and b.passes(aod)
            )
            assert OrCut((a, b)).passes(aod) == (
                a.passes(aod) or b.passes(aod)
            )
            assert NotCut(a).passes(aod) == (not a.passes(aod))

    def test_unknown_collection_raises(self, z_aods):
        cut = CountCut("taus", 1)
        with pytest.raises(DataModelError):
            cut.passes(z_aods[0])

    def test_describe_readable(self):
        cut = AndCut((CountCut("muons", 2, min_pt=20.0), MetCut(40.0)))
        text = cut.describe()
        assert "muons" in text
        assert "MET" in text


class TestSerialisation:
    def test_roundtrip_complex_tree(self, z_aods):
        cut = OrCut((
            AndCut((CountCut("muons", 2, min_pt=10.0),
                    MassWindowCut("muons", 60.0, 120.0,
                                  opposite_charge=True))),
            NotCut(MetCut(5.0)),
            TriggerCut(("HLT_SingleMu20",)),
        ))
        restored = cut_from_dict(cut.to_dict())
        assert restored.to_dict() == cut.to_dict()
        for aod in z_aods[:20]:
            assert restored.passes(aod) == cut.passes(aod)

    def test_unknown_kind_rejected(self):
        with pytest.raises(DataModelError):
            cut_from_dict({"kind": "quantum"})

    @given(min_count=st.integers(min_value=0, max_value=5),
           min_pt=st.floats(min_value=0.0, max_value=100.0),
           min_met=st.floats(min_value=0.0, max_value=200.0))
    @settings(max_examples=50)
    def test_roundtrip_property(self, min_count, min_pt, min_met):
        cut = AndCut((CountCut("jets", min_count, min_pt=min_pt),
                      MetCut(min_met)))
        assert cut_from_dict(cut.to_dict()) == cut


class TestSkimSpec:
    def test_apply_preserves_order(self, z_aods):
        spec = SkimSpec("dimuon", CountCut("muons", 2, min_pt=10.0))
        selected = spec.apply(z_aods)
        events = [aod.event_number for aod in selected]
        assert events == sorted(events)

    def test_efficiency(self, z_aods):
        spec = SkimSpec("everything", CountCut("muons", 0))
        assert spec.efficiency(z_aods) == 1.0
        assert spec.efficiency([]) == 0.0

    def test_roundtrip(self):
        spec = SkimSpec("x", MetCut(10.0))
        assert SkimSpec.from_dict(spec.to_dict()).to_dict() == \
            spec.to_dict()


class TestSlimSpec:
    def test_columns_computed(self, z_aods):
        spec = SlimSpec("z", ("dimuon_mass", "n_muons", "met"))
        rows = spec.apply(z_aods)
        assert len(rows) == len(z_aods)
        for row, aod in zip(rows, z_aods):
            assert row.columns["n_muons"] == len(aod.muons)
            assert row.columns["met"] == aod.met.met

    def test_unknown_column_rejected(self):
        with pytest.raises(DataModelError):
            SlimSpec("bad", ("nonexistent_column",))

    def test_vocabulary_listed(self):
        columns = available_derived_columns()
        assert "dimuon_mass" in columns
        assert "ht" in columns

    def test_roundtrip(self):
        spec = SlimSpec("x", ("met", "ht"))
        assert SlimSpec.from_dict(spec.to_dict()) == spec
