"""Every BENCH_*.json baseline shares one pinned envelope schema."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    BENCH_FORMAT,
    BENCH_SCHEMA_VERSION,
    ENVIRONMENT_FIELDS,
    bench_envelope,
    validate_bench_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINES = sorted(REPO_ROOT.glob("BENCH_*.json"))


class TestBaselineFiles:
    def test_all_expected_baselines_present(self):
        names = [path.name for path in BASELINES]
        for expected in ("BENCH_parallel.json", "BENCH_lint.json",
                         "BENCH_obs.json", "BENCH_columnar.json",
                         "BENCH_service.json"):
            assert expected in names

    @pytest.mark.parametrize("path", BASELINES,
                             ids=[p.name for p in BASELINES])
    def test_baseline_validates_against_envelope(self, path):
        record = json.loads(path.read_text(encoding="utf-8"))
        validate_bench_report(record)

    @pytest.mark.parametrize("path", BASELINES,
                             ids=[p.name for p in BASELINES])
    def test_baseline_has_named_workloads(self, path):
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["workloads"], f"{path.name} records no workloads"

    def test_lint_baseline_records_the_par_pass(self):
        # The par pass rides in the shared lint baseline: its
        # throughput is recorded alongside the deep pass, and its
        # determinism was re-asserted while timing.
        path = REPO_ROOT / "BENCH_lint.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        par = record["workloads"]["par_lint_pass"]
        assert par["byte_identical"] is True
        assert par["files_per_second"] > 0
        assert par["n_findings"] == 0

    def test_lint_baseline_records_the_det_pass(self):
        # Likewise the determinism pass: zero findings over the
        # library's own replay roots, timed deterministically.
        path = REPO_ROOT / "BENCH_lint.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        det = record["workloads"]["det_lint_pass"]
        assert det["byte_identical"] is True
        assert det["files_per_second"] > 0
        assert det["n_findings"] == 0

    def test_service_baseline_claims_its_properties(self):
        # The service baseline must carry the three claims the
        # subsystem makes: it moves requests, it shares work, and its
        # scheduling replays byte-identically.
        path = REPO_ROOT / "BENCH_service.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        throughput = record["workloads"]["throughput"]
        assert throughput["requests_per_second"] > 0
        assert throughput["n_committed"] == throughput["n_requests"]
        dedup = record["workloads"]["dedup"]
        assert 0.0 <= dedup["hit_rate"] <= 1.0
        assert dedup["n_backend_executions"] < dedup["n_submissions"]
        assert record["workloads"]["replay"]["byte_identical"] is True

    def test_obs_baseline_judges_overhead_honestly(self):
        # Every overhead record must say whether the host was quiet
        # enough for its measured number to mean anything, and carry
        # the min-of-N convention it was timed under.
        path = REPO_ROOT / "BENCH_obs.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        workloads = record["workloads"]
        for name in ("primitives", "campaign", "reconstruction",
                     "service", "profile_build", "health_evaluate",
                     "prom_render"):
            assert name in workloads, name
        for name in ("campaign", "reconstruction", "service"):
            overhead = workloads[name]
            assert overhead["timing"] == "min-of-N interleaved laps"
            assert isinstance(overhead["overhead_meaningful"], bool)
            assert overhead["jitter_pct"] >= 0.0
            assert overhead["spread_pct"] >= overhead["jitter_pct"]
            assert overhead["bit_identical"] is True, name
            assert overhead["within_budget"] is True, name

    def test_obs_service_overhead_claim_is_meaningful(self):
        # The acceptance claim: telemetry-enabled service overhead is
        # within the budget, and the host was quiet enough at record
        # time for that claim to carry information.
        path = REPO_ROOT / "BENCH_obs.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        service = record["workloads"]["service"]
        assert service["overhead_meaningful"] is True
        assert service["implied_enabled_overhead_pct"] \
            <= record["overhead_budget_pct"]
        assert service["n_telemetry_observations"] > 0

    def test_obs_report_machinery_workloads_recorded(self):
        path = REPO_ROOT / "BENCH_obs.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        profile = record["workloads"]["profile_build"]
        assert profile["telescoping_ok"] is True
        assert profile["items_per_second"] > 0
        health = record["workloads"]["health_evaluate"]
        assert health["verdict"] == "ok"
        assert health["n_objectives"] >= 1
        prom = record["workloads"]["prom_render"]
        assert prom["n_exposition_lines"] > 0

    def test_columnar_baseline_claims_equivalence(self):
        # The columnar engine's contract: every recorded speedup comes
        # with its equivalence check passing at record time.
        path = REPO_ROOT / "BENCH_columnar.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        for name, workload in record["workloads"].items():
            assert workload["bit_identical"] is True, name
            assert workload["speedup"] > 1.0, name


class TestEnvelopePinning:
    """The schema identity is load-bearing: bumping it must be a
    deliberate, versioned decision, not a drive-by edit."""

    def test_format_and_version_are_pinned(self):
        assert BENCH_FORMAT == "repro-bench-report"
        assert BENCH_SCHEMA_VERSION == 1

    def test_environment_fields_are_pinned(self):
        assert ENVIRONMENT_FIELDS == (
            "python", "implementation", "machine", "system", "host",
            "cpu_count", "started_at",
        )

    def test_fresh_envelope_matches_the_pin(self):
        record = bench_envelope("pin-check")
        assert record["schema"] == {"format": BENCH_FORMAT,
                                    "version": BENCH_SCHEMA_VERSION}
        assert set(record["environment"]) == set(ENVIRONMENT_FIELDS)
        validate_bench_report(record)
