"""Every BENCH_*.json baseline shares one pinned envelope schema."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.obs import (
    BENCH_FORMAT,
    BENCH_SCHEMA_VERSION,
    ENVIRONMENT_FIELDS,
    bench_envelope,
    validate_bench_report,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINES = sorted(REPO_ROOT.glob("BENCH_*.json"))


class TestBaselineFiles:
    def test_all_expected_baselines_present(self):
        names = [path.name for path in BASELINES]
        for expected in ("BENCH_parallel.json", "BENCH_lint.json",
                         "BENCH_obs.json", "BENCH_columnar.json",
                         "BENCH_service.json"):
            assert expected in names

    @pytest.mark.parametrize("path", BASELINES,
                             ids=[p.name for p in BASELINES])
    def test_baseline_validates_against_envelope(self, path):
        record = json.loads(path.read_text(encoding="utf-8"))
        validate_bench_report(record)

    @pytest.mark.parametrize("path", BASELINES,
                             ids=[p.name for p in BASELINES])
    def test_baseline_has_named_workloads(self, path):
        record = json.loads(path.read_text(encoding="utf-8"))
        assert record["workloads"], f"{path.name} records no workloads"

    def test_lint_baseline_records_the_par_pass(self):
        # The par pass rides in the shared lint baseline: its
        # throughput is recorded alongside the deep pass, and its
        # determinism was re-asserted while timing.
        path = REPO_ROOT / "BENCH_lint.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        par = record["workloads"]["par_lint_pass"]
        assert par["byte_identical"] is True
        assert par["files_per_second"] > 0
        assert par["n_findings"] == 0

    def test_lint_baseline_records_the_det_pass(self):
        # Likewise the determinism pass: zero findings over the
        # library's own replay roots, timed deterministically.
        path = REPO_ROOT / "BENCH_lint.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        det = record["workloads"]["det_lint_pass"]
        assert det["byte_identical"] is True
        assert det["files_per_second"] > 0
        assert det["n_findings"] == 0

    def test_service_baseline_claims_its_properties(self):
        # The service baseline must carry the three claims the
        # subsystem makes: it moves requests, it shares work, and its
        # scheduling replays byte-identically.
        path = REPO_ROOT / "BENCH_service.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        throughput = record["workloads"]["throughput"]
        assert throughput["requests_per_second"] > 0
        assert throughput["n_committed"] == throughput["n_requests"]
        dedup = record["workloads"]["dedup"]
        assert 0.0 <= dedup["hit_rate"] <= 1.0
        assert dedup["n_backend_executions"] < dedup["n_submissions"]
        assert record["workloads"]["replay"]["byte_identical"] is True

    def test_columnar_baseline_claims_equivalence(self):
        # The columnar engine's contract: every recorded speedup comes
        # with its equivalence check passing at record time.
        path = REPO_ROOT / "BENCH_columnar.json"
        record = json.loads(path.read_text(encoding="utf-8"))
        for name, workload in record["workloads"].items():
            assert workload["bit_identical"] is True, name
            assert workload["speedup"] > 1.0, name


class TestEnvelopePinning:
    """The schema identity is load-bearing: bumping it must be a
    deliberate, versioned decision, not a drive-by edit."""

    def test_format_and_version_are_pinned(self):
        assert BENCH_FORMAT == "repro-bench-report"
        assert BENCH_SCHEMA_VERSION == 1

    def test_environment_fields_are_pinned(self):
        assert ENVIRONMENT_FIELDS == (
            "python", "implementation", "machine", "system", "host",
            "cpu_count", "started_at",
        )

    def test_fresh_envelope_matches_the_pin(self):
        record = bench_envelope("pin-check")
        assert record["schema"] == {"format": BENCH_FORMAT,
                                    "version": BENCH_SCHEMA_VERSION}
        assert set(record["environment"]) == set(ENVIRONMENT_FIELDS)
        validate_bench_report(record)
