"""Package-level integrity checks."""

import importlib
import pkgutil

import repro


def _all_module_names():
    names = []
    for info in pkgutil.walk_packages(repro.__path__,
                                      prefix="repro."):
        names.append(info.name)
    return names


class TestImports:
    def test_every_module_importable(self):
        names = _all_module_names()
        assert len(names) > 70
        for name in names:
            importlib.import_module(name)

    def test_every_module_has_docstring(self):
        for name in _all_module_names():
            module = importlib.import_module(name)
            assert module.__doc__, f"{name} has no module docstring"

    def test_public_api_exports_resolve(self):
        packages = [
            "repro.kinematics", "repro.generation", "repro.detector",
            "repro.conditions", "repro.reconstruction",
            "repro.datamodel", "repro.workflow", "repro.provenance",
            "repro.stats", "repro.rivet", "repro.recast",
            "repro.hepdata", "repro.core", "repro.outreach",
            "repro.interview", "repro.experiments", "repro.trigger",
        ]
        for package_name in packages:
            package = importlib.import_module(package_name)
            assert hasattr(package, "__all__"), package_name
            for symbol in package.__all__:
                assert hasattr(package, symbol), (
                    f"{package_name}.__all__ lists missing {symbol!r}"
                )

    def test_public_callables_documented(self):
        undocumented = []
        for package_name in ("repro.core", "repro.rivet",
                             "repro.recast", "repro.outreach"):
            package = importlib.import_module(package_name)
            for symbol in package.__all__:
                obj = getattr(package, symbol)
                if callable(obj) and not (obj.__doc__ or "").strip():
                    undocumented.append(f"{package_name}.{symbol}")
        assert undocumented == []

    def test_version_exposed(self):
        assert repro.__version__ == "1.0.0"
