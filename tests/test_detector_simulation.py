"""Tests for the fast detector simulation."""

import pytest

from repro.detector import DetectorSimulation, generic_lhc_detector
from repro.detector.simulation import SimulationConfig
from repro.generation import (
    DrellYanZ,
    GeneratorConfig,
    ToyGenerator,
    WProduction,
)


@pytest.fixture(scope="module")
def simulation():
    return DetectorSimulation(generic_lhc_detector(), seed=55)


def _z_events(n, seed=60):
    return ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=seed)).generate(n)


class TestTraversals:
    def test_muons_make_traversals(self, simulation):
        events = _z_events(40)
        found = 0
        for event in events:
            sim_event = simulation.simulate(event)
            muon_traversals = [t for t in sim_event.traversals
                               if abs(t.pdg_id) == 13]
            found += len(muon_traversals)
        # Two muons per event, high efficiency, |eta|<2.5 acceptance.
        assert found > 40

    def test_neutrinos_leave_nothing(self, simulation):
        events = ToyGenerator(GeneratorConfig(
            processes=[WProduction()], seed=61,
            underlying_event=False)).generate(30)
        for event in events:
            sim_event = simulation.simulate(event)
            assert not [t for t in sim_event.traversals
                        if abs(t.pdg_id) in (12, 14, 16)]
            assert not [d for d in sim_event.deposits
                        if abs(event.particles[d.truth_index].pdg_id)
                        in (12, 14, 16)]

    def test_acceptance_cut(self, simulation):
        events = _z_events(40, seed=62)
        tracker_eta = generic_lhc_detector().tracker.eta_max
        for event in events:
            sim_event = simulation.simulate(event)
            for traversal in sim_event.traversals:
                assert abs(traversal.momentum.eta) <= tracker_eta

    def test_eta_min_forward_mode(self):
        simulation = DetectorSimulation(
            generic_lhc_detector(),
            config=SimulationConfig(eta_min=2.0), seed=63,
        )
        events = _z_events(40, seed=64)
        for event in events:
            sim_event = simulation.simulate(event)
            for traversal in sim_event.traversals:
                assert abs(traversal.momentum.eta) >= 2.0

    def test_muon_system_flag(self, simulation):
        events = _z_events(30, seed=65)
        reaching = 0
        for event in events:
            sim_event = simulation.simulate(event)
            for traversal in sim_event.traversals:
                if traversal.reaches_muon_system:
                    assert abs(traversal.pdg_id) == 13
                    assert traversal.momentum.pt > 3.0
                    reaching += 1
        assert reaching > 20


class TestDeposits:
    def test_muons_deposit_little(self, simulation):
        events = _z_events(30, seed=66)
        for event in events:
            sim_event = simulation.simulate(event)
            for deposit in sim_event.deposits:
                truth = event.particles[deposit.truth_index]
                if abs(truth.pdg_id) == 13:
                    assert deposit.measured_energy < 15.0

    def test_hadrons_deposit_in_both_calorimeters(self, simulation):
        events = _z_events(30, seed=67)
        subdetectors = set()
        for event in events:
            sim_event = simulation.simulate(event)
            for deposit in sim_event.deposits:
                truth = event.particles[deposit.truth_index]
                if abs(truth.pdg_id) == 211:
                    subdetectors.add(deposit.subdetector)
        assert subdetectors == {"ecal", "hcal"}

    def test_energy_roughly_conserved(self, simulation):
        events = _z_events(30, seed=68)
        for event in events:
            sim_event = simulation.simulate(event)
            for deposit in sim_event.deposits:
                truth = event.particles[deposit.truth_index]
                assert deposit.measured_energy < 2.5 * truth.momentum.e + 5.0


class TestBookkeeping:
    def test_primary_vertex_smeared(self, simulation):
        events = _z_events(20, seed=69)
        zs = [simulation.simulate(event).primary_vertex[2]
              for event in events]
        assert len(set(zs)) == len(zs)

    def test_truth_retained(self, simulation):
        event = _z_events(1, seed=70)[0]
        sim_event = simulation.simulate(event)
        assert sim_event.truth is event

    def test_traversal_lookup(self, simulation):
        event = _z_events(1, seed=71)[0]
        sim_event = simulation.simulate(event)
        if sim_event.traversals:
            first = sim_event.traversals[0]
            assert sim_event.traversal_for(first.truth_index) is first
        assert sim_event.traversal_for(99999) is None

    def test_describe_block(self, simulation):
        record = simulation.describe()
        assert record["simulator"] == "repro-fastsim"
        assert record["geometry"] == "GPD"
