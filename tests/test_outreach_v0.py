"""Tests for K-short production, displaced tracking, and the V0 exercise."""

import math
import statistics

import pytest

from repro.conditions import default_conditions
from repro.datamodel import make_aod
from repro.detector import DetectorSimulation, Digitizer, generic_lhc_detector
from repro.generation import (
    GenEvent,
    GeneratorConfig,
    KshortProduction,
    ToyGenerator,
)
from repro.kinematics import default_particle_table, invariant_mass
from repro.outreach import (
    Level2Converter,
    V0Exercise,
    build_v0_candidates,
)
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.reconstruction.tracking import TrackFinderConfig


@pytest.fixture(scope="module")
def v0_level2():
    geometry = generic_lhc_detector()
    generator = ToyGenerator(GeneratorConfig(
        processes=[KshortProduction()], seed=8800))
    simulation = DetectorSimulation(geometry, seed=8801)
    digitizer = Digitizer(geometry, run_number=42, seed=8802)
    reconstructor = Reconstructor(
        geometry, GlobalTagView(default_conditions(), "GT-FINAL"),
        track_config=TrackFinderConfig(d0_allowance_mm=40.0),
    )
    converter = Level2Converter()
    level2 = []
    for event in generator.generate(350):
        reco = reconstructor.reconstruct(
            digitizer.digitize(simulation.simulate(event)))
        level2.append(converter.convert(
            make_aod(reco), candidates=build_v0_candidates(reco)))
    return level2


class TestKshortProduction:
    def test_truth_structure(self):
        import numpy as np

        from repro.generation.processes import Tune

        rng = np.random.default_rng(1)
        table = default_particle_table()
        process = KshortProduction()
        event = GenEvent(0, 310, "ks", 8000.0)
        process.fill(event, rng, table, Tune.tune_a())
        event.validate()
        kshort = event.particles_with_pdg(310)[0]
        assert kshort.decay_vertex is not None
        pions = [p for p in event.final_state()
                 if abs(p.pdg_id) == 211]
        assert len(pions) == 2
        assert pions[0].pdg_id == -pions[1].pdg_id
        mass = invariant_mass([p.momentum for p in pions])
        assert mass == pytest.approx(0.4976, abs=0.002)

    def test_centimetre_flight_lengths(self):
        import numpy as np

        from repro.generation.processes import Tune

        rng = np.random.default_rng(2)
        table = default_particle_table()
        process = KshortProduction()
        flights = []
        for index in range(200):
            event = GenEvent(index, 310, "ks", 8000.0)
            process.fill(event, rng, table, Tune.tune_a())
            vertex = event.particles_with_pdg(310)[0].decay_vertex
            flights.append(math.hypot(vertex[0], vertex[1]))
        # ctau = 26.8 mm boosted by beta*gamma of a few.
        assert 20.0 < statistics.median(flights) < 300.0


class TestDisplacedTracking:
    def test_d0_allowance_recovers_displaced_tracks(self):
        geometry = generic_lhc_detector()
        generator = ToyGenerator(GeneratorConfig(
            processes=[KshortProduction()], seed=8900,
            underlying_event=False))
        simulation = DetectorSimulation(geometry, seed=8901)
        digitizer = Digitizer(geometry, run_number=42, seed=8902)
        from repro.reconstruction import TrackFinder

        prompt = TrackFinder(geometry, TrackFinderConfig())
        displaced = TrackFinder(geometry,
                                TrackFinderConfig(d0_allowance_mm=40.0))
        n_prompt = 0
        n_displaced = 0
        for event in generator.generate(60):
            raw = digitizer.digitize(simulation.simulate(event))
            n_prompt += len(prompt.find(raw.tracker_hits))
            n_displaced += len(displaced.find(raw.tracker_hits))
        assert n_displaced >= n_prompt


class TestV0Candidates:
    def test_candidates_peak_at_kshort_mass(self, v0_level2):
        masses = [candidate["mass"]
                  for event in v0_level2
                  for candidate in event.candidates]
        assert len(masses) > 30
        assert statistics.median(masses) == pytest.approx(0.4976,
                                                          abs=0.003)

    def test_candidates_are_displaced(self, v0_level2):
        flights = [candidate["flight_mm"]
                   for event in v0_level2
                   for candidate in event.candidates]
        assert min(flights) >= 2.0
        assert statistics.median(flights) > 5.0

    def test_exercise_measures_mass(self, v0_level2):
        report = V0Exercise().run(v0_level2)
        assert report["measured"] == pytest.approx(0.4976, abs=0.002)
        assert report["n_candidates"] > 30

    def test_exercise_needs_v0s(self, z_aods):
        converter = Level2Converter()
        from repro.errors import OutreachError

        with pytest.raises(OutreachError):
            V0Exercise().run(converter.convert_many(z_aods))


class TestTable1Coverage:
    def test_alice_v0_use_now_covered(self):
        from repro.experiments import (
            get_experiment,
            verify_outreach_capabilities,
        )

        result = verify_outreach_capabilities(get_experiment("ALICE"))
        coverage = result["masterclass_coverage"]
        assert coverage["V0 analyses"] == "V0Exercise"

    def test_all_lhc_masterclass_uses_covered(self):
        from repro.experiments import (
            lhc_experiments,
            verify_outreach_capabilities,
        )

        for profile in lhc_experiments():
            result = verify_outreach_capabilities(profile)
            named_uses = [
                use for use in result["masterclass_coverage"]
                if any(keyword in use for keyword in
                       ("W", "Z", "Higgs", "D lifetime", "V0"))
            ]
            for use in named_uses:
                assert result["masterclass_coverage"][use] is not None
