"""Unit and property tests for four-vector kinematics."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import KinematicsError
from repro.kinematics import (
    FourVector,
    delta_phi,
    invariant_mass,
    transverse_mass,
    wrap_phi,
)

finite_pt = st.floats(min_value=0.01, max_value=1000.0)
finite_eta = st.floats(min_value=-4.0, max_value=4.0)
finite_phi = st.floats(min_value=-math.pi, max_value=math.pi)
finite_mass = st.floats(min_value=0.0, max_value=500.0)


class TestConstruction:
    def test_from_ptetaphim_reproduces_inputs(self):
        vector = FourVector.from_ptetaphim(50.0, 1.2, 0.7, 91.2)
        assert vector.pt == pytest.approx(50.0)
        assert vector.eta == pytest.approx(1.2)
        assert vector.phi == pytest.approx(0.7)
        assert vector.mass == pytest.approx(91.2)

    def test_negative_pt_rejected(self):
        with pytest.raises(KinematicsError):
            FourVector.from_ptetaphim(-1.0, 0.0, 0.0, 0.0)

    def test_from_p3m_is_on_shell(self):
        vector = FourVector.from_p3m(3.0, 4.0, 12.0, 2.0)
        assert vector.mass == pytest.approx(2.0)
        assert vector.p == pytest.approx(13.0)

    def test_zero_vector(self):
        zero = FourVector.zero()
        assert zero.e == 0.0
        assert zero.p == 0.0

    @given(pt=finite_pt, eta=finite_eta, phi=finite_phi, mass=finite_mass)
    @settings(max_examples=150)
    def test_roundtrip_property(self, pt, eta, phi, mass):
        vector = FourVector.from_ptetaphim(pt, eta, phi, mass)
        assert vector.pt == pytest.approx(pt, rel=1e-9, abs=1e-9)
        assert vector.eta == pytest.approx(eta, rel=1e-6, abs=1e-6)
        # The m^2 = E^2 - p^2 subtraction loses ~sqrt(ulp) * E of
        # absolute precision for light, energetic vectors.
        mass_tolerance = 1e-5 + 1e-7 * vector.e
        assert vector.mass == pytest.approx(mass, rel=1e-5,
                                            abs=mass_tolerance)


class TestDerivedQuantities:
    def test_massless_vector_eta_equals_rapidity(self):
        vector = FourVector.from_ptetaphim(30.0, 1.5, 0.0, 0.0)
        assert vector.rapidity == pytest.approx(vector.eta, rel=1e-9)

    def test_rapidity_less_than_eta_for_massive(self):
        vector = FourVector.from_ptetaphim(30.0, 1.5, 0.0, 10.0)
        assert abs(vector.rapidity) < abs(vector.eta)

    def test_eta_infinite_for_longitudinal(self):
        vector = FourVector(10.0, 0.0, 0.0, 10.0)
        assert math.isinf(vector.eta)

    def test_gamma_of_rest_vector(self):
        vector = FourVector(5.0, 0.0, 0.0, 0.0)
        assert vector.gamma == pytest.approx(1.0)

    def test_gamma_undefined_for_massless(self):
        vector = FourVector.from_ptetaphim(10.0, 0.0, 0.0, 0.0)
        with pytest.raises(KinematicsError):
            _ = vector.gamma

    def test_negative_mass2_clamps_to_zero(self):
        vector = FourVector(1.0, 2.0, 0.0, 0.0)
        assert vector.mass == 0.0

    def test_et_between_zero_and_e(self):
        vector = FourVector.from_ptetaphim(20.0, 2.0, 0.3, 5.0)
        assert 0.0 < vector.et < vector.e


class TestArithmetic:
    def test_addition_conserves_components(self):
        a = FourVector(10.0, 1.0, 2.0, 3.0)
        b = FourVector(20.0, -1.0, 0.5, 1.0)
        total = a + b
        assert total.e == pytest.approx(30.0)
        assert total.px == pytest.approx(0.0)

    def test_subtraction_inverts_addition(self):
        a = FourVector(10.0, 1.0, 2.0, 3.0)
        b = FourVector(20.0, -1.0, 0.5, 1.0)
        assert ((a + b) - b).is_close(a)

    def test_scalar_multiplication(self):
        a = FourVector(10.0, 1.0, 2.0, 3.0)
        assert (2.0 * a).e == pytest.approx(20.0)
        assert (a * 0.5).pz == pytest.approx(1.5)

    def test_dot_product_is_mass_squared(self):
        vector = FourVector.from_ptetaphim(40.0, 0.5, 1.0, 91.2)
        assert vector.dot(vector) == pytest.approx(91.2**2, rel=1e-9)

    @given(pt=finite_pt, eta=finite_eta, phi=finite_phi, mass=finite_mass)
    @settings(max_examples=100)
    def test_mass2_equals_self_dot(self, pt, eta, phi, mass):
        vector = FourVector.from_ptetaphim(pt, eta, phi, mass)
        assert vector.dot(vector) == pytest.approx(vector.mass2,
                                                   rel=1e-6, abs=1e-6)


class TestBoosts:
    def test_boost_to_own_rest_frame_is_at_rest(self):
        vector = FourVector.from_ptetaphim(50.0, 0.8, -1.2, 91.2)
        rest = vector.boosted_to_rest_frame_of(vector)
        assert rest.p == pytest.approx(0.0, abs=1e-6)
        assert rest.e == pytest.approx(91.2, rel=1e-9)

    def test_boost_preserves_mass(self):
        vector = FourVector.from_ptetaphim(25.0, -0.5, 2.0, 10.0)
        boosted = vector.boosted(0.3, -0.2, 0.5)
        assert boosted.mass == pytest.approx(10.0, rel=1e-9)

    def test_superluminal_boost_rejected(self):
        vector = FourVector.from_ptetaphim(10.0, 0.0, 0.0, 1.0)
        with pytest.raises(KinematicsError):
            vector.boosted(0.9, 0.5, 0.3)

    @given(pt=finite_pt, eta=st.floats(min_value=-2.0, max_value=2.0),
           mass=st.floats(min_value=0.1, max_value=200.0),
           bz=st.floats(min_value=-0.9, max_value=0.9))
    @settings(max_examples=100)
    def test_longitudinal_boost_invariant_mass(self, pt, eta, mass, bz):
        vector = FourVector.from_ptetaphim(pt, eta, 0.4, mass)
        boosted = vector.boosted(0.0, 0.0, bz)
        # Compare mass^2, whose absolute error is bounded by the
        # cancellation in e^2 - p^2: for ultra-relativistic vectors
        # (pt >> m) the relative error on the mass itself blows up.
        assert boosted.mass2 == pytest.approx(
            mass * mass, rel=1e-6, abs=1e-13 * boosted.e ** 2)

    def test_longitudinal_boost_preserves_pt(self):
        vector = FourVector.from_ptetaphim(33.0, 0.7, 1.1, 5.0)
        boosted = vector.boosted(0.0, 0.0, 0.6)
        assert boosted.pt == pytest.approx(33.0, rel=1e-9)


class TestAngles:
    def test_wrap_phi_range(self):
        for raw in (-10.0, -math.pi, 0.0, math.pi, 10.0, 100.0):
            wrapped = wrap_phi(raw)
            assert -math.pi < wrapped <= math.pi + 1e-12

    def test_delta_phi_wraps_across_boundary(self):
        assert delta_phi(3.1, -3.1) == pytest.approx(
            3.1 - (-3.1) - 2 * math.pi
        )

    def test_delta_r_back_to_back(self):
        a = FourVector.from_ptetaphim(10.0, 0.0, 0.0, 0.0)
        b = FourVector.from_ptetaphim(10.0, 0.0, math.pi, 0.0)
        assert a.delta_r(b) == pytest.approx(math.pi)

    def test_opening_angle_parallel(self):
        a = FourVector.from_ptetaphim(10.0, 1.0, 0.5, 0.0)
        assert a.angle(a) == pytest.approx(0.0, abs=1e-7)

    def test_opening_angle_undefined_for_null(self):
        a = FourVector.from_ptetaphim(10.0, 1.0, 0.5, 0.0)
        with pytest.raises(KinematicsError):
            a.angle(FourVector.zero())


class TestObservables:
    def test_invariant_mass_of_resonance_decay(self):
        z = FourVector.from_ptetaphim(40.0, 0.3, 0.9, 91.2)
        assert invariant_mass([z]) == pytest.approx(91.2, rel=1e-9)

    def test_transverse_mass_jacobian_edge(self):
        # Back-to-back lepton and MET at equal pt gives mT = 2 pt.
        lepton = FourVector.from_ptetaphim(40.0, 0.0, 0.0, 0.0)
        met = FourVector.from_ptetaphim(40.0, 0.0, math.pi, 0.0)
        assert transverse_mass(lepton, met) == pytest.approx(80.0)

    def test_transverse_mass_aligned_is_zero(self):
        lepton = FourVector.from_ptetaphim(40.0, 0.0, 1.0, 0.0)
        met = FourVector.from_ptetaphim(40.0, 0.0, 1.0, 0.0)
        assert transverse_mass(lepton, met) == pytest.approx(0.0, abs=1e-9)


class TestSerialisation:
    def test_roundtrip(self):
        vector = FourVector(10.0, 1.0, -2.0, 3.0)
        assert FourVector.from_list(vector.to_list()).is_close(vector)

    def test_bad_length_rejected(self):
        with pytest.raises(KinematicsError):
            FourVector.from_list([1.0, 2.0, 3.0])
