"""Tests for end-to-end background estimation."""

import pytest

from repro.datamodel import AndCut, CountCut, MassWindowCut, SkimSpec
from repro.errors import BackendError
from repro.generation import DrellYanZ, WProduction
from repro.recast.background import (
    BackgroundEstimate,
    combine_estimates,
    estimate_background,
)


@pytest.fixture(scope="module")
def z_window_selection():
    return SkimSpec("z_window", AndCut((
        CountCut("muons", 2, min_pt=15.0),
        MassWindowCut("muons", 80.0, 100.0, opposite_charge=True),
    )))


class TestEstimates:
    def test_dominant_background_identified(self, gpd_geometry,
                                            conditions_store,
                                            z_window_selection):
        estimates = estimate_background(
            processes=[DrellYanZ(cross_section_pb=1100.0),
                       WProduction(cross_section_pb=11000.0)],
            selection=z_window_selection,
            luminosity_ipb=100.0,
            geometry=gpd_geometry,
            conditions=conditions_store,
            n_events_per_process=120,
            seed=7100,
        )
        by_name = {estimate.process_name: estimate
                   for estimate in estimates}
        z_estimate = by_name["z_to_mumu"]
        w_estimate = by_name["wplus_to_munu"]
        # Drell-Yan dominates a Z-window dimuon selection; W with one
        # real muon barely enters.
        assert z_estimate.efficiency > 0.3
        assert w_estimate.efficiency < 0.05
        assert z_estimate.expected_events > 10.0

    def test_combination(self):
        estimates = [
            BackgroundEstimate("a", 10.0, 100, 50, 2.0),
            BackgroundEstimate("b", 1.0, 100, 0, 2.0),
        ]
        total, uncertainty = combine_estimates(estimates)
        assert total == pytest.approx(10.0)  # 10*0.5*2 + 0
        assert uncertainty > 0.0

    def test_zero_selected_uses_upper_bound(self):
        estimate = BackgroundEstimate("x", 5.0, 100, 0, 10.0)
        assert estimate.expected_events == 0.0
        assert estimate.statistical_uncertainty == pytest.approx(0.5)

    def test_validation(self, gpd_geometry, z_window_selection):
        with pytest.raises(BackendError):
            estimate_background([], z_window_selection, 10.0,
                                gpd_geometry)
        with pytest.raises(BackendError):
            estimate_background([DrellYanZ()], z_window_selection,
                                0.0, gpd_geometry)
        with pytest.raises(BackendError):
            combine_estimates([])

    def test_feeds_a_preserved_search(self, gpd_geometry,
                                      conditions_store,
                                      z_window_selection):
        """The catalogue numbers are now derivable, not asserted."""
        from repro.recast import PreservedSearch

        estimates = estimate_background(
            processes=[DrellYanZ(cross_section_pb=1100.0)],
            selection=z_window_selection,
            luminosity_ipb=50.0,
            geometry=gpd_geometry,
            conditions=conditions_store,
            n_events_per_process=80,
            seed=7200,
        )
        background, uncertainty = combine_estimates(estimates)
        search = PreservedSearch(
            analysis_id="GPD-SMP-Z", title="Z window counting",
            experiment="GPD", selection=z_window_selection,
            n_observed=int(round(background)),
            background=background,
            background_uncertainty=uncertainty,
            luminosity_ipb=50.0,
        )
        assert search.background > 0.0


class TestWorkflowDot:
    def test_dot_export(self):
        from repro.experiments import build_workflow, get_experiment

        dot = build_workflow(get_experiment("CMS")).to_dot()
        assert dot.startswith('digraph "CMS"')
        assert '"raw" -> "reconstruction"' in dot
        assert "shape=diamond" in dot  # the conditions DB external
        assert dot.rstrip().endswith("}")
