"""Lint target discovery: directories, archives, JSON classification."""

from __future__ import annotations

import json

import pytest

from repro.core.archive import PreservationArchive
from repro.core.metadata import PreservationMetadata
from repro.lint import classify_document, lint_path


def _metadata(title: str) -> PreservationMetadata:
    return PreservationMetadata.build(
        title=title,
        creator="tests",
        experiment="TOY",
        created="2013-01-01",
        artifact_format="json",
        size_bytes=0,
        checksum="",
        producer="tests",
        access_policy="public",
    )


def make_archive(directory, payloads: int = 2) -> None:
    archive = PreservationArchive("target-test")
    for index in range(payloads):
        archive.store({"value": index}, kind="record",
                      metadata=_metadata(f"record {index}"))
    archive.save(directory)


class TestDirectoryTargets:
    def test_empty_directory_is_clean(self, tmp_path):
        assert lint_path(tmp_path) == []

    def test_archive_root_routes_to_archive_rules(self, tmp_path):
        make_archive(tmp_path)
        (tmp_path / "blobs" / "deadbeef").write_text("{corrupt",
                                                     encoding="utf-8")
        findings = lint_path(tmp_path)
        assert findings  # orphan blob is archive-rule material
        assert all(f.code.startswith("DAS1") for f in findings)

    def test_nested_archive_is_discovered(self, tmp_path):
        make_archive(tmp_path / "deep" / "archive")
        (tmp_path / "deep" / "archive" / "blobs" / "feedface"
         ).write_text("{corrupt", encoding="utf-8")
        nested = lint_path(tmp_path)
        direct = lint_path(tmp_path / "deep" / "archive")
        assert [f.code for f in nested] == [f.code for f in direct]

    def test_nested_archive_blobs_not_linted_as_loose_json(self,
                                                           tmp_path):
        make_archive(tmp_path / "archive")
        # A clean archive inside a clean directory stays clean: its
        # catalogue and blobs must not resurface as unknown documents.
        (tmp_path / "readme.py").write_text("VALUE = (1, 2)\n",
                                            encoding="utf-8")
        assert lint_path(tmp_path) == []

    def test_sources_outside_the_archive_still_linted(self, tmp_path):
        make_archive(tmp_path / "archive")
        (tmp_path / "script.py").write_text(
            "import time\n\ndef stamp():\n    return time.time()\n",
            encoding="utf-8")
        findings = lint_path(tmp_path)
        assert any(f.code == "DAS001" for f in findings)

    def test_non_json_decoy_reported_unreadable(self, tmp_path):
        (tmp_path / "decoy.json").write_text("just text",
                                             encoding="utf-8")
        findings = lint_path(tmp_path)
        assert [f.code for f in findings] == ["DAS010"]

    def test_non_dict_json_is_ignored(self, tmp_path):
        (tmp_path / "list.json").write_text("[1, 2, 3]",
                                            encoding="utf-8")
        assert lint_path(tmp_path) == []

    def test_symlinked_blob_does_not_crash_the_sweep(self, tmp_path):
        make_archive(tmp_path / "archive")
        blob = next((tmp_path / "archive" / "blobs").iterdir())
        link = tmp_path / "loose.json"
        link.symlink_to(blob)
        # The linked payload is a plain record: classified unknown,
        # no findings, no exception.
        assert lint_path(tmp_path) == []

    def test_undecodable_source_reported_not_raised(self, tmp_path):
        (tmp_path / "binary.py").write_bytes(b"\xff\xfe\x00junk")
        findings = lint_path(tmp_path)
        assert [f.code for f in findings] == ["DAS010"]
        assert "unreadable" in findings[0].message


class TestClassification:
    def test_bundle(self):
        record = {"format": "repro-preserved-analysis"}
        assert classify_document(record) == "bundle"

    def test_snapshot(self):
        record = {"schema": {"format": "repro-conditions-snapshot"}}
        assert classify_document(record) == "snapshot"

    def test_provenance(self):
        assert classify_document({"artifacts": []}) == "provenance"

    def test_skim_needs_cut_and_name(self):
        assert classify_document({"cut": {}, "name": "x"}) == "skim"
        assert classify_document({"cut": {}}) == "unknown"

    def test_slim_needs_columns_and_name(self):
        assert classify_document({"columns": [], "name": "x"}) == "slim"
        assert classify_document({"columns": []}) == "unknown"

    def test_empty_document_is_unknown(self):
        assert classify_document({}) == "unknown"

    def test_closure_manifest_is_not_misclassified(self):
        record = {"format": "repro-closure-manifest", "analyses": []}
        assert classify_document(record) == "unknown"


if __name__ == "__main__":
    raise SystemExit(pytest.main([__file__, "-q"]))
