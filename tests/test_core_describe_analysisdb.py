"""Tests for analysis descriptions and the common analysis database."""

import pytest

from repro.core import (
    AnalysisDatabase,
    AnalysisDescription,
    EfficiencyFunction,
    EventSelection,
    KinematicVariable,
    ObjectDefinition,
)
from repro.datamodel import CountCut, MassWindowCut, MetCut
from repro.errors import PreservationError


def _description(analysis_id="GPD-SMP-01", experiment="GPD",
                 final_state="mu+ mu-"):
    return AnalysisDescription(
        analysis_id=analysis_id,
        title="Z -> mu mu cross section",
        experiment=experiment,
        final_state=final_state,
        objects=[
            ObjectDefinition("muon", 15.0, 2.4, max_isolation=5.0),
            ObjectDefinition("jet", 25.0, 4.5),
        ],
        selection=EventSelection(cuts=(
            ("two muons", CountCut("muons", 2, min_pt=15.0)),
            ("mass window", MassWindowCut("muons", 60.0, 120.0,
                                          opposite_charge=True)),
        )),
        variables=[KinematicVariable(
            "m_mumu", "invariant mass of the two leading muons", "GeV",
        )],
        efficiencies=[EfficiencyFunction(
            "trigger", "pt", [0.0, 20.0, 30.0, 1000.0],
            [0.5, 0.9, 0.95],
        )],
    )


class TestObjectDefinition:
    def test_selects_candidates(self, z_aods):
        definition = ObjectDefinition("muon", 15.0, 2.4)
        for aod in z_aods[:20]:
            for muon in aod.muons:
                expected = (muon.p4.pt >= 15.0
                            and abs(muon.p4.eta) <= 2.4)
                assert definition.selects(muon) == expected

    def test_isolation_requirement(self, z_aods):
        tight = ObjectDefinition("muon", 5.0, 2.5, max_isolation=0.0)
        loose = ObjectDefinition("muon", 5.0, 2.5)
        n_tight = sum(
            sum(tight.selects(m) for m in aod.muons)
            for aod in z_aods
        )
        n_loose = sum(
            sum(loose.selects(m) for m in aod.muons)
            for aod in z_aods
        )
        assert n_tight <= n_loose

    def test_unknown_object_type_rejected(self):
        with pytest.raises(PreservationError):
            ObjectDefinition("squark", 10.0, 2.5)

    def test_render_row(self):
        definition = ObjectDefinition("muon", 15.0, 2.4,
                                      max_isolation=5.0)
        row = definition.render_row()
        assert "15.0" in row and "2.4" in row and "iso" in row


class TestEventSelection:
    def test_cutflow_monotonic(self, z_aods):
        selection = _description().selection
        flow = selection.cutflow(z_aods)
        counts = [count for _, count in flow]
        assert counts == sorted(counts, reverse=True)
        assert flow[0] == ("all", len(z_aods))

    def test_passes_matches_cutflow(self, z_aods):
        selection = _description().selection
        n_passing = sum(selection.passes(aod) for aod in z_aods)
        assert n_passing == selection.cutflow(z_aods)[-1][1]

    def test_to_skim_spec(self, z_aods):
        selection = _description().selection
        spec = selection.to_skim_spec("z")
        assert len(spec.apply(z_aods)) == selection.cutflow(z_aods)[-1][1]

    def test_roundtrip(self):
        selection = _description().selection
        restored = EventSelection.from_dict(selection.to_dict())
        assert restored.to_dict() == selection.to_dict()


class TestEfficiencyFunction:
    def test_lookup(self):
        function = EfficiencyFunction("t", "pt", [0.0, 10.0, 20.0],
                                      [0.2, 0.8])
        assert function(5.0) == 0.2
        assert function(15.0) == 0.8

    def test_clamping(self):
        function = EfficiencyFunction("t", "pt", [0.0, 10.0, 20.0],
                                      [0.2, 0.8])
        assert function(-5.0) == 0.2
        assert function(100.0) == 0.8

    def test_length_validation(self):
        with pytest.raises(PreservationError):
            EfficiencyFunction("t", "pt", [0.0, 10.0], [0.2, 0.8])

    def test_range_validation(self):
        with pytest.raises(PreservationError):
            EfficiencyFunction("t", "pt", [0.0, 10.0], [1.5])


class TestAnalysisDescription:
    def test_roundtrip(self):
        description = _description()
        restored = AnalysisDescription.from_dict(description.to_dict())
        assert restored.to_dict() == description.to_dict()

    def test_wrong_format_rejected(self):
        with pytest.raises(PreservationError):
            AnalysisDescription.from_dict({"format": "nope"})

    def test_render_tables(self):
        text = _description().render_tables()
        assert "Object definitions" in text
        assert "Event selection" in text
        assert "m_mumu" in text

    def test_object_count_cuts(self, z_aods):
        cuts = _description().object_count_cuts()
        assert len(cuts) == 2
        assert cuts[0].collection == "muons"
        # The derived cuts are executable.
        cuts[0].passes(z_aods[0])


class TestAnalysisDatabase:
    @pytest.fixture
    def database(self):
        database = AnalysisDatabase("leshouches")
        database.add(_description())
        database.add(_description(analysis_id="FWD-CHARM-01",
                                  experiment="FWD",
                                  final_state="K pi"))
        return database

    def test_duplicate_rejected(self, database):
        with pytest.raises(PreservationError):
            database.add(_description())

    def test_queries(self, database):
        assert len(database.by_experiment("GPD")) == 1
        assert len(database.by_final_state("K pi")) == 1
        assert len(database.using_object("muon")) == 2

    def test_reproduce_from_description(self, database, z_aods):
        result = database.reproduce("GPD-SMP-01", z_aods)
        assert result["n_initial"] == len(z_aods)
        assert 0.0 < result["acceptance"] < 1.0
        assert result["cutflow"][0][0] == "all"

    def test_unknown_analysis_rejected(self, database, z_aods):
        with pytest.raises(PreservationError):
            database.reproduce("NOPE", z_aods)

    def test_persistence_roundtrip(self, database, tmp_path, z_aods):
        path = tmp_path / "db.json"
        database.save(path)
        loaded = AnalysisDatabase.load(path)
        assert loaded.analysis_ids() == database.analysis_ids()
        # A reloaded description reproduces identically.
        original = database.reproduce("GPD-SMP-01", z_aods)
        reloaded = loaded.reproduce("GPD-SMP-01", z_aods)
        assert original == reloaded
