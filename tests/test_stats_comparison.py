"""Tests for histogram comparison and unfolding."""

import numpy as np
import pytest

from repro.errors import StatsError
from repro.stats import Histogram1D, chi2_test, ks_test, ratio_points
from repro.stats.unfolding import (
    bin_by_bin_factors,
    closure_deviation,
    unfold,
)


def _gaussian_histogram(name, mu, sigma, n, seed):
    rng = np.random.default_rng(seed)
    histogram = Histogram1D(name, 40, mu - 5 * sigma, mu + 5 * sigma)
    histogram.fill_array(rng.normal(mu, sigma, n))
    return histogram


class TestChi2:
    def test_identical_samples_compatible(self):
        a = _gaussian_histogram("a", 50.0, 5.0, 5000, 1)
        b = _gaussian_histogram("b", 50.0, 5.0, 5000, 2)
        assert chi2_test(a, b).compatible

    def test_shifted_samples_discrepant(self):
        a = _gaussian_histogram("a", 50.0, 5.0, 5000, 1)
        b = Histogram1D("b", 40, 25.0, 75.0)
        b.fill_array(np.random.default_rng(2).normal(53.0, 5.0, 5000))
        result = chi2_test(a, b)
        assert not result.compatible
        assert result.p_value < 1e-6

    def test_incompatible_binning_rejected(self):
        a = Histogram1D("a", 10, 0.0, 10.0)
        b = Histogram1D("b", 20, 0.0, 10.0)
        with pytest.raises(StatsError):
            chi2_test(a, b)

    def test_empty_histograms_rejected(self):
        a = Histogram1D("a", 10, 0.0, 10.0)
        b = Histogram1D("b", 10, 0.0, 10.0)
        with pytest.raises(StatsError):
            chi2_test(a, b)

    def test_dof_counts_populated_bins(self):
        a = Histogram1D("a", 10, 0.0, 10.0)
        b = Histogram1D("b", 10, 0.0, 10.0)
        a.fill(1.0)
        b.fill(2.0)
        assert chi2_test(a, b).n_dof == 2

    def test_summary_readable(self):
        a = _gaussian_histogram("a", 50.0, 5.0, 1000, 3)
        b = _gaussian_histogram("b", 50.0, 5.0, 1000, 4)
        assert "chi2" in chi2_test(a, b).summary()


class TestKS:
    def test_identical_compatible(self):
        a = _gaussian_histogram("a", 0.0, 1.0, 3000, 5)
        b = _gaussian_histogram("b", 0.0, 1.0, 3000, 6)
        assert ks_test(a, b).compatible

    def test_different_widths_discrepant(self):
        a = _gaussian_histogram("a", 0.0, 1.0, 5000, 7)
        b = Histogram1D("b", 40, -5.0, 5.0)
        rng = np.random.default_rng(8)
        b.fill_array(rng.normal(0.0, 1.6, 5000))
        assert not ks_test(a, b).compatible

    def test_statistic_bounded(self):
        a = _gaussian_histogram("a", 0.0, 1.0, 500, 9)
        b = _gaussian_histogram("b", 0.0, 1.0, 500, 10)
        assert 0.0 <= ks_test(a, b).statistic <= 1.0


class TestRatio:
    def test_unit_ratio_for_identical(self):
        a = _gaussian_histogram("a", 0.0, 1.0, 2000, 11)
        points = ratio_points(a, a)
        for _, ratio, _ in points:
            assert ratio == pytest.approx(1.0)

    def test_empty_denominator_bins_skipped(self):
        a = Histogram1D("a", 4, 0.0, 4.0)
        b = Histogram1D("b", 4, 0.0, 4.0)
        a.fill(0.5)
        a.fill(1.5)
        b.fill(0.5)
        points = ratio_points(a, b)
        assert len(points) == 1


class TestUnfolding:
    def _response_pair(self, seed):
        rng = np.random.default_rng(seed)
        truth = Histogram1D("truth", 20, 0.0, 100.0)
        reco = Histogram1D("reco", 20, 0.0, 100.0)
        samples = rng.uniform(5.0, 95.0, 8000)
        truth.fill_array(samples)
        # Reco loses 20% of entries and smears by 3 GeV.
        kept = samples[rng.uniform(size=len(samples)) < 0.8]
        reco.fill_array(kept + rng.normal(0.0, 3.0, len(kept)))
        return truth, reco

    def test_factors_correct_efficiency_loss(self):
        truth, reco = self._response_pair(12)
        factors = bin_by_bin_factors(truth, reco)
        central = factors[5:15]
        assert np.all(central > 1.0)
        assert np.mean(central) == pytest.approx(1.25, rel=0.1)

    def test_closure_is_exact(self):
        truth, reco = self._response_pair(13)
        assert closure_deviation(truth, reco) < 1e-12

    def test_unfolded_data_matches_truth_shape(self):
        truth, reco = self._response_pair(14)
        # Independent "data" with the same response.
        data_truth, data_reco = self._response_pair(15)
        unfolded = unfold(data_reco, truth, reco)
        result = chi2_test(unfolded, data_truth)
        assert result.p_value > 1e-4

    def test_binning_mismatch_rejected(self):
        truth = Histogram1D("t", 10, 0.0, 10.0)
        reco = Histogram1D("r", 20, 0.0, 10.0)
        with pytest.raises(StatsError):
            bin_by_bin_factors(truth, reco)

    def test_empty_reco_bins_zeroed(self):
        truth = Histogram1D("t", 4, 0.0, 4.0)
        reco = Histogram1D("r", 4, 0.0, 4.0)
        truth.fill(0.5)
        truth.fill(1.5)
        reco.fill(1.5)
        factors = bin_by_bin_factors(truth, reco)
        assert factors[0] == 0.0
        assert factors[1] == 1.0
