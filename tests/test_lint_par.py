"""The parallel/columnar safety pass: DAS301–DAS312."""

from __future__ import annotations

import json
import re
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.columnar import declared_tier, equivalence_tier
from repro.errors import ConfigurationError
from repro.lint import lint_tree_par
from repro.lint.flow.callgraph import _GraphBuilder
from repro.lint.flow.modgraph import build_module_graph

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def write_tree(root, files: dict) -> None:
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def par_lint(tmp_path, files: dict):
    write_tree(tmp_path, files)
    return lint_tree_par(tmp_path)


# ---------------------------------------------------------------------------
# Known-bad fixtures: each worker rule fires on its dedicated module.
# ---------------------------------------------------------------------------

GLOBAL_WRITE = {
    "pool.py": """
        from repro.runtime import parallel_map

        _COUNT = 0

        def work(item):
            global _COUNT
            _COUNT = _COUNT + 1
            return item

        def run(items):
            return parallel_map(work, items)
    """,
}

STATE_MUTATION = {
    "pool.py": """
        from repro.runtime import parallel_map

        _CACHE = {}

        def remember(key, value):
            _CACHE[key] = value
            return value

        def work(item):
            return remember(item, item * 2)

        def run(items):
            return parallel_map(work, items)
    """,
}

SELF_WRITE = {
    "proc.py": """
        from repro.runtime import parallel_map

        class Processor:
            def __init__(self):
                self.count = 0

            def _work(self, item):
                self.count += 1
                return item

            def run(self, items):
                return parallel_map(self._work, items)
    """,
}

LAMBDA_WORKER = {
    "lam.py": """
        from repro.runtime import parallel_map

        def run(items):
            return parallel_map(lambda item: item + 1, items)
    """,
}

SHARED_RNG = {
    "rng.py": """
        import random

        from repro.runtime import parallel_map

        def work(item):
            return item + random.gauss(0.0, 1.0)

        def run(items):
            return parallel_map(work, items)
    """,
}

UNDERIVED_SEED = {
    "seed.py": """
        from numpy.random import default_rng

        from repro.runtime import parallel_map

        def work(item):
            rng = default_rng(42)
            return item + rng.normal()

        def run(items):
            return parallel_map(work, items)
    """,
}

DERIVED_SEED = {
    "seed.py": """
        from numpy.random import default_rng

        from repro.runtime import derive_seed, parallel_map

        def work(item, seed):
            rng = default_rng(derive_seed(seed, item))
            return rng.normal()

        def run(items):
            return parallel_map(work, items)
    """,
}


class TestWorkerRules:
    def test_das301_global_write(self, tmp_path):
        findings = par_lint(tmp_path, GLOBAL_WRITE)
        assert [f.code for f in findings] == ["DAS301"]
        finding = findings[0]
        assert finding.severity.name == "ERROR"
        assert finding.artifact == "pool.work"
        assert "parallel worker 'pool.work'" in finding.message
        assert "dispatched by parallel_map()" in finding.message
        assert "_COUNT" in finding.message

    def test_das302_module_state_mutation_carries_chain(self, tmp_path):
        findings = par_lint(tmp_path, STATE_MUTATION)
        assert [f.code for f in findings] == ["DAS302"]
        assert "pool.work -> pool.remember" in findings[0].message
        assert "_CACHE" in findings[0].message

    def test_das303_self_attribute_write(self, tmp_path):
        findings = par_lint(tmp_path, SELF_WRITE)
        assert [f.code for f in findings] == ["DAS303"]
        finding = findings[0]
        assert finding.artifact == "proc.Processor._work"
        assert "self.count" in finding.message

    def test_das304_lambda_worker(self, tmp_path):
        findings = par_lint(tmp_path, LAMBDA_WORKER)
        assert [f.code for f in findings] == ["DAS304"]
        assert "a lambda" in findings[0].message
        assert "mode='process'" in findings[0].message

    def test_das304_nested_function_worker(self, tmp_path):
        findings = par_lint(tmp_path, {
            "nested.py": """
                from repro.runtime import parallel_map

                def run(items):
                    def work(item):
                        return item + 1
                    return parallel_map(work, items)
            """,
        })
        assert [f.code for f in findings] == ["DAS304"]
        assert "locally defined function 'work'" in findings[0].message

    def test_das305_shared_module_rng(self, tmp_path):
        findings = par_lint(tmp_path, SHARED_RNG)
        assert [f.code for f in findings] == ["DAS305"]
        assert "random.gauss" in findings[0].message

    def test_das306_underived_seed(self, tmp_path):
        findings = par_lint(tmp_path, UNDERIVED_SEED)
        assert [f.code for f in findings] == ["DAS306"]
        assert "derive_seed" in findings[0].message

    def test_derived_seed_is_clean(self, tmp_path):
        assert par_lint(tmp_path, DERIVED_SEED) == []

    def test_seed_from_parameter_is_clean(self, tmp_path):
        derived = dict(DERIVED_SEED)
        derived["seed.py"] = derived["seed.py"].replace(
            "derive_seed(seed, item)", "seed")
        assert par_lint(tmp_path, derived) == []

    def test_undispatched_hazard_stays_silent(self, tmp_path):
        undispatched = {
            "pool.py": GLOBAL_WRITE["pool.py"].replace(
                "return parallel_map(work, items)",
                "return [work(item) for item in items]"),
        }
        assert par_lint(tmp_path, undispatched) == []

    def test_finding_anchors_at_the_worker_definition(self, tmp_path):
        findings = par_lint(tmp_path, SHARED_RNG)
        source = (tmp_path / "rng.py").read_text(encoding="utf-8")
        def_line = next(i for i, text in enumerate(source.splitlines(), 1)
                        if text.startswith("def work"))
        assert findings[0].line == def_line
        assert findings[0].file.endswith("rng.py")


class TestPartialWrappedWorkers:
    """Satellite regression: partial- and name-bound campaign workers."""

    CAMPAIGN = {
        "camp.py": """
            import functools

            from repro.runtime import parallel_map

            _RESULTS = []

            def _process_run(config, run):
                _RESULTS.append(run)
                return run

            def campaign(runs, config):
                worker = functools.partial(_process_run, config)
                return parallel_map(worker, runs)
        """,
    }

    def test_callgraph_edges_through_functools_partial(self, tmp_path):
        write_tree(tmp_path, self.CAMPAIGN)
        graph = _GraphBuilder(build_module_graph(tmp_path)).build()
        callees = {callee for callee, _
                   in graph.functions["camp:campaign"].calls}
        assert "camp:_process_run" in callees

    def test_partial_bound_worker_resolves_and_fires(self, tmp_path):
        findings = par_lint(tmp_path, self.CAMPAIGN)
        assert [f.code for f in findings] == ["DAS302"]
        finding = findings[0]
        assert finding.artifact == "camp._process_run"
        assert "_RESULTS" in finding.message

    def test_inline_partial_without_binding_also_resolves(self, tmp_path):
        inline = {
            "camp.py": self.CAMPAIGN["camp.py"].replace(
                "worker = functools.partial(_process_run, config)\n"
                "    return parallel_map(worker, runs)",
                "return parallel_map("
                "functools.partial(_process_run, config), runs)"),
        }
        findings = par_lint(tmp_path, inline)
        assert [f.code for f in findings] == ["DAS302"]


# ---------------------------------------------------------------------------
# Kernel rules: tier-declared functions checked directly.
# ---------------------------------------------------------------------------

def kernel(tier: str, body: str) -> dict:
    return {
        "kern.py": textwrap.dedent("""
            from repro.columnar import equivalence_tier


            @equivalence_tier({tier!r})
        """).format(tier=tier) + textwrap.dedent(body),
    }


class TestKernelRules:
    def test_das307_inplace_param_mutation(self, tmp_path):
        findings = par_lint(tmp_path, kernel("ulp", """
            def scale(values, factor):
                values *= factor
                return values
        """))
        assert [f.code for f in findings] == ["DAS307"]
        assert "ulp-tier kernel 'kern.scale'" in findings[0].message

    def test_das307_out_keyword_aliasing(self, tmp_path):
        findings = par_lint(tmp_path, kernel("exact", """
            def shift(values, offset, add):
                return add(values, offset, out=values)
        """))
        assert [f.code for f in findings] == ["DAS307"]
        assert "out=values" in findings[0].message

    def test_das308_kernel_returns_view(self, tmp_path):
        findings = par_lint(tmp_path, kernel("exact", """
            def flatten(values):
                return values.reshape(-1)
        """))
        assert [f.code for f in findings] == ["DAS308"]
        assert ".reshape()" in findings[0].message

    def test_das308_slice_view(self, tmp_path):
        findings = par_lint(tmp_path, kernel("exact", """
            def head(values, n):
                return values[:n]
        """))
        assert [f.code for f in findings] == ["DAS308"]

    def test_das309_argument_attribute_write(self, tmp_path):
        findings = par_lint(tmp_path, kernel("statistical", """
            def digitize(events, state):
                state.cursor = len(events)
                return events
        """))
        assert [f.code for f in findings] == ["DAS309"]
        assert "state.cursor" in findings[0].message

    def test_das310_exact_tier_rng_draw(self, tmp_path):
        findings = par_lint(tmp_path, kernel("exact", """
            def smear(values, rng):
                return values + rng.normal(size=len(values))
        """))
        assert [f.code for f in findings] == ["DAS310"]
        assert "exact-tier kernel" in findings[0].message

    def test_statistical_tier_may_draw(self, tmp_path):
        assert par_lint(tmp_path, kernel("statistical", """
            def smear(values, rng):
                return values + rng.normal(size=len(values))
        """)) == []

    def test_das311_order_sensitive_reduction(self, tmp_path):
        findings = par_lint(tmp_path, kernel("exact", """
            def total(values):
                acc = 0.0
                for value in values:
                    acc += value
                return acc
        """))
        assert [f.code for f in findings] == ["DAS311"]

    def test_das311_builtin_sum(self, tmp_path):
        findings = par_lint(tmp_path, kernel("exact", """
            def total(values):
                return sum(values)
        """))
        assert [f.code for f in findings] == ["DAS311"]
        assert "sum()" in findings[0].message

    def test_ulp_tier_tolerates_reassociation(self, tmp_path):
        assert par_lint(tmp_path, kernel("ulp", """
            def total(values):
                acc = 0.0
                for value in values:
                    acc += value
                return acc
        """)) == []

    def test_das312_unknown_tier(self, tmp_path):
        findings = par_lint(tmp_path, kernel("bitwise", """
            def wrap(values):
                return values + 1
        """))
        assert [f.code for f in findings] == ["DAS312"]
        assert "unknown tier 'bitwise'" in findings[0].message

    def test_das312_computed_tier(self, tmp_path):
        findings = par_lint(tmp_path, {
            "kern.py": """
                from repro.columnar import equivalence_tier

                TIER = "exact"

                @equivalence_tier(TIER)
                def wrap(values):
                    return values + 1
            """,
        })
        assert [f.code for f in findings] == ["DAS312"]
        assert "not a string constant" in findings[0].message

    def test_undeclared_function_is_not_a_kernel(self, tmp_path):
        assert par_lint(tmp_path, {
            "kern.py": """
                def total(values):
                    acc = 0.0
                    for value in values:
                        acc += value
                    return acc
            """,
        }) == []


class TestWaivers:
    def test_fact_line_waiver_kills_the_chain(self, tmp_path):
        waived = {
            "rng.py": SHARED_RNG["rng.py"].replace(
                "return item + random.gauss(0.0, 1.0)",
                "return item + random.gauss(0.0, 1.0)"
                "  # lint: ignore[DAS305] -- fixture"),
        }
        assert par_lint(tmp_path, waived) == []

    def test_worker_definition_waiver_kills_the_finding(self, tmp_path):
        waived = {
            "rng.py": SHARED_RNG["rng.py"].replace(
                "def work(item):",
                "# lint: ignore[DAS305] -- fixture\n"
                "def work(item):"),
        }
        assert par_lint(tmp_path, waived) == []

    def test_unrelated_waiver_does_not_silence(self, tmp_path):
        waived = {
            "rng.py": SHARED_RNG["rng.py"].replace(
                "return item + random.gauss(0.0, 1.0)",
                "return item + random.gauss(0.0, 1.0)"
                "  # lint: ignore[DAS001] -- wrong code"),
        }
        findings = par_lint(tmp_path, waived)
        assert [f.code for f in findings] == ["DAS305"]


# ---------------------------------------------------------------------------
# The equivalence-tier runtime registry.
# ---------------------------------------------------------------------------

class TestTierRegistry:
    def test_decorator_registers_and_annotates(self):
        @equivalence_tier("ulp")
        def _tier_registry_probe(values):
            return values

        assert _tier_registry_probe.__equivalence_tier__ == "ulp"
        assert declared_tier(_tier_registry_probe) == "ulp"

    def test_unknown_tier_raises(self):
        with pytest.raises(ConfigurationError):
            @equivalence_tier("bitwise")
            def _bad(values):
                return values

    def test_bundled_kernels_declare_tiers(self):
        from repro.columnar import fourvec, kernels

        assert declared_tier(fourvec.wrap_phi_array) == "exact"
        assert declared_tier(fourvec.transverse_mass_array) == "ulp"
        assert declared_tier(kernels.simulate_batch) == "statistical"


# ---------------------------------------------------------------------------
# Self-analysis: the package honours its own rules.
# ---------------------------------------------------------------------------

class TestSelfAnalysis:
    def test_src_repro_is_par_clean(self):
        assert lint_tree_par(REPO_SRC) == []

    def test_kernels_waiver_is_load_bearing(self, tmp_path):
        """Stripping the one reasoned waiver re-surfaces exactly DAS309."""
        copy = tmp_path / "repro"
        shutil.copytree(REPO_SRC, copy)
        kernels = copy / "columnar" / "kernels.py"
        stripped = "\n".join(
            line for line in
            kernels.read_text(encoding="utf-8").splitlines()
            if "lint: ignore[DAS309]" not in line)
        kernels.write_text(stripped + "\n", encoding="utf-8")
        findings = lint_tree_par(copy)
        assert [f.code for f in findings] == ["DAS309"]
        assert "digitize_batch" in findings[0].message


# ---------------------------------------------------------------------------
# CLI wiring: --par, --deep implication, determinism, rule listing.
# ---------------------------------------------------------------------------

class TestCliPar:
    @pytest.fixture
    def par_tree(self, tmp_path):
        write_tree(tmp_path, GLOBAL_WRITE)
        return tmp_path

    def test_par_flag_runs_the_pass(self, par_tree, capsys):
        assert main(["lint", "--par", str(par_tree)]) == 2
        out = capsys.readouterr().out
        assert "DAS301" in out
        assert "parallel worker" in out

    def test_without_par_the_tree_is_shallow_clean(self, par_tree):
        assert main(["lint", str(par_tree)]) == 0

    def test_deep_implies_par(self, par_tree, capsys):
        assert main(["lint", "--deep", str(par_tree)]) == 2
        assert "DAS301" in capsys.readouterr().out

    def test_par_on_a_single_file_scans_its_tree(self, par_tree,
                                                 capsys):
        assert main(["lint", "--par",
                     str(par_tree / "pool.py")]) == 2
        assert "DAS301" in capsys.readouterr().out

    def test_json_output_is_byte_deterministic(self, par_tree, capsys):
        argv = ["lint", "--par", "--format", "json", str(par_tree)]
        assert main(argv) == 2
        first = capsys.readouterr().out
        assert main(argv) == 2
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert [f["code"] for f in payload["findings"]] == ["DAS301"]

    def test_select_par_prefix(self, tmp_path, capsys):
        write_tree(tmp_path, SHARED_RNG)
        assert main(["lint", "--par", "--select", "DAS3",
                     str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert "DAS305" in out
        assert "DAS002" not in out

    def test_list_rules_orders_the_par_family_last(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        codes = re.findall(r"DAS\d{3}", capsys.readouterr().out)
        assert codes == sorted(codes)
        par_codes = [code for code in codes if code.startswith("DAS3")]
        assert par_codes == [f"DAS3{n:02d}" for n in range(1, 13)]
        assert codes.index("DAS301") > codes.index("DAS212")
