"""Batched simulation/digitisation kernels: determinism and statistics.

The batch kernels draw their randomness per *phase* (all vertices, then
all efficiencies, then all smears, ...) instead of per event, so their
output is statistically — not bitwise — equivalent to the scalar path.
These tests pin down what IS guaranteed:

* the kernels are deterministic functions of (seed, input events),
* everything RNG-free is exactly identical (deposit structure, truth
  links, bunch-crossing bookkeeping),
* the RNG-dependent observables agree statistically with the scalar
  path at sample sizes far above the test's noise floor.
"""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.columnar.kernels import (
    DIGITIZATION_PHASES,
    SIMULATION_PHASES,
    batch_stream,
)
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.runtime.scheduler import derive_seed

N_EVENTS = 60


@pytest.fixture(scope="module")
def gen_events():
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=9100))
    return generator.generate(N_EVENTS)


@pytest.fixture(scope="module")
def scalar_sim(gpd_geometry, gen_events):
    simulation = DetectorSimulation(gpd_geometry, seed=9101)
    return simulation.simulate_many(gen_events)


@pytest.fixture(scope="module")
def batch_sim(gpd_geometry, gen_events):
    simulation = DetectorSimulation(gpd_geometry, seed=9101)
    return simulation.simulate_many_batch(gen_events)


class TestPhaseStreams:
    def test_streams_are_independent_and_deterministic(self):
        assert len(set(SIMULATION_PHASES)) == len(SIMULATION_PHASES)
        assert len(set(DIGITIZATION_PHASES)) == len(DIGITIZATION_PHASES)
        for phase in SIMULATION_PHASES + DIGITIZATION_PHASES:
            a = batch_stream(1234, phase).normal(size=4)
            b = batch_stream(1234, phase).normal(size=4)
            assert a.tolist() == b.tolist()
        # Distinct phases derive distinct seeds.
        seeds = {derive_seed(1234, "columnar", phase)
                 for phase in SIMULATION_PHASES + DIGITIZATION_PHASES}
        assert len(seeds) == len(SIMULATION_PHASES
                                 + DIGITIZATION_PHASES)


class TestSimulateBatch:
    def test_deterministic(self, gpd_geometry, gen_events):
        first = DetectorSimulation(
            gpd_geometry, seed=9101).simulate_many_batch(gen_events)
        second = DetectorSimulation(
            gpd_geometry, seed=9101).simulate_many_batch(gen_events)
        for a, b in zip(first, second):
            assert a.primary_vertex == b.primary_vertex
            assert a.traversals == b.traversals
            assert a.deposits == b.deposits

    def test_rng_free_structure_identical(self, scalar_sim, batch_sim):
        # Which particles deposit where is pure classification — no
        # randomness — so the deposit structure (truth links,
        # subdetectors, directions) matches the scalar path exactly.
        for scalar, batch in zip(scalar_sim, batch_sim):
            assert scalar.event_number == batch.event_number
            assert scalar.process_name == batch.process_name
            assert ([(d.truth_index, d.subdetector, d.eta, d.phi)
                     for d in batch.deposits]
                    == [(d.truth_index, d.subdetector, d.eta, d.phi)
                        for d in scalar.deposits])

    def test_statistical_equivalence(self, scalar_sim, batch_sim):
        scalar_traversals = sum(len(e.traversals) for e in scalar_sim)
        batch_traversals = sum(len(e.traversals) for e in batch_sim)
        # Efficiency draws differ in order, not in distribution.
        assert batch_traversals == pytest.approx(scalar_traversals,
                                                 rel=0.1)
        scalar_energy = sum(d.measured_energy for e in scalar_sim
                            for d in e.deposits)
        batch_energy = sum(d.measured_energy for e in batch_sim
                           for d in e.deposits)
        assert batch_energy == pytest.approx(scalar_energy, rel=0.05)

    def test_vertices_follow_beam_spot(self, batch_sim):
        zs = [event.primary_vertex[2] for event in batch_sim]
        assert np.std(zs) > 0.0
        assert abs(float(np.mean(zs))) < 50.0


class TestDigitizeBatch:
    def test_deterministic(self, gpd_geometry, batch_sim):
        first = Digitizer(gpd_geometry, run_number=71,
                          seed=9102).digitize_many_batch(batch_sim)
        second = Digitizer(gpd_geometry, run_number=71,
                           seed=9102).digitize_many_batch(batch_sim)
        assert ([r.to_dict() for r in first]
                == [r.to_dict() for r in second])

    def test_bunch_crossings_match_scalar_loop(self, gpd_geometry,
                                               batch_sim):
        scalar_digi = Digitizer(gpd_geometry, run_number=71, seed=9102)
        scalar_raws = scalar_digi.digitize_many(batch_sim)
        batch_digi = Digitizer(gpd_geometry, run_number=71, seed=9102)
        batch_raws = batch_digi.digitize_many_batch(batch_sim)
        assert ([r.bunch_crossing for r in batch_raws]
                == [r.bunch_crossing for r in scalar_raws])
        assert ([r.run_number for r in batch_raws]
                == [r.run_number for r in scalar_raws])
        # Both paths leave the counter in the same place, so scalar
        # and batch calls can be interleaved without divergence.
        assert scalar_digi._bx == batch_digi._bx

    def test_statistical_equivalence(self, gpd_geometry, batch_sim):
        scalar_raws = Digitizer(gpd_geometry, run_number=71,
                                seed=9102).digitize_many(batch_sim)
        batch_raws = Digitizer(gpd_geometry, run_number=71,
                               seed=9102).digitize_many_batch(batch_sim)
        for kind in ("tracker_hits", "calo_hits", "muon_hits"):
            scalar_count = sum(len(getattr(r, kind))
                               for r in scalar_raws)
            batch_count = sum(len(getattr(r, kind))
                              for r in batch_raws)
            assert batch_count == pytest.approx(
                scalar_count, rel=0.15, abs=20), kind

    def test_hits_are_well_formed(self, gpd_geometry, batch_sim):
        raws = Digitizer(gpd_geometry, run_number=71,
                         seed=9102).digitize_many_batch(batch_sim)
        for raw in raws:
            for hit in raw.tracker_hits:
                assert -math.pi < hit.phi <= math.pi
            for hit in raw.muon_hits:
                assert -math.pi < hit.phi <= math.pi
            for hit in raw.calo_hits:
                assert hit.energy >= 0.0
                assert hit.subdetector in ("ecal", "hcal")


class TestBatchChainReconstructs:
    def test_batch_raws_flow_through_reconstruction(
            self, gpd_geometry, conditions_store, batch_sim):
        from repro.reconstruction import GlobalTagView, Reconstructor

        raws = Digitizer(gpd_geometry, run_number=71,
                         seed=9102).digitize_many_batch(batch_sim)
        reconstructor = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        recos = reconstructor.reconstruct_batch(raws)
        assert len(recos) == len(raws)
        assert any(reco.muons for reco in recos)
