"""Tests for preservation validation and platform migration."""

import pytest

from repro.core import (
    DropAuxiliaryMigration,
    FieldRenameMigration,
    LosslessMigration,
    PrecisionLossMigration,
    PreservedAnalysisBundle,
    apply_migration,
    revalidate,
)
from repro.datamodel import (
    AndCut,
    CountCut,
    MassWindowCut,
    SkimSpec,
    SlimSpec,
)
from repro.errors import MigrationError, PreservationError


@pytest.fixture(scope="module")
def bundle(z_aods):
    skim = SkimSpec("zskim", AndCut((
        CountCut("muons", 2, min_pt=15.0),
        MassWindowCut("muons", 60.0, 120.0, opposite_charge=True),
    )))
    slim = SlimSpec("zslim", ("dimuon_mass", "met", "n_muons"))
    return PreservedAnalysisBundle.create("Z-2013", z_aods, skim, slim)


class TestRevalidation:
    def test_fresh_bundle_passes(self, bundle):
        outcome = revalidate(bundle)
        assert outcome.passed
        assert outcome.n_reproduced == outcome.n_expected
        assert "PASS" in outcome.summary()

    def test_serialisation_roundtrip_still_passes(self, bundle):
        restored = PreservedAnalysisBundle.from_dict(bundle.to_dict())
        assert revalidate(restored).passed

    def test_tampered_expected_rows_fail(self, bundle):
        record = bundle.to_dict()
        if record["expected_rows"]:
            record["expected_rows"][0]["cols"]["met"] = -1.0
        tampered = PreservedAnalysisBundle.from_dict(record)
        outcome = revalidate(tampered)
        assert not outcome.passed
        assert outcome.mismatches

    def test_tampered_skim_fails(self, bundle):
        record = bundle.to_dict()
        record["skim"]["cut"]["children"][0]["min_pt"] = 50.0
        tampered = PreservedAnalysisBundle.from_dict(record)
        outcome = revalidate(tampered)
        assert not outcome.passed

    def test_wrong_format_rejected(self):
        with pytest.raises(PreservationError):
            PreservedAnalysisBundle.from_dict({"format": "nope"})


class TestRevalidationMismatchPaths:
    def test_row_count_drift_is_reported(self, bundle):
        record = bundle.to_dict()
        assert record["expected_rows"], "fixture produced no rows"
        record["expected_rows"].append(
            dict(record["expected_rows"][-1], event=999_999))
        padded = PreservedAnalysisBundle.from_dict(record)
        outcome = revalidate(padded)
        assert not outcome.passed
        assert outcome.n_expected == outcome.n_reproduced + 1
        assert any("row count" in m for m in outcome.mismatches)
        assert "FAIL" in outcome.summary()

    def test_field_value_drift_names_the_column(self, bundle):
        record = bundle.to_dict()
        assert record["expected_rows"], "fixture produced no rows"
        record["expected_rows"][0]["cols"]["dimuon_mass"] += 5.0
        drifted = PreservedAnalysisBundle.from_dict(record)
        outcome = revalidate(drifted)
        assert not outcome.passed
        assert any("dimuon_mass" in m for m in outcome.mismatches)
        # The drift is localised: only the tampered row mismatches.
        assert len(outcome.mismatches) == 1

    def test_event_id_drift_is_reported(self, bundle):
        record = bundle.to_dict()
        assert record["expected_rows"], "fixture produced no rows"
        record["expected_rows"][0]["event"] = -1
        drifted = PreservedAnalysisBundle.from_dict(record)
        outcome = revalidate(drifted)
        assert not outcome.passed
        assert any("event" in m for m in outcome.mismatches)

    def test_column_set_drift_is_reported(self, bundle):
        record = bundle.to_dict()
        assert record["expected_rows"], "fixture produced no rows"
        record["expected_rows"][0]["cols"]["bogus_column"] = 1.0
        drifted = PreservedAnalysisBundle.from_dict(record)
        outcome = revalidate(drifted)
        assert not outcome.passed
        assert any("column sets differ" in m for m in outcome.mismatches)

    def test_drift_below_tolerance_passes(self, bundle):
        record = bundle.to_dict()
        assert record["expected_rows"], "fixture produced no rows"
        record["expected_rows"][0]["cols"]["dimuon_mass"] *= 1.0 + 1e-12
        nudged = PreservedAnalysisBundle.from_dict(record)
        assert revalidate(nudged, tolerance=1e-9).passed
        assert not revalidate(nudged, tolerance=1e-15).passed


class TestMigrations:
    def test_lossless_migration_passes(self, bundle):
        migrated = apply_migration(bundle, LosslessMigration())
        assert revalidate(migrated).passed

    def test_precision_loss_detected(self, bundle):
        migrated = apply_migration(bundle,
                                   PrecisionLossMigration(digits=3))
        outcome = revalidate(migrated)
        assert not outcome.passed

    def test_high_precision_survives(self, bundle):
        migrated = apply_migration(bundle,
                                   PrecisionLossMigration(digits=15))
        assert revalidate(migrated).passed

    def test_column_rename_detected(self, bundle):
        migrated = apply_migration(
            bundle, FieldRenameMigration("dimuon_mass", "m_mumu"),
        )
        outcome = revalidate(migrated)
        assert not outcome.passed
        assert any("column sets differ" in m for m in outcome.mismatches)

    def test_structural_rename_raises(self, bundle):
        # Renaming a structural key destroys the bundle outright.
        with pytest.raises(MigrationError):
            apply_migration(
                bundle, FieldRenameMigration("skim", "selection"),
            )

    def test_dropped_events_detected(self, bundle):
        migrated = apply_migration(
            bundle, DropAuxiliaryMigration(keep_fraction=0.5),
        )
        outcome = revalidate(migrated)
        assert not outcome.passed
        assert outcome.n_reproduced < outcome.n_expected

    def test_migration_parameter_validation(self):
        with pytest.raises(MigrationError):
            PrecisionLossMigration(digits=0)
        with pytest.raises(MigrationError):
            DropAuxiliaryMigration(keep_fraction=0.0)
