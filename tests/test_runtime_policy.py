"""Tests for the execution-policy and scheduler primitives."""

import os

import pytest

from repro.errors import ExecutionError
from repro.runtime import (
    ExecutionPolicy,
    chunked,
    default_chunk_size,
    derive_seed,
    parallel_map,
)


def _square(value):
    return value * value


def _fail_on_three(value):
    if value == 3:
        raise ValueError("three is right out")
    return value


class TestExecutionPolicy:
    def test_default_is_serial(self):
        policy = ExecutionPolicy()
        assert policy.is_serial
        assert policy.mode == "serial"
        assert policy.n_jobs == 1

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionPolicy(mode="gpu")

    def test_bad_n_jobs_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionPolicy(mode="process", n_jobs=0)

    def test_bad_chunk_size_rejected(self):
        with pytest.raises(ExecutionError):
            ExecutionPolicy(mode="process", n_jobs=2, chunk_size=0)

    def test_negative_chunk_size_rejected(self):
        with pytest.raises(ExecutionError, match="chunk_size"):
            ExecutionPolicy(mode="thread", n_jobs=2, chunk_size=-4)

    def test_negative_n_jobs_rejected(self):
        with pytest.raises(ExecutionError, match="n_jobs"):
            ExecutionPolicy(mode="thread", n_jobs=-1)

    def test_rejection_names_the_bad_mode(self):
        with pytest.raises(ExecutionError, match="'gpu'"):
            ExecutionPolicy(mode="gpu")

    def test_from_jobs_validates_the_mode_too(self):
        with pytest.raises(ExecutionError):
            ExecutionPolicy.from_jobs(4, mode="gpu")

    def test_none_chunk_size_means_automatic(self):
        assert ExecutionPolicy.threads(2).chunk_size is None

    def test_constructors(self):
        assert ExecutionPolicy.serial().is_serial
        assert ExecutionPolicy.threads(3).mode == "thread"
        assert ExecutionPolicy.processes(3).mode == "process"
        assert ExecutionPolicy.processes(3).n_jobs == 3

    def test_from_jobs_defaults_to_serial(self):
        assert ExecutionPolicy.from_jobs(None).is_serial
        assert ExecutionPolicy.from_jobs(0).is_serial
        assert ExecutionPolicy.from_jobs(1).is_serial

    def test_from_jobs_parallel(self):
        policy = ExecutionPolicy.from_jobs(4)
        assert policy.mode == "process"
        assert policy.n_jobs == 4

    def test_from_jobs_negative_means_all_cpus(self):
        policy = ExecutionPolicy.from_jobs(-1)
        expected = os.cpu_count() or 1
        if expected > 1:
            assert policy.n_jobs == expected
        else:
            assert policy.is_serial

    def test_describe_round_trip(self):
        policy = ExecutionPolicy.processes(4, chunk_size=7)
        assert policy.describe() == {
            "mode": "process", "n_jobs": 4, "chunk_size": 7,
        }


class TestChunking:
    def test_chunked_splits_contiguously(self):
        assert list(chunked(list(range(7)), 3)) == [
            [0, 1, 2], [3, 4, 5], [6],
        ]

    def test_chunked_rejects_bad_size(self):
        with pytest.raises(ExecutionError):
            list(chunked([1, 2], 0))

    def test_default_chunk_size_bounds(self):
        assert default_chunk_size(0, 4) == 1
        assert default_chunk_size(3, 4) == 1
        # ~4 chunks per worker.
        assert default_chunk_size(160, 4) == 10


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert (derive_seed(6000, "run", 25)
                == derive_seed(6000, "run", 25))

    def test_sensitive_to_every_component(self):
        seeds = {
            derive_seed(6000, "run", 25),
            derive_seed(6000, "run", 26),
            derive_seed(6001, "run", 25),
            derive_seed(6000, "generator", 25),
        }
        assert len(seeds) == 4

    def test_in_rng_range(self):
        for run in range(50):
            seed = derive_seed(1234, run)
            assert 0 <= seed < 2**31 - 1


class TestParallelMap:
    @pytest.mark.parametrize("policy", [
        None,
        ExecutionPolicy.serial(),
        ExecutionPolicy.threads(3),
        ExecutionPolicy.processes(3),
    ])
    def test_matches_serial_comprehension(self, policy):
        items = list(range(23))
        assert parallel_map(_square, items, policy) == [
            _square(item) for item in items
        ]

    @pytest.mark.parametrize("chunk_size", [1, 2, 5, 100])
    def test_any_chunking_preserves_order(self, chunk_size):
        items = list(range(17))
        result = parallel_map(_square, items,
                              ExecutionPolicy.processes(2),
                              chunk_size=chunk_size)
        assert result == [_square(item) for item in items]

    def test_empty_input(self):
        assert parallel_map(_square, [],
                            ExecutionPolicy.processes(2)) == []

    def test_accepts_generators(self):
        result = parallel_map(_square, (value for value in range(9)),
                              ExecutionPolicy.threads(2))
        assert result == [_square(value) for value in range(9)]

    @pytest.mark.parametrize("policy", [
        ExecutionPolicy.serial(),
        ExecutionPolicy.threads(2),
        ExecutionPolicy.processes(2),
    ])
    def test_exceptions_propagate(self, policy):
        with pytest.raises(ValueError, match="three"):
            parallel_map(_fail_on_three, [1, 2, 3, 4], policy)
