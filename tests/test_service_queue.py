"""Tests for the fair-share queue, quotas, and service config."""

import pytest

from repro.errors import QuotaError, ServiceError
from repro.service import FairShareQueue, QueueEntry, ServiceConfig, TenantQuota


def entry(key, tenant, priority=0, sequence=0):
    return QueueEntry(key=key, tenant=tenant, priority=priority,
                      sequence=sequence)


class TestTenantQuota:
    def test_defaults_valid(self):
        quota = TenantQuota()
        assert quota.weight == 1.0
        assert quota.max_queued >= 1
        assert quota.max_inflight >= 1

    @pytest.mark.parametrize("kwargs", [
        {"weight": 0.0}, {"weight": -1.0},
        {"max_queued": 0}, {"max_inflight": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            TenantQuota(**kwargs)

    def test_roundtrip(self):
        quota = TenantQuota(weight=2.0, max_queued=5, max_inflight=3)
        assert TenantQuota.from_dict(quota.to_dict()) == quota

    def test_unknown_fields_rejected(self):
        with pytest.raises(ServiceError):
            TenantQuota.from_dict({"weight": 1.0, "max_leases": 4})


class TestServiceConfig:
    def test_defaults_valid(self):
        config = ServiceConfig()
        assert config.lease_duration > 0
        assert config.max_attempts >= 1

    @pytest.mark.parametrize("kwargs", [
        {"lease_duration": 0.0}, {"max_attempts": 0},
        {"backoff_base": -1.0}, {"backoff_base": 5.0, "backoff_cap": 1.0},
        {"max_inflight": 0},
    ])
    def test_invalid_rejected(self, kwargs):
        with pytest.raises(ServiceError):
            ServiceConfig(**kwargs)

    def test_backoff_doubles_then_caps(self):
        config = ServiceConfig(backoff_base=2.0, backoff_cap=10.0)
        assert config.backoff(1) == 2.0
        assert config.backoff(2) == 4.0
        assert config.backoff(3) == 8.0
        assert config.backoff(4) == 10.0
        assert config.backoff(10) == 10.0

    def test_backoff_needs_positive_attempt(self):
        with pytest.raises(ServiceError):
            ServiceConfig().backoff(0)

    def test_roundtrip(self):
        config = ServiceConfig(lease_duration=3.0, max_attempts=5,
                               backoff_base=1.0, backoff_cap=4.0,
                               max_inflight=8)
        assert ServiceConfig.from_dict(config.to_dict()) == config

    def test_unknown_fields_rejected(self):
        with pytest.raises(ServiceError):
            ServiceConfig.from_dict({"lease_seconds": 3.0})


class TestFairShareQueue:
    def test_unknown_tenant_rejected(self):
        queue = FairShareQueue()
        with pytest.raises(ServiceError):
            queue.push(entry("k", "ghost"))

    def test_duplicate_tenant_rejected(self):
        queue = FairShareQueue()
        queue.register_tenant("t", TenantQuota())
        with pytest.raises(ServiceError):
            queue.register_tenant("t", TenantQuota())

    def test_fifo_within_tenant(self):
        queue = FairShareQueue()
        queue.register_tenant("t", TenantQuota(max_queued=10))
        for index in range(3):
            queue.push(entry(f"k{index}", "t", sequence=index))
        popped = [queue.pop_next({}).key for _ in range(3)]
        assert popped == ["k0", "k1", "k2"]

    def test_priority_beats_fifo(self):
        queue = FairShareQueue()
        queue.register_tenant("t", TenantQuota(max_queued=10))
        queue.push(entry("low", "t", priority=0, sequence=0))
        queue.push(entry("high", "t", priority=5, sequence=1))
        assert queue.pop_next({}).key == "high"
        assert queue.pop_next({}).key == "low"

    def test_max_queued_enforced_on_push(self):
        queue = FairShareQueue()
        queue.register_tenant("t", TenantQuota(max_queued=2))
        queue.push(entry("a", "t", sequence=0))
        queue.push(entry("b", "t", sequence=1))
        with pytest.raises(QuotaError):
            queue.push(entry("c", "t", sequence=2))

    def test_requeue_bypasses_admission_quota(self):
        queue = FairShareQueue()
        queue.register_tenant("t", TenantQuota(max_queued=1))
        queue.push(entry("a", "t", sequence=0))
        # A retried execution was already admitted once; bouncing it
        # would turn a worker crash into a lost request.
        queue.push(entry("b", "t", sequence=1), requeue=True)
        assert queue.depth("t") == 2

    def test_max_inflight_skips_tenant(self):
        queue = FairShareQueue()
        queue.register_tenant("busy", TenantQuota(max_inflight=1))
        queue.register_tenant("idle", TenantQuota(max_inflight=1))
        queue.push(entry("b1", "busy", sequence=0))
        queue.push(entry("i1", "idle", sequence=1))
        popped = queue.pop_next({"busy": 1})
        assert popped.key == "i1"
        # Both at cap: nothing schedulable, work stays queued.
        assert queue.pop_next({"busy": 1, "idle": 1}) is None
        assert queue.depth("busy") == 1

    def test_weighted_fair_share_is_two_to_one(self):
        queue = FairShareQueue()
        queue.register_tenant("heavy", TenantQuota(weight=2.0,
                                                   max_queued=50,
                                                   max_inflight=50))
        queue.register_tenant("light", TenantQuota(weight=1.0,
                                                   max_queued=50,
                                                   max_inflight=50))
        for index in range(30):
            queue.push(entry(f"h{index}", "heavy", sequence=index))
            queue.push(entry(f"l{index}", "light", sequence=100 + index))
        grants = [queue.pop_next({}).tenant for _ in range(30)]
        assert grants.count("heavy") == 20
        assert grants.count("light") == 10

    def test_selection_is_deterministic(self):
        def drain():
            queue = FairShareQueue()
            queue.register_tenant("a", TenantQuota(weight=3.0,
                                                   max_queued=40))
            queue.register_tenant("b", TenantQuota(weight=1.0,
                                                   max_queued=40))
            for index in range(20):
                queue.push(entry(f"a{index}", "a", sequence=index))
                queue.push(entry(f"b{index}", "b", sequence=50 + index))
            order = []
            while queue.total_depth():
                order.append(queue.pop_next({}).key)
            return order

        assert drain() == drain()

    def test_empty_queue_pops_none(self):
        queue = FairShareQueue()
        queue.register_tenant("t", TenantQuota())
        assert queue.pop_next({}) is None

    def test_depth_accounting(self):
        queue = FairShareQueue()
        queue.register_tenant("a", TenantQuota())
        queue.register_tenant("b", TenantQuota())
        queue.push(entry("k", "a", sequence=0))
        assert queue.depths() == {"a": 1, "b": 0}
        assert queue.total_depth() == 1
