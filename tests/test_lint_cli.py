"""The `repro lint` subcommand: exit codes, formats, selection."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main


CLEAN = "def double(x):\n    return 2 * x\n"

WARNING_ONLY = textwrap.dedent("""
    import os

    def tag():
        return os.getenv("GLOBAL_TAG")
""")

WITH_ERROR = textwrap.dedent("""
    import time

    def stamp():
        return time.time()
""")


@pytest.fixture
def module(tmp_path):
    def write(source: str, name: str = "mod.py"):
        path = tmp_path / name
        path.write_text(source, encoding="utf-8")
        return str(path)
    return write


class TestExitCodes:
    def test_exit_0_on_clean_file(self, module, capsys):
        assert main(["lint", module(CLEAN)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_1_on_warning(self, module):
        assert main(["lint", module(WARNING_ONLY)]) == 1

    def test_exit_2_on_error(self, module, capsys):
        assert main(["lint", module(WITH_ERROR)]) == 2
        assert "DAS001" in capsys.readouterr().out

    def test_error_dominates_warning(self, module):
        assert main(["lint", module(WARNING_ONLY, "a.py"),
                     module(WITH_ERROR, "b.py")]) == 2


class TestFormats:
    def test_json_output_parses(self, module, capsys):
        assert main(["lint", "--format", "json",
                     module(WITH_ERROR)]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 2
        assert payload["findings"][0]["code"] == "DAS001"

    def test_json_clean_report(self, module, capsys):
        assert main(["lint", "--format", "json", module(CLEAN)]) == 0
        assert json.loads(capsys.readouterr().out)["findings"] == []


class TestSelection:
    def test_ignore_downgrades_exit(self, module):
        assert main(["lint", "--ignore", "DAS001",
                     module(WITH_ERROR)]) == 0

    def test_select_limits_to_prefix(self, module, capsys):
        assert main(["lint", "--select", "DAS005",
                     module(WARNING_ONLY + WITH_ERROR)]) == 1
        out = capsys.readouterr().out
        assert "DAS005" in out
        assert "DAS001" not in out


class TestTargets:
    def test_missing_target_is_an_error(self, capsys):
        assert main(["lint", "/nonexistent/analysis.py"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_no_targets_is_an_error(self, capsys):
        assert main(["lint"]) == 2

    def test_directory_target_recurses(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "bad.py").write_text(WITH_ERROR,
                                                 encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 2

    def test_json_document_target(self, tmp_path):
        spec = tmp_path / "skim.json"
        spec.write_text(json.dumps({"name": "s", "cut": {
            "kind": "count", "collection": "axions", "min_count": 1,
        }}), encoding="utf-8")
        assert main(["lint", str(spec)]) == 2

    def test_list_rules_prints_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DAS001" in out
        assert "DAS112" in out


class TestBundledArtifacts:
    def test_bundled_corpus_is_clean(self, capsys):
        assert main(["lint", "--bundled"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_repo_examples_are_clean(self):
        import pathlib

        import repro.rivet.standard_analyses as module

        repo_root = pathlib.Path(__file__).resolve().parent.parent
        examples = repo_root / "examples"
        assert main(["lint", "--bundled", str(examples),
                     module.__file__]) == 0
