"""The `repro lint` subcommand: exit codes, formats, selection."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.cli import main


CLEAN = "def double(x):\n    return 2 * x\n"

WARNING_ONLY = textwrap.dedent("""
    import os

    def tag():
        return os.getenv("GLOBAL_TAG")
""")

WITH_ERROR = textwrap.dedent("""
    import time

    def stamp():
        return time.time()
""")


@pytest.fixture
def module(tmp_path):
    def write(source: str, name: str = "mod.py"):
        path = tmp_path / name
        path.write_text(source, encoding="utf-8")
        return str(path)
    return write


class TestExitCodes:
    def test_exit_0_on_clean_file(self, module, capsys):
        assert main(["lint", module(CLEAN)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_1_on_warning(self, module):
        assert main(["lint", module(WARNING_ONLY)]) == 1

    def test_exit_2_on_error(self, module, capsys):
        assert main(["lint", module(WITH_ERROR)]) == 2
        assert "DAS001" in capsys.readouterr().out

    def test_error_dominates_warning(self, module):
        assert main(["lint", module(WARNING_ONLY, "a.py"),
                     module(WITH_ERROR, "b.py")]) == 2


class TestFormats:
    def test_json_output_parses(self, module, capsys):
        assert main(["lint", "--format", "json",
                     module(WITH_ERROR)]) == 2
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 2
        assert payload["findings"][0]["code"] == "DAS001"

    def test_json_clean_report(self, module, capsys):
        assert main(["lint", "--format", "json", module(CLEAN)]) == 0
        assert json.loads(capsys.readouterr().out)["findings"] == []


class TestSelection:
    def test_ignore_downgrades_exit(self, module):
        assert main(["lint", "--ignore", "DAS001",
                     module(WITH_ERROR)]) == 0

    def test_select_limits_to_prefix(self, module, capsys):
        assert main(["lint", "--select", "DAS005",
                     module(WARNING_ONLY + WITH_ERROR)]) == 1
        out = capsys.readouterr().out
        assert "DAS005" in out
        assert "DAS001" not in out


class TestTargets:
    def test_missing_target_is_an_error(self, capsys):
        assert main(["lint", "/nonexistent/analysis.py"]) == 2
        assert "does not exist" in capsys.readouterr().err

    def test_no_targets_is_an_error(self, capsys):
        assert main(["lint"]) == 2

    def test_directory_target_recurses(self, tmp_path):
        (tmp_path / "sub").mkdir()
        (tmp_path / "sub" / "bad.py").write_text(WITH_ERROR,
                                                 encoding="utf-8")
        assert main(["lint", str(tmp_path)]) == 2

    def test_json_document_target(self, tmp_path):
        spec = tmp_path / "skim.json"
        spec.write_text(json.dumps({"name": "s", "cut": {
            "kind": "count", "collection": "axions", "min_count": 1,
        }}), encoding="utf-8")
        assert main(["lint", str(spec)]) == 2

    def test_list_rules_prints_catalog(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "DAS001" in out
        assert "DAS112" in out


class TestBundledArtifacts:
    def test_bundled_corpus_is_clean(self, capsys):
        assert main(["lint", "--bundled"]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_repo_examples_are_clean(self):
        import pathlib

        import repro.rivet.standard_analyses as module

        repo_root = pathlib.Path(__file__).resolve().parent.parent
        examples = repo_root / "examples"
        assert main(["lint", "--bundled", str(examples),
                     module.__file__]) == 0


DEEP_TREE = {
    "base.py": textwrap.dedent("""
        class Analysis:
            pass

        class AnalysisMetadata:
            def __init__(self, name, inspire_id=""):
                self.name = name
    """),
    "analysis.py": textwrap.dedent("""
        from base import Analysis, AnalysisMetadata
        import helpers

        class ZPeakAnalysis(Analysis):
            def __init__(self):
                self.metadata = AnalysisMetadata(
                    name="TOY_2013_I0042", inspire_id="I0042")

            def analyze(self, event):
                return helpers.smear(event)
    """),
    "helpers.py": textwrap.dedent("""
        import util

        def smear(value):
            return value + util.clock_offset()
    """),
    "util.py": textwrap.dedent("""
        import time

        def clock_offset():
            return time.time() % 1.0
    """),
}


@pytest.fixture
def deep_tree(tmp_path):
    for relative, source in DEEP_TREE.items():
        (tmp_path / relative).write_text(source, encoding="utf-8")
    return tmp_path


class TestDeepPass:
    def test_shallow_misses_the_entry_point_hazard(self, deep_tree):
        assert main(["lint", str(deep_tree / "analysis.py")]) == 0

    def test_deep_flags_it_with_the_chain(self, deep_tree, capsys):
        assert main(["lint", "--deep", str(deep_tree)]) == 2
        out = capsys.readouterr().out
        assert "DAS201" in out
        assert "helpers.smear -> util.clock_offset" in out

    def test_deep_on_a_single_file_scans_its_tree(self, deep_tree,
                                                  capsys):
        assert main(["lint", "--deep",
                     str(deep_tree / "analysis.py")]) == 2
        assert "DAS201" in capsys.readouterr().out


class TestSuppress:
    def test_suppress_drops_a_code_with_reason(self, module):
        assert main(["lint", "--suppress",
                     "DAS001: wall clock is the fixture's point",
                     module(WITH_ERROR)]) == 0

    def test_suppress_without_reason_is_an_error(self, module, capsys):
        assert main(["lint", "--suppress", "DAS001",
                     module(WITH_ERROR)]) == 2
        assert "CODE:REASON" in capsys.readouterr().err

    def test_suppress_with_blank_reason_is_an_error(self, module,
                                                    capsys):
        assert main(["lint", "--suppress", "DAS001:  ",
                     module(WITH_ERROR)]) == 2
        assert "CODE:REASON" in capsys.readouterr().err


class TestClosureCommand:
    def test_manifest_to_stdout_is_deterministic(self, deep_tree,
                                                 capsys):
        assert main(["closure", str(deep_tree)]) == 0
        first = capsys.readouterr().out
        assert main(["closure", str(deep_tree)]) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["format"] == "repro-closure-manifest"
        assert {m["module"] for m in payload["modules"]} >= {
            "analysis", "helpers", "util"}

    def test_output_file_written(self, deep_tree, tmp_path, capsys):
        target = tmp_path / "manifest.json"
        assert main(["closure", str(deep_tree),
                     "--output", str(target)]) == 0
        assert json.loads(target.read_text(encoding="utf-8"))
        assert "wrote closure manifest" in capsys.readouterr().out

    def test_check_repository_reports_findings(self, deep_tree,
                                               capsys):
        assert main(["closure", str(deep_tree),
                     "--check-repository"]) == 1
        assert "DAS210" in capsys.readouterr().out

    def test_check_archive_missing_blob_exits_2(self, deep_tree,
                                                tmp_path, capsys):
        from repro.core.archive import PreservationArchive
        from repro.lint import archive_closure_sources
        from repro.lint.flow import analyze_tree

        graph = analyze_tree(deep_tree)
        archive = PreservationArchive("cli-closure")
        archive_closure_sources(archive, graph)
        directory = tmp_path / "archive"
        archive.save(directory)
        assert main(["closure", str(deep_tree),
                     "--check-archive", str(directory)]) == 0

        victim = next(
            entry["digest"]
            for entry in json.loads((directory / "catalogue.json")
                                    .read_text(encoding="utf-8"))["entries"]
            if json.loads((directory / "blobs" / entry["digest"])
                          .read_text(encoding="utf-8"))
            .get("module") == "util")
        (directory / "blobs" / victim).unlink()
        capsys.readouterr()
        assert main(["closure", str(deep_tree),
                     "--check-archive", str(directory)]) == 2
        assert "DAS208" in capsys.readouterr().out

    def test_unknown_entry_is_an_error(self, deep_tree, capsys):
        assert main(["closure", str(deep_tree),
                     "--entry", "Nope"]) == 2
        assert "Nope" in capsys.readouterr().err

    def test_missing_target_is_an_error(self, capsys):
        assert main(["closure", "/nonexistent/tree"]) == 2
        assert "does not exist" in capsys.readouterr().err
