"""Columnar-vs-per-event equivalence suite.

This is the suite the columnar engine's determinism claims hang on:

* batch reconstruction is **bit-identical** to the per-event loop,
* the campaign/backends' columnar paths produce **bit-identical**
  artifacts (AODs, conditions manifests, selected counts, limits),
* vectorised skim/slim reproduce the scalar cut and column semantics
  exactly,
* ``smear_array`` consumes the same RNG draws as a scalar smear loop
  and returns bit-identical energies.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.columnar import EventBatch, apply_skim, apply_slim, cut_mask
from repro.conditions import default_conditions
from repro.datamodel import (
    AndCut,
    CountCut,
    GoodRunList,
    HtCut,
    MassWindowCut,
    MetCut,
    NotCut,
    OrCut,
    RunRecord,
    RunRegistry,
    SkimSpec,
    SlimSpec,
    TriggerCut,
    make_aod,
)
from repro.datamodel.skimslim import _DERIVED_COLUMNS
from repro.detector import DetectorSimulation, Digitizer
from repro.detector.response import CaloResponse
from repro.generation import (
    DrellYanZ,
    GeneratorConfig,
    HiggsToFourLeptons,
    QCDDijets,
    ToyGenerator,
    WProduction,
)
from repro.recast import FullChainBackend, PreservedSearch
from repro.recast.scan import run_mass_scan
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.workflow import ProcessingCampaign


@pytest.fixture(scope="module")
def raw_sample(gpd_geometry):
    """80 mixed-process RAW events (gen -> sim -> digi)."""
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ(), WProduction(cross_section_pb=2200.0),
                   QCDDijets(cross_section_pb=3000.0),
                   HiggsToFourLeptons()],
        seed=8100))
    simulation = DetectorSimulation(gpd_geometry, seed=8101)
    digitizer = Digitizer(gpd_geometry, run_number=61, seed=8102)
    return digitizer.digitize_many(
        simulation.simulate_many(generator.generate(80)))


class TestBatchReconstruction:
    def test_bit_identical_to_per_event(self, gpd_geometry,
                                        conditions_store, raw_sample):
        per_event = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        batch = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        scalar_recos = per_event.reconstruct_many(raw_sample)
        batch_recos = batch.reconstruct_batch(raw_sample)
        assert ([r.to_dict() for r in batch_recos]
                == [r.to_dict() for r in scalar_recos])

    def test_conditions_reads_identical(self, gpd_geometry,
                                        conditions_store, raw_sample):
        per_event = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        batch = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))
        per_event.reconstruct_many(raw_sample)
        batch.reconstruct_batch(raw_sample)
        assert per_event.conditions_reads == batch.conditions_reads


def _campaign(gpd_geometry, conditions_store, columnar):
    return ProcessingCampaign(
        name="Reco-v1",
        geometry=gpd_geometry,
        conditions=conditions_store,
        global_tag="GT-FINAL",
        generator=ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=6100)),
        events_per_section=0.3,
        max_events_per_run=20,
        columnar=columnar,
    )


class TestCampaignColumnar:
    def test_campaign_bit_identical(self, gpd_geometry,
                                    conditions_store):
        registry = RunRegistry("RunA")
        registry.add(RunRecord(5, 60, 0.5))
        registry.add(RunRecord(25, 80, 0.5))
        good_runs = GoodRunList("GRL")
        good_runs.certify(5, 1, 60)
        good_runs.certify(25, 1, 80)

        scalar = _campaign(gpd_geometry, conditions_store, False)
        scalar.process(registry, good_runs)
        columnar = _campaign(gpd_geometry, conditions_store, True)
        columnar.process(registry, good_runs)

        assert ([a.to_dict() for a in scalar.all_aods()]
                == [a.to_dict() for a in columnar.all_aods()])
        assert (scalar.conditions_manifest()
                == columnar.conditions_manifest())


def _search():
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    return PreservedSearch(
        analysis_id="GPD-EXO-01",
        title="High-mass dimuon search",
        experiment="GPD",
        selection=selection,
        n_observed=3,
        background=2.5,
        background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )


class TestRecastColumnar:
    def test_scan_limits_identical(self):
        search = _search()
        backend = FullChainBackend("GPD", n_events=80,
                                   n_limit_toys=400, seed=900)
        masses = [800.0, 1500.0]
        scalar = run_mass_scan(backend, search, masses)
        columnar = run_mass_scan(backend, search, masses,
                                 columnar=True)
        assert scalar.limits() == columnar.limits()
        assert ([p.result.n_selected for p in scalar.points]
                == [p.result.n_selected for p in columnar.points])
        # The flag was applied to a copy, not the caller's backend.
        assert backend.columnar is False


ALL_CUTS = [
    CountCut("muons", 2, min_pt=10.0),
    CountCut("electrons", 1, min_pt=5.0, max_abs_eta=1.5),
    CountCut("leptons", 2, min_pt=5.0),
    CountCut("jets", 2, min_pt=20.0),
    MetCut(25.0),
    HtCut(60.0),
    MassWindowCut("leptons", 60.0, 120.0),
    MassWindowCut("muons", 60.0, 120.0, opposite_charge=True),
    MassWindowCut("jets", 50.0, 500.0),
    TriggerCut(("HLT_SingleMu20", "HLT_DiEl12")),
    AndCut((CountCut("muons", 2, min_pt=10.0), MetCut(10.0))),
    OrCut((MetCut(60.0), HtCut(100.0))),
    NotCut(MetCut(30.0)),
]


class TestVectorisedSelection:
    @pytest.mark.parametrize(
        "cut", ALL_CUTS, ids=[c.kind() for c in ALL_CUTS[:-3]]
        + ["and", "or", "not"])
    def test_cut_mask_matches_scalar_passes(self, cut, mixed_aods):
        batch = EventBatch.from_events(mixed_aods)
        mask = cut_mask(cut, batch)
        want = [cut.passes(event) for event in mixed_aods]
        assert mask.dtype == bool
        assert mask.tolist() == want

    def test_apply_skim_matches_scalar(self, mixed_aods):
        spec = SkimSpec("dimuon", CountCut("muons", 2, min_pt=10.0))
        kept_batch = apply_skim(spec, EventBatch.from_events(mixed_aods))
        want = spec.apply(mixed_aods)
        assert ([e.to_dict() for e in kept_batch.to_events()]
                == [e.to_dict() for e in want])

    def test_apply_slim_matches_scalar(self, mixed_aods):
        spec = SlimSpec("all", tuple(sorted(_DERIVED_COLUMNS)))
        batch_rows = apply_slim(spec, EventBatch.from_events(mixed_aods))
        scalar_rows = spec.apply(mixed_aods)
        assert ([r.to_dict() for r in batch_rows]
                == [r.to_dict() for r in scalar_rows])
        # Column values are plain JSON scalars, not numpy types.
        for row in batch_rows:
            for value in row.columns.values():
                assert type(value) in (int, float, bool, str)


class TestSmearArray:
    def test_bit_identical_draw_for_draw(self):
        response = CaloResponse(stochastic_term=0.5, constant_term=0.05)
        energies = np.linspace(0.5, 250.0, 64)

        scalar_rng = np.random.default_rng(4242)
        scalar = [response.smear(float(e), scalar_rng)
                  for e in energies]
        array_rng = np.random.default_rng(4242)
        batch = response.smear_array(energies, array_rng)
        assert batch.tolist() == scalar

    def test_non_positive_energies_draw_nothing(self):
        response = CaloResponse(stochastic_term=0.5, constant_term=0.05)
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        smeared = response.smear_array(
            np.array([0.0, -3.0, 10.0]), rng_a)
        assert smeared[0] == 0.0 and smeared[1] == 0.0
        # Only the positive entry consumed a draw.
        assert smeared[2] == response.smear(10.0, rng_b)
