"""Tests for content-addressed dedup keys and the result cache."""

from repro.recast import FullChainBackend, ModelSpec, RecastResult
from repro.service import (
    ResultCache,
    backend_fingerprint,
    dedup_key,
)


def result(model="Zp"):
    return RecastResult(
        analysis_id="GPD-EXO-01", model_name=model, n_generated=100,
        n_selected=40, signal_efficiency=0.4, efficiency_error=0.05,
        upper_limit_pb=0.1, model_cross_section_pb=0.05,
        excluded=False, backend="test",
    )


class TestBackendFingerprint:
    def test_captures_scalar_config(self):
        backend = FullChainBackend("GPD", n_events=120,
                                   n_limit_toys=500, seed=7)
        fingerprint = backend_fingerprint(backend)
        assert fingerprint["class"] == "FullChainBackend"
        assert fingerprint["n_events"] == 120
        assert fingerprint["seed"] == 7

    def test_different_config_different_fingerprint(self):
        one = backend_fingerprint(FullChainBackend("GPD", n_events=10))
        two = backend_fingerprint(FullChainBackend("GPD", n_events=20))
        assert one != two

    def test_private_attributes_excluded(self):
        backend = FullChainBackend("GPD", n_events=10)
        backend._scratch = object()
        assert "_scratch" not in backend_fingerprint(backend)


class TestDedupKey:
    MODEL = ModelSpec("Zp", "zprime", {"mass": 1500.0})

    def test_stable(self):
        assert dedup_key("A", self.MODEL, {"class": "B"}) == \
            dedup_key("A", self.MODEL, {"class": "B"})

    def test_sixty_four_hex_chars(self):
        key = dedup_key("A", self.MODEL, {})
        assert len(key) == 64
        int(key, 16)

    def test_sensitive_to_every_component(self):
        base = dedup_key("A", self.MODEL, {"class": "B"})
        assert dedup_key("A2", self.MODEL, {"class": "B"}) != base
        assert dedup_key("A", ModelSpec("Zp", "zprime",
                                        {"mass": 1600.0}),
                         {"class": "B"}) != base
        assert dedup_key("A", self.MODEL, {"class": "C"}) != base

    def test_dict_ordering_irrelevant(self):
        spec_a = ModelSpec("Zp", "zprime", {"mass": 1.0, "width": 2.0})
        spec_b = ModelSpec("Zp", "zprime", {"width": 2.0, "mass": 1.0})
        assert dedup_key("A", spec_a, {}) == dedup_key("A", spec_b, {})


class TestResultCache:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.get("k") is None
        cache.put("k", result())
        assert cache.get("k").model_name == "Zp"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1
        assert cache.stats.hit_rate == 0.5

    def test_hit_rate_with_no_lookups(self):
        assert ResultCache().stats.hit_rate == 0.0

    def test_contains_and_len_do_not_count(self):
        cache = ResultCache()
        cache.put("k", result())
        assert "k" in cache
        assert len(cache) == 1
        assert cache.stats.hits == 0
        assert cache.stats.misses == 0

    def test_put_is_idempotent_per_key(self):
        cache = ResultCache()
        cache.put("k", result("first"))
        cache.put("k", result("second"))
        assert len(cache) == 1
        assert cache.get("k").model_name == "second"
