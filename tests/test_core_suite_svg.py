"""Tests for the archive validation suite and the SVG display."""

import pytest

from repro.core import (
    PreservationArchive,
    PreservationMetadata,
    PreservedAnalysisBundle,
    ScriptCapture,
    run_validation_suite,
)
from repro.datamodel import CountCut, SkimSpec, SlimSpec
from repro.detector import generic_lhc_detector
from repro.errors import OutreachError
from repro.outreach import (
    EventDisplayRecord,
    Level2Converter,
    render_event_svg,
)


def _metadata(title):
    return PreservationMetadata.build(
        title=title, creator="curator", experiment="GPD",
        created="2013-03-21", artifact_format="json", size_bytes=0,
        checksum="", producer="test", access_policy="public",
    )


def final_analysis(events):
    return {"n": len(events)}


@pytest.fixture
def populated_archive(z_aods):
    archive = PreservationArchive("sweep-target")
    bundle = PreservedAnalysisBundle.create(
        "sweep-bundle", z_aods[:40],
        SkimSpec("s", CountCut("muons", 1)),
        SlimSpec("n", ("met",)),
    )
    archive.store(bundle.to_dict(), "aod_dataset", _metadata("bundle"))
    capture = ScriptCapture.create(
        "sweep-capture", final_analysis, [{"met": 1.0}, {"met": 2.0}],
    )
    archive.store(capture.to_dict(), "analysis_description",
                  _metadata("capture"))
    archive.store({"plain": "payload"}, "hepdata_record",
                  _metadata("plain"))
    return archive


class TestValidationSuite:
    def test_healthy_archive(self, populated_archive):
        report = run_validation_suite(populated_archive)
        assert report.healthy
        assert report.n_artifacts == 3
        assert report.n_bundles == 1
        assert report.n_bundles_passed == 1
        assert report.n_captures == 1
        assert report.n_captures_passed == 1
        assert "HEALTHY" in report.render()

    def test_corruption_surfaces(self, populated_archive):
        digest = populated_archive.digests()[0]
        populated_archive._corrupt_for_testing(digest)
        report = run_validation_suite(populated_archive)
        assert not report.healthy
        assert report.n_fixity_failed == 1
        assert any("fixity" in failure for failure in report.failures)

    def test_broken_bundle_surfaces(self, z_aods):
        archive = PreservationArchive("broken")
        bundle = PreservedAnalysisBundle.create(
            "bad-bundle", z_aods[:10],
            SkimSpec("s", CountCut("muons", 1)),
            SlimSpec("n", ("met",)),
        )
        record = bundle.to_dict()
        record["expected_rows"] = record["expected_rows"][:-1]
        archive.store(record, "aod_dataset", _metadata("bad"))
        report = run_validation_suite(archive)
        assert not report.healthy
        assert report.n_bundles == 1
        assert report.n_bundles_passed == 0

    def test_empty_archive_is_healthy(self):
        report = run_validation_suite(PreservationArchive("empty"))
        assert report.healthy
        assert report.n_artifacts == 0


class TestSvgDisplay:
    @pytest.fixture(scope="class")
    def display_record(self, z_aods):
        converter = Level2Converter()
        level2 = next(
            event for event in converter.convert_many(z_aods)
            if event.leptons()
        )
        record = EventDisplayRecord.build(generic_lhc_detector(),
                                          level2)
        return record.to_dict()

    def test_valid_svg_structure(self, display_record):
        svg = render_event_svg(display_record)
        assert svg.startswith("<svg")
        assert svg.rstrip().endswith("</svg>")
        assert svg.count("<circle") >= 8  # four shells, two rings each

    def test_tracks_rendered(self, display_record):
        svg = render_event_svg(display_record)
        assert "<polyline" in svg

    def test_header_text(self, display_record):
        svg = render_event_svg(display_record)
        assert "run" in svg and "MET" in svg

    def test_size_parameter(self, display_record):
        svg = render_event_svg(display_record, size=300)
        assert 'width="300"' in svg

    def test_rejects_non_display_record(self):
        with pytest.raises(OutreachError):
            render_event_svg({"format": "something-else"})


class TestPortalHtmlExport:
    @pytest.fixture(scope="class")
    def level2_events(self, z_aods):
        return Level2Converter().convert_many(z_aods)

    def test_standalone_page(self, level2_events, tmp_path):
        from repro.outreach import write_portal_html

        path = write_portal_html(tmp_path / "portal.html",
                                 level2_events,
                                 generic_lhc_detector(),
                                 dataset_name="z-sample")
        content = path.read_text()
        assert content.startswith("<!DOCTYPE html>")
        assert content.count("<svg") >= 2  # histogram + >=1 display
        assert "z-sample" in content
        # No external references (the SVG xmlns is a namespace id,
        # not a fetched resource): no links, images, or scripts.
        assert "https://" not in content
        assert "<script" not in content
        assert "<img" not in content and "<link" not in content

    def test_histogram_svg_structure(self, level2_events):
        from repro.outreach import OutreachPortal, histogram_svg

        portal = OutreachPortal(level2_events)
        histogram = portal.histogram("dimuon_mass", 20, 60.0, 120.0)
        svg = histogram_svg(histogram)
        assert svg.count("<rect") > 3

    def test_empty_histogram_rejected(self):
        from repro.errors import OutreachError
        from repro.outreach import histogram_svg
        from repro.stats import Histogram1D

        with pytest.raises(OutreachError):
            histogram_svg(Histogram1D("empty", 5, 0.0, 1.0))

    def test_empty_dataset_rejected(self, tmp_path):
        from repro.errors import OutreachError
        from repro.outreach import export_portal_html

        with pytest.raises(OutreachError):
            export_portal_html([], generic_lhc_detector())
