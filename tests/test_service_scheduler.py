"""Integration tests for the RECAST request service scheduler.

The acceptance properties of the service layer live here: replay
determinism (same script, byte-identical event log), dedup (identical
concurrent submissions execute the back end exactly once), and crash
recovery (a killed worker's request completes via lease re-queue
within the retry cap).
"""

import pytest

from repro.errors import RecastError, ServiceError
from repro.recast import ModelSpec, RecastAPI, RequestStatus
from repro.runtime import ExecutionPolicy, LogicalClock
from repro.service import (
    CrashingBackend,
    FailingBackend,
    RecastService,
    ServiceConfig,
    TenantQuota,
    demo_api,
    demo_script,
    load_script,
    run_script,
    validate_script,
)


def model(mass=1500.0, name=None):
    return ModelSpec(name or f"Zp-{mass:g}", "zprime",
                     {"mass": mass, "cross_section_pb": 0.05})


def make_service(api=None, config=None, **kwargs):
    api = api if api is not None else demo_api(n_events=40,
                                              n_limit_toys=200)
    service = RecastService(
        api,
        config if config is not None else ServiceConfig(
            lease_duration=2.0, max_attempts=3,
            backoff_base=1.0, backoff_cap=4.0),
        **kwargs,
    )
    return api, service


class CountingBackend:
    """Wraps a back end, counting driver-side process() calls.

    The count is kept in an underscore attribute so it stays out of
    the backend fingerprint — a counter that changed the dedup key
    between submissions would defeat the dedup it is measuring.
    """

    def __init__(self, inner):
        self.inner = inner
        self.name = inner.name
        self._calls = 0

    @property
    def calls(self):
        return self._calls

    def process(self, search, spec):
        self._calls += 1
        return self.inner.process(search, spec)


def install_counter(api, experiment="GPD"):
    counter = CountingBackend(api._backends[experiment])
    api._backends[experiment] = counter
    return counter


class TestSubmission:
    def test_queued_then_committed(self):
        api, service = make_service()
        service.register_tenant("t")
        ticket = service.submit("t", "GPD-EXO-01", model())
        assert ticket.status == "queued"
        request = api.get_request(ticket.request_id)
        assert request.status is RequestStatus.QUEUED
        service.run_until_idle()
        assert request.status is RequestStatus.PENDING_APPROVAL
        assert request.result is not None

    def test_approval_still_gates_release(self):
        # The service schedules; the experiment still controls release.
        api, service = make_service()
        service.register_tenant("t")
        ticket = service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        assert "result" not in api.public_status(ticket.request_id)
        api.approve(ticket.request_id, "coordinator")
        assert "result" in api.public_status(ticket.request_id)

    def test_unknown_analysis_raises(self):
        _, service = make_service()
        service.register_tenant("t")
        with pytest.raises(RecastError):
            service.submit("t", "NOPE", model())

    def test_unknown_tenant_raises(self):
        _, service = make_service()
        with pytest.raises(ServiceError):
            service.submit("ghost", "GPD-EXO-01", model())


class TestDedup:
    def test_identical_submissions_execute_backend_once(self):
        api, service = make_service()
        counter = install_counter(api)
        service.register_tenant("a")
        service.register_tenant("b")
        one = service.submit("a", "GPD-EXO-01", model())
        two = service.submit("b", "GPD-EXO-01", model())
        assert one.status == "queued"
        assert two.status == "subscribed"
        assert one.key == two.key
        service.run_until_idle()
        assert counter.calls == 1
        first = api.get_request(one.request_id)
        second = api.get_request(two.request_id)
        assert first.status is RequestStatus.PENDING_APPROVAL
        assert second.status is RequestStatus.PENDING_APPROVAL
        assert second.result is first.result

    def test_dedup_hit_observable_in_metrics(self):
        api, service = make_service()
        service.register_tenant("a")
        service.submit("a", "GPD-EXO-01", model())
        service.submit("a", "GPD-EXO-01", model())
        counters = service.metrics.snapshot()["counters"]
        hits = [c["value"] for c in counters
                if c["name"] == "service.dedup_hits"]
        assert hits == [1]

    def test_fan_out_to_many_subscribers(self):
        api, service = make_service()
        counter = install_counter(api)
        service.register_tenant("t", TenantQuota(max_queued=2))
        tickets = [service.submit("t", "GPD-EXO-01", model())
                   for _ in range(6)]
        assert [t.status for t in tickets] == \
            ["queued"] + ["subscribed"] * 5
        service.run_until_idle()
        assert counter.calls == 1
        results = {id(api.get_request(t.request_id).result)
                   for t in tickets}
        assert len(results) == 1

    def test_repeat_after_commit_is_cache_hit(self):
        api, service = make_service()
        counter = install_counter(api)
        service.register_tenant("t")
        service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        ticket = service.submit("t", "GPD-EXO-01", model())
        assert ticket.status == "cached"
        assert counter.calls == 1
        request = api.get_request(ticket.request_id)
        assert request.status is RequestStatus.PENDING_APPROVAL
        assert service.cache.stats.hits == 1

    def test_different_models_do_not_dedup(self):
        api, service = make_service()
        counter = install_counter(api)
        service.register_tenant("t")
        service.submit("t", "GPD-EXO-01", model(1500.0))
        service.submit("t", "GPD-EXO-01", model(1700.0))
        service.run_until_idle()
        assert counter.calls == 2


class TestQuotas:
    def test_overflow_rejected_not_raised(self):
        api, service = make_service()
        service.register_tenant("t", TenantQuota(max_queued=1))
        first = service.submit("t", "GPD-EXO-01", model(1500.0))
        second = service.submit("t", "GPD-EXO-01", model(1700.0))
        assert first.status == "queued"
        assert second.status == "rejected"
        request = api.get_request(second.request_id)
        assert request.status is RequestStatus.REJECTED
        assert "max_queued" in request.history[0]

    def test_rejection_counted_in_metrics(self):
        api, service = make_service()
        service.register_tenant("t", TenantQuota(max_queued=1))
        service.submit("t", "GPD-EXO-01", model(1500.0))
        service.submit("t", "GPD-EXO-01", model(1700.0))
        counters = service.metrics.snapshot()["counters"]
        rejections = [c["value"] for c in counters
                      if c["name"] == "service.quota_rejections"]
        assert rejections == [1]

    def test_rejected_tenant_can_resubmit_after_drain(self):
        api, service = make_service()
        service.register_tenant("t", TenantQuota(max_queued=1))
        service.submit("t", "GPD-EXO-01", model(1500.0))
        service.run_until_idle()
        ticket = service.submit("t", "GPD-EXO-01", model(1700.0))
        assert ticket.status == "queued"

    def test_max_inflight_throttles_concurrency(self):
        api, service = make_service(config=ServiceConfig(
            lease_duration=100.0, max_inflight=4))
        service.register_tenant("t", TenantQuota(max_queued=10,
                                                 max_inflight=1))
        for mass in (1500.0, 1600.0, 1700.0):
            service.submit("t", "GPD-EXO-01", model(mass))
        service.step()
        # Tenant cap of 1 binds even though the global cap allows 4 —
        # and dispatch being synchronous, each step commits the one
        # leased execution before the next grant round.
        grants = [e for e in service.events
                  if e["event"] == "lease_grant"]
        assert len(grants) == 1


class TestFairness:
    def test_weighted_share_under_contention(self):
        api, service = make_service(config=ServiceConfig(
            lease_duration=5.0, max_inflight=1))
        service.register_tenant("heavy", TenantQuota(
            weight=2.0, max_queued=30, max_inflight=1))
        service.register_tenant("light", TenantQuota(
            weight=1.0, max_queued=30, max_inflight=1))
        for index in range(12):
            service.submit("heavy", "GPD-EXO-01",
                           model(1000.0 + index, name=f"h{index}"))
            service.submit("light", "GPD-EXO-01",
                           model(3000.0 + index, name=f"l{index}"))
        for _ in range(12):
            service.step()
        grants = [e["tenant"] for e in service.events
                  if e["event"] == "lease_grant"]
        assert grants.count("heavy") == 8
        assert grants.count("light") == 4


class TestCrashRecovery:
    def _crashing(self, crash_times, max_attempts=3):
        api = demo_api(n_events=40, n_limit_toys=200)
        api._backends["GPD"] = CrashingBackend(
            inner=api._backends["GPD"], crash_times=crash_times,
            name="GPD-full-chain")
        service = RecastService(api, ServiceConfig(
            lease_duration=2.0, max_attempts=max_attempts,
            backoff_base=1.0, backoff_cap=4.0))
        service.register_tenant("t")
        return api, service

    def test_killed_worker_recovers_within_retry_cap(self):
        api, service = self._crashing(crash_times=2, max_attempts=3)
        ticket = service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        request = api.get_request(ticket.request_id)
        assert request.status is RequestStatus.PENDING_APPROVAL
        events = [e["event"] for e in service.events]
        assert events.count("worker_crash") == 2
        assert events.count("lease_expire") == 2
        assert events.count("requeue") == 2
        assert events.count("committed") == 1
        grants = [e["attempt"] for e in service.events
                  if e["event"] == "lease_grant"]
        assert grants == [1, 2, 3]

    def test_retry_cap_exhaustion_fails_request(self):
        api, service = self._crashing(crash_times=99, max_attempts=2)
        ticket = service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        request = api.get_request(ticket.request_id)
        assert request.status is RequestStatus.FAILED
        assert "retry cap exhausted" in request.failure_reason
        grants = [e for e in service.events
                  if e["event"] == "lease_grant"]
        assert len(grants) == 2

    def test_lease_lifecycle_recorded_in_history(self):
        api, service = self._crashing(crash_times=1, max_attempts=3)
        ticket = service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        history = api.get_request(ticket.request_id).history
        assert any("-> leased" in line for line in history)
        assert any("-> retrying" in line for line in history)
        assert any("backoff complete" in line for line in history)

    def test_subscribers_share_the_recovered_result(self):
        api, service = self._crashing(crash_times=1, max_attempts=3)
        one = service.submit("t", "GPD-EXO-01", model())
        two = service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        assert api.get_request(two.request_id).status is \
            RequestStatus.PENDING_APPROVAL
        assert api.get_request(two.request_id).result is \
            api.get_request(one.request_id).result

    def test_subscribers_fail_with_exhausted_primary(self):
        api, service = self._crashing(crash_times=99, max_attempts=1)
        one = service.submit("t", "GPD-EXO-01", model())
        two = service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        for ticket in (one, two):
            assert api.get_request(ticket.request_id).status is \
                RequestStatus.FAILED

    def test_backoff_spaces_the_retries(self):
        api, service = self._crashing(crash_times=2, max_attempts=3)
        service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        scheduled = [e for e in service.events
                     if e["event"] == "retry_scheduled"]
        gaps = [e["ready_at"] - e["time"] for e in scheduled]
        assert gaps == [1.0, 2.0]

    def test_deterministic_failure_not_retried(self):
        api = demo_api(n_events=40)
        api._backends["GPD"] = FailingBackend(reason="bad physics")
        service = RecastService(api, ServiceConfig(lease_duration=2.0))
        service.register_tenant("t")
        ticket = service.submit("t", "GPD-EXO-01", model())
        steps = service.run_until_idle()
        request = api.get_request(ticket.request_id)
        assert request.status is RequestStatus.FAILED
        assert request.failure_reason == "bad physics"
        assert steps == 1
        events = [e["event"] for e in service.events]
        assert "retry_scheduled" not in events

    def test_run_until_idle_guard_raises(self):
        api, service = self._crashing(crash_times=99, max_attempts=3)
        service.submit("t", "GPD-EXO-01", model())
        with pytest.raises(ServiceError):
            service.run_until_idle(max_steps=2)


class TestDeterminism:
    def test_replayed_script_is_byte_identical(self):
        def replay():
            service, tickets = run_script(
                demo_api(n_events=40, n_limit_toys=200), demo_script())
            return service.event_log_bytes(), [t.to_dict()
                                               for t in tickets]

        log_one, tickets_one = replay()
        log_two, tickets_two = replay()
        assert log_one == log_two
        assert tickets_one == tickets_two

    def test_results_identical_across_replays(self):
        def replay():
            api = demo_api(n_events=40, n_limit_toys=200)
            _, tickets = run_script(api, demo_script())
            return [api.get_request(t.request_id).result.to_dict()
                    for t in tickets]

        assert replay() == replay()

    def test_crash_recovery_replays_byte_identically(self):
        def replay():
            api, service = TestCrashRecovery()._crashing(
                crash_times=2, max_attempts=3)
            service.submit("t", "GPD-EXO-01", model())
            service.submit("t", "GPD-EXO-01", model(1700.0))
            service.run_until_idle()
            return service.event_log_bytes()

        assert replay() == replay()

    def test_thread_policy_matches_serial(self):
        def run(policy):
            api = demo_api(n_events=40, n_limit_toys=200)
            service, _ = run_script(api, demo_script(), policy=policy)
            return service.event_log_bytes()

        assert run(None) == run(ExecutionPolicy(mode="thread",
                                                n_jobs=4))

    def test_injected_clock_is_the_only_time_source(self):
        api, service = make_service(clock=LogicalClock(start=100.0))
        service.register_tenant("t")
        service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        times = [e["time"] for e in service.events]
        assert min(times) >= 100.0
        assert times == sorted(times)


class TestSubmissionScripts:
    def test_demo_script_validates(self):
        assert validate_script(demo_script())

    def test_envelope_enforced(self):
        with pytest.raises(ServiceError):
            validate_script({"format": "something-else", "version": 1})
        script = demo_script()
        script["version"] = 99
        with pytest.raises(ServiceError):
            validate_script(script)

    def test_malformed_actions_rejected(self):
        script = demo_script()
        script["actions"] = [{"action": "submit", "tenant": "t"}]
        with pytest.raises(ServiceError):
            validate_script(script)
        script["actions"] = [{"action": "explode"}]
        with pytest.raises(ServiceError):
            validate_script(script)

    def test_load_script_roundtrip(self, tmp_path):
        import json

        path = tmp_path / "script.json"
        path.write_text(json.dumps(demo_script()), encoding="utf-8")
        assert load_script(path) == demo_script()

    def test_load_script_bad_file(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ServiceError):
            load_script(path)


class TestObservability:
    def test_spans_cover_submission_and_steps(self):
        from repro.obs import Tracer

        tracer = Tracer("service-test")
        api, service = make_service(tracer=tracer)
        service.register_tenant("t")
        service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        names = {span.name for span in tracer.spans}
        assert "service.submit" in names
        assert "service.step" in names

    def test_metrics_are_deterministic_counts(self):
        def snapshot():
            api, service = make_service()
            service.register_tenant("t")
            service.submit("t", "GPD-EXO-01", model())
            service.submit("t", "GPD-EXO-01", model())
            service.run_until_idle()
            return service.metrics.to_json_bytes(deterministic=True)

        assert snapshot() == snapshot()

    def test_queue_depth_gauge_drains_to_zero(self):
        api, service = make_service()
        service.register_tenant("t")
        service.submit("t", "GPD-EXO-01", model())
        service.run_until_idle()
        gauges = {g["name"]: g["value"]
                  for g in service.metrics.snapshot()["gauges"]}
        assert gauges["service.queue_depth"] == 0
        assert gauges["service.inflight"] == 0
