"""Tests for processing chains, the runner, and resource accounting."""

import pytest

from repro.conditions import default_conditions
from repro.datamodel import (
    AndCut,
    CountCut,
    DataTier,
    MassWindowCut,
    SkimSpec,
    SlimSpec,
)
from repro.detector import DetectorSimulation, Digitizer, generic_lhc_detector
from repro.errors import WorkflowError
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.provenance import ProvenanceCapture, audit_artifact
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.workflow import (
    AODProductionStep,
    ChainRunner,
    DigitizationStep,
    GenerationStep,
    ProcessingChain,
    ReconstructionStep,
    SimulationStep,
    SkimStep,
    SlimStep,
    StepContext,
    summarize_resources,
)


def _standard_chain(geometry, store, n_events=30, seed=500):
    generator = ToyGenerator(GeneratorConfig(processes=[DrellYanZ()],
                                             seed=seed))
    return ProcessingChain("zmumu", [
        GenerationStep(generator, n_events),
        SimulationStep(DetectorSimulation(geometry, seed=seed + 1)),
        DigitizationStep(Digitizer(geometry, run_number=42,
                                   seed=seed + 2)),
        ReconstructionStep(Reconstructor(
            geometry, GlobalTagView(store, "GT-FINAL"))),
        AODProductionStep(),
        SkimStep(SkimSpec("dimuon", AndCut((
            CountCut("muons", 2, min_pt=10.0),
            MassWindowCut("muons", 60.0, 120.0, opposite_charge=True),
        )))),
        SlimStep(SlimSpec("zntuple", ("dimuon_mass", "met"))),
    ])


@pytest.fixture(scope="module")
def chain_result():
    geometry = generic_lhc_detector()
    store = default_conditions()
    runner = ChainRunner()
    chain = _standard_chain(geometry, store)
    result = runner.run(chain, StepContext(run_number=42))
    return runner, result


class TestChainValidation:
    def test_empty_chain_rejected(self):
        with pytest.raises(WorkflowError):
            ProcessingChain("empty", [])

    def test_tier_mismatch_rejected(self):
        generator = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=1))
        with pytest.raises(WorkflowError):
            ProcessingChain("bad", [
                GenerationStep(generator, 5),
                AODProductionStep(),  # expects RECO, gets GEN
            ])

    def test_derivation_chain_accepted(self):
        chain = ProcessingChain("post-aod", [
            SkimStep(SkimSpec("s", CountCut("muons", 1))),
            SlimStep(SlimSpec("n", ("met",))),
        ])
        assert not chain.is_source_chain

    def test_describe_lists_steps(self):
        chain = ProcessingChain("post-aod", [
            SkimStep(SkimSpec("s", CountCut("muons", 1))),
        ])
        record = chain.describe()
        assert record["steps"][0]["name"] == "skim:s"
        assert record["steps"][0]["configuration"]["name"] == "s"


class TestRunner:
    def test_all_datasets_produced(self, chain_result):
        _, result = chain_result
        assert len(result.datasets) == 7
        assert len(result.dataset("zmumu/generation")) == 30

    def test_reduction_monotonic_after_skim(self, chain_result):
        _, result = chain_result
        n_aod = len(result.dataset("zmumu/aod_production"))
        n_skim = len(result.dataset("zmumu/skim:dimuon"))
        assert n_skim <= n_aod
        assert n_skim > 0

    def test_unknown_dataset_raises(self, chain_result):
        _, result = chain_result
        with pytest.raises(WorkflowError):
            result.dataset("zmumu/nope")

    def test_final_dataset(self, chain_result):
        _, result = chain_result
        assert result.final_dataset() is result.dataset(
            "zmumu/slim:zntuple"
        )

    def test_final_dataset_of_empty_result_raises(self):
        from repro.workflow import ChainResult

        empty = ChainResult(chain_name="never-run")
        with pytest.raises(WorkflowError, match="never-run"):
            empty.final_dataset()

    def test_source_chain_rejects_input(self):
        geometry = generic_lhc_detector()
        store = default_conditions()
        chain = _standard_chain(geometry, store)
        with pytest.raises(WorkflowError):
            ChainRunner().run(chain, initial_records=[1, 2, 3])

    def test_derivation_chain_requires_input(self):
        chain = ProcessingChain("post", [
            SkimStep(SkimSpec("s", CountCut("muons", 1))),
        ])
        with pytest.raises(WorkflowError):
            ChainRunner().run(chain)

    def test_step_failure_wrapped(self):
        chain = ProcessingChain("post", [
            SkimStep(SkimSpec("s", CountCut("muons", 1))),
        ])
        with pytest.raises(WorkflowError, match="skim:s"):
            # Ints are not AOD events; the skim will blow up.
            ChainRunner().run(chain, initial_records=[1, 2, 3])


class TestProvenanceIntegration:
    def test_every_dataset_reported(self, chain_result):
        runner, result = chain_result
        for artifact_id in result.artifact_ids.values():
            assert artifact_id in runner.capture.graph

    def test_final_dataset_fully_reproducible(self, chain_result):
        runner, result = chain_result
        final_id = result.artifact_ids["zmumu/slim:zntuple"]
        report = audit_artifact(runner.capture.graph, final_id)
        assert report.reproducible
        assert report.n_ancestors_referenced == 6

    def test_disabled_capture_loses_history(self):
        geometry = generic_lhc_detector()
        store = default_conditions()
        runner = ChainRunner(ProvenanceCapture(enabled=False))
        runner.run(_standard_chain(geometry, store, n_events=5,
                                   seed=600))
        assert len(runner.capture.graph) == 0

    def test_producer_configuration_recorded(self, chain_result):
        runner, result = chain_result
        skim_id = result.artifact_ids["zmumu/skim:dimuon"]
        record = runner.capture.graph.get(skim_id)
        assert record.producer.configuration["name"] == "dimuon"
        assert record.attributes["n_events"] >= 0


class TestResourceAccounting:
    def test_conditions_dependency_enumerated(self, chain_result):
        _, result = chain_result
        report = summarize_resources(result)
        assert not report.is_self_contained
        assert "calo/ecal_energy_scale" in report.conditions_folders
        assert report.global_tags == {"GT-FINAL"}
        assert report.runs == {42}

    def test_self_contained_chain(self, z_aods):
        chain = ProcessingChain("post", [
            SkimStep(SkimSpec("s", CountCut("muons", 1))),
        ])
        result = ChainRunner().run(chain, initial_records=list(z_aods))
        report = summarize_resources(result)
        assert report.is_self_contained
        assert "self-contained" in report.summary()
