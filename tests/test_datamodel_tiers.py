"""Tests for the tier taxonomy."""

import pytest

from repro.datamodel import DataTier, TIER_ORDER, tier_description
from repro.datamodel.tiers import check_derivation, parent_tier
from repro.errors import TierError


class TestTiers:
    def test_order_covers_production_chain(self):
        assert TIER_ORDER[0] == DataTier.GEN
        assert TIER_ORDER[-1] == DataTier.NTUPLE

    def test_dphep_levels(self):
        assert DataTier.RAW.dphep_level == 4
        assert DataTier.AOD.dphep_level == 3
        assert DataTier.LEVEL2.dphep_level == 2

    def test_every_tier_documented(self):
        for tier in DataTier:
            assert len(tier_description(tier)) > 20

    def test_parent_chain(self):
        assert parent_tier(DataTier.GEN) is None
        assert parent_tier(DataTier.RECO) == DataTier.RAW
        assert parent_tier(DataTier.LEVEL2) == DataTier.AOD
        assert parent_tier(DataTier.NTUPLE) == DataTier.AOD

    def test_check_derivation_accepts_valid(self):
        check_derivation(DataTier.RAW, DataTier.RECO)
        check_derivation(DataTier.AOD, DataTier.LEVEL2)

    def test_check_derivation_rejects_invalid(self):
        with pytest.raises(TierError):
            check_derivation(DataTier.RAW, DataTier.AOD)
        with pytest.raises(TierError):
            check_derivation(DataTier.NTUPLE, DataTier.RAW)
