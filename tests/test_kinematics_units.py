"""Tests for unit constants and conversions."""

import math

import pytest

from repro.kinematics import units


class TestWidthLifetime:
    def test_roundtrip(self):
        width = 2.5e-12
        lifetime = units.width_to_lifetime_ns(width)
        assert units.lifetime_to_width_gev(lifetime) == pytest.approx(
            width, rel=1e-12
        )

    def test_zero_width_is_stable(self):
        assert units.width_to_lifetime_ns(0.0) == math.inf

    def test_infinite_lifetime_is_zero_width(self):
        assert units.lifetime_to_width_gev(math.inf) == 0.0

    def test_muon_lifetime_order_of_magnitude(self):
        # Muon width 3e-19 GeV -> ~2.2 microseconds.
        lifetime_us = units.width_to_lifetime_ns(3.0e-19) / 1000.0
        assert lifetime_us == pytest.approx(2.2, rel=0.05)


class TestScales:
    def test_energy_scales(self):
        assert units.TEV == 1000.0 * units.GEV
        assert units.MEV == pytest.approx(1e-3)

    def test_length_scales(self):
        assert units.M == 1000.0 * units.MM
        assert units.CM == 10.0 * units.MM

    def test_storage_scales(self):
        assert units.PB == 1000 * units.TB
        assert units.GB == 10**9


class TestHumanBytes:
    def test_bytes(self):
        assert units.human_bytes(999) == "999 B"

    def test_kilobytes(self):
        assert units.human_bytes(1536) == "1.54 kB"

    def test_petabytes(self):
        assert "PB" in units.human_bytes(3.2 * units.PB)

    def test_speed_of_light(self):
        # 30 cm per nanosecond, the detector-timing rule of thumb.
        assert units.SPEED_OF_LIGHT_MM_PER_NS == pytest.approx(299.79,
                                                               rel=1e-4)
