"""Trigger/clean pairs for every AST source rule (DAS001-DAS010)."""

from __future__ import annotations

import textwrap

from repro.lint import lint_source


def codes(source: str) -> list[str]:
    """Lint a snippet and return the finding codes."""
    return [finding.code
            for finding in lint_source(textwrap.dedent(source))]


# ----------------------------------------------------------------------
# DAS001 wall clock
# ----------------------------------------------------------------------

def test_das001_triggers_on_time_time():
    source = """
    import time

    def analyze(event):
        started = time.time()
        return started
    """
    assert "DAS001" in codes(source)


def test_das001_triggers_on_datetime_now_from_import():
    source = """
    from datetime import datetime

    def stamp():
        return datetime.now()
    """
    assert "DAS001" in codes(source)


def test_das001_clean_on_seeded_deterministic_code():
    source = """
    def analyze(event):
        return event.weight * 2.0
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# DAS002 unseeded random
# ----------------------------------------------------------------------

def test_das002_triggers_on_global_random():
    source = """
    import random

    def smear(value):
        return value + random.gauss(0.0, 1.0)
    """
    assert "DAS002" in codes(source)


def test_das002_triggers_on_unseeded_default_rng():
    source = """
    import numpy as np

    rng_factory = None

    def build():
        return np.random.default_rng()
    """
    assert "DAS002" in codes(source)


def test_das002_triggers_on_legacy_numpy_global():
    source = """
    import numpy

    def draw():
        return numpy.random.normal()
    """
    assert "DAS002" in codes(source)


def test_das002_clean_on_seeded_rng():
    source = """
    import numpy as np
    import random

    def build(seed):
        return np.random.default_rng(seed), random.Random(seed)
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# DAS003 network
# ----------------------------------------------------------------------

def test_das003_triggers_on_network_import():
    source = """
    import urllib.request

    def fetch(url):
        return urllib.request.urlopen(url)
    """
    assert "DAS003" in codes(source)


def test_das003_triggers_on_from_import():
    source = """
    from socket import create_connection
    """
    assert "DAS003" in codes(source)


def test_das003_clean_on_stdlib_math():
    source = """
    import math

    def f(x):
        return math.sqrt(x)
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# DAS004 filesystem
# ----------------------------------------------------------------------

def test_das004_triggers_on_open():
    source = """
    def load():
        with open("/data/calibration.txt") as handle:
            return handle.read()
    """
    assert "DAS004" in codes(source)


def test_das004_triggers_on_path_write():
    source = """
    from pathlib import Path

    def dump(text):
        Path("out.txt").write_text(text)
    """
    assert "DAS004" in codes(source)


def test_das004_triggers_on_shutil():
    source = """
    import shutil

    def wipe(path):
        shutil.rmtree(path)
    """
    assert "DAS004" in codes(source)


def test_das004_clean_without_file_io():
    source = """
    def ht(jets):
        return sum(jet.pt for jet in jets)
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# DAS005 environment variables
# ----------------------------------------------------------------------

def test_das005_triggers_on_environ():
    source = """
    import os

    def threshold():
        return float(os.environ["CUT_GEV"])
    """
    assert "DAS005" in codes(source)


def test_das005_triggers_on_getenv():
    source = """
    import os

    def tag():
        return os.getenv("GLOBAL_TAG", "GT-FINAL")
    """
    assert "DAS005" in codes(source)


def test_das005_clean_on_os_path_use():
    source = """
    import os

    def join(a, b):
        return os.path.join(a, b)
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# DAS006 mutable module state
# ----------------------------------------------------------------------

def test_das006_triggers_on_module_level_dict():
    source = """
    _cache = {}

    def lookup(key):
        return _cache.get(key)
    """
    assert "DAS006" in codes(source)


def test_das006_triggers_on_list_constructor():
    source = """
    results = list()
    """
    assert "DAS006" in codes(source)


def test_das006_clean_on_tuples_and_function_locals():
    source = """
    CHANNELS = ("ee", "mumu")

    def collect(events):
        seen = []
        for event in events:
            seen.append(event)
        return seen
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# DAS007 swallowed exceptions
# ----------------------------------------------------------------------

def test_das007_triggers_on_bare_except():
    source = """
    def safe(fn):
        try:
            return fn()
        except:
            return None
    """
    assert "DAS007" in codes(source)


def test_das007_triggers_on_swallowed_preservation_error():
    source = """
    from repro.errors import PreservationError

    def safe(fn):
        try:
            return fn()
        except PreservationError:
            pass
    """
    assert "DAS007" in codes(source)


def test_das007_clean_when_reraised():
    source = """
    def safe(fn):
        try:
            return fn()
        except Exception:
            raise
    """
    assert codes(source) == []


def test_das007_clean_on_narrow_handler():
    source = """
    def parse(text):
        try:
            return int(text)
        except ValueError:
            return 0
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# DAS008 / DAS009 analysis metadata
# ----------------------------------------------------------------------

def test_das008_triggers_on_missing_metadata():
    source = """
    from repro.rivet.analysis import Analysis

    class NoMetadata(Analysis):
        def init(self):
            pass

        def analyze(self, event):
            pass
    """
    assert "DAS008" in codes(source)


def test_das008_clean_with_init_assigned_metadata():
    source = """
    from repro.rivet.analysis import Analysis, AnalysisMetadata

    class Configured(Analysis):
        def __init__(self, name):
            self.metadata = AnalysisMetadata(
                name=name, description="d", inspire_id="I0042",
            )
            super().__init__()

        def init(self):
            pass

        def analyze(self, event):
            pass
    """
    assert codes(source) == []


def test_das009_triggers_on_missing_inspire_id():
    source = """
    from repro.rivet.analysis import Analysis, AnalysisMetadata

    class NoLinkage(Analysis):
        metadata = AnalysisMetadata(name="X", description="d")

        def init(self):
            pass

        def analyze(self, event):
            pass
    """
    assert "DAS009" in codes(source)


def test_das009_clean_with_inspire_id():
    source = """
    from repro.rivet.analysis import Analysis, AnalysisMetadata

    class Linked(Analysis):
        metadata = AnalysisMetadata(name="X", description="d",
                                    inspire_id="I0001")

        def init(self):
            pass

        def analyze(self, event):
            pass
    """
    assert codes(source) == []


# ----------------------------------------------------------------------
# DAS010 unparseable source
# ----------------------------------------------------------------------

def test_das010_triggers_on_syntax_error():
    assert codes("def broken(:\n    pass") == ["DAS010"]


def test_das010_clean_on_valid_module():
    assert codes("x = 1") == []


# ----------------------------------------------------------------------
# Inline suppression markers
# ----------------------------------------------------------------------

def test_inline_ignore_waives_named_code():
    source = """
    import time

    def stamp():
        return time.time()  # lint: ignore[DAS001] -- display only
    """
    assert codes(source) == []


def test_inline_ignore_only_waives_named_codes():
    source = """
    import time
    import random

    def stamp():
        return time.time() + random.random()  # lint: ignore[DAS001]
    """
    assert codes(source) == ["DAS002"]


def test_bare_ignore_waives_everything_on_line():
    source = """
    import time
    import random

    def stamp():
        return time.time() + random.random()  # lint: ignore
    """
    assert codes(source) == []


def test_standalone_comment_marker_waives_next_line():
    source = """
    import time

    def stamp():
        # lint: ignore[DAS001] -- wall time feeds the progress bar
        # only, never the physics outputs.
        return time.time()
    """
    assert codes(source) == []


def test_marker_does_not_leak_to_later_lines():
    source = """
    import time

    def stamp():
        a = time.time()  # lint: ignore[DAS001]
        b = time.time()
        return a + b
    """
    assert codes(source) == ["DAS001"]


# ----------------------------------------------------------------------
# The bundled analyses must satisfy their own linter
# ----------------------------------------------------------------------

def test_standard_analyses_source_is_clean():
    import repro.rivet.standard_analyses as module
    from repro.lint import lint_source_file

    assert lint_source_file(module.__file__) == []


# ----------------------------------------------------------------------
# Unreadable sources are findings, never exceptions
# ----------------------------------------------------------------------

def test_das010_on_undecodable_file(tmp_path):
    from repro.lint import lint_source_file

    path = tmp_path / "binary.py"
    path.write_bytes(b"\xff\xfe\x00junk")
    findings = lint_source_file(path)
    assert [f.code for f in findings] == ["DAS010"]
    assert "unreadable" in findings[0].message


def test_das010_on_missing_file(tmp_path):
    from repro.lint import lint_source_file

    findings = lint_source_file(tmp_path / "ghost.py")
    assert [f.code for f in findings] == ["DAS010"]
    assert "unreadable" in findings[0].message
