"""Edge-case tests across modules: errors, displays, APIs, physics."""

import math

import pytest

import repro.errors as errors_module
from repro.errors import ReproError


class TestErrorHierarchy:
    def test_every_error_derives_from_repro_error(self):
        exception_classes = [
            obj for name, obj in vars(errors_module).items()
            if isinstance(obj, type) and issubclass(obj, Exception)
        ]
        assert len(exception_classes) > 25
        for exception_class in exception_classes:
            assert issubclass(exception_class, ReproError)

    def test_specific_parents(self):
        from repro.errors import (
            ArchiveError,
            FixityError,
            IOVError,
            PreservationError,
            RequestStateError,
            RecastError,
        )

        assert issubclass(FixityError, ArchiveError)
        assert issubclass(ArchiveError, PreservationError)
        assert issubclass(RequestStateError, RecastError)
        from repro.errors import ConditionsError

        assert issubclass(IOVError, ConditionsError)

    def test_single_catch_all(self):
        from repro.errors import HistogramError

        with pytest.raises(ReproError):
            raise HistogramError("caught by the family handler")


class TestDisplayEdgeCases:
    def test_payload_with_all_particle_types(self):
        from repro.outreach.display import build_display_payload
        from repro.outreach.format import Level2Event, SimplifiedParticle

        event = Level2Event(1, 1, 8.0, particles=[
            SimplifiedParticle("electron", 30.0, 25.0, 0.5, 0.1, -1),
            SimplifiedParticle("muon", 40.0, 35.0, -0.5, 1.1, 1),
            SimplifiedParticle("photon", 20.0, 18.0, 1.0, 2.0, 0),
            SimplifiedParticle("jet", 80.0, 60.0, -1.0, -2.0, 0),
        ], met=50.0, met_phi=0.7)
        payload = build_display_payload(event)
        # Two charged leptons -> two tracks; all four -> towers.
        assert len(payload["tracks"]) == 2
        assert len(payload["towers"]) == 4
        kinds = {tower["kind"] for tower in payload["towers"]}
        assert kinds == {"ecal", "muon", "hcal"}

    def test_empty_event_payload(self):
        from repro.outreach.display import build_display_payload
        from repro.outreach.format import Level2Event

        payload = build_display_payload(Level2Event(1, 1, 8.0))
        assert payload["tracks"] == []
        assert payload["towers"] == []

    def test_svg_of_empty_event(self):
        from repro.detector import forward_spectrometer
        from repro.outreach import EventDisplayRecord, render_event_svg
        from repro.outreach.format import Level2Event

        record = EventDisplayRecord.build(forward_spectrometer(),
                                          Level2Event(1, 1, 8.0))
        svg = render_event_svg(record.to_dict())
        assert svg.startswith("<svg")

    def test_ascii_of_empty_event(self):
        from repro.outreach import render_lego_ascii
        from repro.outreach.format import Level2Event

        art = render_lego_ascii(Level2Event(1, 1, 8.0))
        assert "MET" in art


class TestRecastApiEdges:
    def test_run_before_accept_rejected(self):
        from repro.datamodel import CountCut, SkimSpec
        from repro.errors import RequestStateError
        from repro.recast import (
            AnalysisCatalog,
            FullChainBackend,
            ModelSpec,
            PreservedSearch,
            RecastAPI,
        )

        search = PreservedSearch(
            analysis_id="X", title="t", experiment="GPD",
            selection=SkimSpec("s", CountCut("muons", 1)),
            n_observed=1, background=1.0, background_uncertainty=0.1,
            luminosity_ipb=10.0,
        )
        catalog = AnalysisCatalog("GPD")
        catalog.register(search)
        api = RecastAPI()
        api.register_experiment(catalog,
                                FullChainBackend("GPD", n_events=5))
        request = api.submit("X", ModelSpec("m", "zprime",
                                            {"mass": 1000.0}), "t")
        with pytest.raises(RequestStateError):
            api.run(request.request_id)

    def test_experiments_listing(self):
        from repro.recast import AnalysisCatalog, FullChainBackend, RecastAPI

        api = RecastAPI()
        api.register_experiment(AnalysisCatalog("GPD"),
                                FullChainBackend("GPD", n_events=5))
        api.register_experiment(AnalysisCatalog("FWD"),
                                FullChainBackend("FWD", n_events=5))
        assert api.experiments() == ["FWD", "GPD"]


class TestFragmentationPhysics:
    def test_jet_energy_roughly_conserved(self):
        import numpy as np

        from repro.generation import GenEvent, QCDDijets
        from repro.generation.processes import Tune
        from repro.kinematics import default_particle_table

        rng = np.random.default_rng(77)
        table = default_particle_table()
        process = QCDDijets(pt_min=50.0, pt_max=60.0)
        ratios = []
        for index in range(40):
            event = GenEvent(index, 100, "dijets", 8000.0)
            process.fill(event, rng, table, Tune.tune_a())
            partons = [p for p in event.particles if p.pdg_id == 21]
            hadron_energy = sum(p.momentum.e
                                for p in event.final_state())
            parton_energy = sum(p.momentum.e for p in partons)
            ratios.append(hadron_energy / parton_energy)
        # The Dirichlet split conserves longitudinal momentum; the
        # transverse kicks add a little energy on average.
        assert 0.9 < float(np.median(ratios)) < 1.3


class TestSnapshotEdges:
    def test_export_requires_overlap(self, conditions_store):
        from repro.conditions import export_snapshot
        from repro.errors import IOVError

        # The calibration campaign covers runs 1.. with an open tail,
        # so any positive window works; a window entirely before run 1
        # must fail.
        with pytest.raises(IOVError):
            export_snapshot(conditions_store, "GT-FINAL", 0, 0)


class TestStreamLaziness:
    def test_generator_stream_is_lazy(self):
        from repro.generation import (
            DrellYanZ,
            GeneratorConfig,
            ToyGenerator,
        )

        generator = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=1))
        stream = generator.stream(1000)
        first = next(stream)
        assert first.event_number == 0
        # Only one event was generated so far.
        assert generator._events_generated == 1


class TestTransverseMassEdge:
    def test_w_jacobian_edge_location(self, mixed_pairs):
        from repro.kinematics import transverse_mass
        from repro.rivet.projections import VisibleMomentum

        mts = []
        for gen, _ in mixed_pairs:
            if not gen.process_name.startswith("w"):
                continue
            muons = [p for p in gen.final_state()
                     if abs(p.pdg_id) == 13
                     and p.momentum.pt > 20.0]
            if not muons:
                continue
            met = VisibleMomentum().missing_pt(gen)
            mts.append(transverse_mass(muons[0].momentum, met))
        if len(mts) >= 10:
            # mT never (significantly) exceeds the W mass tail.
            assert sorted(mts)[int(0.9 * len(mts))] < 120.0
        else:
            pytest.skip("too few W events in the mixed sample")
