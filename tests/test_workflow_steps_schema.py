"""Unit tests for workflow steps, schema validation, and small APIs."""

import pytest

from repro.datamodel import DataTier, SkimSpec, SlimSpec, CountCut
from repro.datamodel.schema import field_documentation, validate_record
from repro.errors import SchemaError, StepError
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.workflow import GenerationStep, SkimStep, SlimStep, StepContext


class TestSchema:
    def test_docs_exist_for_all_tiers(self):
        for tier in DataTier:
            docs = field_documentation(tier)
            assert docs
            assert all(isinstance(text, str) and text
                       for text in docs.values())

    def test_validate_per_tier(self):
        validate_record({"run": 1, "event": 2, "tracker_hits": [],
                         "calo_hits": []}, DataTier.RAW)
        with pytest.raises(SchemaError, match="tracker_hits"):
            validate_record({"run": 1, "event": 2, "calo_hits": []},
                            DataTier.RAW)

    def test_error_names_all_missing_fields(self):
        with pytest.raises(SchemaError) as excinfo:
            validate_record({}, DataTier.NTUPLE)
        message = str(excinfo.value)
        for field_name in ("run", "event", "cols"):
            assert field_name in message


class TestSteps:
    def test_generation_step_validation(self):
        generator = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=1))
        with pytest.raises(StepError):
            GenerationStep(generator, 0)

    def test_generation_step_rejects_input(self):
        generator = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=1))
        step = GenerationStep(generator, 5)
        with pytest.raises(StepError):
            step.run([1, 2], StepContext())

    def test_generation_configuration_has_run_info(self):
        generator = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=42))
        step = GenerationStep(generator, 5)
        configuration = step.configuration()
        assert configuration["n_events"] == 5
        assert configuration["run_info"]["seed"] == 42

    def test_skim_step_name_embeds_spec(self):
        step = SkimStep(SkimSpec("loose", CountCut("muons", 1)))
        assert step.name == "skim:loose"
        assert step.configuration()["name"] == "loose"
        assert step.describe()["input_tier"] == "AOD"

    def test_slim_step_tiers(self):
        step = SlimStep(SlimSpec("cols", ("met",)))
        assert step.input_tier == DataTier.AOD
        assert step.output_tier == DataTier.NTUPLE

    def test_default_externals_empty(self):
        step = SkimStep(SkimSpec("s", CountCut("muons", 1)))
        assert step.external_dependencies() == {}


class TestRivetFinalize:
    def test_default_finalize_normalises(self, z_aods):
        from repro.generation import GeneratorConfig, ToyGenerator
        from repro.rivet import RivetRunner, standard_repository

        events = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=700)).generate(40)
        runner = RivetRunner(standard_repository())
        result = runner.run_one("TOY_2013_I0001", events)
        histogram = result.histogram("mass")
        assert histogram.integral() == pytest.approx(1.0, rel=1e-9)

    def test_sum_of_weights_tracked(self):
        from repro.rivet import RivetRunner, standard_repository

        events = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=701)).generate(15)
        for event in events:
            event.weight = 2.0
        runner = RivetRunner(standard_repository())
        analysis = runner.repository.create("TOY_2013_I0001")
        analysis._run_init()
        for event in events:
            analysis._run_event(event)
        assert analysis.sum_of_weights == pytest.approx(30.0)


class TestInspireEdges:
    def test_resolve_skips_missing_records(self):
        from repro.hepdata import (
            HepDataArchive,
            InspireCatalog,
            InspireEntry,
        )

        catalog = InspireCatalog()
        catalog.register(InspireEntry("I1", "t", ("a",), 2013))
        catalog.link_record("I1", "not-in-archive")
        assert catalog.resolve_data("I1", HepDataArchive()) == []


class TestFourVectorEdges:
    def test_boost_vector_of_null_rejected(self):
        from repro.errors import KinematicsError
        from repro.kinematics import FourVector

        with pytest.raises(KinematicsError):
            FourVector.zero().boost_vector()

    def test_phi_of_null_transverse(self):
        from repro.kinematics import FourVector

        assert FourVector(5.0, 0.0, 0.0, 5.0).phi == 0.0


class TestDigitizerCellGeometry:
    def test_cell_center_roundtrip(self, gpd_geometry):
        from repro.detector import Digitizer

        digitizer = Digitizer(gpd_geometry, seed=1)
        index = digitizer._cell_index("ecal", 0.73, -1.1)
        assert index is not None
        eta, phi = digitizer.cell_center("ecal", *index)
        sub = gpd_geometry.subdetectors["ecal"]
        assert abs(eta - 0.73) <= 2 * sub.eta_max / sub.eta_cells
        assert abs(phi - (-1.1)) <= 2 * 3.1416 / sub.phi_cells

    def test_out_of_acceptance_cell_is_none(self, gpd_geometry):
        from repro.detector import Digitizer

        digitizer = Digitizer(gpd_geometry, seed=1)
        assert digitizer._cell_index("ecal", 4.5, 0.0) is None


class TestGeneratorPileup:
    def test_pileup_multiplicity_scales_with_mu(self):
        light = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=9, pileup_mu=1.0))
        heavy = ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=9, pileup_mu=10.0))
        n_light = sum(len(e.final_state())
                      for e in light.generate(30))
        n_heavy = sum(len(e.final_state())
                      for e in heavy.generate(30))
        assert n_heavy > 2 * n_light
