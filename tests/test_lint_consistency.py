"""Trigger/clean pairs for the cross-artifact rules (DAS101-DAS112)."""

from __future__ import annotations

import json

import pytest

from repro.conditions import IOV, ConditionsStore, default_conditions
from repro.conditions.snapshot import export_snapshot
from repro.conditions.store import GlobalTag
from repro.core import PreservationArchive, PreservationMetadata
from repro.datamodel import (
    AndCut,
    CountCut,
    MassWindowCut,
    SkimSpec,
    SlimSpec,
)
from repro.interview.sharing import DataSharingGrid, SharingEntry
from repro.lint import (
    lint_archive_directory,
    lint_bundle,
    lint_conditions_coverage,
    lint_conditions_snapshot,
    lint_maturity_vs_sharing,
    lint_provenance_document,
    lint_recast_bridge,
    lint_skim_spec,
    lint_slim_spec,
)
from repro.provenance import ArtifactRecord, ProducerRecord
from repro.provenance.graph import ProvenanceGraph
from repro.recast.bridge import RivetSignalRegion
from repro.recast.catalog import AnalysisCatalog, PreservedSearch
from repro.rivet.standard_analyses import standard_repository


def codes(findings) -> list[str]:
    return [finding.code for finding in findings]


def make_search(analysis_id: str = "TOY-GPD-EXO-001") -> PreservedSearch:
    return PreservedSearch(
        analysis_id=analysis_id,
        title="High-mass dimuon search",
        experiment="TOY-GPD",
        selection=SkimSpec("highmass", AndCut((
            CountCut("muons", 2, min_pt=30.0),
            MassWindowCut("muons", 400.0, 3000.0,
                          opposite_charge=True),
        ))),
        n_observed=3,
        background=2.8,
        background_uncertainty=0.9,
        luminosity_ipb=20000.0,
    )


# ----------------------------------------------------------------------
# DAS101 / DAS102 — specs vs the tier schema
# ----------------------------------------------------------------------

def test_das101_triggers_on_unknown_collection():
    record = {"name": "taus", "cut": {
        "kind": "count", "collection": "taus", "min_count": 1,
    }}
    findings = lint_skim_spec(record)
    assert codes(findings) == ["DAS101"]
    assert "taus" in findings[0].message


def test_das101_walks_nested_cut_trees():
    record = {"name": "nested", "cut": {
        "kind": "and", "children": [
            {"kind": "met", "min_met": 30.0},
            {"kind": "not", "child": {
                "kind": "count", "collection": "sparticles",
                "min_count": 1,
            }},
        ],
    }}
    assert codes(lint_skim_spec(record)) == ["DAS101"]


def test_das101_clean_on_valid_skim():
    spec = SkimSpec("dimuon", AndCut((
        CountCut("muons", 2, min_pt=15.0),
        MassWindowCut("leptons", 60.0, 120.0),
    )))
    assert lint_skim_spec(spec.to_dict()) == []


def test_das102_triggers_on_unknown_column():
    record = {"name": "bad", "columns": ["met", "sphericity"]}
    findings = lint_slim_spec(record)
    assert codes(findings) == ["DAS102"]
    assert "sphericity" in findings[0].message


def test_das102_clean_on_valid_slim():
    spec = SlimSpec("zmm", ("met", "dimuon_mass", "n_muons"))
    assert lint_slim_spec(spec.to_dict()) == []


def test_bundle_lint_covers_both_specs():
    record = {
        "format": "repro-preserved-analysis",
        "bundle_id": "b-1",
        "input_events": [],
        "skim": {"name": "s", "cut": {
            "kind": "count", "collection": "gluinos", "min_count": 1,
        }},
        "slim": {"name": "c", "columns": ["met", "aplanarity"]},
        "expected_rows": [],
    }
    assert codes(lint_bundle(record)) == ["DAS101", "DAS102"]


# ----------------------------------------------------------------------
# DAS103 / DAS104 — conditions coverage
# ----------------------------------------------------------------------

def _store_with_gap() -> ConditionsStore:
    store = ConditionsStore("gappy")
    store.add_payload("calo/scale", "v1", IOV(1, 20), {"scale": 1.0})
    store.add_payload("calo/scale", "v1", IOV(31, 60), {"scale": 1.1})
    store.register_global_tag(GlobalTag.from_mapping(
        "GT-GAP", {"calo/scale": "v1"}))
    return store


def test_das103_triggers_on_declared_run_in_gap():
    store = _store_with_gap()
    findings = lint_conditions_coverage(store, "GT-GAP", [10, 25, 40])
    assert codes(findings) == ["DAS103"]
    assert "run 25" in findings[0].message


def test_das103_clean_when_all_runs_covered():
    store = _store_with_gap()
    assert lint_conditions_coverage(store, "GT-GAP", [5, 35, 60]) == []


def test_das103_clean_on_default_conditions_campaign_range():
    store = default_conditions()
    runs = list(range(1, 101))
    for tag in ("GT-PROMPT", "GT-FINAL"):
        assert lint_conditions_coverage(store, tag, runs) == []


def test_das103_snapshot_gap_reports_run_interval():
    record = {
        "schema": {"format": "repro-conditions-snapshot",
                   "version": "1.0"},
        "global_tag": "GT-X",
        "first_run": 1,
        "last_run": 40,
        "folders": {"calo/scale": [
            {"iov": {"first_run": 1, "last_run": 29},
             "payload": {"scale": 1.0}},
        ]},
    }
    findings = lint_conditions_snapshot(record)
    assert codes(findings) == ["DAS103"]
    assert "[30, 40]" in findings[0].message


def test_das104_triggers_on_overlapping_snapshot_iovs():
    record = {
        "schema": {"format": "repro-conditions-snapshot",
                   "version": "1.0"},
        "global_tag": "GT-X",
        "first_run": 1,
        "last_run": 30,
        "folders": {"calo/scale": [
            {"iov": {"first_run": 1, "last_run": 20},
             "payload": {"scale": 1.0}},
            {"iov": {"first_run": 15, "last_run": 30},
             "payload": {"scale": 1.1}},
        ]},
    }
    assert "DAS104" in codes(lint_conditions_snapshot(record))


def test_das104_clean_on_exported_snapshot():
    snapshot = export_snapshot(default_conditions(), "GT-FINAL", 1, 50)
    assert lint_conditions_snapshot(snapshot.to_dict()) == []


# ----------------------------------------------------------------------
# DAS105 / DAS106 / DAS107 — provenance documents
# ----------------------------------------------------------------------

def _producer() -> ProducerRecord:
    return ProducerRecord("toolchain", "1.0.0", {"seed": 7})


def test_das105_triggers_on_dangling_parent():
    document = {"artifacts": [
        ArtifactRecord("aod-1", "dataset", "AOD",
                       parents=("gen-lost",),
                       producer=_producer()).to_dict(),
    ]}
    findings = lint_provenance_document(document)
    assert codes(findings) == ["DAS105"]
    assert "gen-lost" in findings[0].message


def test_das106_triggers_on_cycle():
    document = {"artifacts": [
        {"artifact_id": "a", "kind": "dataset", "tier": "GEN",
         "parents": ["b"], "producer": _producer().to_dict()},
        {"artifact_id": "b", "kind": "dataset", "tier": "AOD",
         "parents": ["a"], "producer": _producer().to_dict()},
    ]}
    assert "DAS106" in codes(lint_provenance_document(document))


def test_das107_triggers_on_missing_producer():
    document = {"artifacts": [
        ArtifactRecord("gen-1", "dataset", "GEN").to_dict(),
    ]}
    assert codes(lint_provenance_document(document)) == ["DAS107"]


def test_provenance_clean_on_well_formed_graph():
    graph = ProvenanceGraph()
    graph.add(ArtifactRecord("gen-1", "dataset", "GEN",
                             producer=_producer()))
    graph.add(ArtifactRecord("aod-1", "dataset", "AOD",
                             parents=("gen-1",), producer=_producer()))
    assert lint_provenance_document(graph.to_dict()) == []


# ----------------------------------------------------------------------
# DAS108 / DAS109 — archive directories
# ----------------------------------------------------------------------

def _metadata(title: str) -> PreservationMetadata:
    return PreservationMetadata.build(
        title=title, creator="curator", experiment="GPD",
        created="2013-03-21", artifact_format="json", size_bytes=0,
        checksum="", producer="test", access_policy="public",
    )


def _saved_archive(tmp_path):
    archive = PreservationArchive("toy")
    archive.store({"rows": [1, 2, 3]}, "table", _metadata("a"))
    archive.store({"rows": [4, 5, 6]}, "table", _metadata("b"))
    directory = tmp_path / "archive"
    archive.save(directory)
    return archive, directory


def test_das108_triggers_on_tampered_blob(tmp_path):
    archive, directory = _saved_archive(tmp_path)
    digest = archive.digests()[0]
    blob = directory / "blobs" / digest
    blob.write_bytes(blob.read_bytes() + b" ")
    findings = lint_archive_directory(directory)
    assert codes(findings) == ["DAS108"]
    assert "fixity" in findings[0].message


def test_das108_triggers_on_missing_blob(tmp_path):
    archive, directory = _saved_archive(tmp_path)
    (directory / "blobs" / archive.digests()[0]).unlink()
    findings = lint_archive_directory(directory)
    assert codes(findings) == ["DAS108"]
    assert "no blob file" in findings[0].message


def test_das109_triggers_on_orphan_blob(tmp_path):
    _, directory = _saved_archive(tmp_path)
    (directory / "blobs" / ("f" * 64)).write_bytes(b"stray")
    findings = lint_archive_directory(directory)
    assert codes(findings) == ["DAS109"]


def test_archive_clean_on_fresh_save(tmp_path):
    _, directory = _saved_archive(tmp_path)
    assert lint_archive_directory(directory) == []


def test_archive_unreadable_catalogue_is_das010(tmp_path):
    directory = tmp_path / "broken"
    directory.mkdir()
    (directory / "catalogue.json").write_text("{not json",
                                              encoding="utf-8")
    findings = lint_archive_directory(directory)
    assert codes(findings) == ["DAS108"]


def test_archive_metadata_checksum_mismatch(tmp_path):
    _, directory = _saved_archive(tmp_path)
    catalogue_path = directory / "catalogue.json"
    catalogue = json.loads(catalogue_path.read_text(encoding="utf-8"))
    metadata = catalogue["entries"][0]["metadata"]
    metadata["technical"]["checksum"] = "0" * 64
    catalogue_path.write_text(json.dumps(catalogue), encoding="utf-8")
    findings = lint_archive_directory(directory)
    assert codes(findings) == ["DAS108"]
    assert "metadata checksum" in findings[0].message


# ----------------------------------------------------------------------
# DAS110 / DAS111 — RECAST catalogue vs RIVET repository
# ----------------------------------------------------------------------

def test_das110_triggers_on_unregistered_analysis():
    catalog = AnalysisCatalog("TOY-GPD")
    catalog.register(make_search())
    regions = {"TOY-GPD-EXO-001": RivetSignalRegion(
        analysis_name="TOY_2013_I9999", histogram_key="mass",
        window_low=400.0, window_high=3000.0,
    )}
    findings = lint_recast_bridge(catalog, regions,
                                  standard_repository())
    assert codes(findings) == ["DAS110"]
    assert "TOY_2013_I9999" in findings[0].message


def test_das111_triggers_on_unmapped_search():
    catalog = AnalysisCatalog("TOY-GPD")
    catalog.register(make_search())
    findings = lint_recast_bridge(catalog, {}, standard_repository())
    assert codes(findings) == ["DAS111"]


def test_recast_clean_on_wired_bridge():
    catalog = AnalysisCatalog("TOY-GPD")
    catalog.register(make_search())
    regions = {"TOY-GPD-EXO-001": RivetSignalRegion(
        analysis_name="TOY_2013_I0007", histogram_key="mass",
        window_low=400.0, window_high=3000.0,
    )}
    assert lint_recast_bridge(catalog, regions,
                              standard_repository()) == []


# ----------------------------------------------------------------------
# DAS112 — maturity rating vs sharing grid
# ----------------------------------------------------------------------

def _grid(audience: str) -> DataSharingGrid:
    grid = DataSharingGrid(experiment="TOY")
    grid.add(SharingEntry("preservation", audience, "on request"))
    return grid


def test_das112_triggers_on_high_rating_closed_grid():
    findings = lint_maturity_vs_sharing(
        "TOY", 5, _grid("project collaborators"))
    assert codes(findings) == ["DAS112"]


def test_das112_triggers_on_low_rating_open_grid():
    findings = lint_maturity_vs_sharing("TOY", 1, _grid("whole world"))
    assert codes(findings) == ["DAS112"]


def test_das112_triggers_on_missing_preservation_row():
    grid = DataSharingGrid(experiment="TOY")
    findings = lint_maturity_vs_sharing("TOY", 4, grid)
    assert codes(findings) == ["DAS112"]


@pytest.mark.parametrize("rating,audience", [
    (5, "whole world"),
    (4, "others in the field"),
    (3, "project collaborators"),
    (2, "host institution"),
])
def test_das112_clean_on_consistent_pairs(rating, audience):
    assert lint_maturity_vs_sharing("TOY", rating,
                                    _grid(audience)) == []


def test_bundled_experiment_corpus_is_consistent():
    from repro.experiments import all_experiments
    from repro.interview.maturity import (
        SHARING_ACCESS_SCALE,
        rate_from_evidence,
    )
    from repro.interview.responses import response_for_experiment

    for profile in all_experiments():
        rating = rate_from_evidence(SHARING_ACCESS_SCALE,
                                    profile.interview_evidence)
        response = response_for_experiment(profile)
        assert response.sharing_grid is not None
        assert lint_maturity_vs_sharing(
            profile.name, rating, response.sharing_grid) == []
