"""Tests for the IOV-memoizing conditions cache."""

import pytest

from repro.conditions import (
    CachedConditionsView,
    ConditionsStore,
    GlobalTag,
    IOV,
    default_conditions,
)
from repro.conditions.calibration import (
    FOLDER_BEAMSPOT,
    FOLDER_ECAL_SCALE,
    FOLDER_HCAL_SCALE,
)
from repro.errors import ConditionsError, IOVError
from repro.reconstruction import GlobalTagView


class TestCacheEquivalence:
    def test_identical_to_uncached_across_iov_boundaries(self):
        store = default_conditions()
        uncached = GlobalTagView(store, "GT-FINAL")
        cached = CachedConditionsView(store, "GT-FINAL")
        # The default calibration splits runs 1..100 into 10-run IOV
        # blocks; sweep across every boundary in both directions.
        runs = list(range(1, 101)) + list(range(100, 0, -7))
        for folder in (FOLDER_ECAL_SCALE, FOLDER_HCAL_SCALE,
                       FOLDER_BEAMSPOT):
            for run in runs:
                assert (cached.payload(folder, run)
                        == uncached.payload(folder, run)), (
                    f"{folder} diverged at run {run}"
                )

    def test_equivalent_for_both_global_tags(self):
        store = default_conditions()
        for tag in ("GT-PROMPT", "GT-FINAL"):
            cached = CachedConditionsView(store, tag)
            uncached = GlobalTagView(store, tag)
            for run in (1, 10, 11, 55, 99, 100):
                assert (cached.payload(FOLDER_ECAL_SCALE, run)
                        == uncached.payload(FOLDER_ECAL_SCALE, run))

    def test_returned_payloads_are_isolated_copies(self):
        store = default_conditions()
        cached = CachedConditionsView(store, "GT-FINAL")
        first = cached.payload(FOLDER_ECAL_SCALE, 5)
        first["scale"] = -999.0
        # Neither the cache nor the store saw the mutation.
        assert cached.payload(FOLDER_ECAL_SCALE, 5)["scale"] != -999.0
        assert (cached.payload(FOLDER_ECAL_SCALE, 5)
                == GlobalTagView(store, "GT-FINAL").payload(
                    FOLDER_ECAL_SCALE, 5))


class TestCacheBehaviour:
    def test_hits_within_one_iov(self):
        store = default_conditions()
        cached = CachedConditionsView(store, "GT-FINAL")
        for run in range(1, 11):  # all inside the first IOV block
            cached.payload(FOLDER_ECAL_SCALE, run)
        stats = cached.stats
        assert stats.misses == 1
        assert stats.hits == 9
        assert stats.hit_rate == pytest.approx(0.9)

    def test_miss_per_iov_block(self):
        store = default_conditions()
        cached = CachedConditionsView(store, "GT-FINAL")
        for run in (5, 15, 25, 5, 15, 25):
            cached.payload(FOLDER_ECAL_SCALE, run)
        # Three blocks resolved once each; revisits hit the cache even
        # out of order.
        assert cached.stats.misses == 3
        assert cached.stats.hits == 3

    def test_clear_resets_cache_and_stats(self):
        store = default_conditions()
        cached = CachedConditionsView(store, "GT-FINAL")
        cached.payload(FOLDER_ECAL_SCALE, 5)
        cached.clear()
        assert cached.stats.reads == 0
        cached.payload(FOLDER_ECAL_SCALE, 5)
        assert cached.stats.misses == 1

    def test_empty_stats(self):
        cached = CachedConditionsView(default_conditions(), "GT-FINAL")
        assert cached.stats.hit_rate == 0.0
        assert cached.stats.to_dict()["hits"] == 0

    def test_access_reaches_store_once_per_block(self):
        store = default_conditions()
        store.clear_access_log()  # drop the builder's own reads
        cached = CachedConditionsView(store, "GT-FINAL")
        for run in range(1, 21):
            cached.payload(FOLDER_ECAL_SCALE, run)
        reads = [entry for entry in store.access_log
                 if entry[0] == FOLDER_ECAL_SCALE]
        assert len(reads) == 2  # two IOV blocks, one real read each


class TestCacheFailureModes:
    def test_unknown_global_tag_fails_fast(self):
        with pytest.raises(ConditionsError):
            CachedConditionsView(default_conditions(), "GT-NOPE")

    def test_unmapped_folder_raises(self):
        cached = CachedConditionsView(default_conditions(), "GT-FINAL")
        with pytest.raises(ConditionsError):
            cached.payload("no/such_folder", 5)

    def test_iov_gap_raises(self):
        store = ConditionsStore("gappy")
        store.add_payload("f", "v1", IOV(1, 10), {"x": 1.0})
        store.add_payload("f", "v1", IOV(21, 30), {"x": 2.0})
        store.register_global_tag(
            GlobalTag.from_mapping("GT-G", {"f": "v1"}))
        cached = CachedConditionsView(store, "GT-G")
        assert cached.payload("f", 5) == {"x": 1.0}
        with pytest.raises(IOVError):
            cached.payload("f", 15)
        # The failed read must not poison later valid reads.
        assert cached.payload("f", 25) == {"x": 2.0}

    def test_describe_marks_cache(self):
        cached = CachedConditionsView(default_conditions(), "GT-FINAL")
        record = cached.describe()
        assert record["mode"] == "database"
        assert record["global_tag"] == "GT-FINAL"
        assert record["cached"] is True
