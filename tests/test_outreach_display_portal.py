"""Tests for event displays and the outreach portal."""

import pytest

from repro.detector import generic_lhc_detector
from repro.errors import OutreachError
from repro.outreach import (
    EventDisplayRecord,
    Level2Converter,
    OutreachPortal,
    render_lego_ascii,
)
from repro.outreach.display import build_display_payload
from repro.outreach.format import Level2Event, SimplifiedParticle


@pytest.fixture(scope="module")
def level2_events(z_aods):
    converter = Level2Converter()
    return converter.convert_many(z_aods)


class TestDisplayPayload:
    def test_leptons_become_tracks(self, level2_events):
        event = next(e for e in level2_events if e.leptons())
        payload = build_display_payload(event)
        assert len(payload["tracks"]) == len(event.leptons())
        assert payload["met"]["value"] == event.met

    def test_track_polyline_curves(self):
        event = Level2Event(1, 1, 8.0, particles=[
            SimplifiedParticle("muon", 20.0, 5.0, 0.0, 0.0, 1),
        ])
        payload = build_display_payload(event)
        points = payload["tracks"][0]["points"]
        assert len(points) == 12
        # A charged track in the field bends: the last point's y is
        # displaced from the x axis.
        assert abs(points[-1][1]) > 0.0

    def test_standalone_record(self, level2_events):
        geometry = generic_lhc_detector()
        record = EventDisplayRecord.build(geometry, level2_events[0])
        payload = record.to_dict()
        assert payload["format"] == "repro-event-display"
        assert payload["geometry"]["name"] == "GPD"
        assert "payload" in payload


class TestAsciiRenderer:
    def test_renders_grid(self, level2_events):
        event = next(e for e in level2_events if e.particles)
        art = render_lego_ascii(event)
        lines = art.splitlines()
        assert len(lines) == 50  # header + 48 phi rows + axis
        assert "MET" in lines[0]

    def test_muons_marked(self, level2_events):
        event = next(e for e in level2_events
                     if len(e.of_type("muon")) >= 2
                     and all(abs(m.eta) < 2.9
                             for m in e.of_type("muon")))
        art = render_lego_ascii(event)
        assert "m" in art

    def test_bad_grid_rejected(self, level2_events):
        with pytest.raises(OutreachError):
            render_lego_ascii(level2_events[0], n_eta=0)


class TestPortal:
    def test_summary(self, level2_events):
        portal = OutreachPortal(level2_events, "z-sample")
        summary = portal.summary()
        assert summary["n_events"] == len(level2_events)
        assert summary["n_with_leptons"] > 0

    def test_histogram_dimuon_mass_peaks_at_z(self, level2_events):
        portal = OutreachPortal(level2_events)
        histogram = portal.histogram("dimuon_mass", 30, 60.0, 120.0)
        assert histogram.integral() > 20
        assert histogram.mean() == pytest.approx(91.0, abs=3.0)

    def test_count(self, level2_events):
        portal = OutreachPortal(level2_events)
        assert portal.count("n_leptons", 2) > 0
        assert portal.count("met", 1e9) == 0

    def test_unknown_variable_rejected(self, level2_events):
        portal = OutreachPortal(level2_events)
        with pytest.raises(OutreachError):
            portal.histogram("wibble", 10, 0.0, 1.0)

    def test_event_display_by_index(self, level2_events):
        portal = OutreachPortal(level2_events)
        assert "run" in portal.event_display(0)
        with pytest.raises(OutreachError):
            portal.event_display(len(level2_events))

    def test_variable_listing(self):
        assert "dimuon_mass" in OutreachPortal.variables()
