"""Tests for likelihoods, limits, efficiency grids, and fits."""

import math

import numpy as np
import pytest

from repro.errors import StatsError
from repro.stats import (
    CountingExperiment,
    EfficiencyGrid,
    Histogram1D,
    binomial_interval,
    cls_upper_limit,
    expected_limit,
    fit_exponential_lifetime,
    fit_gaussian_peak,
    poisson_nll,
    profile_likelihood_ratio,
    sideband_subtract,
)


class TestPoissonNll:
    def test_minimum_at_observed(self):
        values = [poisson_nll(10, mu) for mu in (8.0, 10.0, 12.0)]
        assert values[1] < values[0]
        assert values[1] < values[2]

    def test_zero_expectation(self):
        assert poisson_nll(0, 0.0) == 0.0
        assert poisson_nll(3, 0.0) == math.inf

    def test_negative_observation_rejected(self):
        with pytest.raises(StatsError):
            poisson_nll(-1, 5.0)


class TestCountingExperiment:
    def test_validation(self):
        with pytest.raises(StatsError):
            CountingExperiment(5, -1.0, 0.0, 0.5, 10.0)
        with pytest.raises(StatsError):
            CountingExperiment(5, 1.0, 0.0, 1.5, 10.0)
        with pytest.raises(StatsError):
            CountingExperiment(5, 1.0, 0.0, 0.5, 0.0)

    def test_best_fit_tracks_excess(self):
        experiment = CountingExperiment(
            n_observed=20, background=5.0, background_uncertainty=0.5,
            signal_efficiency=0.5, luminosity=10.0,
        )
        best = experiment.best_fit_cross_section()
        # Excess of 15 events over b=5 -> sigma ~ 15 / (0.5*10) = 3.
        assert best == pytest.approx(3.0, rel=0.1)

    def test_best_fit_zero_for_deficit(self):
        experiment = CountingExperiment(
            n_observed=1, background=5.0, background_uncertainty=0.5,
            signal_efficiency=0.5, luminosity=10.0,
        )
        assert experiment.best_fit_cross_section() < 0.1

    def test_profile_likelihood_ratio_zero_at_best_fit(self):
        experiment = CountingExperiment(
            n_observed=10, background=5.0, background_uncertainty=1.0,
            signal_efficiency=0.5, luminosity=10.0,
        )
        best = experiment.best_fit_cross_section()
        assert profile_likelihood_ratio(experiment, best) == \
            pytest.approx(0.0, abs=1e-3)

    def test_q_grows_away_from_best_fit(self):
        experiment = CountingExperiment(
            n_observed=10, background=5.0, background_uncertainty=1.0,
            signal_efficiency=0.5, luminosity=10.0,
        )
        best = experiment.best_fit_cross_section()
        assert profile_likelihood_ratio(experiment, best + 3.0) > 1.0


class TestClsLimits:
    def test_limit_scales_with_efficiency(self):
        def limit(efficiency):
            experiment = CountingExperiment(
                n_observed=3, background=3.0,
                background_uncertainty=0.5,
                signal_efficiency=efficiency, luminosity=100.0,
            )
            return cls_upper_limit(experiment, n_toys=1500,
                                   seed=1).upper_limit

        assert limit(0.5) < limit(0.1)

    def test_limit_magnitude_sane(self):
        # n_obs = b with no uncertainty: the 95% limit should be a few
        # events' worth of cross-section.
        experiment = CountingExperiment(
            n_observed=3, background=3.0, background_uncertainty=0.0,
            signal_efficiency=1.0, luminosity=1.0,
        )
        result = cls_upper_limit(experiment, n_toys=4000, seed=2)
        assert 3.0 < result.upper_limit < 10.0

    def test_exclusion_logic(self):
        experiment = CountingExperiment(
            n_observed=3, background=3.0, background_uncertainty=0.3,
            signal_efficiency=0.5, luminosity=1000.0,
        )
        result = cls_upper_limit(experiment, n_toys=1500, seed=3)
        assert result.excludes_cross_section(result.upper_limit * 10.0)
        assert not result.excludes_cross_section(
            result.upper_limit / 10.0
        )

    def test_zero_efficiency_rejected(self):
        experiment = CountingExperiment(
            n_observed=3, background=3.0, background_uncertainty=0.3,
            signal_efficiency=0.0, luminosity=10.0,
        )
        with pytest.raises(StatsError):
            cls_upper_limit(experiment)

    def test_expected_limit_close_to_observed_at_median(self):
        observed = cls_upper_limit(CountingExperiment(
            n_observed=5, background=5.0, background_uncertainty=0.5,
            signal_efficiency=0.3, luminosity=100.0,
        ), n_toys=2000, seed=4)
        expected = expected_limit(5.0, 0.5, 0.3, 100.0, n_toys=2000,
                                  seed=5)
        assert observed.upper_limit == pytest.approx(
            expected.upper_limit, rel=0.3
        )

    def test_summary_readable(self):
        experiment = CountingExperiment(
            n_observed=3, background=3.0, background_uncertainty=0.3,
            signal_efficiency=0.5, luminosity=10.0,
        )
        result = cls_upper_limit(experiment, n_toys=800, seed=6)
        assert "95% CL" in result.summary()


class TestEfficiencyGrid:
    def test_record_and_lookup(self):
        grid = EfficiencyGrid("eff", [0, 100, 200], [0, 50, 100])
        for _ in range(80):
            grid.record(50.0, 25.0, True)
        for _ in range(20):
            grid.record(50.0, 25.0, False)
        assert grid.efficiency(50.0, 25.0) == pytest.approx(0.8)

    def test_empty_cell_raises(self):
        grid = EfficiencyGrid("eff", [0, 100], [0, 100])
        with pytest.raises(StatsError):
            grid.efficiency(50.0, 50.0)

    def test_out_of_grid_ignored_on_record(self):
        grid = EfficiencyGrid("eff", [0, 100], [0, 100])
        grid.record(500.0, 50.0, True)
        with pytest.raises(StatsError):
            grid.efficiency(50.0, 50.0)

    def test_efficiency_map_nan_for_empty(self):
        grid = EfficiencyGrid("eff", [0, 100, 200], [0, 100])
        grid.record(50.0, 50.0, True)
        eff_map = grid.efficiency_map()
        assert eff_map[0, 0] == 1.0
        assert np.isnan(eff_map[1, 0])

    def test_wilson_interval_contains_point(self):
        grid = EfficiencyGrid("eff", [0, 100], [0, 100])
        for _ in range(30):
            grid.record(50.0, 50.0, True)
        for _ in range(10):
            grid.record(50.0, 50.0, False)
        low, high = grid.interval(50.0, 50.0)
        assert low < 0.75 < high

    def test_roundtrip(self):
        grid = EfficiencyGrid("eff", [0, 100, 200], [0, 100],
                              x_label="m1", y_label="m2")
        grid.record(50.0, 50.0, True)
        restored = EfficiencyGrid.from_dict(grid.to_dict())
        assert restored.efficiency(50.0, 50.0) == 1.0
        assert restored.x_label == "m1"

    def test_binomial_interval_validation(self):
        with pytest.raises(StatsError):
            binomial_interval(5, 0)
        with pytest.raises(StatsError):
            binomial_interval(6, 5)


class TestFitting:
    def test_gaussian_peak_on_background(self, rng):
        histogram = Histogram1D("m", 60, 60.0, 120.0)
        histogram.fill_array(rng.normal(91.0, 3.0, 4000))
        histogram.fill_array(rng.uniform(60.0, 120.0, 2000))
        fit = fit_gaussian_peak(histogram)
        assert fit.parameter("mu") == pytest.approx(91.0, abs=0.3)
        assert fit.parameter("sigma") == pytest.approx(3.0, rel=0.15)

    def test_exponential_lifetime(self, rng):
        histogram = Histogram1D("t", 40, 0.0, 12.0)
        histogram.fill_array(rng.exponential(2.0, 10000))
        fit = fit_exponential_lifetime(histogram)
        assert fit.parameter("tau") == pytest.approx(2.0, rel=0.05)

    def test_too_few_bins_rejected(self):
        histogram = Histogram1D("m", 10, 0.0, 10.0)
        histogram.fill(5.0)
        with pytest.raises(StatsError):
            fit_gaussian_peak(histogram)

    def test_unknown_parameter_raises(self, rng):
        histogram = Histogram1D("t", 40, 0.0, 12.0)
        histogram.fill_array(rng.exponential(2.0, 1000))
        fit = fit_exponential_lifetime(histogram)
        with pytest.raises(StatsError):
            fit.parameter("mu")

    def test_sideband_subtraction(self, rng):
        histogram = Histogram1D("m", 60, 1.7, 2.0)
        histogram.fill_array(rng.normal(1.865, 0.01, 3000))
        histogram.fill_array(rng.uniform(1.7, 2.0, 3000))
        signal, error = sideband_subtract(
            histogram, (1.84, 1.89),
            ((1.74, 1.80), (1.93, 1.99)),
        )
        assert signal == pytest.approx(3000.0, rel=0.1)
        assert error > 0.0

    def test_sideband_overlap_rejected(self, rng):
        histogram = Histogram1D("m", 60, 1.7, 2.0)
        histogram.fill_array(rng.uniform(1.7, 2.0, 100))
        with pytest.raises(StatsError):
            sideband_subtract(histogram, (1.84, 1.89),
                              ((1.80, 1.86), (1.93, 1.99)))


class TestDiscoverySignificance:
    def test_values_match_asimov_formula(self):
        from repro.stats import discovery_significance

        # n = b + sqrt(b) excess is about one sigma for large b.
        z = discovery_significance(110, 100.0)
        assert 0.9 < z < 1.1

    def test_deficit_is_zero(self):
        from repro.stats import discovery_significance

        assert discovery_significance(3, 5.0) == 0.0
        assert discovery_significance(5, 5.0) == 0.0

    def test_uncertainty_degrades_significance(self):
        from repro.stats import discovery_significance

        clean = discovery_significance(10, 5.0)
        smeared = discovery_significance(10, 5.0, 2.0)
        assert smeared < clean

    def test_grows_with_excess(self):
        from repro.stats import discovery_significance

        values = [discovery_significance(n, 10.0)
                  for n in (12, 20, 40, 80)]
        assert values == sorted(values)
        assert values[-1] > 5.0

    def test_zero_background_rejected(self):
        from repro.errors import StatsError
        from repro.stats import discovery_significance

        with pytest.raises(StatsError):
            discovery_significance(5, 0.0)
