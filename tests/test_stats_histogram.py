"""Unit and property tests for histograms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import HistogramError
from repro.stats import Histogram1D, Histogram2D


class TestConstruction:
    def test_uniform_binning(self):
        histogram = Histogram1D("h", 10, 0.0, 100.0)
        assert histogram.nbins == 10
        assert histogram.bin_widths()[0] == pytest.approx(10.0)

    def test_variable_binning(self):
        histogram = Histogram1D("h", edges=[0.0, 1.0, 10.0, 100.0])
        assert histogram.nbins == 3
        assert histogram.bin_widths().tolist() == [1.0, 9.0, 90.0]

    def test_non_monotonic_edges_rejected(self):
        with pytest.raises(HistogramError):
            Histogram1D("h", edges=[0.0, 2.0, 1.0])

    def test_empty_range_rejected(self):
        with pytest.raises(HistogramError):
            Histogram1D("h", 10, 5.0, 5.0)

    def test_missing_arguments_rejected(self):
        with pytest.raises(HistogramError):
            Histogram1D("h", nbins=10)


class TestFilling:
    def test_fill_lands_in_correct_bin(self):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill(3.5)
        assert histogram.values()[3] == 1.0

    def test_underflow_overflow(self):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill(-1.0)
        histogram.fill(15.0)
        assert histogram.underflow == 1.0
        assert histogram.overflow == 1.0
        assert histogram.integral() == 0.0
        assert histogram.integral(include_flow=True) == 2.0

    def test_upper_edge_is_overflow(self):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill(10.0)
        assert histogram.overflow == 1.0

    def test_weighted_fill(self):
        histogram = Histogram1D("h", 4, 0.0, 4.0)
        histogram.fill(1.5, weight=2.5)
        assert histogram.values()[1] == 2.5
        assert histogram.errors()[1] == pytest.approx(2.5)

    def test_array_fill_matches_scalar(self, rng):
        values = rng.uniform(-1.0, 11.0, 500)
        weights = rng.uniform(0.5, 2.0, 500)
        one = Histogram1D("a", 20, 0.0, 10.0)
        two = Histogram1D("b", 20, 0.0, 10.0)
        one.fill_array(values, weights)
        for value, weight in zip(values, weights):
            two.fill(value, weight)
        assert np.allclose(one.values(), two.values())
        assert np.allclose(one.errors(), two.errors())
        assert one.underflow == pytest.approx(two.underflow)
        assert one.overflow == pytest.approx(two.overflow)

    def test_mismatched_weights_rejected(self):
        histogram = Histogram1D("h", 4, 0.0, 4.0)
        with pytest.raises(HistogramError):
            histogram.fill_array([1.0, 2.0], [1.0])

    @given(values=st.lists(st.floats(min_value=-100.0, max_value=100.0),
                           min_size=1, max_size=50))
    @settings(max_examples=100)
    def test_total_weight_conserved(self, values):
        histogram = Histogram1D("h", 13, -50.0, 50.0)
        histogram.fill_array(values)
        assert histogram.integral(include_flow=True) == pytest.approx(
            len(values)
        )


class TestStatistics:
    def test_mean_and_std(self, rng):
        histogram = Histogram1D("h", 100, 0.0, 200.0)
        histogram.fill_array(rng.normal(100.0, 10.0, 20000))
        assert histogram.mean() == pytest.approx(100.0, abs=0.5)
        assert histogram.std() == pytest.approx(10.0, rel=0.05)

    def test_empty_mean_raises(self):
        with pytest.raises(HistogramError):
            Histogram1D("h", 5, 0.0, 5.0).mean()


class TestArithmetic:
    def test_addition(self):
        a = Histogram1D("a", 5, 0.0, 5.0)
        b = Histogram1D("b", 5, 0.0, 5.0)
        a.fill(1.0)
        b.fill(1.0)
        total = a + b
        assert total.values()[1] == 2.0
        assert total.errors()[1] == pytest.approx(np.sqrt(2.0))

    def test_subtraction_errors_add(self):
        a = Histogram1D("a", 5, 0.0, 5.0)
        b = Histogram1D("b", 5, 0.0, 5.0)
        a.fill(1.0, weight=4.0)
        b.fill(1.0, weight=1.0)
        difference = a - b
        assert difference.values()[1] == 3.0
        assert difference.errors()[1] == pytest.approx(np.sqrt(17.0))

    def test_incompatible_binning_rejected(self):
        a = Histogram1D("a", 5, 0.0, 5.0)
        b = Histogram1D("b", 6, 0.0, 5.0)
        with pytest.raises(HistogramError):
            _ = a + b

    def test_scaling_preserves_relative_error(self):
        histogram = Histogram1D("h", 5, 0.0, 5.0)
        histogram.fill(1.0)
        histogram.fill(1.0)
        scaled = histogram.scaled(3.0)
        original_rel = histogram.errors()[1] / histogram.values()[1]
        scaled_rel = scaled.errors()[1] / scaled.values()[1]
        assert scaled_rel == pytest.approx(original_rel)

    def test_normalized(self, rng):
        histogram = Histogram1D("h", 10, 0.0, 10.0)
        histogram.fill_array(rng.uniform(0.0, 10.0, 100))
        assert histogram.normalized().integral() == pytest.approx(1.0)
        assert histogram.normalized(to=7.0).integral() == pytest.approx(
            7.0
        )

    def test_normalize_empty_raises(self):
        with pytest.raises(HistogramError):
            Histogram1D("h", 5, 0.0, 5.0).normalized()


class TestSerialisation:
    def test_roundtrip(self, rng):
        histogram = Histogram1D("h", 20, -5.0, 5.0, label="x")
        histogram.fill_array(rng.normal(0.0, 2.0, 300))
        restored = Histogram1D.from_dict(histogram.to_dict())
        assert np.allclose(restored.values(), histogram.values())
        assert np.allclose(restored.errors(), histogram.errors())
        assert restored.label == "x"
        assert restored.n_entries == 300

    def test_wrong_type_rejected(self):
        with pytest.raises(HistogramError):
            Histogram1D.from_dict({"type": "other"})


class TestHistogram2D:
    def test_fill_and_integral(self):
        histogram = Histogram2D("h", 4, 0.0, 4.0, 4, 0.0, 4.0)
        histogram.fill(1.5, 2.5)
        histogram.fill(1.5, 2.5, weight=2.0)
        assert histogram.values()[1, 2] == 3.0
        assert histogram.integral() == 3.0

    def test_out_of_range_dropped(self):
        histogram = Histogram2D("h", 4, 0.0, 4.0, 4, 0.0, 4.0)
        histogram.fill(-1.0, 2.0)
        histogram.fill(2.0, 10.0)
        assert histogram.integral() == 0.0

    def test_roundtrip(self):
        histogram = Histogram2D("h", 3, 0.0, 3.0, 2, 0.0, 2.0)
        histogram.fill(0.5, 0.5, weight=4.0)
        restored = Histogram2D.from_dict(histogram.to_dict())
        assert np.allclose(restored.values(), histogram.values())

    def test_bad_shape_rejected(self):
        with pytest.raises(HistogramError):
            Histogram2D("h", 0, 0.0, 1.0, 2, 0.0, 2.0)


class TestVectorisedFillEquivalence:
    """The bincount-based fills must reproduce the scalar loops exactly.

    On a freshly constructed histogram the per-bin accumulation order
    (flat-array order, left to right) is the same as a sequential fill
    loop, so the comparison is strict equality, not allclose.
    """

    def test_1d_bit_identical_to_fill_loop(self, rng):
        values = rng.uniform(-2.0, 12.0, 1000)
        weights = rng.uniform(0.1, 3.0, 1000)
        vectorised = Histogram1D("v", 25, 0.0, 10.0)
        looped = Histogram1D("l", 25, 0.0, 10.0)
        vectorised.fill_array(values, weights)
        for value, weight in zip(values.tolist(), weights.tolist()):
            looped.fill(value, weight)
        assert vectorised.values().tolist() == looped.values().tolist()
        assert vectorised.errors().tolist() == looped.errors().tolist()
        assert vectorised.underflow == looped.underflow
        assert vectorised.overflow == looped.overflow
        assert vectorised.n_entries == looped.n_entries

    def test_1d_edge_values_land_identically(self):
        # Bin-edge semantics: side="right" search — a value exactly on
        # an interior edge lands in the higher bin; the first edge is
        # inclusive, the last exclusive (overflow).
        edges = [0.0, 1.0, 2.0, 4.0]
        values = [0.0, 1.0, 2.0, 3.9999999, 4.0, -0.0001]
        vectorised = Histogram1D("v", edges=edges)
        looped = Histogram1D("l", edges=edges)
        vectorised.fill_array(values)
        for value in values:
            looped.fill(value)
        assert vectorised.values().tolist() == looped.values().tolist()
        assert vectorised.underflow == looped.underflow
        assert vectorised.overflow == looped.overflow

    def test_2d_bit_identical_to_fill_loop(self, rng):
        xs = rng.uniform(-1.0, 5.0, 800)
        ys = rng.uniform(-1.0, 3.0, 800)
        weights = rng.uniform(0.1, 2.0, 800)
        vectorised = Histogram2D("v", 4, 0.0, 4.0, 3, 0.0, 2.0)
        looped = Histogram2D("l", 4, 0.0, 4.0, 3, 0.0, 2.0)
        vectorised.fill_array(xs, ys, weights)
        for x, y, w in zip(xs.tolist(), ys.tolist(), weights.tolist()):
            looped.fill(x, y, w)
        assert (vectorised.values().tolist()
                == looped.values().tolist())
        assert vectorised.n_entries == looped.n_entries
        assert vectorised.integral() == looped.integral()

    def test_2d_all_out_of_range(self):
        histogram = Histogram2D("h", 4, 0.0, 4.0, 4, 0.0, 4.0)
        histogram.fill_array([-1.0, 9.0], [1.0, 1.0])
        assert histogram.integral() == 0.0
        assert histogram.n_entries == 2

    def test_2d_shape_mismatch_rejected(self):
        histogram = Histogram2D("h", 4, 0.0, 4.0, 4, 0.0, 4.0)
        with pytest.raises(HistogramError):
            histogram.fill_array([1.0, 2.0], [1.0])
        with pytest.raises(HistogramError):
            histogram.fill_array([1.0], [1.0], [1.0, 2.0])
