"""Tests for the content-addressed archive and OAIS packaging."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    DPHEPLevel,
    PreservationArchive,
    PreservationMetadata,
    SubmissionPackage,
    disseminate,
    ingest,
)
from repro.core.archive import canonical_json, sha256_digest
from repro.core.package import ArchivalPackage, dissemination_profiles
from repro.errors import ArchiveError, FixityError, PreservationError


def _metadata(title="thing"):
    return PreservationMetadata.build(
        title=title, creator="curator", experiment="GPD",
        created="2013-03-21", artifact_format="json", size_bytes=0,
        checksum="", producer="test", access_policy="public",
    )


class TestContentAddressing:
    def test_store_and_retrieve(self):
        archive = PreservationArchive()
        entry = archive.store({"a": 1}, "hepdata_record", _metadata())
        assert archive.retrieve(entry.digest) == {"a": 1}

    def test_identical_content_deduplicated(self):
        archive = PreservationArchive()
        first = archive.store({"a": 1}, "hepdata_record", _metadata())
        second = archive.store({"a": 1}, "hepdata_record", _metadata())
        assert first.digest == second.digest
        assert len(archive) == 1

    def test_key_order_does_not_matter(self):
        assert sha256_digest(canonical_json({"a": 1, "b": 2})) == \
            sha256_digest(canonical_json({"b": 2, "a": 1}))

    def test_checksum_overwritten_with_truth(self):
        archive = PreservationArchive()
        metadata = _metadata()
        entry = archive.store({"x": 1}, "hepdata_record", metadata)
        assert entry.metadata.checksum == entry.digest

    def test_unknown_digest_raises(self):
        archive = PreservationArchive()
        with pytest.raises(ArchiveError):
            archive.retrieve("0" * 64)

    @given(payload=st.dictionaries(
        st.text(min_size=1, max_size=10),
        st.one_of(st.integers(), st.floats(allow_nan=False,
                                           allow_infinity=False),
                  st.text(max_size=20)),
        max_size=8,
    ))
    @settings(max_examples=60)
    def test_roundtrip_property(self, payload):
        archive = PreservationArchive()
        entry = archive.store(payload, "hepdata_record", _metadata())
        assert archive.retrieve(entry.digest) == payload


class TestFixity:
    def test_corruption_detected(self):
        archive = PreservationArchive()
        entry = archive.store({"precious": True}, "hepdata_record",
                              _metadata())
        archive._corrupt_for_testing(entry.digest)
        with pytest.raises(FixityError):
            archive.retrieve(entry.digest)

    def test_verify_all_reports_damage(self):
        archive = PreservationArchive()
        good = archive.store({"g": 1}, "hepdata_record", _metadata())
        bad = archive.store({"b": 2}, "hepdata_record", _metadata())
        archive._corrupt_for_testing(bad.digest)
        report = archive.verify_all()
        assert report[good.digest] is True
        assert report[bad.digest] is False


class TestPersistence:
    def test_directory_roundtrip(self, tmp_path):
        archive = PreservationArchive("daspos")
        archive.store({"a": 1}, "hepdata_record", _metadata("a"))
        archive.store({"b": 2}, "skim_spec", _metadata("b"))
        archive.save(tmp_path / "archive")
        loaded = PreservationArchive.load(tmp_path / "archive")
        assert len(loaded) == 2
        assert all(loaded.verify_all().values())
        assert loaded.entries_of_kind("skim_spec")[0].metadata.title == "b"

    def test_load_rejects_non_archive(self, tmp_path):
        from repro.errors import PersistenceError

        (tmp_path / "catalogue.json").write_text('{"format": "nope"}')
        with pytest.raises(PersistenceError):
            PreservationArchive.load(tmp_path)


class TestPackaging:
    def _sip(self):
        sip = SubmissionPackage(
            title="Z analysis", creator="analyst", experiment="GPD",
            created="2013-03-21", access_policy="collaboration",
        )
        sip.add("reference", "reference_data", {"format": "x"})
        sip.add("aod", "aod_dataset", {"events": [1, 2, 3]})
        sip.add("raw", "raw_dataset", {"hits": [4, 5]})
        sip.add("tables", "hepdata_record", {"format": "y"})
        return sip

    def test_ingest_stores_everything(self):
        archive = PreservationArchive()
        aip = ingest(self._sip(), archive, "AIP-1")
        assert len(aip.members) == 4
        # 4 payloads + 1 manifest.
        assert len(archive) == 5

    def test_unknown_kind_rejected(self):
        sip = SubmissionPackage("t", "c", "GPD", "2013-01-01")
        with pytest.raises(PreservationError):
            sip.add("x", "mystery_kind", {})

    def test_empty_sip_rejected(self):
        archive = PreservationArchive()
        sip = SubmissionPackage("t", "c", "GPD", "2013-01-01")
        with pytest.raises(PreservationError):
            ingest(sip, archive, "AIP-1")

    def test_duplicate_payload_name_rejected(self):
        sip = self._sip()
        with pytest.raises(PreservationError):
            sip.add("aod", "aod_dataset", {})

    def test_dissemination_respects_levels(self):
        archive = PreservationArchive()
        aip = ingest(self._sip(), archive, "AIP-1")
        outreach = disseminate(archive, aip, "outreach")
        collaborator = disseminate(archive, aip, "collaborator")
        archivist = disseminate(archive, aip, "archivist")
        assert set(outreach.payloads) == {"reference", "tables"}
        assert set(collaborator.payloads) == {"reference", "aod",
                                              "tables"}
        assert set(archivist.payloads) == {"reference", "aod", "raw",
                                           "tables"}

    def test_unknown_profile_rejected(self):
        archive = PreservationArchive()
        aip = ingest(self._sip(), archive, "AIP-1")
        with pytest.raises(PreservationError):
            disseminate(archive, aip, "spy")
        assert "archivist" in dissemination_profiles()

    def test_aip_manifest_roundtrip(self):
        archive = PreservationArchive()
        aip = ingest(self._sip(), archive, "AIP-1")
        restored = ArchivalPackage.from_dict(aip.to_dict())
        assert restored.members == aip.members

    def test_members_at_level(self):
        archive = PreservationArchive()
        aip = ingest(self._sip(), archive, "AIP-1")
        level2 = aip.members_at_level(DPHEPLevel.SIMPLIFIED)
        assert "raw" not in level2
        assert "reference" in level2
