"""Tests for the Data Interview Template toolkit."""

import pytest

from repro.errors import InterviewError, MaturityError
from repro.experiments import all_experiments, get_experiment
from repro.interview import (
    DataSharingGrid,
    InterviewResponse,
    InterviewTemplate,
    SharingEntry,
    all_scales,
    assess_experiment,
    rate_from_evidence,
    response_for_experiment,
)
from repro.interview.maturity import (
    DATA_MANAGEMENT_SCALE,
    PRESERVATION_SCALE,
)
from repro.interview.report import (
    interview_report,
    maturity_table,
    render_maturity_table,
    render_sharing_grid,
    sharing_grid_table,
)
from repro.interview.sharing import SHARING_STAGES


class TestTemplate:
    def test_standard_template_sections(self):
        template = InterviewTemplate.standard()
        assert len(template.sections) == 9
        assert template.question("5F").answer_kind == "rating"
        assert template.question("9A").answer_kind == "grid"

    def test_unknown_question_raises(self):
        template = InterviewTemplate.standard()
        with pytest.raises(InterviewError):
            template.question("42Z")

    def test_required_subset(self):
        template = InterviewTemplate.standard()
        required = template.required_ids()
        assert "1A" in required
        assert "4B" not in required  # optional
        assert set(required) <= set(template.question_ids())


class TestMaturityScales:
    def test_four_scales(self):
        scales = all_scales()
        assert [scale.scale_id for scale in scales] == \
            ["5F", "6D", "8E", "9F"]

    def test_rubric_levels_described(self):
        for scale in all_scales():
            for level in range(1, 6):
                assert len(scale.describe_level(level)) > 10

    def test_out_of_range_level_rejected(self):
        with pytest.raises(MaturityError):
            DATA_MANAGEMENT_SCALE.describe_level(6)

    def test_rating_ladder(self):
        no_evidence = rate_from_evidence(DATA_MANAGEMENT_SCALE, {})
        assert no_evidence == 1
        full = rate_from_evidence(DATA_MANAGEMENT_SCALE, {
            "has_backup": True, "has_dr_plan": True,
            "dr_procedures": True, "dr_tested": True,
        })
        assert full == 5

    def test_ladder_requires_consecutive_rungs(self):
        # Testing a plan you don't have does not raise the rating.
        rating = rate_from_evidence(DATA_MANAGEMENT_SCALE, {
            "has_backup": True, "dr_tested": True,
        })
        assert rating == 2

    def test_assess_experiment_ranges(self):
        for profile in all_experiments():
            ratings = assess_experiment(profile)
            assert set(ratings) == {"5F", "6D", "8E", "9F"}
            assert all(1 <= value <= 5 for value in ratings.values())

    def test_babar_preservation_leads(self):
        # The long-running preservation project scores highest on 8E.
        ratings = {profile.name: assess_experiment(profile)["8E"]
                   for profile in all_experiments()}
        assert ratings["BaBar"] == max(ratings.values())


class TestSharingGrid:
    def test_entry_validation(self):
        with pytest.raises(InterviewError):
            SharingEntry("invention", "no one", "never")
        with pytest.raises(InterviewError):
            SharingEntry("analysis", "my cat", "always")

    def test_grid_completeness(self):
        grid = DataSharingGrid("X")
        assert not grid.is_complete()
        for stage in SHARING_STAGES:
            grid.add(SharingEntry(stage, "project collaborators",
                                  "always"))
        assert grid.is_complete()

    def test_duplicate_stage_rejected(self):
        grid = DataSharingGrid("X")
        grid.add(SharingEntry("analysis", "no one", "never"))
        with pytest.raises(InterviewError):
            grid.add(SharingEntry("analysis", "whole world", "always"))

    def test_openness_ordering(self):
        closed = SharingEntry("analysis", "no one", "never")
        open_entry = SharingEntry("analysis", "whole world", "always")
        assert closed.openness < open_entry.openness

    def test_roundtrip(self):
        grid = DataSharingGrid("X")
        grid.add(SharingEntry("publication", "whole world",
                              "at publication", "citation"))
        restored = DataSharingGrid.from_dict(grid.to_dict())
        assert restored.entry_for("publication").conditions == "citation"


class TestResponses:
    def test_stock_responses_complete(self):
        template = InterviewTemplate.standard()
        for profile in all_experiments():
            response = response_for_experiment(profile, template)
            assert response.validate(template) == []
            assert response.sharing_grid.is_complete()

    def test_ratings_match_evidence(self):
        profile = get_experiment("CMS")
        response = response_for_experiment(profile)
        ratings = assess_experiment(profile)
        assert response.answer("5F") == ratings["5F"]
        assert response.answer("8E") == ratings["8E"]

    def test_approved_policy_opens_preservation_stage(self):
        cms = response_for_experiment(get_experiment("CMS"))
        cdf = response_for_experiment(get_experiment("CDF"))
        assert cms.sharing_grid.entry_for("preservation").audience == \
            "whole world"
        assert cdf.sharing_grid.entry_for("preservation").audience == \
            "project collaborators"

    def test_bad_rating_rejected(self):
        response = InterviewResponse("X", answers={"5F": 7})
        with pytest.raises(InterviewError):
            response.validate(InterviewTemplate.standard())

    def test_missing_answer_raises(self):
        response = InterviewResponse("X")
        with pytest.raises(InterviewError):
            response.answer("1A")


class TestReports:
    def test_interview_report_renders(self):
        response = response_for_experiment(get_experiment("LHCb"))
        report = interview_report(response)
        assert "LHCb" in report
        assert "Data Sharing Grid" in report
        assert "Section 8" in report

    def test_incomplete_response_rejected(self):
        response = InterviewResponse("X")
        with pytest.raises(InterviewError):
            interview_report(response)

    def test_maturity_table_structure(self):
        table = maturity_table(all_experiments())
        assert set(table["scales"]) == {"5F", "6D", "8E", "9F"}
        assert "CMS" in table["ratings"]
        # The rubric text rides along with the computed ratings.
        assert len(table["scales"]["8E"]["levels"]) == 5

    def test_rendered_tables(self):
        experiments = all_experiments()
        maturity_text = render_maturity_table(experiments)
        assert "Preservation" in maturity_text
        responses = [response_for_experiment(p) for p in experiments]
        sharing_text = render_sharing_grid(responses)
        assert "publication" in sharing_text
        grid = sharing_grid_table(responses)
        assert grid["publication"]["CMS"] == "whole world"


class TestGapAnalysis:
    def test_gaps_point_at_first_missing_rung(self):
        from repro.interview import gap_analysis

        alice = get_experiment("ALICE")
        gaps = {gap.scale_id: gap for gap in gap_analysis(alice)}
        # ALICE: backup yes, DR plan no -> the 5F gap is the DR plan.
        assert gaps["5F"].current_rating == 2
        assert gaps["5F"].next_rung == "has_dr_plan"
        assert "recovery plan" in gaps["5F"].action

    def test_ceiling_scale_has_no_action(self):
        from repro.interview import gap_analysis

        babar = get_experiment("BaBar")
        gaps = {gap.scale_id: gap for gap in gap_analysis(babar)}
        assert gaps["8E"].at_ceiling
        assert gaps["8E"].action is None
        assert "ceiling" in gaps["8E"].summary()

    def test_render_report(self):
        from repro.interview import render_gap_report

        report = render_gap_report(get_experiment("CDF"))
        assert "Maturity gap analysis — CDF" in report
        assert "combined maturity:" in report
        assert "->" in report

    def test_combined_score_matches_ratings(self):
        from repro.interview import assess_experiment, gap_analysis

        for profile in all_experiments():
            gaps = gap_analysis(profile)
            ratings = assess_experiment(profile)
            assert sum(g.current_rating for g in gaps) == \
                sum(ratings.values())
