"""Tests for the four master-class exercises."""

import pytest

from repro.datamodel import make_aod
from repro.errors import OutreachError
from repro.outreach import (
    DLifetimeExercise,
    HiggsHuntExercise,
    Level2Converter,
    WPathExercise,
    ZPathExercise,
    build_d0_candidates,
)
from repro.outreach.masterclass import D0_LIFETIME_PS


@pytest.fixture(scope="module")
def z_level2(z_aods):
    return Level2Converter().convert_many(z_aods)


class TestZPath:
    def test_measures_z_mass(self, z_level2):
        report = ZPathExercise().run(z_level2)
        assert report["measured"] == pytest.approx(91.2, abs=1.5)
        assert report["n_candidates"] > 30
        assert report["reference"] == 91.19

    def test_pull_reasonable(self, z_level2):
        report = ZPathExercise().run(z_level2)
        assert abs(report["pull"]) < 5.0

    def test_instructions_present(self):
        text = ZPathExercise().instructions()
        assert "invariant mass" in text

    def test_needs_candidates(self):
        with pytest.raises(OutreachError):
            ZPathExercise().run([])


class TestWPath:
    @pytest.fixture(scope="class")
    def w_level2(self, gpd_geometry, conditions_store):
        from tests.conftest import run_chain
        from repro.generation import WProduction

        pairs = run_chain(
            [WProduction(charge=1, cross_section_pb=5500.0),
             WProduction(charge=-1, cross_section_pb=5500.0)],
            200, gpd_geometry, conditions_store, seed=7300,
        )
        converter = Level2Converter()
        return [converter.convert(make_aod(reco)) for _, reco in pairs]

    def test_charge_ratio_near_unity(self, w_level2):
        report = WPathExercise().run(w_level2)
        assert report["measured"] == pytest.approx(1.0, abs=0.5)
        assert report["n_plus"] > 10
        assert report["n_minus"] > 10

    def test_selection_is_exclusive(self, z_level2):
        # Z events mostly have two leptons, so the one-lepton W
        # selection keeps few of them.
        report = WPathExercise(min_met=0.0).run(
            z_level2 + _fake_w_events()
        )
        assert report["n_candidates"] < len(z_level2)


def _fake_w_events():
    """A handful of synthetic single-lepton events to seed the ratio."""
    from repro.outreach.format import Level2Event, SimplifiedParticle

    events = []
    for index, charge in enumerate([1, -1, 1, -1]):
        events.append(Level2Event(
            run_number=1, event_number=index,
            collision_energy_tev=8.0,
            particles=[SimplifiedParticle("muon", 60.0, 40.0, 0.2,
                                          0.1, charge)],
            met=35.0,
        ))
    return events


class TestHiggsHunt:
    def test_measures_higgs_mass(self, gpd_geometry, conditions_store):
        from tests.conftest import run_chain
        from repro.generation import HiggsToFourLeptons

        pairs = run_chain([HiggsToFourLeptons()], 250, gpd_geometry,
                          conditions_store, seed=7400)
        converter = Level2Converter()
        level2 = [converter.convert(make_aod(reco))
                  for _, reco in pairs]
        report = HiggsHuntExercise().run(level2)
        assert report["measured"] == pytest.approx(125.0, abs=2.0)
        assert report["n_candidates"] > 20


class TestDLifetime:
    @pytest.fixture(scope="class")
    def d_level2(self, d0_recos):
        converter = Level2Converter()
        level2 = []
        for reco in d0_recos:
            candidates = build_d0_candidates(reco)
            level2.append(converter.convert(make_aod(reco),
                                            candidates=candidates))
        return level2

    def test_candidates_built(self, d0_recos):
        n_candidates = sum(len(build_d0_candidates(reco))
                           for reco in d0_recos)
        assert n_candidates > 40

    def test_candidate_masses_near_d0(self, d0_recos):
        masses = [c["mass"]
                  for reco in d0_recos
                  for c in build_d0_candidates(reco)]
        median = sorted(masses)[len(masses) // 2]
        assert median == pytest.approx(1.865, abs=0.05)

    def test_lifetime_measured(self, d_level2):
        report = DLifetimeExercise().run(d_level2)
        assert report["measured"] == pytest.approx(D0_LIFETIME_PS,
                                                   rel=0.5)
        assert report["error"] > 0.0

    def test_needs_candidates(self, z_level2):
        with pytest.raises(OutreachError):
            DLifetimeExercise().run(z_level2)
