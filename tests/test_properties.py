"""Cross-package property-based tests (hypothesis)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.archive import canonical_json, sha256_digest
from repro.datamodel import GoodRunList, RunRecord, RunRegistry
from repro.outreach.format import Level2Event, SimplifiedParticle
from repro.stats import Histogram1D

# ----------------------------------------------------------------------
# Level-2 format round trips
# ----------------------------------------------------------------------

particle_strategy = st.builds(
    SimplifiedParticle,
    particle_type=st.sampled_from(("electron", "muon", "photon",
                                   "jet")),
    energy=st.floats(min_value=0.1, max_value=1000.0),
    pt=st.floats(min_value=0.1, max_value=500.0),
    eta=st.floats(min_value=-5.0, max_value=5.0),
    phi=st.floats(min_value=-math.pi, max_value=math.pi),
    charge=st.sampled_from((-1, 0, 1)),
)

event_strategy = st.builds(
    Level2Event,
    run_number=st.integers(min_value=0, max_value=10**6),
    event_number=st.integers(min_value=0, max_value=10**9),
    collision_energy_tev=st.floats(min_value=0.9, max_value=100.0),
    particles=st.lists(particle_strategy, max_size=10),
    met=st.floats(min_value=0.0, max_value=500.0),
    met_phi=st.floats(min_value=-math.pi, max_value=math.pi),
)


class TestLevel2Properties:
    @given(event=event_strategy)
    @settings(max_examples=100)
    def test_roundtrip(self, event):
        restored = Level2Event.from_dict(event.to_dict())
        assert restored.to_dict() == event.to_dict()

    @given(event=event_strategy)
    @settings(max_examples=100)
    def test_leptons_subset_and_sorted(self, event):
        leptons = event.leptons()
        assert all(p.particle_type in ("electron", "muon")
                   for p in leptons)
        pts = [p.pt for p in leptons]
        assert pts == sorted(pts, reverse=True)
        assert len(leptons) <= len(event.particles)

    @given(event=event_strategy)
    @settings(max_examples=50)
    def test_type_partition(self, event):
        total = sum(len(event.of_type(kind))
                    for kind in ("electron", "muon", "photon", "jet"))
        assert total == len(event.particles)


# ----------------------------------------------------------------------
# Content addressing
# ----------------------------------------------------------------------

json_scalars = st.one_of(
    st.integers(min_value=-10**9, max_value=10**9),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=20),
    st.booleans(),
    st.none(),
)
json_payloads = st.dictionaries(
    st.text(min_size=1, max_size=12), json_scalars, max_size=10,
)


class TestContentAddressingProperties:
    @given(payload=json_payloads)
    @settings(max_examples=150)
    def test_digest_deterministic(self, payload):
        assert sha256_digest(canonical_json(payload)) == \
            sha256_digest(canonical_json(dict(payload)))

    @given(payload=json_payloads, key=st.text(min_size=1, max_size=12))
    @settings(max_examples=100)
    def test_digest_sensitive_to_content(self, payload, key):
        modified = dict(payload)
        sentinel = "__sentinel__"
        if modified.get(key) == sentinel:
            return
        modified[key] = sentinel
        assert sha256_digest(canonical_json(payload)) != \
            sha256_digest(canonical_json(modified))


# ----------------------------------------------------------------------
# Good-run lists
# ----------------------------------------------------------------------

range_lists = st.lists(
    st.tuples(st.integers(min_value=1, max_value=500),
              st.integers(min_value=1, max_value=500)),
    max_size=10,
)


class TestGoodRunListProperties:
    @given(raw_ranges=range_lists)
    @settings(max_examples=100)
    def test_certified_sections_equals_point_count(self, raw_ranges):
        grl = GoodRunList("prop")
        accepted = []
        for first, last in raw_ranges:
            first, last = min(first, last), max(first, last)
            try:
                grl.certify(1, first, last)
            except Exception:
                continue  # overlap with an accepted range
            accepted.append((first, last))
        by_count = grl.certified_sections(1)
        by_points = sum(1 for section in range(1, 501)
                        if grl.is_good(1, section))
        assert by_count == by_points
        assert by_count == sum(last - first + 1
                               for first, last in accepted)

    @given(sections=st.integers(min_value=1, max_value=300),
           lumi=st.floats(min_value=0.001, max_value=10.0))
    @settings(max_examples=50)
    def test_full_certification_matches_delivered(self, sections, lumi):
        registry = RunRegistry("prop")
        registry.add(RunRecord(1, sections, lumi))
        grl = GoodRunList("prop")
        grl.certify(1, 1, sections)
        assert grl.certified_luminosity_ipb(registry) == \
            pytest.approx(registry.total_luminosity_ipb())


# ----------------------------------------------------------------------
# Histogram algebra
# ----------------------------------------------------------------------

fill_lists = st.lists(
    st.floats(min_value=-10.0, max_value=110.0), min_size=1,
    max_size=60,
)


class TestHistogramAlgebraProperties:
    @given(values_a=fill_lists, values_b=fill_lists)
    @settings(max_examples=100)
    def test_addition_commutes(self, values_a, values_b):
        a = Histogram1D("a", 20, 0.0, 100.0)
        b = Histogram1D("b", 20, 0.0, 100.0)
        a.fill_array(values_a)
        b.fill_array(values_b)
        assert np.allclose((a + b).values(), (b + a).values())
        assert np.allclose((a + b).errors(), (b + a).errors())

    @given(values=fill_lists,
           scale=st.floats(min_value=0.01, max_value=100.0))
    @settings(max_examples=100)
    def test_scaling_distributes_over_addition(self, values, scale):
        a = Histogram1D("a", 20, 0.0, 100.0)
        a.fill_array(values)
        left = (a + a).scaled(scale)
        right = a.scaled(scale) + a.scaled(scale)
        assert np.allclose(left.values(), right.values())

    @given(values=fill_lists)
    @settings(max_examples=100)
    def test_subtracting_self_leaves_zero_values(self, values):
        a = Histogram1D("a", 20, 0.0, 100.0)
        a.fill_array(values)
        difference = a - a
        assert np.allclose(difference.values(), 0.0)
        # ... but not zero *errors*: uncertainties add in quadrature.
        if a.integral() > 0.0:
            assert difference.errors().sum() > 0.0


# ----------------------------------------------------------------------
# Selection-cut serialisation over generated trees
# ----------------------------------------------------------------------


def _cut_strategy():
    from repro.datamodel import (
        AndCut,
        CountCut,
        HtCut,
        MetCut,
        NotCut,
        OrCut,
    )

    leaves = st.one_of(
        st.builds(CountCut,
                  collection=st.sampled_from(("electrons", "muons",
                                              "jets", "leptons")),
                  min_count=st.integers(min_value=0, max_value=4),
                  min_pt=st.floats(min_value=0.0, max_value=100.0)),
        st.builds(MetCut,
                  min_met=st.floats(min_value=0.0, max_value=200.0)),
        st.builds(HtCut,
                  min_ht=st.floats(min_value=0.0, max_value=500.0)),
    )
    return st.recursive(
        leaves,
        lambda children: st.one_of(
            st.builds(lambda items: AndCut(tuple(items)),
                      st.lists(children, min_size=1, max_size=3)),
            st.builds(lambda items: OrCut(tuple(items)),
                      st.lists(children, min_size=1, max_size=3)),
            st.builds(NotCut, children),
        ),
        max_leaves=8,
    )


class TestCutTreeProperties:
    @given(cut=_cut_strategy())
    @settings(max_examples=100)
    def test_serialisation_roundtrip(self, cut):
        from repro.datamodel import cut_from_dict

        assert cut_from_dict(cut.to_dict()).to_dict() == cut.to_dict()

    _shared_aods: list = []

    @given(cut=_cut_strategy())
    @settings(max_examples=50, deadline=None)
    def test_roundtrip_preserves_semantics(self, cut):
        from repro.datamodel import AODEvent, cut_from_dict

        if not self._shared_aods:
            self._shared_aods.extend(
                AODEvent(1, index) for index in range(3)
            )
        restored = cut_from_dict(cut.to_dict())
        for aod in self._shared_aods:
            assert restored.passes(aod) == cut.passes(aod)
