"""Tests for the reconstruction orchestrator and its conditions use."""

import pytest

from repro.conditions import default_conditions
from repro.conditions.calibration import (
    FOLDER_ECAL_SCALE,
    FOLDER_HCAL_SCALE,
)
from repro.detector import DetectorSimulation, Digitizer, generic_lhc_detector
from repro.errors import ConditionsError
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.reconstruction import GlobalTagView, Reconstructor


@pytest.fixture(scope="module")
def raw_events(gpd_geometry_module):
    geometry = gpd_geometry_module
    events = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=150)).generate(10)
    simulation = DetectorSimulation(geometry, seed=151)
    digitizer = Digitizer(geometry, run_number=33, seed=152)
    return [digitizer.digitize(simulation.simulate(event))
            for event in events]


@pytest.fixture(scope="module")
def gpd_geometry_module():
    return generic_lhc_detector()


class TestReconstructor:
    def test_produces_all_collections(self, raw_events,
                                      gpd_geometry_module):
        store = default_conditions()
        reconstructor = Reconstructor(
            gpd_geometry_module, GlobalTagView(store, "GT-FINAL")
        )
        recos = reconstructor.reconstruct_many(raw_events)
        assert len(recos) == 10
        assert any(reco.tracks for reco in recos)
        assert any(reco.muons for reco in recos)
        assert all(reco.met.met >= 0.0 for reco in recos)

    def test_conditions_reads_logged(self, raw_events,
                                     gpd_geometry_module):
        store = default_conditions()
        reconstructor = Reconstructor(
            gpd_geometry_module, GlobalTagView(store, "GT-FINAL")
        )
        reconstructor.reconstruct(raw_events[0])
        folders = {folder for folder, _ in reconstructor.conditions_reads}
        assert folders == {FOLDER_ECAL_SCALE, FOLDER_HCAL_SCALE}

    def test_external_dependencies_report(self, raw_events,
                                          gpd_geometry_module):
        store = default_conditions()
        reconstructor = Reconstructor(
            gpd_geometry_module, GlobalTagView(store, "GT-FINAL")
        )
        reconstructor.reconstruct_many(raw_events[:3])
        report = reconstructor.external_dependencies()
        assert report["runs"] == [33]
        assert report["conditions"]["global_tag"] == "GT-FINAL"
        assert report["conditions"]["mode"] == "database"

    def test_unknown_global_tag_fails_fast(self, gpd_geometry_module):
        store = default_conditions()
        with pytest.raises(ConditionsError):
            GlobalTagView(store, "GT-NOPE")

    def test_calibration_tag_changes_energies(self, raw_events,
                                              gpd_geometry_module):
        store = default_conditions()
        prompt = Reconstructor(gpd_geometry_module,
                               GlobalTagView(store, "GT-PROMPT"))
        final = Reconstructor(gpd_geometry_module,
                              GlobalTagView(store, "GT-FINAL"))
        raw = raw_events[0]
        clusters_prompt = prompt.reconstruct(raw).ecal_clusters
        clusters_final = final.reconstruct(raw).ecal_clusters
        # Same clusters, shifted energy scale.
        assert len(clusters_prompt) == len(clusters_final)
        if clusters_prompt:
            ratio = clusters_prompt[0].energy / clusters_final[0].energy
            scale_final = store.payload(FOLDER_ECAL_SCALE, "final",
                                        33)["scale"]
            scale_prompt = store.payload(FOLDER_ECAL_SCALE, "prompt",
                                         33)["scale"]
            assert ratio == pytest.approx(scale_final / scale_prompt,
                                          rel=1e-9)

    def test_describe_block(self, gpd_geometry_module):
        store = default_conditions()
        reconstructor = Reconstructor(
            gpd_geometry_module, GlobalTagView(store, "GT-FINAL")
        )
        record = reconstructor.describe()
        assert record["producer"] == "repro-reco"
        assert record["geometry"] == "GPD"
