"""The determinism/replay-safety pass: DAS401–DAS412."""

from __future__ import annotations

import json
import re
import shutil
import textwrap
from pathlib import Path

import pytest

from repro.cli import main
from repro.errors import ConfigurationError
from repro.lint import lint_tree_det
from repro.lint.det import replay_root
from repro.lint.det.roots import _REGISTRY, register_replay_root

REPO_SRC = Path(__file__).resolve().parent.parent / "src" / "repro"


def write_tree(root, files: dict) -> None:
    for relative, source in files.items():
        path = root / relative
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source), encoding="utf-8")


def det_lint(tmp_path, files: dict):
    write_tree(tmp_path, files)
    return lint_tree_det(tmp_path)


# ---------------------------------------------------------------------------
# Known-bad fixtures: each rule fires on its dedicated module.
# ---------------------------------------------------------------------------

NONCANONICAL = {
    "enc.py": """
        import json

        from repro.lint.det import replay_root

        @replay_root("record stream")
        def dump(records):
            return "\\n".join(json.dumps(r) for r in records)
    """,
}

SET_ITERATION = {
    "enc.py": """
        from repro.lint.det import replay_root

        def collect(tags):
            return [tag for tag in set(tags)]

        @replay_root("tag block")
        def dump(tags):
            return ",".join(collect(tags))
    """,
}

DICT_ITERATION = {
    "enc.py": """
        from repro.lint.det import replay_root

        @replay_root("summary")
        def dump(counts):
            lines = []
            for name, count in counts.items():
                lines.append(f"{name}={count}")
            return "\\n".join(lines)
    """,
}

UNSORTED_FS = {
    "enc.py": """
        from repro.lint.det import replay_root

        @replay_root("manifest")
        def dump(base):
            return [str(p) for p in base.iterdir()]
    """,
}

WALL_CLOCK = {
    "enc.py": """
        import time

        from repro.lint.det import replay_root

        def stamp():
            return time.time()

        @replay_root("stamped log")
        def dump(lines):
            return f"{stamp()}: " + ";".join(lines)
    """,
}

HASH_IDENTITY = {
    "enc.py": """
        from repro.lint.det import replay_root

        @replay_root("object list")
        def dump(objs):
            return [repr(o) for o in sorted(objs, key=id)]
    """,
}

ENV_READ = {
    "enc.py": """
        import os

        from repro.lint.det import replay_root

        @replay_root("report")
        def dump(fields):
            fields["user"] = os.getenv("USER")
            return str(fields)
    """,
}

FLOAT_FORMAT = {
    "enc.py": """
        from repro.lint.det import replay_root

        @replay_root("measurements")
        def dump(values):
            return [f"{v:.3f}" for v in values]
    """,
}

UNDERIVED_RNG = {
    "enc.py": """
        import random

        from repro.lint.det import replay_root

        @replay_root("sampled ids")
        def dump(n):
            return [str(random.random()) for _ in range(n)]
    """,
}

LOCALE_STRING = {
    "enc.py": """
        import locale

        from repro.lint.det import replay_root

        @replay_root("totals")
        def dump(total):
            return locale.format_string("%d", total, grouping=True)
    """,
}

DICT_FROM_UNORDERED = {
    "enc.py": """
        from repro.lint.det import replay_root

        @replay_root("zeroed counters")
        def dump(names):
            counters = {name: 0 for name in set(names)}
            return str(counters)
    """,
}

COMPUTED_LABEL = {
    "enc.py": """
        from repro.lint.det import replay_root

        LABEL = "log"

        @replay_root(LABEL)
        def dump(lines):
            return ";".join(lines)
    """,
}

DUPLICATE_LABELS = {
    "enc.py": """
        from repro.lint.det import replay_root

        @replay_root("event log")
        def dump_a(lines):
            return ";".join(lines)

        @replay_root("event log")
        def dump_b(lines):
            return ",".join(lines)
    """,
}


class TestRootReachability:
    def test_das401_noncanonical_json(self, tmp_path):
        findings = det_lint(tmp_path, NONCANONICAL)
        assert [f.code for f in findings] == ["DAS401"]
        assert "sort_keys" in findings[0].message
        assert "record stream" in findings[0].message

    def test_das402_set_iteration_carries_chain(self, tmp_path):
        findings = det_lint(tmp_path, SET_ITERATION)
        assert [f.code for f in findings] == ["DAS402"]
        assert "enc.dump -> enc.collect" in findings[0].message

    def test_das403_dict_view_iteration(self, tmp_path):
        findings = det_lint(tmp_path, DICT_ITERATION)
        assert [f.code for f in findings] == ["DAS403"]
        assert ".items()" in findings[0].message

    def test_das404_unsorted_fs_enumeration(self, tmp_path):
        findings = det_lint(tmp_path, UNSORTED_FS)
        assert [f.code for f in findings] == ["DAS404"]
        assert "iterdir" in findings[0].message

    def test_das405_wall_clock(self, tmp_path):
        findings = det_lint(tmp_path, WALL_CLOCK)
        assert [f.code for f in findings] == ["DAS405"]
        assert "enc.dump -> enc.stamp" in findings[0].message

    def test_das406_identity_sort_key(self, tmp_path):
        findings = det_lint(tmp_path, HASH_IDENTITY)
        assert [f.code for f in findings] == ["DAS406"]
        assert "id()" in findings[0].message

    def test_das407_environment_read(self, tmp_path):
        findings = det_lint(tmp_path, ENV_READ)
        assert [f.code for f in findings] == ["DAS407"]

    def test_das408_float_format(self, tmp_path):
        findings = det_lint(tmp_path, FLOAT_FORMAT)
        assert [f.code for f in findings] == ["DAS408"]
        assert ".3f" in findings[0].message

    def test_das409_global_stream_draw(self, tmp_path):
        findings = det_lint(tmp_path, UNDERIVED_RNG)
        assert [f.code for f in findings] == ["DAS409"]

    def test_das410_locale_formatting(self, tmp_path):
        findings = det_lint(tmp_path, LOCALE_STRING)
        assert [f.code for f in findings] == ["DAS410"]

    def test_das411_dict_from_set(self, tmp_path):
        findings = det_lint(tmp_path, DICT_FROM_UNORDERED)
        assert [f.code for f in findings] == ["DAS411"]

    def test_finding_anchors_at_the_root_definition(self, tmp_path):
        findings = det_lint(tmp_path, WALL_CLOCK)
        source = textwrap.dedent(WALL_CLOCK["enc.py"])
        lines = source.splitlines()
        def_line = next(i for i, line in enumerate(lines, start=1)
                        if line.startswith("def dump"))
        assert findings[0].line == def_line
        assert findings[0].file.endswith("enc.py")

    def test_undeclared_function_is_not_a_root(self, tmp_path):
        undeclared = {
            "enc.py": WALL_CLOCK["enc.py"].replace(
                '@replay_root("stamped log")\n', ""),
        }
        assert det_lint(tmp_path, undeclared) == []

    def test_sorted_iteration_is_clean(self, tmp_path):
        clean = {
            "enc.py": DICT_ITERATION["enc.py"].replace(
                "counts.items()", "sorted(counts.items())"),
        }
        assert det_lint(tmp_path, clean) == []

    def test_sorted_enumeration_is_clean(self, tmp_path):
        clean = {
            "enc.py": UNSORTED_FS["enc.py"].replace(
                "base.iterdir()", "sorted(base.iterdir())"),
        }
        assert det_lint(tmp_path, clean) == []

    def test_canonical_dumps_is_clean(self, tmp_path):
        clean = {
            "enc.py": NONCANONICAL["enc.py"].replace(
                "json.dumps(r)", "json.dumps(r, sort_keys=True)"),
        }
        assert det_lint(tmp_path, clean) == []

    def test_derived_seed_is_clean(self, tmp_path):
        clean = {
            "enc.py": """
                import random

                from repro.lint.det import replay_root

                @replay_root("sampled ids")
                def dump(seed):
                    stream = random.Random(seed)
                    return [str(stream.random()) for _ in range(3)]
            """,
        }
        assert det_lint(tmp_path, clean) == []


class TestRootDeclarations:
    def test_das412_computed_label(self, tmp_path):
        findings = det_lint(tmp_path, COMPUTED_LABEL)
        assert [f.code for f in findings] == ["DAS412"]
        assert "string constant" in findings[0].message

    def test_das412_duplicate_labels(self, tmp_path):
        findings = det_lint(tmp_path, DUPLICATE_LABELS)
        assert [f.code for f in findings] == ["DAS412"]
        assert "dump_b" in findings[0].message
        assert "already declared" in findings[0].message

    def test_bare_decorator_declares_an_unlabelled_root(self, tmp_path):
        bare = {
            "enc.py": WALL_CLOCK["enc.py"].replace(
                '@replay_root("stamped log")', "@replay_root"),
        }
        findings = det_lint(tmp_path, bare)
        assert [f.code for f in findings] == ["DAS405"]
        assert "(stamped log)" not in findings[0].message


class TestWaivers:
    def test_fact_line_waiver_kills_the_chain(self, tmp_path):
        waived = {
            "enc.py": WALL_CLOCK["enc.py"].replace(
                "return time.time()",
                "return time.time()"
                "  # lint: ignore[DAS405] -- fixture"),
        }
        assert det_lint(tmp_path, waived) == []

    def test_root_definition_waiver_kills_the_finding(self, tmp_path):
        waived = {
            "enc.py": WALL_CLOCK["enc.py"].replace(
                "def dump(lines):",
                "# lint: ignore[DAS405] -- fixture\n"
                "def dump(lines):"),
        }
        assert det_lint(tmp_path, waived) == []

    def test_unrelated_waiver_does_not_silence(self, tmp_path):
        waived = {
            "enc.py": WALL_CLOCK["enc.py"].replace(
                "return time.time()",
                "return time.time()"
                "  # lint: ignore[DAS001] -- wrong code"),
        }
        findings = det_lint(tmp_path, waived)
        assert [f.code for f in findings] == ["DAS405"]


# ---------------------------------------------------------------------------
# The root registry and decorator runtime behaviour.
# ---------------------------------------------------------------------------

class TestRootRegistry:
    def test_decorator_tags_bare(self):
        @replay_root
        def _probe():
            return b""

        assert _probe.__replay_root__ == ""

    def test_decorator_tags_with_label(self):
        @replay_root("probe bytes")
        def _probe():
            return b""

        assert _probe.__replay_root__ == "probe bytes"

    def test_decorator_tags_with_keyword(self):
        @replay_root(name="probe bytes")
        def _probe():
            return b""

        assert _probe.__replay_root__ == "probe bytes"

    def test_decorator_rejects_non_string_label(self):
        with pytest.raises(ConfigurationError):
            replay_root(42)

    def test_duplicate_registration_raises(self):
        with pytest.raises(ConfigurationError):
            register_replay_root(
                "repro.core.canonical.canonical_json", "again")

    def test_library_roots_registered(self):
        assert _REGISTRY[
            "repro.core.canonical.canonical_json"
        ] == "canonical encoding"
        assert (
            "repro.datamodel.io.DatasetWriter.close" in _REGISTRY)


# ---------------------------------------------------------------------------
# Self-analysis: the package honours its own replay contract.
# ---------------------------------------------------------------------------

class TestSelfAnalysis:
    def test_src_repro_is_det_clean(self):
        assert lint_tree_det(REPO_SRC) == []

    def test_archive_waiver_is_load_bearing(self, tmp_path):
        """Stripping the one reasoned waiver re-surfaces exactly DAS403."""
        copy = tmp_path / "repro"
        shutil.copytree(REPO_SRC, copy)
        archive = copy / "core" / "archive.py"
        stripped = "\n".join(
            line for line in
            archive.read_text(encoding="utf-8").splitlines()
            if "lint: ignore[DAS403]" not in line)
        archive.write_text(stripped + "\n", encoding="utf-8")
        findings = lint_tree_det(copy)
        assert [f.code for f in findings] == ["DAS403"]
        assert "PreservationArchive.save" in findings[0].message

    def test_exactly_one_det_waiver_in_the_tree(self):
        count = 0
        for path in sorted(REPO_SRC.rglob("*.py")):
            count += len(re.findall(
                r"lint: ignore\[DAS4\d\d", path.read_text()))
        assert count == 1


# ---------------------------------------------------------------------------
# CLI wiring: --det, --deep implication, determinism, rule listing.
# ---------------------------------------------------------------------------

class TestCliDet:
    @pytest.fixture
    def det_tree(self, tmp_path):
        write_tree(tmp_path, NONCANONICAL)
        return tmp_path

    def test_det_flag_runs_the_pass(self, det_tree, capsys):
        assert main(["lint", "--det", str(det_tree)]) == 2
        out = capsys.readouterr().out
        assert "DAS401" in out
        assert "replay root" in out

    def test_without_det_the_tree_is_shallow_clean(self, det_tree):
        assert main(["lint", str(det_tree)]) == 0

    def test_deep_implies_det(self, det_tree, capsys):
        assert main(["lint", "--deep", str(det_tree)]) == 2
        assert "DAS401" in capsys.readouterr().out

    def test_det_on_a_single_file_scans_its_tree(self, det_tree,
                                                 capsys):
        assert main(["lint", "--det",
                     str(det_tree / "enc.py")]) == 2
        assert "DAS401" in capsys.readouterr().out

    def test_json_output_is_byte_deterministic(self, det_tree, capsys):
        argv = ["lint", "--det", "--format", "json", str(det_tree)]
        assert main(argv) == 2
        first = capsys.readouterr().out
        assert main(argv) == 2
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert [f["code"] for f in payload["findings"]] == ["DAS401"]

    def test_select_det_prefix(self, tmp_path, capsys):
        write_tree(tmp_path, WALL_CLOCK)
        assert main(["lint", "--det", "--select", "DAS4",
                     str(tmp_path)]) == 2
        out = capsys.readouterr().out
        assert "DAS405" in out
        assert "DAS001" not in out

    def test_ignore_det_prefix_silences_the_pass(self, tmp_path,
                                                 capsys):
        write_tree(tmp_path, NONCANONICAL)
        assert main(["lint", "--det", "--ignore", "DAS4",
                     str(tmp_path)]) == 0
        assert "DAS401" not in capsys.readouterr().out

    def test_warning_rule_exits_one(self, tmp_path):
        write_tree(tmp_path, DICT_ITERATION)
        assert main(["lint", "--det", "--select", "DAS4",
                     str(tmp_path)]) == 1

    def test_list_rules_orders_the_det_family_last(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        codes = re.findall(r"DAS\d{3}", capsys.readouterr().out)
        assert codes == sorted(codes)
        det_codes = [code for code in codes if code.startswith("DAS4")]
        assert det_codes == [f"DAS4{n:02d}" for n in range(1, 13)]
        assert codes.index("DAS401") > codes.index("DAS312")
