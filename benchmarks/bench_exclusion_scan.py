"""Experiment C-SCAN — the exclusion curve (the re-interpretation figure).

The paper's theorist use case culminates in a figure no workshop report
prints but every reinterpretation paper does: the 95% CL cross-section
limit versus the new particle's mass, with the excluded region below the
theory curve. The bench regenerates that series through the RIVET bridge
(fast, truth level) over a Z' mass grid and checks its shape: the
low-mass points (inside the dimuon search acceptance, high efficiency)
are excluded at sigma = 0.05 pb, and the mass reach is finite and
well-defined.
"""

import math

from repro.datamodel import AndCut, CountCut, MassWindowCut, SkimSpec
from repro.recast import PreservedSearch
from repro.recast.bridge import RivetBridgeBackend, RivetSignalRegion
from repro.recast.scan import run_mass_scan
from repro.rivet import standard_repository

THEORY_XS_PB = 0.05
MASSES = [600.0, 900.0, 1200.0, 1500.0, 1800.0, 2200.0, 2600.0]


def _search():
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    return PreservedSearch(
        analysis_id="GPD-EXO-2013-01", title="High-mass dimuon search",
        experiment="GPD", selection=selection, n_observed=3,
        background=2.5, background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )


def test_exclusion_scan(benchmark, emit):
    search = _search()
    backend = RivetBridgeBackend(
        standard_repository(),
        signal_regions={search.analysis_id: RivetSignalRegion(
            "TOY_2013_I0007", "mass", 500.0, 3000.0)},
        n_events=400, n_limit_toys=1200, seed=4600,
    )

    scan = benchmark.pedantic(
        run_mass_scan, args=(backend, search, MASSES),
        kwargs={"cross_section_pb": THEORY_XS_PB},
        rounds=1, iterations=1,
    )

    limits = dict(scan.limits())
    # Every scanned point produced a limit; in-acceptance points
    # (600-1800 GeV, well inside the 500-3000 window) are excluded at
    # the theory cross-section.
    assert len(limits) == len(MASSES)
    for mass in (600.0, 900.0, 1200.0, 1500.0, 1800.0):
        assert math.isfinite(limits[mass])
        assert THEORY_XS_PB > limits[mass]
    # The mass reach from the low edge exists and covers those points.
    reach = scan.mass_reach(THEORY_XS_PB)
    assert reach is not None and reach >= 1800.0
    # Efficiency stays high across the in-window grid (truth level).
    for point in scan.points:
        if 600.0 <= point.mass <= 1800.0:
            assert point.efficiency > 0.5

    emit("exclusion_scan", scan.render(THEORY_XS_PB))
