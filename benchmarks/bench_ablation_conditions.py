"""Ablation — why preserved workflows must capture their conditions.

DESIGN.md design-choice ablation: the paper insists that enumerating and
encapsulating the conditions-database dependency is "an important
ingredient in the analysis preservation process". This bench quantifies
what happens if a future re-run *doesn't* have the right constants: the
same RAW data is reconstructed under the final calibration, the prompt
calibration, and a deliberately mis-scaled tag, and the reconstructed
Z-peak position is compared.
"""

import statistics

from repro.conditions import ConditionsStore, GlobalTag, IOV
from repro.conditions.calibration import RECONSTRUCTION_FOLDERS
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.kinematics import invariant_mass
from repro.reconstruction import GlobalTagView, Reconstructor

_MISCALIBRATION = 1.10  # a 10% wrong ECAL scale


def _broken_store(store: ConditionsStore) -> ConditionsStore:
    """A store with an extra, deliberately mis-scaled global tag."""
    for folder in RECONSTRUCTION_FOLDERS:
        payload = store.payload(folder, "final", 42)
        if "scale" in payload:
            payload = {"scale": payload["scale"] / _MISCALIBRATION}
        store.add_payload(folder, "broken", IOV(1), payload)
    store.register_global_tag(GlobalTag.from_mapping(
        "GT-BROKEN", {folder: "broken"
                      for folder in RECONSTRUCTION_FOLDERS},
    ))
    return store


def _dielectron_peak(recos) -> float:
    masses = []
    for reco in recos:
        positive = [e for e in reco.electrons if e.charge > 0]
        negative = [e for e in reco.electrons if e.charge < 0]
        if positive and negative:
            masses.append(invariant_mass([positive[0].p4,
                                          negative[0].p4]))
    return statistics.median(masses) if masses else float("nan")


def test_conditions_ablation(benchmark, emit, gpd_geometry,
                             conditions_store):
    # Z -> ee: electron energies come from the ECAL, so the dielectron
    # peak is directly sensitive to the archived energy scale.
    _broken_store(conditions_store)
    events = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ(flavour="e")], seed=4200)).generate(250)
    simulation = DetectorSimulation(gpd_geometry, seed=4201)
    digitizer = Digitizer(gpd_geometry, run_number=42, seed=4202)
    raws = [digitizer.digitize(simulation.simulate(event))
            for event in events]

    def reconstruct_under(tag_name):
        reconstructor = Reconstructor(
            gpd_geometry, GlobalTagView(conditions_store, tag_name))
        return _dielectron_peak(reconstructor.reconstruct_many(raws))

    def run_ablation():
        return {tag: reconstruct_under(tag)
                for tag in ("GT-FINAL", "GT-PROMPT", "GT-BROKEN")}

    peaks = benchmark.pedantic(run_ablation, rounds=1, iterations=1)

    # The correct (final) calibration lands on the Z pole; the broken
    # tag shifts the peak by the full mis-scale.
    assert abs(peaks["GT-FINAL"] - 91.2) < 2.0
    assert abs(peaks["GT-PROMPT"] - 91.2) < 4.0
    shift = peaks["GT-BROKEN"] / peaks["GT-FINAL"]
    assert abs(shift - _MISCALIBRATION) < 0.03

    lines = [
        "Conditions ablation: Z->ee peak vs conditions configuration "
        "(same RAW data, 250 events)",
        "",
        f"{'global tag':12s}{'m(ee) median [GeV]':>20s}",
    ]
    for tag in ("GT-FINAL", "GT-PROMPT", "GT-BROKEN"):
        lines.append(f"{tag:12s}{peaks[tag]:>20.2f}")
    lines.append("")
    lines.append(
        f"A {100 * (_MISCALIBRATION - 1):.0f}% wrong archived energy "
        f"scale shifts the physics by "
        f"{100 * (shift - 1):+.1f}% — the conditions snapshot is a "
        f"load-bearing preservation artifact."
    )
    emit("ablation_conditions", "\n".join(lines))
