"""Baseline harness: run the parallel + throughput benchmarks and
record a machine-readable perf trajectory at the repo root.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/run_bench.py [--jobs N] [--quick]

Writes ``BENCH_parallel.json`` next to ``README.md`` so future PRs can
diff their measured numbers against this one's. All determinism checks
are re-asserted while timing — a baseline that silently changed the
physics would poison every later comparison.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from parallel_workloads import (  # noqa: E402
    BENCH_JOBS,
    REPO_ROOT,
    build_campaign_workload,
    build_dense_store,
    build_raw_events,
    build_scan_workload,
    make_reconstructor,
    time_call,
)
from repro.obs import bench_envelope  # noqa: E402
from repro.recast.scan import run_mass_scan  # noqa: E402
from repro.runtime import ExecutionPolicy  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_parallel.json"


def bench_campaign(n_jobs: int, n_runs: int) -> dict:
    serial, registry, good_runs = build_campaign_workload(n_runs=n_runs)
    serial_s, results = time_call(serial.process, registry, good_runs)
    parallel, registry, good_runs = build_campaign_workload(n_runs=n_runs)
    parallel_s, _ = time_call(parallel.process, registry, good_runs,
                              policy=ExecutionPolicy.processes(n_jobs))
    identical = ([a.to_dict() for a in serial.all_aods()]
                 == [a.to_dict() for a in parallel.all_aods()])
    return {
        "n_runs": len(results),
        "n_events": sum(r.n_events for r in results.values()),
        "n_jobs": n_jobs,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "bit_identical": identical,
    }


def bench_conditions_cache(n_events: int) -> dict:
    store = build_dense_store()
    geometry, raws = build_raw_events(n_events=n_events)
    uncached = make_reconstructor(geometry, store, cached=False)
    uncached_s, uncached_recos = time_call(uncached.reconstruct_many, raws)
    cached = make_reconstructor(geometry, store, cached=True)
    cached_s, cached_recos = time_call(cached.reconstruct_many, raws)
    identical = ([r.met.met for r in uncached_recos]
                 == [r.met.met for r in cached_recos])
    stats = cached.conditions.stats
    return {
        "n_events": len(raws),
        "uncached_seconds": round(uncached_s, 4),
        "cached_seconds": round(cached_s, 4),
        "speedup": round(uncached_s / cached_s, 3),
        "cache_hit_rate": round(stats.hit_rate, 5),
        "bit_identical": identical,
    }


def bench_scan(n_jobs: int, n_events: int) -> dict:
    backend, search, masses = build_scan_workload(n_events=n_events)
    serial_s, serial_scan = time_call(run_mass_scan, backend, search,
                                      masses)
    parallel_s, parallel_scan = time_call(
        run_mass_scan, backend, search, masses,
        policy=ExecutionPolicy.processes(n_jobs))
    return {
        "n_mass_points": len(masses),
        "n_jobs": n_jobs,
        "serial_seconds": round(serial_s, 4),
        "parallel_seconds": round(parallel_s, 4),
        "speedup": round(serial_s / parallel_s, 3),
        "limits_identical": serial_scan.limits() == parallel_scan.limits(),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=BENCH_JOBS,
                        help="parallel worker count to benchmark")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (smoke test, noisier)")
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        help="where to write the baseline JSON")
    args = parser.parse_args(argv)

    n_runs = 8 if args.quick else 20
    n_cache_events = 80 if args.quick else 250
    n_scan_events = 60 if args.quick else 250

    try:
        available_cpus = len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        available_cpus = os.cpu_count() or 1
    # A baseline recorded with fewer schedulable CPUs than worker
    # processes cannot show a real pool speedup; flag those workloads
    # so later PRs do not diff against a number that means nothing.
    speedup_meaningful = available_cpus >= args.jobs
    record = bench_envelope("repro.runtime parallel execution",
                            available_cpus=available_cpus)
    print("campaign sweep (serial vs process pool) ...")
    record["workloads"]["campaign"] = bench_campaign(args.jobs, n_runs)
    record["workloads"]["campaign"]["speedup_meaningful"] = (
        speedup_meaningful)
    print("conditions cache (serial, dense store) ...")
    record["workloads"]["conditions_cache"] = bench_conditions_cache(
        n_cache_events)
    # The cache benchmark is serial; its speedup is meaningful anywhere.
    record["workloads"]["conditions_cache"]["speedup_meaningful"] = True
    print("exclusion scan (serial vs process pool) ...")
    record["workloads"]["scan"] = bench_scan(args.jobs, n_scan_events)
    record["workloads"]["scan"]["speedup_meaningful"] = (
        speedup_meaningful)
    if not speedup_meaningful:
        print(f"note: only {available_cpus} CPU(s) schedulable for "
              f"{args.jobs} workers; pool speedups are informational")

    output = Path(args.output)
    with output.open("w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, workload in record["workloads"].items():
        print(f"  {name:18s}: {workload['speedup']:.2f}x")
    print(f"baseline written to {output}")
    ok = all(w.get("bit_identical", True)
             and w.get("limits_identical", True)
             for w in record["workloads"].values())
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
