"""Columnar-engine benchmark: per-event loops vs structure-of-arrays.

Measures the hot paths the ``repro.columnar`` engine vectorises and
records the speedups in ``BENCH_columnar.json`` at the repo root, in
the shared bench-report envelope:

* **kinematics** — the nine derived ntuple columns (HT, dilepton mass,
  leading pts, ...) computed per event via ``SlimSpec.apply`` vs one
  ``apply_slim`` over an :class:`~repro.columnar.EventBatch`.
* **skim_selection** — a realistic skim cut decided per event via
  ``cut.passes`` vs one vectorised ``cut_mask``; materialising the
  kept sample (``SkimSpec.apply`` vs ``select``) is timed alongside.
* **smear_kernel** — a scalar calorimeter smear loop vs
  ``CaloResponse.smear_array`` on the same seeded generator
  (bit-identical by construction).
* **histogram_fill** — a scalar ``fill`` loop vs the bincount-based
  ``fill_array``.

Every workload re-asserts its equivalence claim while timing: a
speedup that changed the physics would be worthless.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_columnar.py [--quick]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent))

from repro.columnar import (  # noqa: E402
    EventBatch,
    apply_slim,
    cut_mask,
    derived_columns,
)
from repro.datamodel import (  # noqa: E402
    AndCut,
    AODEvent,
    CountCut,
    MassWindowCut,
    MetCut,
    SkimSpec,
    SlimSpec,
)
from repro.datamodel.skimslim import _DERIVED_COLUMNS  # noqa: E402
from repro.detector.response import CaloResponse  # noqa: E402
from repro.kinematics import FourVector  # noqa: E402
from repro.obs import bench_envelope  # noqa: E402
from repro.reconstruction.objects import (  # noqa: E402
    Electron,
    Jet,
    MissingEnergy,
    Muon,
    Photon,
)
from repro.stats import Histogram1D  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_columnar.json"

SKIM_CUT = AndCut((
    CountCut("muons", 2, min_pt=10.0),
    MassWindowCut("muons", 60.0, 120.0, opposite_charge=True),
    MetCut(0.0),
))


def time_call(fn, *args, **kwargs):
    """(wall seconds, result) of one call."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def synthesize_events(n_events: int, seed: int = 20130321
                      ) -> list[AODEvent]:
    """Deterministic AOD sample with realistic object multiplicities.

    Synthesised directly (no full chain) so the benchmark can reach
    thousands of events in seconds; the kinematic shapes only need to
    exercise every derived column and cut branch, not model physics.
    """
    rng = np.random.default_rng(seed)
    events = []
    for index in range(n_events):
        def p4():
            return FourVector.from_ptetaphim(
                float(rng.uniform(2.0, 120.0)),
                float(rng.uniform(-2.5, 2.5)),
                float(rng.uniform(-np.pi, np.pi)),
                float(rng.uniform(0.0, 10.0)),
            )

        muons = [
            Muon(p4(), int(rng.choice((-1, 1))),
                 int(rng.integers(2, 5)), float(rng.uniform(0.0, 5.0)))
            for _ in range(int(rng.poisson(1.6)))
        ]
        electrons = [
            Electron(p4(), int(rng.choice((-1, 1))),
                     float(rng.uniform(0.7, 1.4)),
                     float(rng.uniform(0.0, 5.0)))
            for _ in range(int(rng.poisson(0.8)))
        ]
        photons = [Photon(p4())
                   for _ in range(int(rng.poisson(0.5)))]
        jets = [
            Jet(p4(), int(rng.integers(2, 25)),
                float(rng.uniform(0.0, 1.0)))
            for _ in range(int(rng.poisson(2.5)))
        ]
        events.append(AODEvent(
            run_number=50, event_number=index,
            electrons=electrons, muons=muons, photons=photons,
            jets=jets,
            met=MissingEnergy(float(rng.exponential(18.0)),
                              float(rng.uniform(-np.pi, np.pi))),
            trigger_bits=(["HLT_SingleMu20"]
                          if muons and muons[0].p4.pt > 20.0 else []),
            n_tracks=int(rng.integers(5, 60)),
        ))
    return events


def bench_kinematics(events: list[AODEvent]) -> dict:
    columns = tuple(sorted(_DERIVED_COLUMNS))
    spec = SlimSpec("bench", columns)

    def scalar_values():
        return [
            {name: _DERIVED_COLUMNS[name](event) for name in columns}
            for event in events
        ]

    pack_s, batch = time_call(EventBatch.from_events, events)
    scalar_s, per_event = time_call(scalar_values)
    columnar_s, arrays = time_call(derived_columns, columns, batch)
    identical = all(
        arrays[name].tolist() == [row[name] for row in per_event]
        for name in columns
    )
    # Secondary: the full slim including per-row ntuple packaging —
    # NtupleRow construction is a Python loop on both sides, so the
    # end-to-end speedup is bounded by it.
    rows_scalar_s, scalar_rows = time_call(spec.apply, events)
    rows_columnar_s, batch_rows = time_call(apply_slim, spec, batch)
    rows_identical = ([r.to_dict() for r in batch_rows]
                      == [r.to_dict() for r in scalar_rows])
    return {
        "n_events": len(events),
        "n_columns": len(columns),
        "scalar_seconds": round(scalar_s, 4),
        "columnar_seconds": round(columnar_s, 4),
        "pack_seconds": round(pack_s, 4),
        "speedup": round(scalar_s / columnar_s, 3),
        "rows_scalar_seconds": round(rows_scalar_s, 4),
        "rows_columnar_seconds": round(rows_columnar_s, 4),
        "rows_speedup": round(rows_scalar_s / rows_columnar_s, 3),
        "bit_identical": identical and rows_identical,
    }


def bench_skim(events: list[AODEvent]) -> dict:
    spec = SkimSpec("bench-skim", SKIM_CUT)

    def scalar_decisions():
        return [spec.cut.passes(event) for event in events]

    scalar_s, decisions = time_call(scalar_decisions)
    batch = EventBatch.from_events(events)
    columnar_s, mask = time_call(cut_mask, spec.cut, batch)
    identical = mask.tolist() == decisions
    # Secondary: the full skim (decide + materialise) on each side —
    # the scalar path keeps a sublist while the columnar path rebuilds
    # every flat array.
    keep_scalar_s, scalar_kept = time_call(spec.apply, events)
    keep_columnar_s, kept_batch = time_call(
        lambda: batch.select(cut_mask(spec.cut, batch)))
    identical = identical and (
        [e.to_dict() for e in kept_batch.to_events()]
        == [e.to_dict() for e in scalar_kept]
    )
    return {
        "n_events": len(events),
        "n_selected": len(scalar_kept),
        "scalar_seconds": round(scalar_s, 4),
        "columnar_seconds": round(columnar_s, 4),
        "speedup": round(scalar_s / columnar_s, 3),
        "select_scalar_seconds": round(keep_scalar_s, 4),
        "select_columnar_seconds": round(keep_columnar_s, 4),
        "select_speedup": round(keep_scalar_s / keep_columnar_s, 3),
        "bit_identical": identical,
    }


def bench_smear(n_deposits: int) -> dict:
    response = CaloResponse(stochastic_term=0.5, constant_term=0.03)
    energies = np.random.default_rng(99).uniform(0.5, 200.0,
                                                 n_deposits)

    def scalar():
        rng = np.random.default_rng(4242)
        return [response.smear(float(e), rng) for e in energies]

    def columnar():
        rng = np.random.default_rng(4242)
        return response.smear_array(energies, rng)

    scalar_s, scalar_values = time_call(scalar)
    columnar_s, batch_values = time_call(columnar)
    return {
        "n_deposits": n_deposits,
        "scalar_seconds": round(scalar_s, 4),
        "columnar_seconds": round(columnar_s, 4),
        "speedup": round(scalar_s / columnar_s, 3),
        "bit_identical": batch_values.tolist() == scalar_values,
    }


def bench_histogram(n_values: int) -> dict:
    values = np.random.default_rng(7).normal(50.0, 20.0, n_values)
    weights = np.random.default_rng(8).uniform(0.5, 2.0, n_values)

    def scalar():
        histogram = Histogram1D("s", 100, 0.0, 100.0)
        for value, weight in zip(values.tolist(), weights.tolist()):
            histogram.fill(value, weight)
        return histogram

    def columnar():
        histogram = Histogram1D("v", 100, 0.0, 100.0)
        histogram.fill_array(values, weights)
        return histogram

    scalar_s, looped = time_call(scalar)
    columnar_s, vectorised = time_call(columnar)
    identical = (
        vectorised.values().tolist() == looped.values().tolist()
        and vectorised.underflow == looped.underflow
        and vectorised.overflow == looped.overflow
    )
    return {
        "n_values": n_values,
        "scalar_seconds": round(scalar_s, 4),
        "columnar_seconds": round(columnar_s, 4),
        "speedup": round(scalar_s / columnar_s, 3),
        "bit_identical": identical,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (smoke test, noisier)")
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        help="where to write the baseline JSON")
    args = parser.parse_args(argv)

    n_events = 800 if args.quick else 6000
    n_deposits = 20000 if args.quick else 200000
    n_values = 20000 if args.quick else 200000

    print(f"synthesizing {n_events} AOD events ...")
    events = synthesize_events(n_events)
    record = bench_envelope("repro.columnar structure-of-arrays engine")

    print("derived ntuple columns (per-event vs columnar) ...")
    record["workloads"]["kinematics"] = bench_kinematics(events)
    print("skim selection (per-event vs vectorised mask) ...")
    # The skim runs over a replicated sample: the scalar path is O(n)
    # in Python-call overhead while the columnar fixed overhead
    # amortises, so the larger sample reflects production skims.
    record["workloads"]["skim_selection"] = bench_skim(events * 4)
    print("calorimeter smear kernel (scalar loop vs smear_array) ...")
    record["workloads"]["smear_kernel"] = bench_smear(n_deposits)
    print("histogram fill (scalar loop vs fill_array) ...")
    record["workloads"]["histogram_fill"] = bench_histogram(n_values)
    # All four are single-core vector-width comparisons: meaningful on
    # any host, unlike the process-pool numbers in BENCH_parallel.json.
    for workload in record["workloads"].values():
        workload["speedup_meaningful"] = True

    output = Path(args.output)
    with output.open("w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for name, workload in record["workloads"].items():
        flag = "" if workload["bit_identical"] else "  (MISMATCH)"
        print(f"  {name:16s}: {workload['speedup']:8.2f}x{flag}")
    print(f"baseline written to {output}")
    return 0 if all(w["bit_identical"]
                    for w in record["workloads"].values()) else 1


if __name__ == "__main__":
    raise SystemExit(main())
