"""Experiment C-RVT — the RIVET vs RECAST comparison of Section 2.4.

Paper claims regenerated here:

1. RIVET's repository scales to "well over a hundred different
   analyses" with a small shared code base ("quite light from a
   footprint standpoint");
2. RIVET is truth-level only, so its efficiencies differ from the full
   detector-simulation chain RECAST runs — the fidelity gap that
   motivates RECAST's "significantly enhanced" level of detail;
3. the capability matrix: background subtraction and limit setting live
   on the RECAST side only.
"""

from repro.datamodel import AndCut, CountCut, MassWindowCut, SkimSpec
from repro.recast import FullChainBackend, ModelSpec, PreservedSearch
from repro.recast.bridge import RivetBridgeBackend, RivetSignalRegion
from repro.rivet import AnalysisRepository, standard_repository
from repro.rivet.standard_analyses import register_generated_catalog


def _search():
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    return PreservedSearch(
        analysis_id="GPD-EXO-2013-01", title="High-mass dimuon search",
        experiment="GPD", selection=selection, n_observed=3,
        background=2.5, background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )


def test_repository_scale_and_footprint(benchmark, emit):
    def build_large_repository():
        repository = AnalysisRepository("rivet-scale")
        register_generated_catalog(repository, 130)
        return repository.footprint()

    footprint = benchmark(build_large_repository)
    # "well over a hundred different analyses" ...
    assert footprint["n_analyses"] == 130
    # ... in a light, shared code base: one plugin class, small source.
    assert footprint["n_plugin_classes"] == 1
    assert footprint["source_bytes"] < 100_000

    standard = standard_repository().footprint()
    lines = [
        "RIVET-analogue repository footprint",
        "",
        f"generated catalogue: {footprint['n_analyses']} analyses, "
        f"{footprint['n_plugin_classes']} plugin classes, "
        f"{footprint['source_bytes']} bytes of source",
        f"standard catalogue:  {standard['n_analyses']} analyses, "
        f"{standard['n_plugin_classes']} plugin classes, "
        f"{standard['source_bytes']} bytes of source",
        "",
        "Paper: 'well over a hundred different analyses in a generic "
        "framework'; 'the code base is small and runs on essentially "
        "any platform'.",
    ]
    emit("rivet_footprint", "\n".join(lines))


def test_truth_vs_fullchain_fidelity(benchmark, emit):
    """The efficiency gap between truth-level and full-chain re-analysis."""
    search = _search()
    model = ModelSpec("Zp-1.5TeV", "zprime",
                      {"mass": 1500.0, "cross_section_pb": 0.05})

    def run_both():
        bridge = RivetBridgeBackend(
            standard_repository(),
            signal_regions={search.analysis_id: RivetSignalRegion(
                "TOY_2013_I0007", "mass", 500.0, 3000.0)},
            n_events=500, n_limit_toys=1200, seed=3300,
        )
        full = FullChainBackend("GPD", n_events=200, n_limit_toys=1200,
                                seed=3301)
        return bridge.process(search, model), full.process(search, model)

    truth_result, full_result = benchmark.pedantic(run_both, rounds=1,
                                                   iterations=1)

    # Both set finite limits (the bridge gained RECAST's machinery).
    assert truth_result.upper_limit_pb < 1.0
    assert full_result.upper_limit_pb < 1.0
    # The fidelity gap: truth-level efficiency exceeds the full-chain
    # efficiency because it ignores detector losses — the RIVET
    # limitation the paper calls out.
    assert truth_result.signal_efficiency > full_result.signal_efficiency
    gap = (truth_result.signal_efficiency
           - full_result.signal_efficiency)
    assert gap > 0.03

    capability_rows = [
        ("truth-level re-analysis", "yes", "via generator"),
        ("detector simulation", "no", "yes"),
        ("background subtraction", "no", "yes"),
        ("limit setting", "no (yes via bridge)", "yes"),
        ("open code base", "yes", "no (closed back end)"),
        ("maintenance footprint", "light", "full software stack"),
    ]
    lines = [
        "RIVET vs RECAST capability and fidelity",
        "",
        f"{'capability':28s}{'RIVET':22s}{'RECAST':22s}",
    ]
    for row in capability_rows:
        lines.append(f"{row[0]:28s}{row[1]:22s}{row[2]:22s}")
    lines.append("")
    lines.append(
        f"Z' (1.5 TeV) selection efficiency: truth-level "
        f"{truth_result.signal_efficiency:.3f} vs full chain "
        f"{full_result.signal_efficiency:.3f} (gap {gap:+.3f})"
    )
    lines.append(
        f"95% CL limits: truth {truth_result.upper_limit_pb:.2e} pb, "
        f"full chain {full_result.upper_limit_pb:.2e} pb"
    )
    emit("rivet_vs_recast", "\n".join(lines))
