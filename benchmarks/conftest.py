"""Shared benchmark helpers.

Every benchmark regenerates one of the paper's tables or load-bearing
claims. Besides timing the workload with pytest-benchmark, each bench
*emits* the regenerated rows to ``benchmarks/output/<name>.txt`` so the
paper-vs-measured record in EXPERIMENTS.md can be refreshed from disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def emit():
    """Writer for regenerated tables: emit(name, text)."""
    OUTPUT_DIR.mkdir(exist_ok=True)

    def _emit(name: str, text: str) -> None:
        path = OUTPUT_DIR / f"{name}.txt"
        with path.open("w", encoding="utf-8") as handle:
            handle.write(text.rstrip() + "\n")

    return _emit


@pytest.fixture(scope="session")
def gpd_geometry():
    from repro.detector import generic_lhc_detector

    return generic_lhc_detector()


@pytest.fixture(scope="session")
def conditions_store():
    from repro.conditions import default_conditions

    return default_conditions()
