"""Experiment C-RCT — the RECAST re-analysis round trip of Section 2.3.

Paper artifacts: the RECAST control flow ("front end ... API ... back
end ... the results, if approved, are returned to the user") and the
physics use case ("re-run an analysis on a new model in order to
understand what constraints existing data places on new physics").

Shape expectations: a 1.5 TeV Z' with a visible cross-section above the
sensitivity is excluded; a model outside the search region (SM Z) is
not; the requester sees nothing until approval.
"""

from repro.datamodel import AndCut, CountCut, MassWindowCut, SkimSpec
from repro.recast import (
    AnalysisCatalog,
    FullChainBackend,
    ModelSpec,
    PreservedSearch,
    RecastAPI,
    RecastFrontend,
)


def _system():
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    search = PreservedSearch(
        analysis_id="GPD-EXO-2013-01", title="High-mass dimuon search",
        experiment="GPD", selection=selection, n_observed=3,
        background=2.5, background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )
    catalog = AnalysisCatalog("GPD")
    catalog.register(search)
    api = RecastAPI()
    api.register_experiment(
        catalog,
        FullChainBackend("GPD", n_events=200, n_limit_toys=1500,
                         seed=3400),
    )
    return api


def _round_trip(api, model):
    frontend = RecastFrontend(api)
    request_id = frontend.submit_request("GPD-EXO-2013-01", model,
                                         "theorist")
    api.accept(request_id)
    api.run(request_id)
    before_approval = frontend.result(request_id)
    api.approve(request_id, "coordinator")
    return before_approval, frontend.result(request_id)


def test_recast_round_trip(benchmark, emit):
    api = _system()

    def run():
        zprime = ModelSpec("Zp-1.5TeV", "zprime",
                           {"mass": 1500.0, "cross_section_pb": 0.05})
        sm_z = ModelSpec("SM-Z", "drell_yan_z",
                         {"cross_section_pb": 1100.0})
        return _round_trip(api, zprime), _round_trip(api, sm_z)

    (zp_before, zp_after), (z_before, z_after) = benchmark.pedantic(
        run, rounds=1, iterations=1,
    )

    # Control flow: nothing leaks before approval.
    assert zp_before is None and z_before is None

    # Physics: the in-region Z' is excluded with good efficiency.
    assert zp_after["signal_efficiency"] > 0.3
    assert zp_after["excluded"] is True
    # The out-of-region SM Z has (near-)zero efficiency and is not
    # excluded by this search.
    assert z_after["signal_efficiency"] < 0.05
    assert z_after["excluded"] is False

    lines = [
        "RECAST re-analysis round trip (preserved high-mass dimuon "
        "search, 20 fb^-1)",
        "",
        f"{'model':16s}{'efficiency':>12s}{'limit [pb]':>14s}"
        f"{'model sigma':>14s}{'verdict':>12s}",
    ]
    for result in (zp_after, z_after):
        verdict = "EXCLUDED" if result["excluded"] else "ALLOWED"
        lines.append(
            f"{result['model_name']:16s}"
            f"{result['signal_efficiency']:>12.3f}"
            f"{result['upper_limit_pb']:>14.3e}"
            f"{result['model_cross_section_pb']:>14.3e}"
            f"{verdict:>12s}"
        )
    lines.append("")
    lines.append("Requester visibility before approval: None (the "
                 "'closed system' control mechanism).")
    emit("recast_reanalysis", "\n".join(lines))
