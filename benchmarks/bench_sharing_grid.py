"""Experiment A-F9 — the sharing/access rubric and the Data Sharing Grid.

Paper artifacts: the Q9F sharing/access maturity rubric and the Data
Sharing Grid of Appendix A Section 9, combined with Section 4's data-
policy listing (CMS/LHCb approved 2013; ALICE/ATLAS under discussion).
The grid's preservation-stage audience must follow the policies.
"""

from repro.experiments import all_experiments, get_experiment
from repro.interview import response_for_experiment
from repro.interview.report import (
    render_sharing_grid,
    sharing_grid_table,
)


def _build_grid():
    responses = [response_for_experiment(profile)
                 for profile in all_experiments()]
    table = sharing_grid_table(responses)
    rendered = render_sharing_grid(responses)
    return responses, table, rendered


def test_sharing_grid(benchmark, emit):
    responses, table, rendered = benchmark(_build_grid)

    # Every stage of every experiment has a grid entry.
    for response in responses:
        assert response.sharing_grid.is_complete()

    # Section 4 policy listing drives the preservation row.
    assert table["preservation"]["CMS"] == "whole world"
    assert table["preservation"]["LHCb"] == "whole world"
    assert table["preservation"]["ALICE"] == "others in the field"
    assert table["preservation"]["ATLAS"] == "others in the field"
    assert table["preservation"]["CDF"] == "project collaborators"

    # Publication-stage results are public everywhere; pre-publication
    # stages stay inside the collaborations.
    assert all(value == "whole world"
               for value in table["publication"].values())
    assert all(value == "project collaborators"
               for value in table["collection"].values())

    policy_lines = ["Data policies (Section 4):"]
    for profile in all_experiments():
        policy_lines.append(
            f"  {profile.name}: {profile.data_policy.describe()}"
        )
    emit("sharing_grid", rendered + "\n\n" + "\n".join(policy_lines))


def test_openness_ordering(benchmark):
    def openness_by_policy():
        cms = response_for_experiment(get_experiment("CMS"))
        cdf = response_for_experiment(get_experiment("CDF"))
        return (cms.sharing_grid.entry_for("preservation").openness,
                cdf.sharing_grid.entry_for("preservation").openness)

    cms_openness, cdf_openness = benchmark(openness_by_policy)
    assert cms_openness > cdf_openness
