"""Experiment C-L2C — the thin AOD -> Level-2 converter (Section 2.1).

Paper artifact: the Finland/CMS-open-data architecture — "a thin layer
of software will convert data in a relatively low-level format (called
AOD) ... into a simplified representation that can be used for further
analysis or visualization". The bench measures converter throughput,
the size reduction, and that the output genuinely serves both uses
(portal analysis and event display).
"""

from repro.conditions import default_conditions
from repro.datamodel import make_aod
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.outreach import (
    EventDisplayRecord,
    Level2Converter,
    OutreachPortal,
)
from repro.reconstruction import GlobalTagView, Reconstructor

N_EVENTS = 250


def _make_aods(geometry, conditions):
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=3900))
    simulation = DetectorSimulation(geometry, seed=3901)
    digitizer = Digitizer(geometry, run_number=42, seed=3902)
    reconstructor = Reconstructor(
        geometry, GlobalTagView(conditions, "GT-FINAL"))
    aods = []
    for event in generator.stream(N_EVENTS):
        reco = reconstructor.reconstruct(
            digitizer.digitize(simulation.simulate(event)))
        aods.append(make_aod(reco))
    return aods


def test_converter_throughput_and_usability(benchmark, emit,
                                            gpd_geometry,
                                            conditions_store):
    aods = _make_aods(gpd_geometry, conditions_store)

    level2 = benchmark(
        lambda: Level2Converter(collision_energy_tev=8.0).convert_many(
            aods
        )
    )

    # Volume accounting from one clean pass (the benchmark loop above
    # re-runs the conversion many times for timing).
    converter = Level2Converter(collision_energy_tev=8.0)
    converter.convert_many(aods)
    stats = converter.stats
    # The thin layer reduces volume (AOD -> simplified).
    assert stats.reduction_factor > 1.0
    # Usability for analysis: the portal recovers the Z peak.
    portal = OutreachPortal(level2, "converted")
    histogram = portal.histogram("dimuon_mass", 30, 60.0, 120.0)
    assert histogram.integral() > 20
    assert abs(histogram.mean() - 91.2) < 3.0
    # Usability for visualisation: a standalone display record builds.
    record = EventDisplayRecord.build(gpd_geometry, level2[0])
    assert record.to_dict()["format"] == "repro-event-display"

    per_event_output = stats.output_bytes / stats.n_events
    lines = [
        "Level-2 conversion (thin layer, 250 Z->mumu AOD events)",
        "",
        f"input volume:       {stats.input_bytes} bytes",
        f"output volume:      {stats.output_bytes} bytes "
        f"({per_event_output:.0f} B/event)",
        f"size reduction:     {stats.reduction_factor:.2f}x",
        f"dimuon peak (portal histogram): {histogram.mean():.2f} GeV",
        "display record:     builds standalone (geometry + payload)",
        "",
        "Paper: one simplified format serves 'further analysis or "
        "visualization using an event display that consumes this "
        "simplified format'.",
    ]
    emit("level2_conversion", "\n".join(lines))
