"""Experiment C-ARC — archive use cases and migration survival.

Paper artifacts regenerated:

1. the HepData heterogeneous-payload use case ("an ATLAS search analysis
   with a very large amount of information uploaded to the HepData
   repository"),
2. the validation use case ("The analysis can be re-run at any time.
   The outputs could be used, for example, for validation purposes"),
3. the migration-cost discussion: preserved analyses are re-validated
   after a set of platform migrations; lossy migrations are *detected*.
"""

import numpy as np

from repro.core import (
    DropAuxiliaryMigration,
    FieldRenameMigration,
    LosslessMigration,
    PrecisionLossMigration,
    PreservedAnalysisBundle,
    apply_migration,
    revalidate,
)
from repro.conditions import default_conditions
from repro.datamodel import (
    AndCut,
    CountCut,
    MassWindowCut,
    SkimSpec,
    SlimSpec,
    make_aod,
)
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.hepdata import DataTable, HepDataArchive, HepDataRecord, Reaction
from repro.hepdata.query import find_with_auxiliary_format
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.stats import EfficiencyGrid, Histogram1D


def _make_bundle(geometry, conditions):
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=4000))
    simulation = DetectorSimulation(geometry, seed=4001)
    digitizer = Digitizer(geometry, run_number=42, seed=4002)
    reconstructor = Reconstructor(
        geometry, GlobalTagView(conditions, "GT-FINAL"))
    aods = []
    for event in generator.stream(120):
        reco = reconstructor.reconstruct(
            digitizer.digitize(simulation.simulate(event)))
        aods.append(make_aod(reco))
    skim = SkimSpec("zskim", AndCut((
        CountCut("muons", 2, min_pt=15.0),
        MassWindowCut("muons", 60.0, 120.0, opposite_charge=True),
    )))
    slim = SlimSpec("zslim", ("dimuon_mass", "met"))
    return PreservedAnalysisBundle.create("Z-2013", aods, skim, slim)


def test_hepdata_search_payload(benchmark, emit):
    """The large, heterogeneous search upload the paper describes."""
    def build_and_query():
        archive = HepDataArchive("durham")
        record = HepDataRecord(
            record_id="ins9001",
            title="Search for supersymmetry in jets + MET",
            experiment="GPD", keywords=("search", "SUSY"),
        )
        record.reactions.append(Reaction("P P", "SQUARK SQUARK X",
                                         8000.0))
        rng = np.random.default_rng(7)
        spectrum = Histogram1D("meff", 20, 0.0, 2000.0)
        spectrum.fill_array(rng.exponential(400.0, 2000))
        record.add_table(DataTable.from_histogram(
            "Table 1", spectrum, "m_eff", "GeV", "events", ""))
        grid = EfficiencyGrid("acceptance", list(range(0, 2001, 50)),
                              list(range(0, 1001, 50)),
                              x_label="m(squark)", y_label="m(LSP)")
        for m1 in range(25, 2000, 50):
            for m2 in range(25, min(m1, 1000), 50):
                for trial in range(20):
                    grid.record(m1, m2, trial < 12)
        record.add_auxiliary("acceptance_grid", grid.to_dict())
        record.add_auxiliary("cutflow", {
            "format": "repro-cutflow",
            "rows": [["all", 10000], ["4 jets", 3000],
                     ["MET > 160", 400], ["m_eff > 800", 25]],
        })
        archive.submit(record)
        matches = find_with_auxiliary_format(archive,
                                             "efficiency_grid")
        return archive, record, matches

    archive, record, matches = benchmark(build_and_query)
    # The archive absorbed the heterogeneous payload and can find it;
    # the payload dwarfs a plain cross-section table (~hundreds of B).
    assert record.payload_size_bytes() > 5_000
    assert [m.record_id for m in matches] == ["ins9001"]
    grid = EfficiencyGrid.from_dict(
        archive.get("ins9001").auxiliary["acceptance_grid"])
    assert grid.efficiency(425.0, 225.0) == 0.6

    emit("hepdata_search_payload", "\n".join([
        "HepData heterogeneous search payload",
        "",
        f"record: {record.record_id} ({record.title})",
        f"payload size: {record.payload_size_bytes()} bytes",
        f"tables: {[t.name for t in record.tables]}",
        f"auxiliary payloads: {sorted(record.auxiliary)}",
        "query by auxiliary format 'efficiency_grid': "
        f"{[m.record_id for m in matches]}",
        "",
        "Paper: 'HepData can accept data in many formats ... it can "
        "accommodate the sorts of information needed to replicate a "
        "new particle search'.",
    ]))


def test_migration_survival_matrix(benchmark, emit, gpd_geometry,
                                   conditions_store):
    bundle = _make_bundle(gpd_geometry, conditions_store)
    migrations = [
        LosslessMigration(),
        PrecisionLossMigration(digits=6),
        PrecisionLossMigration(digits=3),
        FieldRenameMigration("dimuon_mass", "m_mumu"),
        DropAuxiliaryMigration(keep_fraction=0.8),
    ]

    def run_matrix():
        outcomes = []
        for migration in migrations:
            migrated = apply_migration(bundle, migration)
            outcomes.append((migration, revalidate(migrated)))
        return outcomes

    outcomes = benchmark.pedantic(run_matrix, rounds=1, iterations=1)

    # Lossless survives; every lossy migration is *detected*.
    assert len(outcomes) == 5
    assert outcomes[0][1].passed
    assert not outcomes[2][1].passed  # 3-digit precision
    assert not outcomes[3][1].passed  # schema drift
    assert not outcomes[4][1].passed  # data loss

    lines = [
        "Preserved-analysis re-validation across platform migrations",
        "",
        f"{'migration':34s}{'re-validation':>15s}",
    ]
    for migration, outcome in outcomes:
        detail = ""
        if not outcome.passed and outcome.mismatches:
            detail = f"  ({outcome.mismatches[0][:45]})"
        label = migration.name
        digits = getattr(migration, "digits", None)
        if digits is not None:
            label = f"{label} ({digits} digits)"
        lines.append(
            f"{label:34s}"
            f"{'PASS' if outcome.passed else 'FAIL':>15s}{detail}"
        )
    lines.append("")
    lines.append("Paper: full-stack preservation 'must be migrated to "
                 "new computing platforms'; re-validation catches the "
                 "silent failures.")
    emit("preservation_validation", "\n".join(lines))
