"""Experiment C-DB — the Les Houches common analysis database (Rec. 1b).

Paper artifact: "a common platform to store analysis databases,
collecting object definitions, cuts, and all other information,
including well-encapsulated functions, necessary to reproduce or use the
results of the analyses."

The bench fills the database with many structured descriptions, queries
it the way a phenomenologist would, and — the crucial property —
*re-executes* a stored description against events, comparing the result
with the original analyst code path.
"""

from repro.conditions import default_conditions
from repro.core import (
    AnalysisDatabase,
    AnalysisDescription,
    EfficiencyFunction,
    EventSelection,
    KinematicVariable,
    ObjectDefinition,
)
from repro.datamodel import (
    AndCut,
    CountCut,
    MassWindowCut,
    SkimSpec,
    make_aod,
)
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.reconstruction import GlobalTagView, Reconstructor


def _description(index: int) -> AnalysisDescription:
    min_pt = 10.0 + (index % 5) * 5.0
    return AnalysisDescription(
        analysis_id=f"GPD-SMP-2013-{index:03d}",
        title=f"Dimuon selection variant {index}",
        experiment="GPD" if index % 3 else "FWD",
        final_state="mu+ mu-",
        objects=[ObjectDefinition("muon", min_pt, 2.4,
                                  max_isolation=10.0)],
        selection=EventSelection(cuts=(
            ("two muons", CountCut("muons", 2, min_pt=min_pt)),
            ("mass window", MassWindowCut("muons", 60.0, 120.0,
                                          opposite_charge=True)),
        )),
        variables=[KinematicVariable("m_mumu",
                                     "leading dimuon invariant mass",
                                     "GeV")],
        efficiencies=[EfficiencyFunction(
            "trigger", "pt", [0.0, 20.0, 1000.0], [0.6, 0.95])],
    )


def _make_aods(geometry, conditions):
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=4100))
    simulation = DetectorSimulation(geometry, seed=4101)
    digitizer = Digitizer(geometry, run_number=42, seed=4102)
    reconstructor = Reconstructor(
        geometry, GlobalTagView(conditions, "GT-FINAL"))
    return [
        make_aod(reconstructor.reconstruct(
            digitizer.digitize(simulation.simulate(event))))
        for event in generator.stream(100)
    ]


def test_analysis_database(benchmark, emit, gpd_geometry,
                           conditions_store, tmp_path_factory):
    aods = _make_aods(gpd_geometry, conditions_store)

    def build_query_reproduce():
        database = AnalysisDatabase("leshouches")
        for index in range(60):
            database.add(_description(index))
        gpd_entries = database.by_experiment("GPD")
        muon_entries = database.using_object("muon")
        result = database.reproduce("GPD-SMP-2013-001", aods)
        return database, gpd_entries, muon_entries, result

    database, gpd_entries, muon_entries, result = benchmark(
        build_query_reproduce
    )

    assert len(database) == 60
    assert len(muon_entries) == 60
    assert 0 < len(gpd_entries) < 60

    # Reproduction fidelity: the stored description selects exactly the
    # same events as the original analyst skim.
    description = database.get("GPD-SMP-2013-001")
    analyst_skim = SkimSpec("analyst", AndCut(tuple(
        cut for _, cut in description.selection.cuts)))
    assert result["n_selected"] == len(analyst_skim.apply(aods))
    assert result["n_initial"] == len(aods)

    # Round trip through disk preserves executability.
    path = tmp_path_factory.mktemp("db") / "analyses.json"
    database.save(path)
    reloaded = AnalysisDatabase.load(path)
    assert (reloaded.reproduce("GPD-SMP-2013-001", aods)
            == result)

    flow = "; ".join(f"{name}: {count}"
                     for name, count in result["cutflow"])
    lines = [
        "Common analysis database (Les Houches Recommendation 1b)",
        "",
        f"stored descriptions: {len(database)}",
        f"query by_experiment('GPD'): {len(gpd_entries)} hits",
        f"query using_object('muon'): {len(muon_entries)} hits",
        f"reproduce GPD-SMP-2013-001 on 100 fresh events:",
        f"  cutflow: {flow}",
        f"  acceptance: {result['acceptance']:.2f}",
        "reproduction matches analyst code path exactly: True",
        "round trip through JSON file: identical results",
        "",
        "Rendered Rec. 1a publication tables for one entry:",
        description.render_tables(),
    ]
    emit("analysisdb", "\n".join(lines))
