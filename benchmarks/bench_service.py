"""Benchmark the RECAST request service: throughput, dedup, replay.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_service.py [--quick]

Writes ``BENCH_service.json`` at the repo root in the shared bench
envelope. Three workloads:

- ``throughput`` — a single-tenant burst of distinct requests driven
  to idle; requests per second of wall time.
- ``dedup`` — a repeat-heavy multi-tenant mix; the measured cache +
  dedup hit rate is the fraction of submissions that never reached a
  back end.
- ``replay`` — the demo submission script run twice; records whether
  the two event logs were byte-identical (the determinism claim this
  subsystem exists for).
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

from repro.obs import bench_envelope
from repro.recast import ModelSpec
from repro.service import (
    RecastService,
    ServiceConfig,
    TenantQuota,
    demo_api,
    demo_script,
    run_script,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_service.json"


def model(mass: float) -> ModelSpec:
    return ModelSpec(f"Zp-{mass:g}", "zprime",
                     {"mass": mass, "cross_section_pb": 0.05})


def bench_throughput(n_requests: int, n_events: int) -> dict:
    api = demo_api(n_events=n_events, n_limit_toys=200)
    service = RecastService(api, ServiceConfig(max_inflight=4))
    service.register_tenant("bench", TenantQuota(
        weight=1.0, max_queued=n_requests, max_inflight=4))
    started = time.perf_counter()
    tickets = [service.submit("bench", "GPD-EXO-01",
                              model(1000.0 + 25.0 * index))
               for index in range(n_requests)]
    steps = service.run_until_idle()
    elapsed = time.perf_counter() - started
    committed = sum(
        1 for ticket in tickets
        if api.get_request(ticket.request_id).result is not None
    )
    return {
        "n_requests": n_requests,
        "n_committed": committed,
        "n_steps": steps,
        "wall_seconds": round(elapsed, 4),
        "requests_per_second": round(n_requests / elapsed, 3),
    }


def bench_dedup(n_tenants: int, n_rounds: int, n_events: int) -> dict:
    api = demo_api(n_events=n_events, n_limit_toys=200)
    service = RecastService(api, ServiceConfig(max_inflight=4))
    for index in range(n_tenants):
        service.register_tenant(f"tenant-{index:02d}", TenantQuota(
            weight=1.0 + index % 2, max_queued=64, max_inflight=2))
    # Every tenant scans the same 4 mass points round after round: the
    # first round executes, everything after is dedup or cache.
    masses = [1200.0, 1500.0, 1800.0, 2100.0]
    submitted = 0
    started = time.perf_counter()
    for _ in range(n_rounds):
        for index in range(n_tenants):
            for mass in masses:
                service.submit(f"tenant-{index:02d}", "GPD-EXO-01",
                               model(mass))
                submitted += 1
        service.run_until_idle()
    elapsed = time.perf_counter() - started
    counters = service.metrics.snapshot()["counters"]

    def total(name: str) -> int:
        return sum(c["value"] for c in counters if c["name"] == name)

    executions = total("service.commits")
    shared = total("service.dedup_hits") + total("service.cache_hits")
    return {
        "n_tenants": n_tenants,
        "n_submissions": submitted,
        "n_backend_executions": executions,
        "n_shared_answers": shared,
        "hit_rate": round(shared / submitted, 5),
        "wall_seconds": round(elapsed, 4),
        "submissions_per_second": round(submitted / elapsed, 3),
    }


def bench_replay(n_events: int) -> dict:
    def run() -> bytes:
        service, _ = run_script(
            demo_api(n_events=n_events, n_limit_toys=200),
            demo_script())
        return service.event_log_bytes()

    started = time.perf_counter()
    log_one = run()
    log_two = run()
    elapsed = time.perf_counter() - started
    return {
        "n_log_events": log_one.count(b"\n"),
        "byte_identical": log_one == log_two,
        "wall_seconds": round(elapsed, 4),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (smoke test, noisier)")
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        help="where to write the baseline JSON")
    args = parser.parse_args(argv)

    n_requests = 8 if args.quick else 24
    n_tenants = 3 if args.quick else 6
    n_rounds = 2 if args.quick else 4
    n_events = 30 if args.quick else 60

    record = bench_envelope("repro.service request scheduler")
    print("throughput (single tenant, distinct requests) ...")
    record["workloads"]["throughput"] = bench_throughput(
        n_requests, n_events)
    print("dedup (repeat-heavy multi-tenant mix) ...")
    record["workloads"]["dedup"] = bench_dedup(
        n_tenants, n_rounds, n_events)
    print("replay (demo script twice, logs compared) ...")
    record["workloads"]["replay"] = bench_replay(n_events)

    output = Path(args.output)
    with output.open("w", encoding="utf-8") as handle:
        json.dump(record, handle, indent=2, sort_keys=True)
        handle.write("\n")

    throughput = record["workloads"]["throughput"]
    dedup = record["workloads"]["dedup"]
    replay = record["workloads"]["replay"]
    print(f"  throughput: {throughput['requests_per_second']:.1f} req/s")
    print(f"  dedup hit rate: {dedup['hit_rate']:.3f} "
          f"({dedup['n_backend_executions']} executions for "
          f"{dedup['n_submissions']} submissions)")
    print(f"  replay byte-identical: {replay['byte_identical']}")
    print(f"baseline written to {output}")
    return 0 if replay["byte_identical"] else 1


if __name__ == "__main__":
    raise SystemExit(main())
