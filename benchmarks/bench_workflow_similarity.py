"""Experiment C-WF — the workflow-similarity findings of Section 3.2.

Paper claims regenerated here:

1. "the data processing and analysis workflows ... are remarkably
   similar" for the large central steps (pre-AOD),
2. "very minor differences in constants-handling (Alice ... text files
   ... the other experiments ... database access)" — ALICE is the only
   pre-AOD outlier,
3. "The post-AOD workflows ... is where there is the most variety of
   approaches" — CMS most common, ATLAS least central.
"""

import statistics

from repro.experiments import (
    all_experiments,
    build_workflow,
    get_experiment,
    post_aod_subgraph,
    similarity_matrix,
    workflow_similarity,
)


def _build_matrices():
    experiments = all_experiments()
    return {
        region: similarity_matrix(experiments, region)
        for region in ("full", "pre_aod", "post_aod")
    }


def test_workflow_similarity(benchmark, emit):
    matrices = benchmark(_build_matrices)
    pre = matrices["pre_aod"]
    post = matrices["post_aod"]

    mean_pre = statistics.mean(pre.values())
    mean_post = statistics.mean(post.values())

    # Claim 1: pre-AOD similarity is high.
    assert mean_pre > 0.85
    # Claim 3: post-AOD similarity is substantially lower.
    assert mean_pre > mean_post + 0.2

    # Claim 2: ALICE (text-file constants) is the only pre-AOD outlier;
    # all other pairs are identical pre-AOD.
    alice_pairs = {pair: value for pair, value in pre.items()
                   if "ALICE" in pair}
    other_pairs = {pair: value for pair, value in pre.items()
                   if "ALICE" not in pair}
    assert max(alice_pairs.values()) < min(other_pairs.values())
    assert min(other_pairs.values()) == 1.0

    # CMS's common-format model sits closer to the medium-commonality
    # experiments than ATLAS's fully per-group model does.
    cms_post = post_aod_subgraph(build_workflow(get_experiment("CMS")))
    atlas_post = post_aod_subgraph(
        build_workflow(get_experiment("ATLAS"))
    )
    lhcb_post = post_aod_subgraph(build_workflow(get_experiment("LHCb")))
    assert (workflow_similarity(cms_post, lhcb_post)
            > workflow_similarity(atlas_post, lhcb_post))

    lines = [
        "Workflow similarity (labelled-graph overlap, 1.0 = identical)",
        "",
        f"mean pre-AOD  similarity: {mean_pre:.3f}   "
        f"(paper: 'remarkably similar')",
        f"mean post-AOD similarity: {mean_post:.3f}   "
        f"(paper: 'most variety of approaches')",
        f"mean full     similarity: "
        f"{statistics.mean(matrices['full'].values()):.3f}",
        "",
        "pre-AOD pairs (ALICE rows show the text-file constants "
        "outlier):",
    ]
    for pair, value in sorted(pre.items()):
        lines.append(f"  {pair[0]:8s} vs {pair[1]:8s} {value:.3f}")
    lines.append("")
    lines.append("post-AOD pairs:")
    for pair, value in sorted(post.items()):
        lines.append(f"  {pair[0]:8s} vs {pair[1]:8s} {value:.3f}")
    emit("workflow_similarity", "\n".join(lines))
