"""Experiment C-BRG — the RIVET <-> RECAST bridge deliverable.

Paper claim: "A DASPOS project to connect RECAST with the RIVET
framework is underway. This will significantly broaden the capabilities
of both systems." The bench runs the same preserved search through the
bridge and measures the capability union: a RIVET analysis acquires
limit setting; RECAST acquires a light, open back end.
"""

from repro.datamodel import AndCut, CountCut, MassWindowCut, SkimSpec
from repro.recast import (
    AnalysisCatalog,
    ModelSpec,
    PreservedSearch,
    RecastAPI,
    RecastFrontend,
    RivetBridgeBackend,
)
from repro.recast.bridge import RivetSignalRegion
from repro.rivet import standard_repository


def _search():
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    return PreservedSearch(
        analysis_id="GPD-EXO-2013-01", title="High-mass dimuon search",
        experiment="GPD", selection=selection, n_observed=3,
        background=2.5, background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )


def test_bridge_serves_recast_requests(benchmark, emit):
    """A RIVET analysis plugged in as a first-class RECAST back end."""
    repository = standard_repository()
    catalog = AnalysisCatalog("GPD")
    catalog.register(_search())
    api = RecastAPI()
    api.register_experiment(catalog, RivetBridgeBackend(
        repository,
        signal_regions={"GPD-EXO-2013-01": RivetSignalRegion(
            "TOY_2013_I0007", "mass", 500.0, 3000.0)},
        n_events=600, n_limit_toys=1500, seed=3500,
    ))
    frontend = RecastFrontend(api)

    def round_trip():
        request_id = frontend.submit_request(
            "GPD-EXO-2013-01",
            ModelSpec("Zp-1.5TeV", "zprime",
                      {"mass": 1500.0, "cross_section_pb": 0.05}),
            "theorist",
        )
        api.accept(request_id)
        api.run(request_id)
        api.approve(request_id, "coordinator")
        return frontend.result(request_id)

    result = benchmark.pedantic(round_trip, rounds=1, iterations=1)

    # The bridged analysis produced a real limit through the full
    # RECAST control flow — the capability union the paper anticipates.
    assert result is not None
    assert result["backend"] == "rivet-bridge"
    assert result["extra"]["truth_level_only"] is True
    assert result["signal_efficiency"] > 0.5
    assert result["upper_limit_pb"] < 0.01
    assert result["excluded"] is True

    lines = [
        "RIVET <-> RECAST bridge (the DASPOS deliverable)",
        "",
        f"RIVET analysis used:   {result['extra']['rivet_analysis']}",
        f"served as back end:    {result['backend']}",
        f"signal efficiency:     {result['signal_efficiency']:.3f} "
        f"(truth level)",
        f"95% CL upper limit:    {result['upper_limit_pb']:.3e} pb",
        f"model excluded:        {result['excluded']}",
        "",
        "Capability union achieved: the RIVET analysis gained CLs "
        "limit setting and the approval-gated RECAST control flow; "
        "RECAST gained a light-footprint open back end.",
    ]
    emit("bridge", "\n".join(lines))
