"""Ablation — description-based vs code-based preservation.

Section 3.2 contrasts the two preservation strategies this library
implements: post-AOD steps reduce to *logical skim/slim descriptions*,
while the final analyst operations need *direct code preservation*. The
bench subjects one analysis preserved both ways to the same platform
migrations and compares survival — the declarative description is
schema-sensitive while the code capture is precision-robust, so the two
modes fail in different (complementary) ways.
"""

from repro.core import (
    FieldRenameMigration,
    PrecisionLossMigration,
    PreservedAnalysisBundle,
    ScriptCapture,
    apply_migration,
    revalidate,
)
from repro.conditions import default_conditions
from repro.datamodel import (
    AndCut,
    CountCut,
    MassWindowCut,
    SkimSpec,
    SlimSpec,
    make_aod,
)
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.reconstruction import GlobalTagView, Reconstructor


def final_analysis(events):
    """The analyst's final step over ntuple rows: a windowed count."""
    selected = 0
    for event in events:
        if 80.0 <= event["dimuon_mass"] <= 100.0:
            selected += 1
    return {"n_window": selected, "n_total": len(events)}


def _make_rows(geometry, conditions):
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=4300))
    simulation = DetectorSimulation(geometry, seed=4301)
    digitizer = Digitizer(geometry, run_number=42, seed=4302)
    reconstructor = Reconstructor(
        geometry, GlobalTagView(conditions, "GT-FINAL"))
    aods = [
        make_aod(reconstructor.reconstruct(
            digitizer.digitize(simulation.simulate(event))))
        for event in generator.stream(120)
    ]
    skim = SkimSpec("zskim", AndCut((
        CountCut("muons", 2, min_pt=15.0),
        MassWindowCut("muons", 60.0, 120.0, opposite_charge=True),
    )))
    slim = SlimSpec("zslim", ("dimuon_mass", "met"))
    bundle = PreservedAnalysisBundle.create("declarative", aods, skim,
                                            slim)
    rows = [row.to_dict()["cols"] for row in slim.apply(
        skim.apply(aods))]
    return bundle, rows


def test_description_vs_code_preservation(benchmark, emit, gpd_geometry,
                                          conditions_store):
    bundle, rows = _make_rows(gpd_geometry, conditions_store)
    capture = ScriptCapture.create("analyst-final-step", final_analysis,
                                   rows)

    def survival_matrix():
        outcomes = {}
        # Precision loss: the declarative bundle's exact row comparison
        # fails, while the windowed count in the captured code is
        # insensitive to the 6th digit.
        lossy = PrecisionLossMigration(digits=6)
        migrated_bundle = apply_migration(bundle, lossy)
        outcomes["declarative/precision"] = revalidate(
            migrated_bundle
        ).passed
        lossy_capture = ScriptCapture.from_dict({
            **{k: v for k, v in capture.to_dict().items()
               if k not in ("input_digest", "expected_digest")},
            "input_records": lossy._truncate(capture.to_dict()
                                             ["input_records"]),
        })
        outcomes["code/precision"] = lossy_capture.reexecute().passed
        # Schema drift: both modes break when the column is renamed —
        # but the code capture breaks *loudly* at re-execution.
        rename = FieldRenameMigration("dimuon_mass", "m_mumu")
        outcomes["declarative/rename"] = revalidate(
            apply_migration(bundle, rename)
        ).passed
        renamed_capture = ScriptCapture.from_dict({
            **{k: v for k, v in capture.to_dict().items()
               if k not in ("input_digest", "expected_digest")},
            "input_records": rename._rename(capture.to_dict()
                                            ["input_records"]),
        })
        outcomes["code/rename"] = renamed_capture.reexecute().passed
        return outcomes

    outcomes = benchmark.pedantic(survival_matrix, rounds=1,
                                  iterations=1)

    # Complementary failure modes.
    assert outcomes["declarative/precision"] is False
    assert outcomes["code/precision"] is True
    assert outcomes["declarative/rename"] is False
    assert outcomes["code/rename"] is False

    lines = [
        "Ablation: declarative description vs direct code preservation",
        "",
        f"{'migration':22s}{'declarative bundle':>20s}"
        f"{'script capture':>17s}",
        f"{'precision loss (6d)':22s}"
        f"{'FAIL' if not outcomes['declarative/precision'] else 'PASS':>20s}"
        f"{'PASS' if outcomes['code/precision'] else 'FAIL':>17s}",
        f"{'column rename':22s}"
        f"{'FAIL' if not outcomes['declarative/rename'] else 'PASS':>20s}"
        f"{'PASS' if outcomes['code/rename'] else 'FAIL':>17s}",
        "",
        "The exact declarative re-validation is the stricter detector; "
        "the captured code tolerates benign precision drift but still "
        "catches schema drift. The paper's two preservation modes are "
        "complementary, not redundant.",
    ]
    emit("ablation_description_vs_code", "\n".join(lines))
