"""Experiment C-RED — nested data reduction through the lifecycle.

Paper artifacts: the Section 3.2 "generic outline of typical data
processing" and the Appendix A Section 2 lifecycle example (collection
-> analysis stages -> publication). The bench runs the full chain and
measures event counts and byte volumes per tier, checking the nested
reduction the paper describes: each analysis-facing tier is smaller than
its parent, and the final ntuple is orders of magnitude below RAW.
"""

from repro.conditions import default_conditions
from repro.datamodel import (
    AndCut,
    CountCut,
    MassWindowCut,
    SkimSpec,
    SlimSpec,
    make_aod,
)
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.kinematics.units import human_bytes
from repro.reconstruction import GlobalTagView, Reconstructor

N_EVENTS = 300


def _run_lifecycle(geometry, conditions):
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=3100))
    simulation = DetectorSimulation(geometry, seed=3101)
    digitizer = Digitizer(geometry, run_number=42, seed=3102)
    reconstructor = Reconstructor(
        geometry, GlobalTagView(conditions, "GT-FINAL"))
    skim = SkimSpec("dimuon", AndCut((
        CountCut("muons", 2, min_pt=15.0),
        MassWindowCut("muons", 60.0, 120.0, opposite_charge=True),
    )))
    slim = SlimSpec("zntuple", ("dimuon_mass", "met"))

    raw_bytes = 0
    reco_bytes = 0
    aod_bytes = 0
    aods = []
    for event in generator.stream(N_EVENTS):
        raw = digitizer.digitize(simulation.simulate(event))
        raw_bytes += raw.approximate_size_bytes()
        reco = reconstructor.reconstruct(raw)
        reco_bytes += reco.approximate_size_bytes()
        aod = make_aod(reco)
        aod_bytes += aod.approximate_size_bytes()
        aods.append(aod)
    selected = skim.apply(aods)
    rows = slim.apply(selected)
    ntuple_bytes = sum(row.approximate_size_bytes() for row in rows)
    return {
        "RAW": (N_EVENTS, raw_bytes),
        "RECO": (N_EVENTS, reco_bytes),
        "AOD": (N_EVENTS, aod_bytes),
        "SKIM": (len(selected), sum(a.approximate_size_bytes()
                                    for a in selected)),
        "NTUPLE": (len(rows), ntuple_bytes),
    }


def test_lifecycle_reduction(benchmark, emit, gpd_geometry,
                             conditions_store):
    tiers = benchmark.pedantic(
        _run_lifecycle, args=(gpd_geometry, conditions_store),
        rounds=1, iterations=1,
    )

    # Byte volumes shrink monotonically along the analysis path.
    assert tiers["RAW"][1] > tiers["RECO"][1] > tiers["AOD"][1]
    assert tiers["AOD"][1] > tiers["SKIM"][1] > tiers["NTUPLE"][1]
    # Skimming drops events; slimming keeps them but drops content.
    assert tiers["SKIM"][0] < tiers["AOD"][0]
    assert tiers["NTUPLE"][0] == tiers["SKIM"][0]
    # The end-to-end reduction is at least an order of magnitude.
    assert tiers["RAW"][1] / tiers["NTUPLE"][1] > 10.0

    lines = [
        "Data lifecycle reduction (300 Z->mumu events)",
        "",
        f"{'tier':8s}{'events':>8s}{'volume':>12s}"
        f"{'vs RAW':>10s}",
    ]
    raw_volume = tiers["RAW"][1]
    for tier, (events, volume) in tiers.items():
        lines.append(
            f"{tier:8s}{events:8d}{human_bytes(volume):>12s}"
            f"{raw_volume / volume:>9.1f}x"
        )
    lines.append("")
    lines.append("Paper: 'The nature of the science requires the "
                 "reduction and processing of large datasets'; each "
                 "step is a logical skim/slim.")
    emit("data_reduction", "\n".join(lines))
