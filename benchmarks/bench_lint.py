"""Throughput baseline for the interprocedural lint layer.

Measures what the deep pass costs on the library's own source tree:

1. closure extraction over ``src/repro`` — module + call graph build
   plus manifest serialisation, reported in files/sec,
2. the full deep lint pass (taint propagation included) on the same
   tree,
3. the parallel/columnar safety pass (``--par``) on the same tree —
   worker escape analysis plus kernel tier checks,
4. the determinism/replay pass (``--det``) on the same tree — replay
   root escape analysis over the registered serialization entry
   points,
5. the shallow per-file pass, as the reference point the deep pass is
   priced against.

Determinism is re-asserted while timing: every extraction must yield
byte-identical manifests, or the numbers are meaningless.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_lint.py [--repeats N]

Writes ``BENCH_lint.json`` next to ``README.md`` so future PRs can
diff their measured throughput against this one's.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
BASELINE_PATH = REPO_ROOT / "BENCH_lint.json"
TARGET = REPO_ROOT / "src" / "repro"


def _count_files(root: Path) -> int:
    return sum(1 for _ in root.rglob("*.py"))


def bench_closure(repeats: int) -> dict:
    from repro.lint import extract_closure

    n_files = _count_files(TARGET)
    manifests = []
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        manifest = extract_closure(TARGET)
        timings.append(time.perf_counter() - start)
        manifests.append(manifest.to_json_bytes())
    best = min(timings)
    assert all(m == manifests[0] for m in manifests), \
        "closure extraction is not deterministic"
    return {
        "n_source_files": n_files,
        "n_closure_modules": len(json.loads(manifests[0])["modules"]),
        "best_seconds": round(best, 4),
        "files_per_second": round(n_files / best, 1),
        "byte_identical": True,
        "repeats": repeats,
    }


def bench_deep_pass(repeats: int) -> dict:
    from repro.lint import lint_tree_deep

    n_files = _count_files(TARGET)
    timings = []
    findings = None
    for _ in range(repeats):
        start = time.perf_counter()
        findings = lint_tree_deep(TARGET)
        timings.append(time.perf_counter() - start)
    best = min(timings)
    return {
        "n_source_files": n_files,
        "n_findings": len(findings),
        "best_seconds": round(best, 4),
        "files_per_second": round(n_files / best, 1),
        "repeats": repeats,
    }


def bench_par_pass(repeats: int) -> dict:
    from repro.lint import lint_tree_par

    n_files = _count_files(TARGET)
    timings = []
    serialized = []
    for _ in range(repeats):
        start = time.perf_counter()
        findings = lint_tree_par(TARGET)
        timings.append(time.perf_counter() - start)
        serialized.append([
            (f.code, f.file, f.line, f.message) for f in findings])
    best = min(timings)
    assert all(s == serialized[0] for s in serialized), \
        "the par pass is not deterministic"
    return {
        "n_source_files": n_files,
        "n_findings": len(serialized[0]),
        "best_seconds": round(best, 4),
        "files_per_second": round(n_files / best, 1),
        "byte_identical": True,
        "repeats": repeats,
    }


def bench_det_pass(repeats: int) -> dict:
    from repro.lint import lint_tree_det

    n_files = _count_files(TARGET)
    timings = []
    serialized = []
    for _ in range(repeats):
        start = time.perf_counter()
        findings = lint_tree_det(TARGET)
        timings.append(time.perf_counter() - start)
        serialized.append([
            (f.code, f.file, f.line, f.message) for f in findings])
    best = min(timings)
    assert all(s == serialized[0] for s in serialized), \
        "the det pass is not deterministic"
    return {
        "n_source_files": n_files,
        "n_findings": len(serialized[0]),
        "best_seconds": round(best, 4),
        "files_per_second": round(n_files / best, 1),
        "byte_identical": True,
        "repeats": repeats,
    }


def bench_shallow_pass(repeats: int) -> dict:
    from repro.lint import lint_source_file

    sources = sorted(TARGET.rglob("*.py"))
    timings = []
    for _ in range(repeats):
        start = time.perf_counter()
        for source in sources:
            lint_source_file(source)
        timings.append(time.perf_counter() - start)
    best = min(timings)
    return {
        "n_source_files": len(sources),
        "best_seconds": round(best, 4),
        "files_per_second": round(len(sources) / best, 1),
        "repeats": repeats,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=3,
                        help="timed repetitions; the best run counts")
    args = parser.parse_args(argv)

    from repro.obs import bench_envelope

    closure = bench_closure(args.repeats)
    deep = bench_deep_pass(args.repeats)
    par = bench_par_pass(args.repeats)
    det = bench_det_pass(args.repeats)
    shallow = bench_shallow_pass(args.repeats)
    record = bench_envelope(
        "repro.lint.flow interprocedural analysis",
        target="src/repro",
    )
    record["workloads"] = {
        "closure_extraction": closure,
        "deep_lint_pass": deep,
        "det_lint_pass": det,
        "par_lint_pass": par,
        "shallow_lint_pass": shallow,
    }
    BASELINE_PATH.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n",
        encoding="utf-8")
    print(json.dumps(record, indent=2, sort_keys=True))
    print(f"\nwrote {BASELINE_PATH}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
