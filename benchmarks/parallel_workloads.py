"""Shared workload builders for the parallel-execution benchmarks.

Used by both ``bench_parallel.py`` (the pytest-collected benchmark) and
``run_bench.py`` (the standalone baseline harness), so the two always
measure the same workloads. Not collected by pytest itself.
"""

from __future__ import annotations

import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent


def _ensure_importable() -> None:
    import sys

    src = str(REPO_ROOT / "src")
    if src not in sys.path:
        try:
            import repro  # noqa: F401
        except ImportError:
            sys.path.insert(0, src)


_ensure_importable()

from repro.conditions import (  # noqa: E402
    CachedConditionsView,
    ConditionsStore,
    GlobalTag,
    IOV,
    default_conditions,
)
from repro.conditions.calibration import (  # noqa: E402
    FOLDER_ECAL_SCALE,
    FOLDER_HCAL_SCALE,
)
from repro.datamodel import (  # noqa: E402
    AndCut,
    CountCut,
    GoodRunList,
    MassWindowCut,
    RunRecord,
    RunRegistry,
    SkimSpec,
)
from repro.detector import (  # noqa: E402
    DetectorSimulation,
    Digitizer,
    generic_lhc_detector,
)
from repro.generation import (  # noqa: E402
    DrellYanZ,
    GeneratorConfig,
    ToyGenerator,
)
from repro.recast.backend import FullChainBackend  # noqa: E402
from repro.recast.catalog import PreservedSearch  # noqa: E402
from repro.reconstruction import GlobalTagView, Reconstructor  # noqa: E402
from repro.workflow import ProcessingCampaign  # noqa: E402

#: Benchmarked worker count — the acceptance point of the speedup claim.
BENCH_JOBS = 4

DENSE_GLOBAL_TAG = "GT-DENSE"


def time_call(fn, *args, **kwargs):
    """(wall seconds, result) of one call."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return time.perf_counter() - start, result


def build_campaign_workload(n_runs: int = 20, sections: int = 50,
                            seed: int = 6100):
    """A fresh campaign + run range sized for wall-clock timing.

    ``sections`` certified sections at one event per section gives
    ``sections`` events per run (capped at 50), across ``n_runs`` runs
    spaced to cross the default conditions' 10-run IOV blocks.
    """
    registry = RunRegistry("BenchRuns")
    good_runs = GoodRunList("BenchGRL")
    run_numbers = [1 + index * 5 for index in range(n_runs)]
    for run_number in run_numbers:
        registry.add(RunRecord(run_number, sections, 0.5))
        good_runs.certify(run_number, 1, sections)
    campaign = ProcessingCampaign(
        name="bench-parallel",
        geometry=generic_lhc_detector(),
        conditions=default_conditions(),
        global_tag="GT-FINAL",
        generator=ToyGenerator(GeneratorConfig(
            processes=[DrellYanZ()], seed=seed)),
        events_per_section=1.0,
        max_events_per_run=50,
        seed=seed,
    )
    return campaign, registry, good_runs


def build_dense_store(n_iovs: int = 2000) -> ConditionsStore:
    """A conditions store with realistic IOV cardinality.

    The seed's toy store holds ten IOVs per tag; production stores hold
    thousands, which is the regime where per-event re-resolution hurts.
    """
    store = ConditionsStore("dense-conditions")
    for folder in (FOLDER_ECAL_SCALE, FOLDER_HCAL_SCALE):
        for index in range(n_iovs):
            store.add_payload(
                folder, "v1", IOV(index * 2, index * 2 + 1),
                {"scale": 1.0 + index * 1.0e-5},
            )
    store.register_global_tag(GlobalTag.from_mapping(
        DENSE_GLOBAL_TAG,
        {FOLDER_ECAL_SCALE: "v1", FOLDER_HCAL_SCALE: "v1"},
    ))
    return store


def build_raw_events(n_events: int = 250, run_number: int = 3501,
                     seed: int = 9400):
    """RAW Z -> mumu events for the reconstruction benchmarks."""
    geometry = generic_lhc_detector()
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=seed))
    simulation = DetectorSimulation(geometry, seed=seed + 1)
    digitizer = Digitizer(geometry, run_number=run_number, seed=seed + 2)
    raws = [digitizer.digitize(simulation.simulate(event))
            for event in generator.generate(n_events)]
    return geometry, raws


def make_reconstructor(geometry, store: ConditionsStore,
                       cached: bool) -> Reconstructor:
    """A reconstructor over the dense store, cached or not."""
    view_type = CachedConditionsView if cached else GlobalTagView
    return Reconstructor(geometry, view_type(store, DENSE_GLOBAL_TAG))


def build_scan_workload(n_events: int = 250, n_limit_toys: int = 800):
    """(backend, search, masses) for the exclusion-scan benchmark."""
    selection = SkimSpec("highmass", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    search = PreservedSearch(
        analysis_id="GPD-EXO-2013-01", title="High-mass dimuon search",
        experiment="GPD", selection=selection, n_observed=3,
        background=2.5, background_uncertainty=0.6,
        luminosity_ipb=20000.0,
    )
    backend = FullChainBackend("GPD", n_events=n_events,
                               n_limit_toys=n_limit_toys, seed=6400)
    masses = [600.0, 1000.0, 1400.0, 1800.0]
    return backend, search, masses
