"""Library micro-benchmarks: the hot paths a downstream user will feel.

Not a paper table — these are the conventional performance benchmarks a
production library ships: event generation, the digitise+reconstruct
loop (pattern recognition dominates), histogram filling, and archive
ingestion. They guard against accidental slowdowns in the code paths
every experiment above exercises.
"""

import numpy as np

from repro.core import PreservationArchive, PreservationMetadata
from repro.conditions import default_conditions
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.stats import Histogram1D


def test_generation_throughput(benchmark):
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=9100))

    events = benchmark(generator.generate, 50)
    assert len(events) == 50


def test_reconstruction_throughput(benchmark, gpd_geometry,
                                   conditions_store):
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=9200))
    simulation = DetectorSimulation(gpd_geometry, seed=9201)
    digitizer = Digitizer(gpd_geometry, run_number=42, seed=9202)
    raws = [digitizer.digitize(simulation.simulate(event))
            for event in generator.generate(20)]
    reconstructor = Reconstructor(
        gpd_geometry, GlobalTagView(conditions_store, "GT-FINAL"))

    recos = benchmark(reconstructor.reconstruct_many, raws)
    assert len(recos) == 20
    assert any(reco.muons for reco in recos)


def test_histogram_fill_throughput(benchmark, rng_values=None):
    rng = np.random.default_rng(9300)
    values = rng.normal(50.0, 10.0, 100_000)

    def fill():
        histogram = Histogram1D("throughput", 100, 0.0, 100.0)
        histogram.fill_array(values)
        return histogram

    histogram = benchmark(fill)
    assert histogram.n_entries == 100_000


def test_archive_ingest_throughput(benchmark):
    payloads = [{"index": index, "values": list(range(50))}
                for index in range(50)]

    def ingest_all():
        archive = PreservationArchive("throughput")
        for index, payload in enumerate(payloads):
            metadata = PreservationMetadata.build(
                title=f"p{index}", creator="bench", experiment="GPD",
                created="2013-01-01", artifact_format="json",
                size_bytes=0, checksum="", producer="bench",
                access_policy="public",
            )
            archive.store(payload, "hepdata_record", metadata)
        return archive

    archive = benchmark(ingest_all)
    assert len(archive) == 50
    assert all(archive.verify_all().values())
