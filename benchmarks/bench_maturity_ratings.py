"""Experiments A-F5 / A-D6 / A-E8 — the Appendix A maturity rubrics.

Paper artifacts: the three embedded 1-5 rubric tables (data management &
disaster recovery Q5F, data description Q6D, preservation Q8E). The
bench regenerates the rubric rows verbatim from the library and computes
each experiment's rating from its interview evidence ladder.
"""

from repro.experiments import all_experiments
from repro.interview import all_scales, assess_experiment
from repro.interview.report import maturity_table, render_maturity_table


def _build_maturity():
    experiments = all_experiments()
    table = maturity_table(experiments)
    rendered = render_maturity_table(experiments)
    return experiments, table, rendered


def test_maturity_rubrics_and_ratings(benchmark, emit):
    experiments, table, rendered = benchmark(_build_maturity)

    # All four scales with their five rubric levels are reproduced.
    assert set(table["scales"]) == {"5F", "6D", "8E", "9F"}
    for scale in all_scales():
        levels = table["scales"][scale.scale_id]["levels"]
        assert len(levels) == 5
        assert all(len(level) > 10 for level in levels)

    # Ratings are 1-5 and follow the evidence ladder deterministically.
    for profile in experiments:
        ratings = table["ratings"][profile.name]
        assert ratings == assess_experiment(profile)
        assert all(1 <= value <= 5 for value in ratings.values())

    # Shape expectations: the dedicated BaBar preservation project
    # scores highest on preservation; CMS (approved open-data policy,
    # published format specs) leads the LHC pack on description.
    preservation = {name: r["8E"] for name, r in
                    table["ratings"].items()}
    assert preservation["BaBar"] == max(preservation.values())
    description = {name: r["6D"] for name, r in
                   table["ratings"].items()}
    assert description["CMS"] == max(description.values())

    lines = [rendered, ""]
    for scale in all_scales():
        lines.append(f"Rubric {scale.scale_id} — {scale.title}:")
        for level, text in enumerate(
            table["scales"][scale.scale_id]["levels"], start=1
        ):
            lines.append(f"  {level}: {text}")
        lines.append("")
    emit("maturity_ratings", "\n".join(lines))
