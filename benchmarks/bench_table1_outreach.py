"""Experiment T1 — regenerate Table 1 (outreach feature matrix).

Paper artifact: Table 1, "An overview of the different features of the
outreach efforts from the four LHC experiments", plus the surrounding
claims: no common formats exist, and a common architecture could serve
all four. The bench regenerates the matrix from the experiment profiles
and cross-checks the master-class rows against the exercises this
library actually implements.
"""

from repro.experiments import (
    diversity_report,
    lhc_experiments,
    outreach_feature_matrix,
    render_table1,
    verify_outreach_capabilities,
)


def _build_table1():
    profiles = lhc_experiments()
    matrix = outreach_feature_matrix(profiles)
    rendered = render_table1(profiles)
    diversity = diversity_report(profiles)
    coverage = [verify_outreach_capabilities(profile)
                for profile in profiles]
    return matrix, rendered, diversity, coverage


def test_table1_regeneration(benchmark, emit):
    matrix, rendered, diversity, coverage = benchmark(_build_table1)

    # The paper's column set and a sample of its cell values.
    assert set(matrix["Data Format(s)"]) == {"ALICE", "ATLAS", "CMS",
                                             "LHCb"}
    assert matrix["Event Display(s)"]["CMS"] == "iSpy"
    assert matrix["Master Class uses"]["LHCb"] == "D lifetime"

    # Headline finding: "no common formats".
    assert diversity["any_common_format"] is False

    # Counter-demonstration: one stack covers every core master class.
    for entry in coverage:
        for use, exercise in entry["masterclass_coverage"].items():
            if any(keyword in use for keyword in
                   ("W", "Z", "Higgs", "D lifetime")):
                assert exercise is not None

    lines = [rendered, "", "Diversity (distinct values per row):"]
    for row, report in diversity.items():
        if isinstance(report, dict):
            lines.append(f"  {row}: {report['n_distinct']} distinct "
                         f"across {report['n_experiments']} experiments")
    lines.append(f"  any common format: "
                 f"{diversity['any_common_format']}")
    lines.append("")
    lines.append("Master-class coverage by the common repro stack:")
    for entry in coverage:
        lines.append(f"  {entry['experiment']}: {entry['n_covered']}/"
                     f"{entry['n_uses']} uses covered, display: "
                     f"{entry['display_supported']}, self-documenting "
                     f"format: {entry['self_documenting_format']}")
    emit("table1_outreach", "\n".join(lines))
