"""Observability overhead baseline: what does tracing cost?

Two complementary measurements, because a sub-5% wall-clock delta is
unmeasurable on a noisy shared host (the recorded A/A ``jitter_pct``
shows the floor):

1. ``primitives`` — per-operation costs of the instrumentation layer
   (enabled span enter/exit, disabled no-op span, span adoption,
   counter increment, histogram observation), each averaged over tens
   of thousands of operations so scheduling noise cancels.
2. per-workload records (``campaign``, ``reconstruction``) — the
   instrumentation *counts* of one traced execution times those per-op
   costs give the implied overhead, the statistically meaningful
   number the 5% budget is judged against. The directly measured
   median-of-paired-ratios wall-clock overhead is recorded alongside,
   with the A/A jitter floor that calibrates how little it means.

The structural argument the numbers back up: spans are per-run and
per-chunk, never per-event, so instrumentation op counts are hundreds
per sweep while the baseline does millions of event operations.
Physics output is re-asserted identical between the uninstrumented and
traced runs while timing.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick] [--repeats N]

Writes ``BENCH_obs.json`` next to ``README.md`` in the shared
``repro-bench-report`` envelope.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from parallel_workloads import (  # noqa: E402
    REPO_ROOT,
    build_campaign_workload,
    build_dense_store,
    build_raw_events,
    make_reconstructor,
)
from repro.obs import MetricsRegistry, Tracer, bench_envelope  # noqa: E402

BASELINE_PATH = REPO_ROOT / "BENCH_obs.json"

#: The enabled-tracer budget the acceptance criteria name.
OVERHEAD_BUDGET_PCT = 5.0


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return 0.5 * (ordered[middle - 1] + ordered[middle])


# ----------------------------------------------------------------------
# Per-operation primitive costs
# ----------------------------------------------------------------------

def _per_op_seconds(run_block, ops_per_block: int, blocks: int) -> float:
    """Median per-operation cost across timed blocks."""
    run_block()  # warmup
    laps = []
    for _ in range(blocks):
        start = time.perf_counter()
        run_block()
        laps.append((time.perf_counter() - start) / ops_per_block)
    return _median(laps)


def bench_primitives(ops: int, blocks: int) -> dict:
    """Microbenchmark each instrumentation operation in isolation."""
    def enabled_spans():
        tracer = Tracer("bench")
        for _ in range(ops):
            with tracer.span("op"):
                pass

    def disabled_spans():
        tracer = Tracer("bench", enabled=False)
        for _ in range(ops):
            with tracer.span("op"):
                pass

    def adoptions():
        source = Tracer("worker")
        for _ in range(ops):
            with source.span("op"):
                pass
        spans = source.spans
        start = time.perf_counter()
        Tracer("driver").adopt(spans)
        return time.perf_counter() - start

    def counter_incs():
        counter = MetricsRegistry().counter("bench.ops")
        for _ in range(ops):
            counter.inc()

    def histogram_observes():
        histogram = MetricsRegistry().histogram("bench.op_seconds")
        for _ in range(ops):
            histogram.observe(0.003)

    # Adoption is timed inside its builder (the span setup must not
    # count), so it bypasses _per_op_seconds.
    adoptions()  # warmup
    adopt_laps = [adoptions() / ops for _ in range(blocks)]

    to_us = 1e6
    return {
        "ops_per_block": ops,
        "blocks": blocks,
        "enabled_span_us": round(
            _per_op_seconds(enabled_spans, ops, blocks) * to_us, 3),
        "disabled_span_us": round(
            _per_op_seconds(disabled_spans, ops, blocks) * to_us, 3),
        "adopt_span_us": round(_median(adopt_laps) * to_us, 3),
        "counter_inc_us": round(
            _per_op_seconds(counter_incs, ops, blocks) * to_us, 3),
        "histogram_observe_us": round(
            _per_op_seconds(histogram_observes, ops, blocks) * to_us, 3),
    }


# ----------------------------------------------------------------------
# Workload-level overhead
# ----------------------------------------------------------------------

def _time_modes(run, repeats: int) -> dict:
    """Wall-clock laps per instrumentation mode, interleaved.

    The three modes are timed round-robin within each repetition (after
    one untimed warmup round) so load drift lands on every mode instead
    of biasing whichever ran first.
    """
    modes = {
        "baseline": lambda: run(),
        "disabled": lambda: run(tracer=Tracer("bench", enabled=False)),
        "enabled": lambda: run(tracer=Tracer("bench"),
                               metrics=MetricsRegistry()),
    }
    timings: dict[str, list[float]] = {name: [] for name in modes}
    for mode in modes.values():
        mode()
    for _ in range(repeats):
        for name, mode in modes.items():
            start = time.perf_counter()
            mode()
            timings[name].append(time.perf_counter() - start)
    return timings


def _overhead_record(timings: dict, primitives: dict,
                     op_counts: dict) -> dict:
    """Implied + measured overhead for one workload.

    ``op_counts`` maps primitive names (keys of ``primitives`` without
    the ``_us`` suffix) to how many such operations one traced
    execution performs; the implied overhead is their dot product over
    the median baseline. The measured ratios and the A/A jitter floor
    are recorded for honesty, not for the verdict.
    """
    baseline = _median(timings["baseline"])
    record = {
        "baseline_seconds": round(baseline, 4),
        "jitter_pct": round(
            100.0 * (max(timings["baseline"])
                     / min(timings["baseline"]) - 1.0), 2),
        "instrumentation_ops": dict(op_counts),
    }
    implied_enabled = sum(
        count * primitives[f"{name}_us"] * 1e-6
        for name, count in op_counts.items()
    )
    # Disabled mode does only the no-op span branch, once per would-be
    # span (adoption sees empty lists; metrics are absent).
    n_spans = sum(count for name, count in op_counts.items()
                  if name.endswith("span") and name != "adopt_span")
    implied_disabled = n_spans * primitives["disabled_span_us"] * 1e-6
    record["implied_enabled_overhead_pct"] = round(
        100.0 * implied_enabled / baseline, 4)
    record["implied_disabled_overhead_pct"] = round(
        100.0 * implied_disabled / baseline, 4)
    for mode in ("disabled", "enabled"):
        ratios = [
            (lap - base) / base
            for lap, base in zip(timings[mode], timings["baseline"])
        ]
        record[f"measured_{mode}_overhead_pct"] = round(
            100.0 * _median(ratios), 2)
    record["within_budget"] = (
        record["implied_enabled_overhead_pct"] <= OVERHEAD_BUDGET_PCT)
    return record


def bench_campaign_overhead(n_runs: int, repeats: int,
                            primitives: dict) -> dict:
    """Campaign sweep: per-run spans, span adoption, counters."""
    template, registry, good_runs = build_campaign_workload(
        n_runs=n_runs)

    def run(tracer=None, metrics=None):
        # Fresh results dict per call; everything else (conditions
        # store, generator, run range) is shared read-only state, so
        # the timed region is the sweep alone, not workload setup.
        campaign = template._worker_template()
        campaign.process(registry, good_runs, tracer=tracer,
                         metrics=metrics)
        return campaign

    plain = run()
    traced = run(tracer=Tracer("bench"), metrics=MetricsRegistry())
    identical = ([a.to_dict() for a in plain.all_aods()]
                 == [a.to_dict() for a in traced.all_aods()])

    record = _overhead_record(
        _time_modes(run, repeats), primitives,
        # One sweep span + one worker span per run, each adopted back;
        # three counter increments per run (runs/events/reads).
        {"enabled_span": 1 + n_runs, "adopt_span": n_runs,
         "counter_inc": 3 * n_runs},
    )
    record.update({"n_runs": n_runs, "repeats": repeats,
                   "bit_identical": identical})
    return record


def bench_reconstruction_overhead(n_events: int, repeats: int,
                                  primitives: dict) -> dict:
    """Serial reconstruction pass: one span, per-pass counters."""
    store = build_dense_store()
    geometry, raws = build_raw_events(n_events=n_events)

    def run(tracer=None, metrics=None):
        reconstructor = make_reconstructor(geometry, store, cached=True)
        return reconstructor.reconstruct_many(raws, tracer=tracer,
                                              metrics=metrics)

    plain = run()
    traced = run(tracer=Tracer("bench"), metrics=MetricsRegistry())
    identical = ([r.met.met for r in plain]
                 == [r.met.met for r in traced])

    record = _overhead_record(
        _time_modes(run, repeats), primitives,
        # One pass span and two counter increments (events/reads).
        {"enabled_span": 1, "counter_inc": 2},
    )
    record.update({"n_events": len(raws), "repeats": repeats,
                   "bit_identical": identical})
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="interleaved timing rounds per workload")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (smoke test, noisier)")
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        help="where to write the baseline JSON")
    args = parser.parse_args(argv)

    n_runs = 6 if args.quick else 12
    n_events = 60 if args.quick else 150
    ops = 5000 if args.quick else 20000
    blocks = 3 if args.quick else 5

    record = bench_envelope("repro.obs tracing overhead",
                            overhead_budget_pct=OVERHEAD_BUDGET_PCT)
    print("instrumentation primitives (per-op costs) ...")
    primitives = bench_primitives(ops, blocks)
    record["workloads"]["primitives"] = primitives
    print("campaign sweep (baseline vs no-op vs traced) ...")
    record["workloads"]["campaign"] = bench_campaign_overhead(
        n_runs, args.repeats, primitives)
    print("reconstruction pass (baseline vs no-op vs traced) ...")
    record["workloads"]["reconstruction"] = bench_reconstruction_overhead(
        n_events, args.repeats, primitives)

    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"  per enabled span: {primitives['enabled_span_us']:.1f}us, "
          f"per disabled span: {primitives['disabled_span_us']:.1f}us")
    for name in ("campaign", "reconstruction"):
        workload = record["workloads"][name]
        print(f"  {name:15s}: implied enabled "
              f"{workload['implied_enabled_overhead_pct']:+.4f}%, "
              f"disabled "
              f"{workload['implied_disabled_overhead_pct']:+.4f}% "
              f"({'within' if workload['within_budget'] else 'OVER'} "
              f"{OVERHEAD_BUDGET_PCT:.0f}% budget; measured "
              f"{workload['measured_enabled_overhead_pct']:+.2f}% at "
              f"{workload['jitter_pct']:.1f}% A/A jitter)")
    print(f"baseline written to {output}")
    ok = all(w["bit_identical"] and w["within_budget"]
             for w in record["workloads"].values()
             if "bit_identical" in w)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
