"""Observability overhead baseline: what does instrumentation cost?

Three complementary measurements, because a sub-5% wall-clock delta is
unmeasurable on a noisy shared host (the recorded A/A ``jitter_pct``
shows the floor, and every overhead record carries an
``overhead_meaningful`` flag — the analogue of ``speedup_meaningful``
in ``BENCH_parallel.json`` — saying whether the host was quiet enough
for the measured number to mean anything):

1. ``primitives`` — per-operation costs of the instrumentation layer
   (enabled span enter/exit, disabled no-op span, span adoption,
   counter increment, histogram observation, windowed telemetry
   observation), each taken as the *minimum* over timed blocks of tens
   of thousands of operations — min-of-N is the honest estimator for
   microbenchmarks, since noise only ever adds time.
2. per-workload overhead records (``campaign``, ``reconstruction``,
   ``service``) — the instrumentation *counts* of one traced execution
   times those per-op costs give the implied overhead, the
   statistically meaningful number the 5% budget is judged against.
   The directly measured min-of-N overhead is recorded alongside, with
   the A/A jitter floor that calibrates how little it means.
3. throughput of the new report machinery (``profile_build``,
   ``health_evaluate``, ``prom_render``) — these run *after* the
   workload, off the hot path, so they are recorded as ops/second
   rather than judged against the overhead budget.

Physics output is re-asserted identical between the uninstrumented and
instrumented runs while timing.

Usage (from the repo root)::

    PYTHONPATH=src python benchmarks/bench_obs.py [--quick] [--repeats N]

Writes ``BENCH_obs.json`` next to ``README.md`` in the shared
``repro-bench-report`` envelope.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from parallel_workloads import (  # noqa: E402
    REPO_ROOT,
    build_campaign_workload,
    build_dense_store,
    build_raw_events,
    make_reconstructor,
)
from repro.obs import (  # noqa: E402
    MetricsRegistry,
    SpanProfile,
    TelemetryHub,
    Tracer,
    bench_envelope,
    evaluate_slo,
    render_prometheus,
)
from repro.obs.report import export_spans  # noqa: E402
from repro.runtime import LogicalClock  # noqa: E402
from repro.service import (  # noqa: E402
    default_service_slo,
    demo_api,
    demo_script,
    run_script,
)

BASELINE_PATH = REPO_ROOT / "BENCH_obs.json"

#: The enabled-instrumentation budget the acceptance criteria name.
OVERHEAD_BUDGET_PCT = 5.0


def _jitter_pct(laps: list[float]) -> float:
    """A/A noise floor of the min-of-N estimator.

    The statistic every record reports is the *minimum* lap, so the
    relevant reproducibility question is: would an independent rerun
    find the same minimum? Splitting the interleaved laps into their
    even and odd halves gives exactly that A/A comparison — two
    same-sized, same-load-pattern samples of the estimator. The full
    max/min spread is recorded separately (``spread_pct``); it
    measures worst-case interference, which min-of-N rejects by
    construction, and grows without bound with lap count.
    """
    if len(laps) < 2:
        return 0.0
    even, odd = min(laps[0::2]), min(laps[1::2])
    return round(100.0 * abs(even / odd - 1.0), 2)


def _spread_pct(laps: list[float]) -> float:
    """Full A/A spread of repeated identical runs, as max/min - 1."""
    return round(100.0 * (max(laps) / min(laps) - 1.0), 2)


# ----------------------------------------------------------------------
# Per-operation primitive costs
# ----------------------------------------------------------------------

def _per_op_seconds(run_block, ops_per_block: int, blocks: int) -> float:
    """Min-of-N per-operation cost across timed blocks."""
    run_block()  # warmup
    laps = []
    for _ in range(blocks):
        start = time.perf_counter()
        run_block()
        laps.append((time.perf_counter() - start) / ops_per_block)
    return min(laps)


def bench_primitives(ops: int, blocks: int) -> dict:
    """Microbenchmark each instrumentation operation in isolation."""
    def enabled_spans():
        tracer = Tracer("bench")
        for _ in range(ops):
            with tracer.span("op"):
                pass

    def disabled_spans():
        tracer = Tracer("bench", enabled=False)
        for _ in range(ops):
            with tracer.span("op"):
                pass

    def adoptions():
        source = Tracer("worker")
        for _ in range(ops):
            with source.span("op"):
                pass
        spans = source.spans
        start = time.perf_counter()
        Tracer("driver").adopt(spans)
        return time.perf_counter() - start

    def counter_incs():
        counter = MetricsRegistry().counter("bench.ops")
        for _ in range(ops):
            counter.inc()

    def histogram_observes():
        histogram = MetricsRegistry().histogram("bench.op_seconds")
        for _ in range(ops):
            histogram.observe(0.003)

    def telemetry_observes():
        hub = TelemetryHub(LogicalClock())
        for index in range(ops):
            hub.observe("bench.depth", float(index % 7), tenant="t")

    def disabled_telemetry_observes():
        hub = TelemetryHub(LogicalClock(), enabled=False)
        for index in range(ops):
            hub.observe("bench.depth", float(index % 7), tenant="t")

    # Adoption is timed inside its builder (the span setup must not
    # count), so it bypasses _per_op_seconds.
    adoptions()  # warmup
    adopt_laps = [adoptions() / ops for _ in range(blocks)]

    to_us = 1e6
    return {
        "ops_per_block": ops,
        "blocks": blocks,
        "timing": "min-of-N blocks",
        "enabled_span_us": round(
            _per_op_seconds(enabled_spans, ops, blocks) * to_us, 3),
        "disabled_span_us": round(
            _per_op_seconds(disabled_spans, ops, blocks) * to_us, 3),
        "adopt_span_us": round(min(adopt_laps) * to_us, 3),
        "counter_inc_us": round(
            _per_op_seconds(counter_incs, ops, blocks) * to_us, 3),
        "histogram_observe_us": round(
            _per_op_seconds(histogram_observes, ops, blocks) * to_us, 3),
        "telemetry_observe_us": round(
            _per_op_seconds(telemetry_observes, ops, blocks) * to_us,
            3),
        "disabled_telemetry_observe_us": round(
            _per_op_seconds(disabled_telemetry_observes, ops, blocks)
            * to_us, 3),
    }


# ----------------------------------------------------------------------
# Workload-level overhead
# ----------------------------------------------------------------------

def _time_modes(run, repeats: int, modes: dict) -> dict:
    """Wall-clock laps per instrumentation mode, interleaved.

    The modes are timed round-robin within each repetition (after one
    untimed warmup round) so load drift lands on every mode instead of
    biasing whichever ran first.
    """
    timings: dict[str, list[float]] = {name: [] for name in modes}
    for mode in modes.values():
        mode()
    for _ in range(repeats):
        for name, mode in modes.items():
            start = time.perf_counter()
            mode()
            timings[name].append(time.perf_counter() - start)
    return timings


def _tracer_modes(run) -> dict:
    return {
        "baseline": lambda: run(),
        "disabled": lambda: run(tracer=Tracer("bench", enabled=False)),
        "enabled": lambda: run(tracer=Tracer("bench"),
                               metrics=MetricsRegistry()),
    }


def _overhead_record(timings: dict, primitives: dict,
                     op_counts: dict) -> dict:
    """Implied + measured overhead for one workload.

    ``op_counts`` maps primitive names (keys of ``primitives`` without
    the ``_us`` suffix) to how many such operations one instrumented
    execution performs; the implied overhead is their dot product over
    the min-of-N baseline. The measured min-of-N overhead and the A/A
    jitter floor are recorded for honesty; ``overhead_meaningful``
    says whether the floor was low enough for the measured number to
    carry information at the budget scale.
    """
    baseline = min(timings["baseline"])
    jitter = _jitter_pct(timings["baseline"])
    record = {
        "timing": "min-of-N interleaved laps",
        "baseline_seconds": round(baseline, 4),
        "jitter_pct": jitter,
        "spread_pct": _spread_pct(timings["baseline"]),
        "overhead_meaningful": jitter <= OVERHEAD_BUDGET_PCT,
        "instrumentation_ops": dict(op_counts),
    }
    implied_enabled = sum(
        count * primitives[f"{name}_us"] * 1e-6
        for name, count in op_counts.items()
    )
    # Disabled mode does only the no-op span branch, once per would-be
    # span (adoption sees empty lists; metrics are absent).
    n_spans = sum(count for name, count in op_counts.items()
                  if name.endswith("span") and name != "adopt_span")
    implied_disabled = n_spans * primitives["disabled_span_us"] * 1e-6
    record["implied_enabled_overhead_pct"] = round(
        100.0 * implied_enabled / baseline, 4)
    record["implied_disabled_overhead_pct"] = round(
        100.0 * implied_disabled / baseline, 4)
    for mode in timings:
        if mode == "baseline":
            continue
        record[f"measured_{mode}_overhead_pct"] = round(
            100.0 * (min(timings[mode]) / baseline - 1.0), 2)
    record["within_budget"] = (
        record["implied_enabled_overhead_pct"] <= OVERHEAD_BUDGET_PCT)
    return record


def bench_campaign_overhead(n_runs: int, repeats: int,
                            primitives: dict) -> dict:
    """Campaign sweep: per-run spans, span adoption, counters."""
    template, registry, good_runs = build_campaign_workload(
        n_runs=n_runs)

    def run(tracer=None, metrics=None):
        # Fresh results dict per call; everything else (conditions
        # store, generator, run range) is shared read-only state, so
        # the timed region is the sweep alone, not workload setup.
        campaign = template._worker_template()
        campaign.process(registry, good_runs, tracer=tracer,
                         metrics=metrics)
        return campaign

    plain = run()
    traced = run(tracer=Tracer("bench"), metrics=MetricsRegistry())
    identical = ([a.to_dict() for a in plain.all_aods()]
                 == [a.to_dict() for a in traced.all_aods()])

    record = _overhead_record(
        _time_modes(run, repeats, _tracer_modes(run)), primitives,
        # One sweep span + one worker span per run, each adopted back;
        # three counter increments per run (runs/events/reads).
        {"enabled_span": 1 + n_runs, "adopt_span": n_runs,
         "counter_inc": 3 * n_runs},
    )
    record.update({"n_runs": n_runs, "repeats": repeats,
                   "bit_identical": identical})
    return record


def bench_reconstruction_overhead(n_events: int, repeats: int,
                                  primitives: dict) -> dict:
    """Serial reconstruction pass: one span, per-pass counters."""
    store = build_dense_store()
    geometry, raws = build_raw_events(n_events=n_events)

    def run(tracer=None, metrics=None):
        reconstructor = make_reconstructor(geometry, store, cached=True)
        return reconstructor.reconstruct_many(raws, tracer=tracer,
                                              metrics=metrics)

    plain = run()
    traced = run(tracer=Tracer("bench"), metrics=MetricsRegistry())
    identical = ([r.met.met for r in plain]
                 == [r.met.met for r in traced])

    record = _overhead_record(
        _time_modes(run, repeats, _tracer_modes(run)), primitives,
        # One pass span and two counter increments (events/reads).
        {"enabled_span": 1, "counter_inc": 2},
    )
    record.update({"n_events": len(raws), "repeats": repeats,
                   "bit_identical": identical})
    return record


def bench_service_overhead(n_events: int, n_toys: int, repeats: int,
                           primitives: dict) -> dict:
    """Service replay: windowed telemetry on vs off, same script."""
    script = demo_script()

    def run(telemetry_enabled=True):
        api = demo_api(n_events=n_events, n_limit_toys=n_toys)
        telemetry = (None if telemetry_enabled else
                     TelemetryHub(LogicalClock(), enabled=False))
        service, _ = run_script(api, script, telemetry=telemetry)
        return service

    enabled = run(telemetry_enabled=True)
    disabled = run(telemetry_enabled=False)
    identical = (enabled.event_log_bytes()
                 == disabled.event_log_bytes())
    n_observations = enabled.telemetry.n_observations

    modes = {
        "baseline": lambda: run(telemetry_enabled=False),
        "enabled": lambda: run(telemetry_enabled=True),
    }
    record = _overhead_record(
        _time_modes(run, repeats, modes), primitives,
        {"telemetry_observe": n_observations},
    )
    record.update({
        "n_events": n_events,
        "n_limit_toys": n_toys,
        "repeats": repeats,
        "n_telemetry_observations": n_observations,
        "bit_identical": identical,
    })
    return record


# ----------------------------------------------------------------------
# Report-machinery throughput (off the hot path)
# ----------------------------------------------------------------------

def _ops_per_second(state, call, n_items: int, blocks: int) -> dict:
    """Min-of-N throughput of one post-hoc report operation."""
    call(state)  # warmup
    laps = []
    for _ in range(blocks):
        start = time.perf_counter()
        call(state)
        laps.append(time.perf_counter() - start)
    best = min(laps)
    return {
        "timing": "min-of-N blocks",
        "n_items": n_items,
        "blocks": blocks,
        "best_seconds": round(best, 6),
        "jitter_pct": _jitter_pct(laps),
        "spread_pct": _spread_pct(laps),
        "items_per_second": round(n_items / best, 1),
    }


def bench_profile_build(n_spans: int, blocks: int) -> dict:
    """Folding a deep span tree into a profile, spans/second."""
    ticks = iter(range(10 * n_spans))
    tracer = Tracer("bench", clock=lambda: float(next(ticks)))

    def nest(depth):
        with tracer.span(f"level{depth % 8}"):
            if depth % 8 < 7 and len(tracer.spans) < n_spans:
                nest(depth + 1)

    while len(tracer.spans) < n_spans:
        nest(0)
    spans = export_spans(tracer.spans)

    record = _ops_per_second(
        spans,
        lambda state: SpanProfile.from_spans(state, trace_id="bench"),
        len(spans), blocks)
    profile = SpanProfile.from_spans(spans, trace_id="bench")
    record["n_nodes"] = len(profile.nodes)
    record["telescoping_ok"] = (
        sum(node.self_us for node in profile.nodes)
        == profile.total_us)
    return record


def bench_health_evaluate(n_events: int, n_toys: int,
                          blocks: int) -> dict:
    """Evaluating the default SLO spec over one service snapshot."""
    api = demo_api(n_events=n_events, n_limit_toys=n_toys)
    service, _ = run_script(api, demo_script())
    snapshot = service.telemetry.snapshot(deterministic=True)
    spec = default_service_slo()

    record = _ops_per_second(
        snapshot,
        lambda state: evaluate_slo(spec, state),
        len(snapshot["series"]), blocks)
    report = evaluate_slo(spec, snapshot)
    record["n_objectives"] = len(report.objectives)
    record["verdict"] = report.verdict
    return record


def bench_prom_render(n_series: int, blocks: int) -> dict:
    """Rendering a wide registry to exposition text, series/second."""
    registry = MetricsRegistry()
    for index in range(n_series):
        registry.counter("bench.events",
                         tenant=f"tenant-{index}").inc(index)
        registry.histogram("bench.load",
                           tenant=f"tenant-{index}").observe(
            float(index % 9))

    record = _ops_per_second(
        registry.snapshot(),
        render_prometheus,
        2 * n_series, blocks)
    record["n_exposition_lines"] = len(
        render_prometheus(registry.snapshot()).splitlines())
    return record


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--repeats", type=int, default=5,
                        help="interleaved timing rounds per workload")
    parser.add_argument("--quick", action="store_true",
                        help="smaller workloads (smoke test, noisier)")
    parser.add_argument("--output", default=str(BASELINE_PATH),
                        help="where to write the baseline JSON")
    args = parser.parse_args(argv)

    n_runs = 6 if args.quick else 12
    n_events = 60 if args.quick else 150
    ops = 5000 if args.quick else 20000
    blocks = 3 if args.quick else 5
    service_events = 20 if args.quick else 120
    service_toys = 100 if args.quick else 600
    profile_spans = 2000 if args.quick else 8000
    prom_series = 100 if args.quick else 400

    record = bench_envelope("repro.obs instrumentation overhead",
                            overhead_budget_pct=OVERHEAD_BUDGET_PCT)
    print("instrumentation primitives (per-op costs) ...")
    primitives = bench_primitives(ops, blocks)
    record["workloads"]["primitives"] = primitives
    print("campaign sweep (baseline vs no-op vs traced) ...")
    record["workloads"]["campaign"] = bench_campaign_overhead(
        n_runs, args.repeats, primitives)
    print("reconstruction pass (baseline vs no-op vs traced) ...")
    record["workloads"]["reconstruction"] = bench_reconstruction_overhead(
        n_events, args.repeats, primitives)
    print("service replay (telemetry off vs on) ...")
    record["workloads"]["service"] = bench_service_overhead(
        service_events, service_toys, args.repeats, primitives)
    print("profile fold / health evaluate / prom render ...")
    record["workloads"]["profile_build"] = bench_profile_build(
        profile_spans, blocks)
    record["workloads"]["health_evaluate"] = bench_health_evaluate(
        service_events, service_toys, blocks)
    record["workloads"]["prom_render"] = bench_prom_render(
        prom_series, blocks)

    output = Path(args.output)
    output.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n",
                      encoding="utf-8")
    print(f"  per enabled span: {primitives['enabled_span_us']:.1f}us, "
          f"per disabled span: {primitives['disabled_span_us']:.1f}us, "
          f"per telemetry observe: "
          f"{primitives['telemetry_observe_us']:.1f}us")
    for name in ("campaign", "reconstruction", "service"):
        workload = record["workloads"][name]
        quality = ("meaningful" if workload["overhead_meaningful"]
                   else "noise-floored")
        print(f"  {name:15s}: implied enabled "
              f"{workload['implied_enabled_overhead_pct']:+.4f}% "
              f"({'within' if workload['within_budget'] else 'OVER'} "
              f"{OVERHEAD_BUDGET_PCT:.0f}% budget; measured "
              f"{workload['measured_enabled_overhead_pct']:+.2f}% at "
              f"{workload['jitter_pct']:.1f}% A/A jitter, {quality})")
    print(f"baseline written to {output}")
    ok = all(w["bit_identical"] and w["within_budget"]
             for w in record["workloads"].values()
             if "bit_identical" in w)
    return 0 if ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
