"""Serial-vs-parallel execution benchmarks for the runtime subsystem.

Measures the three claims the `repro.runtime` engine makes:

1. the campaign sweep reaches >= 2x wall-clock speedup at 4 process
   workers while producing bit-identical AODs,
2. the IOV-memoizing conditions cache alone speeds up *serial*
   reconstruction by >= 1.3x against a realistically dense store,
3. the exclusion scan parallelizes across mass points with identical
   limits.

Each test emits its measured table to ``benchmarks/output/`` and
appends a machine-readable record to
``benchmarks/output/bench_parallel.json``.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

import pytest

from parallel_workloads import (
    BENCH_JOBS,
    build_campaign_workload,
    build_dense_store,
    build_raw_events,
    build_scan_workload,
    make_reconstructor,
    time_call,
)
from repro.recast.scan import run_mass_scan
from repro.runtime import ExecutionPolicy

OUTPUT_DIR = Path(__file__).parent / "output"
JSON_PATH = OUTPUT_DIR / "bench_parallel.json"

try:
    AVAILABLE_CPUS = len(os.sched_getaffinity(0))
except AttributeError:  # pragma: no cover - non-Linux
    AVAILABLE_CPUS = os.cpu_count() or 1


def _assert_wallclock_speedup(speedup: float, floor: float,
                              label: str) -> None:
    """Enforce a speedup floor only where the cores to reach it exist.

    Wall-clock gains from a process pool are bounded by the CPUs the
    scheduler actually grants. On an under-provisioned box the
    determinism assertions above this call have already run; the
    throughput floor is then *skipped visibly* rather than silently
    waved through, so a green run never implies a speedup that was
    never measured.
    """
    if AVAILABLE_CPUS < BENCH_JOBS:
        pytest.skip(
            f"{label} speedup floor needs >= {BENCH_JOBS} CPUs; the "
            f"scheduler grants {AVAILABLE_CPUS} "
            f"(measured {speedup:.2f}x, informational only)"
        )
    assert speedup >= floor, (
        f"{label} speedup {speedup:.2f}x below {floor:.1f}x floor "
        f"with {AVAILABLE_CPUS} CPUs"
    )


@pytest.fixture(scope="session")
def emit_json():
    """Accumulate benchmark records into one JSON file."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    records: dict = {}

    def _emit(name: str, record: dict) -> None:
        records[name] = record
        with JSON_PATH.open("w", encoding="utf-8") as handle:
            json.dump(records, handle, indent=2, sort_keys=True)
            handle.write("\n")

    return _emit


def test_campaign_parallel_speedup(emit, emit_json):
    campaign_serial, registry, good_runs = build_campaign_workload()
    serial_s, serial_results = time_call(
        campaign_serial.process, registry, good_runs,
        policy=ExecutionPolicy.serial())

    campaign_parallel, registry, good_runs = build_campaign_workload()
    parallel_s, parallel_results = time_call(
        campaign_parallel.process, registry, good_runs,
        policy=ExecutionPolicy.processes(BENCH_JOBS))

    # The determinism guarantee is part of the benchmark: a speedup that
    # changed the physics would be worthless.
    serial_aods = [aod.to_dict() for aod in campaign_serial.all_aods()]
    parallel_aods = [aod.to_dict()
                     for aod in campaign_parallel.all_aods()]
    assert serial_aods == parallel_aods
    assert (campaign_serial.conditions_manifest()
            == campaign_parallel.conditions_manifest())

    speedup = serial_s / parallel_s
    n_events = sum(r.n_events for r in serial_results.values())
    emit("parallel_campaign", "\n".join([
        "Campaign sweep: serial vs process pool",
        "",
        f"runs processed        : {len(serial_results)}",
        f"events produced       : {n_events}",
        f"serial wall time      : {serial_s:.3f} s",
        f"parallel wall time    : {parallel_s:.3f} s "
        f"({BENCH_JOBS} jobs)",
        f"speedup               : {speedup:.2f}x "
        f"({AVAILABLE_CPUS} CPUs available)",
        "outputs bit-identical : yes",
    ]))
    emit_json("campaign", {
        "n_runs": len(serial_results),
        "n_events": n_events,
        "n_jobs": BENCH_JOBS,
        "available_cpus": AVAILABLE_CPUS,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "speedup_meaningful": AVAILABLE_CPUS >= BENCH_JOBS,
        "bit_identical": True,
    })
    _assert_wallclock_speedup(speedup, 2.0, "campaign")


def test_conditions_cache_speedup(emit, emit_json):
    store = build_dense_store()
    geometry, raws = build_raw_events()

    uncached = make_reconstructor(geometry, store, cached=False)
    uncached_s, uncached_recos = time_call(uncached.reconstruct_many,
                                           raws)
    cached = make_reconstructor(geometry, store, cached=True)
    cached_s, cached_recos = time_call(cached.reconstruct_many, raws)

    assert ([r.met.met for r in uncached_recos]
            == [r.met.met for r in cached_recos])
    assert uncached.conditions_reads == cached.conditions_reads

    stats = cached.conditions.stats
    speedup = uncached_s / cached_s
    emit("parallel_conditions_cache", "\n".join([
        "Serial reconstruction: GlobalTagView vs CachedConditionsView",
        "(dense store: 2000 IOVs per folder)",
        "",
        f"events reconstructed : {len(raws)}",
        f"uncached wall time   : {uncached_s:.3f} s",
        f"cached wall time     : {cached_s:.3f} s",
        f"speedup (cache only) : {speedup:.2f}x",
        f"cache hit rate       : {stats.hit_rate:.4f} "
        f"({stats.hits} hits / {stats.misses} misses)",
    ]))
    emit_json("conditions_cache", {
        "n_events": len(raws),
        "uncached_seconds": uncached_s,
        "cached_seconds": cached_s,
        "speedup": speedup,
        "cache_hits": stats.hits,
        "cache_misses": stats.misses,
        "cache_hit_rate": stats.hit_rate,
    })
    assert speedup >= 1.2, f"cache speedup only {speedup:.2f}x"
    assert stats.hit_rate > 0.99


def test_scan_parallel_speedup(emit, emit_json):
    backend, search, masses = build_scan_workload()
    serial_s, serial_scan = time_call(run_mass_scan, backend, search,
                                      masses)
    parallel_s, parallel_scan = time_call(
        run_mass_scan, backend, search, masses,
        policy=ExecutionPolicy.processes(BENCH_JOBS))

    assert serial_scan.limits() == parallel_scan.limits()

    speedup = serial_s / parallel_s
    emit("parallel_scan", "\n".join([
        "Exclusion scan: serial vs process pool",
        "",
        f"mass points        : {len(masses)}",
        f"serial wall time   : {serial_s:.3f} s",
        f"parallel wall time : {parallel_s:.3f} s ({BENCH_JOBS} jobs)",
        f"speedup            : {speedup:.2f}x",
        "limits identical   : yes",
    ]))
    emit_json("scan", {
        "n_mass_points": len(masses),
        "n_jobs": BENCH_JOBS,
        "available_cpus": AVAILABLE_CPUS,
        "serial_seconds": serial_s,
        "parallel_seconds": parallel_s,
        "speedup": speedup,
        "speedup_meaningful": AVAILABLE_CPUS >= BENCH_JOBS,
        "limits_identical": True,
    })
    _assert_wallclock_speedup(speedup, 1.3, "scan")
