"""Experiment C-PRV — the provenance-retention issue of Section 3.2.

Paper claim: "the parentage and computing (producer) description of a
given file may not be included. If this is the case, and the workflow is
to be preserved, an external structure to capture that provenance chain
will need to be created."

The bench runs the same multi-step workflow twice — once with the
external capture structure enabled, once without — and audits how much
of the final dataset's history is recoverable in each configuration.
"""

from repro.conditions import default_conditions
from repro.datamodel import CountCut, SkimSpec, SlimSpec
from repro.detector import DetectorSimulation, Digitizer
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.provenance import ProvenanceCapture, audit_artifact
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.workflow import (
    AODProductionStep,
    ChainRunner,
    DigitizationStep,
    GenerationStep,
    ProcessingChain,
    ReconstructionStep,
    SimulationStep,
    SkimStep,
    SlimStep,
)


def _chain(geometry, conditions, seed):
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=seed))
    return ProcessingChain("zmumu", [
        GenerationStep(generator, 40),
        SimulationStep(DetectorSimulation(geometry, seed=seed + 1)),
        DigitizationStep(Digitizer(geometry, run_number=42,
                                   seed=seed + 2)),
        ReconstructionStep(Reconstructor(
            geometry, GlobalTagView(conditions, "GT-FINAL"))),
        AODProductionStep(),
        SkimStep(SkimSpec("dimuon", CountCut("muons", 2,
                                             min_pt=10.0))),
        SlimStep(SlimSpec("zntuple", ("dimuon_mass",))),
    ])


def test_provenance_capture_contrast(benchmark, emit, gpd_geometry,
                                     conditions_store):
    def run_both():
        captured = ChainRunner(ProvenanceCapture(enabled=True))
        with_result = captured.run(_chain(gpd_geometry,
                                          conditions_store, 3600))
        # The dangerous configuration: producer records not written.
        partial = ChainRunner(ProvenanceCapture(enabled=True,
                                                record_producer=False))
        partial_result = partial.run(_chain(gpd_geometry,
                                            conditions_store, 3700))
        disabled = ChainRunner(ProvenanceCapture(enabled=False))
        disabled.run(_chain(gpd_geometry, conditions_store, 3800))
        return captured, with_result, partial, partial_result, disabled

    (captured, with_result, partial, partial_result,
     disabled) = benchmark.pedantic(run_both, rounds=1, iterations=1)

    final_id = with_result.artifact_ids["zmumu/slim:zntuple"]
    full_audit = audit_artifact(captured.capture.graph, final_id)
    partial_id = partial_result.artifact_ids["zmumu/slim:zntuple"]
    partial_audit = audit_artifact(partial.capture.graph, partial_id)

    # With the external structure: the whole chain is reproducible.
    assert full_audit.reproducible
    assert full_audit.ancestry_completeness == 1.0
    assert full_audit.producer_completeness == 1.0
    # Without producer records: parentage survives but the computing
    # description is gone — not reproducible.
    assert partial_audit.ancestry_completeness == 1.0
    assert partial_audit.producer_completeness == 0.0
    assert not partial_audit.reproducible
    # With capture disabled entirely: nothing is recoverable at all.
    assert len(disabled.capture.graph) == 0

    lines = [
        "Provenance completeness with and without the external capture "
        "structure (7-step workflow, final ntuple audited)",
        "",
        f"{'configuration':34s}{'ancestry':>10s}{'producers':>11s}"
        f"{'reproducible':>14s}",
        f"{'full capture':34s}"
        f"{full_audit.ancestry_completeness:>9.0%}"
        f"{full_audit.producer_completeness:>11.0%}"
        f"{str(full_audit.reproducible):>14s}",
        f"{'parentage only (no producers)':34s}"
        f"{partial_audit.ancestry_completeness:>9.0%}"
        f"{partial_audit.producer_completeness:>11.0%}"
        f"{str(partial_audit.reproducible):>14s}",
        f"{'capture disabled':34s}{'0%':>9s}{'0%':>11s}"
        f"{'False':>14s}",
        "",
        "Paper: an external provenance-capture structure is needed "
        "when processing does not retain parentage/producer records.",
    ]
    emit("provenance", "\n".join(lines))
