"""Theorist path: re-interpret a preserved search via the RECAST analogue.

A high-mass dimuon search is preserved in the GPD experiment's RECAST
catalogue. A theorist browses the public catalogue, submits a Z' model as
pure data, the experiment's closed back end re-runs the *full* chain —
generation, simulation, reconstruction, preserved selection — and, after
the experiment approves the result, the theorist receives the CLs limit.

Also demonstrates the RIVET bridge: the same request served by a
truth-level RIVET analysis gaining RECAST's limit-setting machinery.

Run with:  python examples/recast_reanalysis.py
"""

from repro.datamodel import AndCut, CountCut, MassWindowCut, SkimSpec
from repro.recast import (
    AnalysisCatalog,
    FullChainBackend,
    ModelSpec,
    PreservedSearch,
    RecastAPI,
    RecastFrontend,
    RivetBridgeBackend,
)
from repro.recast.bridge import RivetSignalRegion
from repro.rivet import standard_repository


def preserved_search() -> PreservedSearch:
    """The experiment's preserved high-mass dimuon search."""
    selection = SkimSpec("highmass_dimuon", AndCut((
        CountCut("muons", 2, min_pt=30.0),
        MassWindowCut("muons", 500.0, 1e9, opposite_charge=True),
    )))
    return PreservedSearch(
        analysis_id="GPD-EXO-2013-01",
        title="Search for high-mass dimuon resonances at 8 TeV",
        experiment="GPD",
        selection=selection,
        n_observed=3,
        background=2.5,
        background_uncertainty=0.6,
        luminosity_ipb=20000.0,
        notes="Counting experiment above 500 GeV",
    )


def main() -> None:
    # --- Experiment side: catalogue + closed back end ----------------
    catalog = AnalysisCatalog("GPD")
    catalog.register(preserved_search())
    api = RecastAPI()
    api.register_experiment(
        catalog, FullChainBackend("GPD", n_events=250,
                                  n_limit_toys=2500),
    )

    # --- Theorist side: browse, submit, wait --------------------------
    frontend = RecastFrontend(api)
    print("Public catalogue:")
    for entry in frontend.browse_catalog():
        print(f"  {entry['analysis_id']}: {entry['title']} "
              f"({entry['luminosity_ipb'] / 1000:.0f} fb^-1)")

    model = ModelSpec("Zprime-1.5TeV", "zprime", {
        "mass": 1500.0, "width": 45.0, "cross_section_pb": 0.05,
    })
    request_id = frontend.submit_request("GPD-EXO-2013-01", model,
                                         requester="theorist@ippp")
    print(f"\nSubmitted request {request_id}; status:",
          frontend.status(request_id)["status"])

    # --- Experiment processes and approves ----------------------------
    api.accept(request_id, "in scope for EXO")
    api.run(request_id)
    print("After processing, theorist sees:",
          frontend.status(request_id)["status"],
          "| result released?", frontend.result(request_id) is not None)
    api.approve(request_id, "GPD physics coordinator")

    result = frontend.result(request_id)
    print("\nApproved result:")
    print(f"  selection efficiency: {result['signal_efficiency']:.3f} "
          f"+- {result['efficiency_error']:.3f}")
    print(f"  95% CL upper limit:   "
          f"{result['upper_limit_pb'] * 1000:.3f} fb")
    print(f"  model cross-section:  "
          f"{result['model_cross_section_pb'] * 1000:.3f} fb")
    print(f"  verdict: "
          f"{'EXCLUDED' if result['excluded'] else 'ALLOWED'}")

    # --- The RIVET bridge: same request, truth-level back end ---------
    print("\n--- via the RIVET bridge "
          "(truth level, but with limit setting) ---")
    bridge = RivetBridgeBackend(
        standard_repository(),
        signal_regions={
            "GPD-EXO-2013-01": RivetSignalRegion(
                "TOY_2013_I0007", "mass", 500.0, 3000.0,
            ),
        },
        n_events=1500,
        n_limit_toys=2500,
    )
    bridge_result = bridge.process(preserved_search(), model)
    print(f"  {bridge_result.summary()}")
    print(f"  backend: {bridge_result.backend}, truth-only: "
          f"{bridge_result.extra['truth_level_only']}")


if __name__ == "__main__":
    main()
