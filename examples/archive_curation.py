"""Archivist path: from the trigger to the nightly validation sweep.

Covers the parts of the preservation lifecycle the other examples skip:
the *irreversible* selection at the trigger (why the menu itself must be
preserved), run/luminosity bookkeeping with a good-run list, direct code
capture of a final analyst step, the DPHEP-level inventory of the
archive, and the batch validation sweep a real archive would run
nightly.

Run with:  python examples/archive_curation.py
"""

from repro.conditions import default_conditions
from repro.core import (
    PreservationArchive,
    PreservationMetadata,
    PreservedAnalysisBundle,
    ScriptCapture,
    run_validation_suite,
    take_inventory,
)
from repro.datamodel import (
    CountCut,
    GoodRunList,
    RunRecord,
    RunRegistry,
    SkimSpec,
    SlimSpec,
    certify_good_runs,
    make_aod,
)
from repro.detector import DetectorSimulation, Digitizer, generic_lhc_detector
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.trigger import DataAcquisition, standard_menu


def final_analysis(events):
    """The analyst's preserved final step: a windowed count."""
    n_window = 0
    for event in events:
        if 80.0 <= event["dimuon_mass"] <= 100.0:
            n_window += 1
    return {"n_window": n_window, "n_total": len(events)}


def _metadata(title):
    return PreservationMetadata.build(
        title=title, creator="archivist", experiment="GPD",
        created="2013-03-22", artifact_format="json", size_bytes=0,
        checksum="", producer="curation-example",
        access_policy="collaboration",
    )


def main() -> None:
    geometry = generic_lhc_detector()
    conditions = default_conditions()

    # --- 1. Data taking: trigger decides what exists at all ----------
    menu = standard_menu()
    daq = DataAcquisition(menu, Digitizer(geometry, run_number=42,
                                          seed=1))
    generator = ToyGenerator(GeneratorConfig(processes=[DrellYanZ()],
                                             seed=2))
    simulation = DetectorSimulation(geometry, seed=3)
    daq.process_many([simulation.simulate(event)
                      for event in generator.stream(300)])
    print(f"Trigger menu {menu.name}: accepted {menu.n_accepted}/"
          f"{menu.n_seen} collisions "
          f"({menu.acceptance():.0%}); per-path rates:")
    for path, rate in sorted(menu.rates().items()):
        print(f"  {path:18s} {rate:.2%}")
    raws = daq.recorded("physics")

    # --- 2. Run bookkeeping and the good-run list ---------------------
    registry = RunRegistry("RunA-2012")
    registry.add(RunRecord(42, 120, 0.5))
    registry.add(RunRecord(43, 80, 0.5, detector_ok=False))
    grl = certify_good_runs(registry, "GRL-RunA-v1")
    print(f"\nDelivered {registry.total_luminosity_ipb():.0f} /pb; "
          f"certified {grl.certified_luminosity_ipb(registry):.0f} /pb "
          f"({grl.name})")

    # --- 3. Reconstruct, analyse, preserve both ways ------------------
    reconstructor = Reconstructor(geometry,
                                  GlobalTagView(conditions, "GT-FINAL"))
    aods = [make_aod(reconstructor.reconstruct(raw)) for raw in raws]
    skim = SkimSpec("dimuon", CountCut("muons", 2, min_pt=10.0))
    slim = SlimSpec("z", ("dimuon_mass", "met"))
    bundle = PreservedAnalysisBundle.create("Z-RunA", aods, skim, slim)
    rows = [row.to_dict()["cols"]
            for row in slim.apply(skim.apply(aods))]
    capture = ScriptCapture.create("final-step-RunA", final_analysis,
                                   rows)
    print(f"\nPreserved: declarative bundle ({len(aods)} input events) "
          f"+ script capture "
          f"(result {capture.expected_result})")

    # --- 4. Archive everything and take inventory ---------------------
    archive = PreservationArchive("GPD-RunA-archive")
    archive.store(bundle.to_dict(), "aod_dataset", _metadata("bundle"))
    archive.store(capture.to_dict(), "analysis_description",
                  _metadata("final step"))
    archive.store(daq.describe(), "workflow_chain",
                  _metadata("trigger menu + streams"))
    archive.store(grl.to_dict(), "skim_spec", _metadata("good runs"))
    archive.store({"format": "level2-sample", "events": 3},
                  "level2_file", _metadata("outreach sample"))
    inventory = take_inventory(archive)
    print()
    print(inventory.render())

    # --- 5. The nightly sweep ------------------------------------------
    report = run_validation_suite(archive)
    print()
    print(report.render())

    # --- 6. ... and what the sweep is for: catching rot ----------------
    archive._corrupt_for_testing(archive.digests()[0])
    damaged = run_validation_suite(archive)
    print("\nAfter simulated bit rot on one blob:")
    print(damaged.render())


if __name__ == "__main__":
    main()
