"""Generator-validation path: RIVET-style comparison of two tunes.

"Archived" unfolded data (here: pseudo-data from TUNE-A, corrected for
detector effects with bin-by-bin unfolding) is stored as reference data
in the open analysis repository. Two generator tunes are then run through
the preserved analysis and compared — the primary RIVET use case the
paper describes.

Run with:  python examples/rivet_mc_comparison.py
"""

from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.generation.processes import Tune
from repro.rivet import ReferenceData, RivetRunner, standard_repository
from repro.stats import ratio_points

ANALYSIS = "TOY_2013_I0003"  # charged multiplicity + pt spectrum


def make_events(tune: Tune, seed: int, n_events: int = 600):
    """Generate a Z sample with the requested tune."""
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=seed, tune=tune,
    ))
    return generator.generate(n_events), generator.run_info.to_dict()


def main() -> None:
    repository = standard_repository()
    runner = RivetRunner(repository)

    # --- Build the archived reference measurement ---------------------
    # Pseudo-data comes from TUNE-A; in a real RIVET workflow this is
    # the experiment's unfolded measurement.
    data_events, _ = make_events(Tune.tune_a(), seed=101)
    data_result = runner.run_one(ANALYSIS, data_events)
    reference = ReferenceData(ANALYSIS, source="archived measurement")
    for key, histogram in data_result.histograms.items():
        reference.add(key, histogram)
    repository.attach_reference(reference)
    print(f"Archived reference data for {ANALYSIS}: "
          f"{reference.keys()}")

    # --- Compare both tunes against the archive -----------------------
    for tune in (Tune.tune_a(), Tune.tune_b()):
        events, info = make_events(tune, seed=202)
        result = runner.run_one(ANALYSIS, events, generator_info=info)
        comparisons = runner.compare_to_reference(result)
        print(f"\n{tune.name} vs archived data:")
        for key, comparison in sorted(comparisons.items()):
            print(f"  {key:6s} {comparison.summary()}")
        # Show the shape of the disagreement in the ratio.
        ratio = ratio_points(result.histogram("nch"),
                             reference.histogram("nch"))
        interesting = [point for point in ratio if point[0] < 30.0][:6]
        rendered = ", ".join(f"{x:.0f}:{r:.2f}"
                             for x, r, _ in interesting)
        print(f"  nch MC/data ratio (low multiplicities): {rendered}")

    print("\nExpected: TUNE-A is compatible with its own archived "
          "measurement; TUNE-B (harder spectrum, higher multiplicity) "
          "is discrepant — the comparison any future generator would "
          "get from the preserved analysis.")


if __name__ == "__main__":
    main()
