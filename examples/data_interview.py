"""Curator path: run the Data Interview Template for the experiments.

Fills the Appendix A questionnaire for every profiled experiment,
computes the four maturity ratings from evidence (not by assertion),
renders the aggregate maturity table and Data Sharing Grid, and prints
one full interview report.

Run with:  python examples/data_interview.py
"""

from repro.experiments import all_experiments, get_experiment
from repro.interview import (
    InterviewTemplate,
    all_scales,
    response_for_experiment,
)
from repro.interview.report import (
    interview_report,
    render_maturity_table,
    render_sharing_grid,
)


def main() -> None:
    template = InterviewTemplate.standard()
    experiments = all_experiments()
    responses = [response_for_experiment(profile, template)
                 for profile in experiments]
    print(f"Interviewed {len(responses)} experiments with the "
          f"{len(template.sections)}-section template; all responses "
          f"complete: "
          f"{all(not r.validate(template) for r in responses)}\n")

    # --- The four maturity rubrics + computed ratings -----------------
    print("Maturity ratings (computed from interview evidence):")
    print(render_maturity_table(experiments))
    print()
    scale = all_scales()[2]  # preservation
    print(f"Rubric for scale {scale.scale_id} ({scale.title}):")
    for level in range(1, 6):
        print(f"  {level}: {scale.describe_level(level)}")
    print()

    # --- The Data Sharing Grid ----------------------------------------
    print("Data Sharing Grid (audience per research stage):")
    print(render_sharing_grid(responses))
    print()

    # --- Gap analysis: what would raise each rating --------------------
    from repro.interview import render_gap_report

    print(render_gap_report(get_experiment("ALICE")))
    print()

    # --- One full interview report ------------------------------------
    lhcb = response_for_experiment(get_experiment("LHCb"), template)
    report = interview_report(lhcb, template)
    print("Full interview report for LHCb (truncated):")
    print("\n".join(report.splitlines()[:30]))
    print("  ...")


if __name__ == "__main__":
    main()
