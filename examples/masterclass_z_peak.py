"""Outreach path: Level-2 conversion, event display, Z-path master class.

Reproduces the Table 1 outreach architecture with one common stack: AOD
events are converted by the thin Level-2 converter into the simplified
self-documenting format, browsed through the portal, drawn with the
ASCII event display, and analysed by students in the Z-path master class.

Run with:  python examples/masterclass_z_peak.py
"""

from repro.conditions import default_conditions
from repro.datamodel import make_aod
from repro.detector import DetectorSimulation, Digitizer, generic_lhc_detector
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.outreach import (
    EventDisplayRecord,
    Level2Converter,
    OutreachPortal,
    ZPathExercise,
)
from repro.outreach.format import format_documentation
from repro.reconstruction import GlobalTagView, Reconstructor


def main() -> None:
    # --- Produce the outreach dataset (the experiment's job) ---------
    geometry = generic_lhc_detector()
    conditions = default_conditions()
    generator = ToyGenerator(GeneratorConfig(processes=[DrellYanZ()],
                                             seed=42))
    simulation = DetectorSimulation(geometry, seed=43)
    digitizer = Digitizer(geometry, run_number=7, seed=44)
    reconstructor = Reconstructor(geometry,
                                  GlobalTagView(conditions, "GT-FINAL"))
    converter = Level2Converter(collision_energy_tev=8.0)
    level2_events = []
    for event in generator.stream(400):
        reco = reconstructor.reconstruct(
            digitizer.digitize(simulation.simulate(event))
        )
        level2_events.append(converter.convert(make_aod(reco)))
    stats = converter.stats
    print(f"Converted {stats.n_events} AOD events to Level-2 "
          f"(size reduction factor {stats.reduction_factor:.1f}x)")
    print(f"The format documents itself: "
          f"{format_documentation()['description']!r}\n")

    # --- Browse like a student ---------------------------------------
    portal = OutreachPortal(level2_events, "z-masterclass")
    print("Portal summary:", portal.summary(), "\n")

    interesting = max(
        range(len(level2_events)),
        key=lambda i: len(level2_events[i].of_type("muon")),
    )
    print("Event display of the busiest dimuon event:")
    print(portal.event_display(interesting))
    print()

    # --- The display record a graphical client would consume ---------
    record = EventDisplayRecord.build(geometry,
                                      level2_events[interesting])
    payload = record.to_dict()
    print(f"Standalone display record: geometry "
          f"{payload['geometry']['name']!r} + "
          f"{len(payload['payload']['tracks'])} tracks, "
          f"{len(payload['payload']['towers'])} towers\n")

    # --- Export the standalone classroom page --------------------------
    from pathlib import Path

    from repro.outreach import write_portal_html

    output_dir = Path(__file__).parent / "output"
    output_dir.mkdir(exist_ok=True)
    page = write_portal_html(
        output_dir / "z_masterclass.html", level2_events, geometry,
        dataset_name="Z master class",
    )
    print(f"Standalone classroom page written to {page} "
          f"({page.stat().st_size} bytes, no software needed)\n")

    # --- Run the master class ----------------------------------------
    exercise = ZPathExercise()
    print("Master class instructions:")
    print(" ", exercise.instructions(), "\n")
    report = exercise.run(level2_events)
    print(f"Students measured m(Z) = {report['measured']:.2f} "
          f"+- {report['error']:.2f} GeV from "
          f"{report['n_candidates']} candidates "
          f"(reference {report['reference']} GeV, "
          f"pull {report['pull']:+.1f})")


if __name__ == "__main__":
    main()
