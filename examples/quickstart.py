"""Quickstart: the full DASPOS loop in one script.

Generates Z -> mu mu collisions, pushes them through the complete
processing workflow (simulation, digitisation, conditions-dependent
reconstruction, AOD production, declarative skim/slim), preserves the
analysis with full provenance, and finally *re-validates* the preserved
analysis from its archived form — the core use case of the DASPOS
Workshop 1 report.

Run with:  python examples/quickstart.py
"""

from repro.conditions import default_conditions
from repro.core import (
    PreservationArchive,
    PreservedAnalysisBundle,
    SubmissionPackage,
    disseminate,
    ingest,
    revalidate,
)
from repro.datamodel import (
    AndCut,
    CountCut,
    MassWindowCut,
    SkimSpec,
    SlimSpec,
)
from repro.detector import DetectorSimulation, Digitizer, generic_lhc_detector
from repro.generation import DrellYanZ, GeneratorConfig, ToyGenerator
from repro.provenance import audit_artifact
from repro.reconstruction import GlobalTagView, Reconstructor
from repro.workflow import (
    AODProductionStep,
    ChainRunner,
    DigitizationStep,
    GenerationStep,
    ProcessingChain,
    ReconstructionStep,
    SimulationStep,
    SkimStep,
    SlimStep,
    StepContext,
    summarize_resources,
)


def main() -> None:
    # --- 1. Set up the experiment substrate -------------------------
    geometry = generic_lhc_detector()
    conditions = default_conditions()
    generator = ToyGenerator(GeneratorConfig(
        processes=[DrellYanZ()], seed=2013,
    ))

    # --- 2. Declare the analysis as data (preservable!) -------------
    skim = SkimSpec("dimuon", AndCut((
        CountCut("muons", 2, min_pt=15.0),
        MassWindowCut("muons", 60.0, 120.0, opposite_charge=True),
    )))
    slim = SlimSpec("zntuple", ("dimuon_mass", "met", "n_muons"))

    # --- 3. Run the standard HEP processing chain --------------------
    chain = ProcessingChain("zmumu", [
        GenerationStep(generator, 300),
        SimulationStep(DetectorSimulation(geometry, seed=1)),
        DigitizationStep(Digitizer(geometry, run_number=42, seed=2)),
        ReconstructionStep(Reconstructor(
            geometry, GlobalTagView(conditions, "GT-FINAL"))),
        AODProductionStep(),
        SkimStep(skim),
        SlimStep(slim),
    ])
    runner = ChainRunner()
    result = runner.run(chain, StepContext(run_number=42))

    print("Datasets produced:")
    for name, dataset in result.datasets.items():
        print(f"  {name:30s} {len(dataset):5d} events")

    # --- 4. Inspect provenance and external dependencies ------------
    final_id = result.artifact_ids["zmumu/slim:zntuple"]
    audit = audit_artifact(runner.capture.graph, final_id)
    print(f"\nProvenance audit: {audit.summary()}")
    print(f"External resources: "
          f"{summarize_resources(result).summary()}")

    # --- 5. Preserve the analysis ------------------------------------
    aods = result.dataset("zmumu/aod_production")
    bundle = PreservedAnalysisBundle.create("Z-2013-quickstart", aods,
                                            skim, slim)
    archive = PreservationArchive("daspos-quickstart")
    sip = SubmissionPackage("Z quickstart", "you", "GPD", "2013-03-21")
    sip.add("bundle", "aod_dataset", bundle.to_dict())
    sip.add("skim", "skim_spec", skim.to_dict())
    aip = ingest(sip, archive, "AIP-0001")
    print(f"\nArchived {len(archive)} artifacts "
          f"({archive.total_size_bytes()} bytes), all fixity-checked: "
          f"{all(archive.verify_all().values())}")

    # --- 6. Years later: retrieve and re-validate --------------------
    dip = disseminate(archive, aip, "archivist")
    recovered = PreservedAnalysisBundle.from_dict(dip.payloads["bundle"])
    outcome = revalidate(recovered)
    print(f"Re-validation: {outcome.summary()}")

    rows = result.final_dataset()
    masses = sorted(row.columns["dimuon_mass"] for row in rows)
    print(f"\nMeasured dimuon mass (median of {len(masses)} events): "
          f"{masses[len(masses) // 2]:.2f} GeV  (PDG: 91.19)")


if __name__ == "__main__":
    main()
